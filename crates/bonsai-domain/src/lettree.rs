//! Local Essential Trees as standalone, serializable structures.
//!
//! A [`LetTree`] is a pruned copy of a sender's local tree: internal nodes
//! that the receiver may open, leaves whose particles are shipped, and `Cut`
//! nodes carrying only multipole data because the multipole acceptance
//! criterion guarantees the receiver will never open them. Because every
//! local tree is a branch of the same hypothetical global octree (§III-B1),
//! the receiver walks a LET *directly* — no merging into the local tree —
//! which is what lets the paper hide LET exchange behind GPU work.
//!
//! The byte encoding is deliberately explicit (fixed-width little-endian
//! fields via `bytes`): the cluster simulator charges the network model with
//! `to_bytes().len()`, so the sizes driving the Table II communication rows
//! are real serialized sizes, not estimates.

use bonsai_tree::node::{Node, NodeKind, TreeView};
use bonsai_util::{Aabb, Sym3, Vec3};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A self-contained pruned tree: nodes in BFS order plus the particle payload
/// referenced by its leaf nodes.
#[derive(Clone, Debug, Default)]
pub struct LetTree {
    /// Nodes in BFS order, `nodes[0]` the root (empty if the sender owned
    /// nothing).
    pub nodes: Vec<Node>,
    /// Positions of shipped leaf particles.
    pub pos: Vec<Vec3>,
    /// Masses of shipped leaf particles.
    pub mass: Vec<f64>,
}

impl LetTree {
    /// Borrow as a walkable view. LETs don't cache an SoA position copy
    /// (they are small, short-lived, and cross the wire as AoS), so the walk
    /// uses the scalar leaf kernel — bit-identical to the batched one.
    pub fn view(&self) -> TreeView<'_> {
        TreeView {
            nodes: &self.nodes,
            pos: &self.pos,
            mass: &self.mass,
            soa: None,
        }
    }

    /// `true` if there is nothing in the tree.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total mass advertised by the root.
    pub fn total_mass(&self) -> f64 {
        self.nodes.first().map_or(0.0, |n| n.mass)
    }

    /// Tight bounding boxes of the `Cut` and `Leaf` frontier — the domain
    /// geometry a receiver uses when it builds LETs *for* this sender.
    pub fn frontier_boxes(&self) -> Vec<Aabb> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Cut | NodeKind::Leaf))
            .map(|n| n.bbox)
            .collect()
    }

    /// Number of shipped particles.
    pub fn particle_count(&self) -> usize {
        self.pos.len()
    }

    /// Structural invariants: child ranges valid, leaf ranges inside payload,
    /// internal mass equals the sum of child masses, every multipole and
    /// particle value finite. Receivers run this on every tree that crosses
    /// the wire, so a frame that passes the envelope checksum but carries
    /// semantically broken data is still rejected.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let finite = n.mass.is_finite()
                && n.com.x.is_finite()
                && n.com.y.is_finite()
                && n.com.z.is_finite()
                && n.quad.m.iter().all(|q| q.is_finite());
            if !finite {
                return Err(format!("node {i}: non-finite multipole data"));
            }
            match n.kind {
                NodeKind::Internal => {
                    let (b, e) = (n.first as usize, (n.first + n.count) as usize);
                    if e > self.nodes.len() || b <= i {
                        return Err(format!("node {i}: bad child range {b}..{e}"));
                    }
                    let child_mass: f64 = self.nodes[b..e].iter().map(|c| c.mass).sum();
                    if (child_mass - n.mass).abs() > 1e-9 * n.mass.abs().max(1.0) {
                        return Err(format!(
                            "node {i}: mass {} != child sum {child_mass}",
                            n.mass
                        ));
                    }
                }
                NodeKind::Leaf => {
                    let e = (n.first + n.count) as usize;
                    if e > self.pos.len() {
                        return Err(format!("node {i}: leaf range beyond payload"));
                    }
                }
                NodeKind::Cut => {}
            }
        }
        for (i, (p, &m)) in self.pos.iter().zip(&self.mass).enumerate() {
            if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite() && m.is_finite()) {
                return Err(format!("particle {i}: non-finite payload data"));
            }
        }
        Ok(())
    }

    /// Serialize to bytes (fixed-width little-endian).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.nodes.len() * NODE_WIRE_SIZE + self.pos.len() * 32);
        buf.put_u64_le(self.nodes.len() as u64);
        buf.put_u64_le(self.pos.len() as u64);
        for n in &self.nodes {
            put_node(&mut buf, n);
        }
        for (&p, &m) in self.pos.iter().zip(&self.mass) {
            put_vec3(&mut buf, p);
            buf.put_f64_le(m);
        }
        buf.freeze()
    }

    /// Deserialize; returns `None` on malformed input.
    pub fn from_bytes(mut b: &[u8]) -> Option<Self> {
        if b.remaining() < 16 {
            return None;
        }
        let n_nodes = b.get_u64_le() as usize;
        let n_part = b.get_u64_le() as usize;
        // Checked arithmetic: adversarial headers must not overflow (found
        // by the garbage-input fuzz test — debug builds panic on mul
        // overflow otherwise).
        let need = n_nodes
            .checked_mul(NODE_WIRE_SIZE)
            .and_then(|a| n_part.checked_mul(32).and_then(|p| a.checked_add(p)))?;
        if b.remaining() < need {
            return None;
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(get_node(&mut b)?);
        }
        let mut pos = Vec::with_capacity(n_part);
        let mut mass = Vec::with_capacity(n_part);
        for _ in 0..n_part {
            pos.push(get_vec3(&mut b));
            mass.push(b.get_f64_le());
        }
        Some(Self { nodes, pos, mass })
    }

    /// Serialized size in bytes without materializing the buffer.
    pub fn wire_size(&self) -> usize {
        16 + self.nodes.len() * NODE_WIRE_SIZE + self.pos.len() * 32
    }
}

/// Bytes per node on the wire.
pub const NODE_WIRE_SIZE: usize = 8 * (3 + 1 + 6 + 6 + 3 + 1) + 4 + 4 + 1 + 4 + 3;

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f64_le(v.x);
    buf.put_f64_le(v.y);
    buf.put_f64_le(v.z);
}

fn get_vec3(b: &mut &[u8]) -> Vec3 {
    let x = b.get_f64_le();
    let y = b.get_f64_le();
    let z = b.get_f64_le();
    Vec3::new(x, y, z)
}

fn put_node(buf: &mut BytesMut, n: &Node) {
    put_vec3(buf, n.com);
    buf.put_f64_le(n.mass);
    for &q in &n.quad.m {
        buf.put_f64_le(q);
    }
    put_vec3(buf, n.bbox.min);
    put_vec3(buf, n.bbox.max);
    put_vec3(buf, n.geo_center);
    buf.put_f64_le(n.geo_half);
    buf.put_u32_le(n.first);
    buf.put_u32_le(n.count);
    buf.put_u8(match n.kind {
        NodeKind::Internal => 0,
        NodeKind::Leaf => 1,
        NodeKind::Cut => 2,
    });
    buf.put_u32_le(n.level);
    buf.put_bytes(0, 3); // pad for alignment-stable size accounting
}

fn get_node(b: &mut &[u8]) -> Option<Node> {
    let com = get_vec3(b);
    let mass = b.get_f64_le();
    let mut quad = Sym3::zero();
    for q in &mut quad.m {
        *q = b.get_f64_le();
    }
    let bmin = get_vec3(b);
    let bmax = get_vec3(b);
    let geo_center = get_vec3(b);
    let geo_half = b.get_f64_le();
    let first = b.get_u32_le();
    let count = b.get_u32_le();
    let kind = match b.get_u8() {
        0 => NodeKind::Internal,
        1 => NodeKind::Leaf,
        2 => NodeKind::Cut,
        _ => return None,
    };
    let level = b.get_u32_le();
    b.advance(3);
    Some(Node {
        com,
        mass,
        quad,
        bbox: Aabb { min: bmin, max: bmax },
        geo_center,
        geo_half,
        first,
        count,
        kind,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> LetTree {
        let leaf = Node {
            com: Vec3::new(0.5, 0.5, 0.5),
            mass: 2.0,
            quad: Sym3::outer(Vec3::new(0.1, 0.0, 0.0), 2.0),
            bbox: Aabb::cube(Vec3::splat(0.5), 0.1),
            geo_center: Vec3::splat(0.5),
            geo_half: 0.25,
            first: 0,
            count: 2,
            kind: NodeKind::Leaf,
            level: 1,
        };
        let cut = Node {
            com: Vec3::new(1.5, 0.5, 0.5),
            mass: 3.0,
            quad: Sym3::zero(),
            bbox: Aabb::cube(Vec3::new(1.5, 0.5, 0.5), 0.2),
            geo_center: Vec3::new(1.5, 0.5, 0.5),
            geo_half: 0.25,
            first: 0,
            count: 0,
            kind: NodeKind::Cut,
            level: 1,
        };
        let root = Node {
            com: Vec3::new(1.1, 0.5, 0.5),
            mass: 5.0,
            quad: Sym3::zero(),
            bbox: Aabb::new(Vec3::zero(), Vec3::new(2.0, 1.0, 1.0)),
            geo_center: Vec3::new(1.0, 1.0, 1.0),
            geo_half: 1.0,
            first: 1,
            count: 2,
            kind: NodeKind::Internal,
            level: 0,
        };
        LetTree {
            nodes: vec![root, leaf, cut],
            pos: vec![Vec3::new(0.45, 0.5, 0.5), Vec3::new(0.55, 0.5, 0.5)],
            mass: vec![1.0, 1.0],
        }
    }

    #[test]
    fn round_trip_serialization() {
        let t = sample_tree();
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.wire_size());
        let u = LetTree::from_bytes(&bytes).expect("decode");
        assert_eq!(u.nodes.len(), 3);
        assert_eq!(u.pos.len(), 2);
        assert_eq!(u.nodes[0].mass, 5.0);
        assert_eq!(u.nodes[1].kind, NodeKind::Leaf);
        assert_eq!(u.nodes[2].kind, NodeKind::Cut);
        assert_eq!(u.pos[1], Vec3::new(0.55, 0.5, 0.5));
        assert_eq!(u.nodes[1].quad.xx(), t.nodes[1].quad.xx());
        u.check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_mass_mismatch() {
        let mut t = sample_tree();
        t.nodes[0].mass = 10.0;
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_bad_ranges() {
        let mut t = sample_tree();
        t.nodes[1].count = 99;
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn frontier_boxes_cover_leaf_and_cut() {
        let t = sample_tree();
        assert_eq!(t.frontier_boxes().len(), 2);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(LetTree::from_bytes(&[0u8; 4]).is_none());
        let t = sample_tree();
        let b = t.to_bytes();
        assert!(LetTree::from_bytes(&b[..b.len() - 1]).is_none());
    }

    #[test]
    fn empty_tree_round_trips() {
        let t = LetTree::default();
        let u = LetTree::from_bytes(&t.to_bytes()).unwrap();
        assert!(u.is_empty());
        assert_eq!(u.total_mass(), 0.0);
    }
}
