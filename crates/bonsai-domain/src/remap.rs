//! Online re-decomposition across a membership view change.
//!
//! When ranks join or depart mid-run the PH-key partition must be re-split
//! for the new world size and the live particles migrated from the old
//! view's owners to the new ones — while the galaxy keeps spinning. This is
//! the domain-layer half of elastic membership: [`replan`] produces the new
//! partition from the same flop-weighted balance the steady-state
//! decomposition uses ([`weighted_cuts`](crate::load::weighted_cuts) +
//! particle cap, validated with
//! [`weight_shares`](crate::load::weight_shares)), and [`Migration`] maps
//! every particle of every *old* rank to its *new* owner, including ranks
//! that exist in only one of the two views: a departing rank ships its
//! entire population, a joining rank starts empty and receives its domain
//! from the old owners.
//!
//! Rank indices mean different things before and after the change (a rank
//! is an index into a view's sorted member list), so the plan is expressed
//! against an explicit `new_rank` mapping: `new_rank[r]` is the rank that
//! old-rank `r`'s node holds in the new view, or `None` if it departs.

use crate::exchange::PARTICLE_WIRE_SIZE;
use crate::load::{enforce_particle_cap, weighted_cuts};
use bonsai_sfc::range::{find_owner, KeyRange};
use bonsai_tree::Particles;

/// Re-split the key space for a new world size from the globally sorted
/// `(key, weight)` sequence of the live particles, honouring the paper's
/// particle cap. Returns `new_p` disjoint ranges covering the full key
/// space.
pub fn replan(sorted: &[(u64, f64)], new_p: usize, cap: f64) -> Vec<KeyRange> {
    let ranges = weighted_cuts(sorted, new_p);
    let keys: Vec<u64> = sorted.iter().map(|&(k, _)| k).collect();
    enforce_particle_cap(&ranges, &keys, cap)
}

/// The full old-view → new-view particle migration plan.
#[derive(Clone, Debug)]
pub struct Migration {
    /// `moves[r][d]` = old-rank `r`'s particle indices bound for new rank
    /// `d` (ascending). A particle whose new owner is its own node's new
    /// rank stays put and appears in no bucket.
    pub moves: Vec<Vec<Vec<usize>>>,
    /// `new_rank[r]` = the rank old-rank `r` holds in the new view
    /// (`None` = departing).
    pub new_rank: Vec<Option<usize>>,
}

impl Migration {
    /// Classify every particle of every old rank against the new
    /// partition. `keys[r]` are old-rank `r`'s particle keys (same order
    /// as its particle store).
    pub fn plan(keys: &[Vec<u64>], new_domains: &[KeyRange], new_rank: &[Option<usize>]) -> Self {
        assert_eq!(keys.len(), new_rank.len());
        let new_p = new_domains.len();
        let moves = keys
            .iter()
            .zip(new_rank)
            .map(|(ks, &stay)| {
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); new_p];
                for (i, &k) in ks.iter().enumerate() {
                    let owner = find_owner(new_domains, k);
                    if Some(owner) != stay {
                        buckets[owner].push(i);
                    }
                }
                buckets
            })
            .collect();
        Self {
            moves,
            new_rank: new_rank.to_vec(),
        }
    }

    /// Total particles changing ranks.
    pub fn migrant_count(&self) -> usize {
        self.moves
            .iter()
            .flat_map(|b| b.iter().map(Vec::len))
            .sum()
    }

    /// Wire bytes the migration puts on the fabric (payloads only).
    pub fn wire_bytes(&self) -> usize {
        self.migrant_count() * PARTICLE_WIRE_SIZE
    }

    /// Drain old-rank `r`'s emigrants; returns one [`Particles`] per *new*
    /// rank (empty buckets included). `particles` must be the same set (in
    /// the same order) the plan's `keys[r]` described. A departing rank
    /// ends empty — every particle it held has a new owner.
    pub fn apply(&self, r: usize, particles: &mut Particles) -> Vec<Particles> {
        let buckets = &self.moves[r];
        let mut dest: Vec<i32> = vec![-1; particles.len()];
        for (d, idxs) in buckets.iter().enumerate() {
            for &i in idxs {
                dest[i] = d as i32;
            }
        }
        let mut out: Vec<Particles> = (0..buckets.len()).map(|_| Particles::new()).collect();
        let mut keep = Particles::new();
        for i in 0..particles.len() {
            let target = if dest[i] >= 0 {
                &mut out[dest[i] as usize]
            } else {
                &mut keep
            };
            target.push(particles.pos[i], particles.vel[i], particles.mass[i], particles.id[i]);
        }
        debug_assert!(
            self.new_rank[r].is_some() || keep.is_empty(),
            "departing rank {r} kept {} particles",
            keep.len()
        );
        *particles = keep;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_sfc::KEY_END;
    use bonsai_util::Vec3;

    fn particles_for(keys: &[u64], id0: u64) -> Particles {
        let mut p = Particles::new();
        for (i, _) in keys.iter().enumerate() {
            p.push(Vec3::splat(i as f64), Vec3::zero(), 1.0, id0 + i as u64);
        }
        p
    }

    #[test]
    fn replan_covers_and_respects_cap() {
        let sorted: Vec<(u64, f64)> = (0..600u64).map(|k| (k * 1000, 1.0 + (k % 7) as f64)).collect();
        for new_p in [1, 2, 5, 6] {
            let domains = replan(&sorted, new_p, crate::load::PAPER_CAP);
            assert_eq!(domains.len(), new_p);
            assert_eq!(domains[0].start, 0);
            assert_eq!(domains.last().unwrap().end, KEY_END);
            for w in domains.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn migration_routes_growing_world() {
        // Two old ranks, three new ranks; old rank 0 keeps new rank 0,
        // old rank 1 moves to new rank 2 (new rank 1 is a joiner).
        let keys = vec![vec![10, 150, 290], vec![110, 250]];
        let new_domains = vec![
            KeyRange::new(0, 100),
            KeyRange::new(100, 200),
            KeyRange::new(200, KEY_END),
        ];
        let m = Migration::plan(&keys, &new_domains, &[Some(0), Some(2)]);
        // Old rank 0: key 10 stays, 150 -> new 1, 290 -> new 2.
        assert_eq!(m.moves[0][1], vec![1]);
        assert_eq!(m.moves[0][2], vec![2]);
        // Old rank 1 (now new rank 2): 110 -> new 1, 250 stays.
        assert_eq!(m.moves[1][1], vec![0]);
        assert!(m.moves[1][2].is_empty());
        assert_eq!(m.migrant_count(), 3);
        assert_eq!(m.wire_bytes(), 3 * PARTICLE_WIRE_SIZE);
    }

    #[test]
    fn departing_rank_ships_everything() {
        let keys = vec![vec![10, 20], vec![500, 600, 700]];
        let new_domains = vec![KeyRange::new(0, KEY_END)];
        let m = Migration::plan(&keys, &new_domains, &[Some(0), None]);
        let mut p1 = particles_for(&keys[1], 100);
        let shipped = m.apply(1, &mut p1);
        assert!(p1.is_empty(), "departing rank must end empty");
        assert_eq!(shipped[0].id, vec![100, 101, 102]);
        // The surviving rank keeps its own particles.
        let mut p0 = particles_for(&keys[0], 0);
        let kept = m.apply(0, &mut p0);
        assert_eq!(p0.len(), 2);
        assert!(kept[0].is_empty());
    }

    #[test]
    fn migration_conserves_the_id_multiset() {
        let keys = vec![vec![5, 105, 205, 305], vec![55, 155, 255], vec![99, 199]];
        let new_domains = vec![KeyRange::new(0, 150), KeyRange::new(150, KEY_END)];
        let m = Migration::plan(&keys, &new_domains, &[Some(1), None, Some(0)]);
        let mut all_ids = Vec::new();
        for (r, ks) in keys.iter().enumerate() {
            let mut p = particles_for(ks, (r * 10) as u64);
            all_ids.extend(p.id.clone());
            let shipped = m.apply(r, &mut p);
            let mut landed: Vec<u64> = p.id.clone();
            landed.extend(shipped.iter().flat_map(|s| s.id.iter().copied()));
            assert_eq!(landed.len(), ks.len());
        }
        let total: usize = keys.iter().map(Vec::len).sum();
        assert_eq!(all_ids.len(), total);
    }
}
