//! LET construction and the boundary-sufficiency check (§III-B2).
//!
//! To compute forces on a remote domain's particles, that domain needs, from
//! us, every local cell it might open plus the particles of every local leaf
//! it might reach — its *Local Essential Tree*. Whether the receiver opens a
//! cell is decided by the multipole acceptance criterion against the
//! receiver's particle geometry, which we know conservatively from its
//! boundary tree ([`crate::lettree::LetTree::frontier_boxes`]): if no point
//! of the remote geometry can open a cell, the cell travels as a pruned
//! `Cut` node.
//!
//! The sender-side *sufficiency check* mirrors the paper's first step: if the
//! already-broadcast boundary tree would never be opened past its frontier by
//! the remote domain, no dedicated LET need be sent at all — only the ~40
//! nearest neighbours require one.

use crate::lettree::LetTree;
use bonsai_tree::build::Tree;
use bonsai_tree::node::{Node, NodeKind};
use bonsai_util::Aabb;

/// `true` if any point of `geom` would open `node` under opening angle θ
/// (the group-MAC of the walk, taken over a whole domain's geometry).
#[inline]
pub fn geometry_opens(node: &Node, geom: &[Aabb], inv_theta: f64) -> bool {
    if !inv_theta.is_finite() {
        return true;
    }
    let s = (node.com - node.geo_center).norm();
    let crit = node.geo_side() * inv_theta + s;
    let crit2 = crit * crit;
    geom.iter().any(|b| b.min_dist2_point(node.com) <= crit2)
}

/// What the pruning traversal does with a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Keep as multipole-only `Cut` node; do not descend.
    Cut,
    /// Descend (internal) or ship particles (leaf).
    Open,
}

/// Generic pruned-copy extraction: BFS over the local tree, applying
/// `decide` to every visited node. Children of kept internal nodes stay
/// contiguous, so the result is directly walkable.
pub fn extract_pruned<F>(tree: &Tree, mut decide: F) -> LetTree
where
    F: FnMut(usize, &Node) -> Action,
{
    if tree.is_empty() {
        return LetTree::default();
    }
    let mut out = LetTree::default();
    // Queue of (local node index, slot in out.nodes to patch).
    let mut queue: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    out.nodes.push(tree.nodes[0]);
    queue.push_back((0, 0));
    while let Some((local_idx, slot)) = queue.pop_front() {
        let node = tree.nodes[local_idx];
        let action = decide(local_idx, &node);
        match (action, node.kind) {
            (Action::Cut, _) => {
                let n = &mut out.nodes[slot];
                n.kind = NodeKind::Cut;
                n.first = 0;
                n.count = 0;
            }
            (Action::Open, NodeKind::Leaf) => {
                let first = out.pos.len() as u32;
                let (b, e) = (node.first as usize, (node.first + node.count) as usize);
                out.pos.extend_from_slice(&tree.particles.pos[b..e]);
                out.mass.extend_from_slice(&tree.particles.mass[b..e]);
                let n = &mut out.nodes[slot];
                n.kind = NodeKind::Leaf;
                n.first = first;
                // count already equals the particle count
            }
            (Action::Open, NodeKind::Internal) => {
                let first_child = out.nodes.len() as u32;
                for c in node.first..node.first + node.count {
                    let child_slot = out.nodes.len();
                    out.nodes.push(tree.nodes[c as usize]);
                    queue.push_back((c as usize, child_slot));
                }
                let n = &mut out.nodes[slot];
                n.first = first_child;
                // count already equals the child count
            }
            (Action::Open, NodeKind::Cut) => unreachable!("local trees have no Cut nodes"),
        }
    }
    out
}

/// Build the Local Essential Tree of `tree` for a receiver whose particle
/// geometry is (conservatively) covered by `remote_geom`, at opening angle
/// `theta`.
pub fn build_let(tree: &Tree, remote_geom: &[Aabb], theta: f64) -> LetTree {
    let inv_theta = if theta > 0.0 { 1.0 / theta } else { f64::INFINITY };
    extract_pruned(tree, |_, node| {
        if geometry_opens(node, remote_geom, inv_theta) {
            Action::Open
        } else {
            Action::Cut
        }
    })
}

/// Sender-side check: can the receiver with geometry `remote_geom` compute
/// its forces from the already-broadcast `boundary` tree alone?
///
/// True iff no frontier (`Cut`) node of the boundary would be opened. (Leaf
/// nodes never occur in boundary trees; internal nodes being opened is fine —
/// their children are present.)
pub fn boundary_sufficient_for(boundary: &LetTree, remote_geom: &[Aabb], theta: f64) -> bool {
    let inv_theta = if theta > 0.0 { 1.0 / theta } else { f64::INFINITY };
    boundary
        .nodes
        .iter()
        .filter(|n| n.kind == NodeKind::Cut)
        .all(|n| !geometry_opens(n, remote_geom, inv_theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_tree::build::TreeParams;
    use bonsai_tree::walk::{walk_tree, WalkParams};
    use bonsai_tree::Particles;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    fn blob(n: usize, center: Vec3, radius: f64, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            let r = radius * rng.uniform().powf(1.0 / 3.0);
            p.push(center + rng.unit_sphere() * r, Vec3::zero(), 1.0 / n as f64, i as u64);
        }
        p
    }

    #[test]
    fn far_geometry_gets_tiny_let() {
        let tree = Tree::build(blob(2000, Vec3::zero(), 1.0, 1), TreeParams::default());
        let far = vec![Aabb::cube(Vec3::splat(100.0), 1.0)];
        let near = vec![Aabb::cube(Vec3::new(1.5, 0.0, 0.0), 1.0)];
        let let_far = build_let(&tree, &far, 0.5);
        let let_near = build_let(&tree, &near, 0.5);
        assert!(let_far.nodes.len() < let_near.nodes.len());
        assert!(let_far.particle_count() < let_near.particle_count());
        assert!(let_far.wire_size() < let_near.wire_size());
        // Mass is always fully represented.
        assert!((let_far.total_mass() - 1.0).abs() < 1e-12);
        assert!((let_near.total_mass() - 1.0).abs() < 1e-12);
        let_far.check_invariants().unwrap();
        let_near.check_invariants().unwrap();
    }

    #[test]
    fn let_forces_match_full_tree_forces() {
        // The defining LET property: walking the LET from the receiver's
        // geometry gives *identical* forces to walking the full local tree,
        // because every pruned node would have been accepted anyway.
        let tree = Tree::build(blob(3000, Vec3::zero(), 1.0, 2), TreeParams::default());
        let theta = 0.5;

        // Receiver geometry: a box to the side; probes inside it.
        let geom = vec![Aabb::cube(Vec3::new(3.0, 0.5, -0.2), 0.8)];
        let mut rng = Xoshiro256::seed_from(3);
        let probes: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.uniform_in(2.2, 3.8),
                    rng.uniform_in(-0.3, 1.3),
                    rng.uniform_in(-1.0, 0.6),
                )
            })
            .collect();
        // Group per small chunk with tight boxes (all inside geom).
        let mut groups = Vec::new();
        for c in (0..probes.len()).step_by(16) {
            let end = (c + 16).min(probes.len());
            groups.push(bonsai_tree::node::Group {
                begin: c as u32,
                end: end as u32,
                bbox: Aabb::from_points(&probes[c..end]),
            });
        }
        let params = WalkParams::new(theta, 0.01);
        let (f_full, _) = walk_tree(&tree.view(), &probes, &groups, &params);

        let lt = build_let(&tree, &geom, theta);
        lt.check_invariants().unwrap();
        let (f_let, stats) = walk_tree(&lt.view(), &probes, &groups, &params);

        assert_eq!(stats.forced_cuts, 0, "LET must never be opened past its frontier");
        for i in 0..probes.len() {
            assert!(
                (f_full.acc[i] - f_let.acc[i]).norm() <= 1e-12 * f_full.acc[i].norm().max(1e-30),
                "probe {i} differs"
            );
        }
        // And the LET is a strict subset of the tree.
        assert!(lt.nodes.len() <= tree.nodes.len());
        assert!(lt.particle_count() < tree.len());
    }

    #[test]
    fn overlapping_geometry_ships_everything_needed() {
        // Receiver geometry overlapping the source: the LET degenerates to
        // (almost) the whole tree including particles.
        let tree = Tree::build(blob(500, Vec3::zero(), 1.0, 4), TreeParams::default());
        let geom = vec![Aabb::cube(Vec3::zero(), 2.0)];
        let lt = build_let(&tree, &geom, 0.5);
        assert_eq!(lt.particle_count(), tree.len());
    }

    #[test]
    fn sufficiency_check_distinguishes_near_and_far() {
        let tree = Tree::build(blob(2000, Vec3::zero(), 1.0, 5), TreeParams::default());
        let range = bonsai_sfc::KeyRange::everything();
        let boundary = crate::boundary::boundary_tree(&tree, &range);
        let far = vec![Aabb::cube(Vec3::splat(200.0), 1.0)];
        let near = vec![Aabb::cube(Vec3::new(1.2, 0.0, 0.0), 0.5)];
        assert!(boundary_sufficient_for(&boundary, &far, 0.5));
        assert!(!boundary_sufficient_for(&boundary, &near, 0.5));
    }

    #[test]
    fn zero_theta_let_ships_all_particles() {
        let tree = Tree::build(blob(300, Vec3::zero(), 1.0, 6), TreeParams::default());
        let geom = vec![Aabb::cube(Vec3::splat(50.0), 1.0)];
        let lt = build_let(&tree, &geom, 0.0);
        assert_eq!(lt.particle_count(), tree.len());
    }

    #[test]
    fn empty_tree_gives_empty_let() {
        let tree = Tree::build(Particles::new(), TreeParams::default());
        let lt = build_let(&tree, &[Aabb::cube(Vec3::zero(), 1.0)], 0.5);
        assert!(lt.is_empty());
    }
}
