//! Flop-weighted load balancing (§III-B1).
//!
//! The paper balances "the number of floating point operations executed by
//! the GPU tree-walk kernel, with the restriction that a process cannot have
//! 30% more than the average number of particles per GPU". We implement both
//! halves:
//!
//! * [`weighted_cuts`] — cut a (key, weight) sequence into pieces of equal
//!   total weight, where the weight of a particle is the flop count its
//!   group incurred during the previous step's walk;
//! * [`enforce_particle_cap`] — post-adjust the cuts so no piece exceeds
//!   `cap × mean` particles (paper: cap = 1.3).

use bonsai_sfc::range::{ranges_from_cuts, KeyRange};

/// The paper's particle-count cap relative to the mean.
pub const PAPER_CAP: f64 = 1.3;

/// Cut a *sorted* `(key, weight)` sequence into `p` pieces of near-equal
/// total weight. Returns `p` ranges.
pub fn weighted_cuts(sorted: &[(u64, f64)], p: usize) -> Vec<KeyRange> {
    assert!(p > 0);
    let total: f64 = sorted.iter().map(|&(_, w)| w).sum();
    if sorted.is_empty() || total <= 0.0 {
        return KeyRange::everything().split_even(p);
    }
    let target = total / p as f64;
    let mut cuts = Vec::with_capacity(p - 1);
    let mut acc = 0.0;
    let mut next = target;
    for &(k, w) in sorted {
        if cuts.len() == p - 1 {
            break;
        }
        acc += w;
        while acc >= next && cuts.len() < p - 1 {
            cuts.push(k);
            next += target;
        }
    }
    while cuts.len() < p - 1 {
        cuts.push(sorted.last().unwrap().0);
    }
    ranges_from_cuts(&cuts)
}

/// Enforce the particle cap: move cut keys so that no piece holds more than
/// `cap × (n / p)` of the keys in `sorted_keys`. Overflow is shed to the
/// following piece (a single left-to-right sweep, as in a prefix rebalance).
pub fn enforce_particle_cap(ranges: &[KeyRange], sorted_keys: &[u64], cap: f64) -> Vec<KeyRange> {
    let p = ranges.len();
    if p <= 1 || sorted_keys.is_empty() {
        return ranges.to_vec();
    }
    let n = sorted_keys.len();
    let max_per = ((cap * n as f64 / p as f64).floor() as usize).max(1);

    // Current piece populations via binary search on the sorted keys.
    let mut cuts: Vec<u64> = ranges[..p - 1].iter().map(|r| r.end).collect();
    let mut begin_idx = 0usize;
    for c in cuts.iter_mut() {
        let mut end_idx = sorted_keys.partition_point(|&k| k < *c);
        if end_idx - begin_idx > max_per {
            end_idx = begin_idx + max_per;
            *c = sorted_keys[end_idx]; // first key of the next piece
        }
        begin_idx = end_idx.max(begin_idx);
    }
    // Keep cuts monotone (shedding can only move cuts left-to-right earlier,
    // but clamp defensively).
    for i in 1..cuts.len() {
        if cuts[i] < cuts[i - 1] {
            cuts[i] = cuts[i - 1];
        }
    }
    ranges_from_cuts(&cuts)
}

/// Total weight captured by each range of a *sorted* `(key, weight)`
/// sequence, normalized so the shares sum to 1. All-zero (or empty) input
/// yields perfectly even shares — the balancer has nothing to act on.
pub fn weight_shares(sorted: &[(u64, f64)], ranges: &[KeyRange]) -> Vec<f64> {
    let p = ranges.len().max(1);
    let total: f64 = sorted.iter().map(|&(_, w)| w).sum();
    if sorted.is_empty() || total <= 0.0 {
        return vec![1.0 / p as f64; ranges.len()];
    }
    ranges
        .iter()
        .map(|r| {
            let lo = sorted.partition_point(|&(k, _)| k < r.start);
            let hi = sorted.partition_point(|&(k, _)| k < r.end);
            sorted[lo..hi].iter().map(|&(_, w)| w).sum::<f64>() / total
        })
        .collect()
}

/// Imbalance of a share vector: max share over mean share (1.0 = perfectly
/// balanced). This is the flop-balance residual the paper's balancer drives
/// toward 1; [`weighted_cuts`] should keep it near 1 up to key granularity.
pub fn share_imbalance(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    shares.iter().cloned().fold(0.0f64, f64::max) / mean
}

/// Population of each range given the full sorted key multiset.
pub fn populations(ranges: &[KeyRange], sorted_keys: &[u64]) -> Vec<usize> {
    ranges
        .iter()
        .map(|r| {
            sorted_keys.partition_point(|&k| k < r.end) - sorted_keys.partition_point(|&k| k < r.start)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cuts_equalize_weight() {
        // Keys 0..1000, weight of key k is 1 for k<500 and 3 for k>=500:
        // total = 500 + 1500 = 2000; two pieces of 1000 ⇒ cut near k=833.
        let sorted: Vec<(u64, f64)> = (0..1000u64)
            .map(|k| (k, if k < 500 { 1.0 } else { 3.0 }))
            .collect();
        let ranges = weighted_cuts(&sorted, 2);
        assert_eq!(ranges.len(), 2);
        let cut = ranges[0].end;
        assert!((600..700).contains(&cut), "cut at {cut}, expected ~666");
        let w0: f64 = sorted.iter().filter(|&&(k, _)| k < cut).map(|&(_, w)| w).sum();
        assert!((w0 - 1000.0).abs() < 10.0, "piece weight {w0}");
    }

    #[test]
    fn uniform_weights_give_even_split() {
        let sorted: Vec<(u64, f64)> = (0..900u64).map(|k| (k * 100, 1.0)).collect();
        let keys: Vec<u64> = sorted.iter().map(|&(k, _)| k).collect();
        let ranges = weighted_cuts(&sorted, 9);
        let pops = populations(&ranges, &keys);
        for &c in &pops {
            assert!((95..=105).contains(&c), "pop {c}");
        }
    }

    #[test]
    fn cap_is_enforced() {
        // Deliberately terrible cuts: everything in piece 0.
        let keys: Vec<u64> = (0..1000u64).collect();
        let bad = ranges_from_cuts(&[999, 1000, 1001]); // p = 4
        let fixed = enforce_particle_cap(&bad, &keys, PAPER_CAP);
        let pops = populations(&fixed, &keys);
        let mean = 1000.0 / 4.0;
        for (i, &c) in pops.iter().enumerate() {
            if i < pops.len() - 1 {
                assert!(
                    c as f64 <= PAPER_CAP * mean + 1.0,
                    "piece {i} pop {c} exceeds cap"
                );
            }
        }
        // total conserved
        assert_eq!(pops.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn cap_noop_when_already_balanced() {
        let keys: Vec<u64> = (0..1000u64).collect();
        let even = KeyRange::new(0, 1000).split_even(4);
        // widen to full key space partition
        let cuts: Vec<u64> = even[..3].iter().map(|r| r.end).collect();
        let ranges = ranges_from_cuts(&cuts);
        let fixed = enforce_particle_cap(&ranges, &keys, PAPER_CAP);
        assert_eq!(populations(&fixed, &keys), populations(&ranges, &keys));
    }

    #[test]
    fn weight_shares_normalize_and_balance() {
        let sorted: Vec<(u64, f64)> = (0..1000u64)
            .map(|k| (k, if k < 500 { 1.0 } else { 3.0 }))
            .collect();
        let ranges = weighted_cuts(&sorted, 4);
        let shares = weight_shares(&sorted, &ranges);
        assert_eq!(shares.len(), 4);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "shares sum {sum}");
        // Cuts follow the weight profile, so the residual stays near 1.
        let res = share_imbalance(&shares);
        assert!(res >= 1.0 && res < 1.05, "residual {res}");
    }

    #[test]
    fn share_imbalance_flags_skew() {
        assert!((share_imbalance(&[0.25, 0.25, 0.25, 0.25]) - 1.0).abs() < 1e-12);
        assert!((share_imbalance(&[0.7, 0.1, 0.1, 0.1]) - 2.8).abs() < 1e-12);
        assert_eq!(share_imbalance(&[]), 1.0);
        // Even shares for degenerate (all-zero) weights.
        let ranges = KeyRange::everything().split_even(3);
        let shares = weight_shares(&[(1, 0.0), (2, 0.0)], &ranges);
        assert!((share_imbalance(&shares) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_weights_fall_back_to_even_split() {
        let ranges = weighted_cuts(&[], 5);
        assert_eq!(ranges.len(), 5);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, bonsai_sfc::KEY_END);
    }
}
