//! Particle exchange after a domain update (§III-B1).
//!
//! "With the domain boundaries at hand, each GPU generates a list of
//! particles that are not part of its local domain, and these particles are
//! then exchanged between the processes." [`ExchangePlan`] is that list;
//! applying it drains the emigrants per destination, and the byte volume it
//! reports feeds the network model.

use bonsai_sfc::range::{find_owner, KeyRange};
use bonsai_tree::Particles;
use bonsai_util::Vec3;
use bytes::Bytes;

/// Bytes a particle occupies on the wire (pos + vel + mass + id).
pub const PARTICLE_WIRE_SIZE: usize = 3 * 8 + 3 * 8 + 8 + 8;

/// Serialize a particle set for the wire: `count u64` then fixed-width
/// little-endian records of [`PARTICLE_WIRE_SIZE`] bytes each.
pub fn particles_to_bytes(p: &Particles) -> Bytes {
    let mut v = Vec::with_capacity(8 + p.len() * PARTICLE_WIRE_SIZE);
    v.extend_from_slice(&(p.len() as u64).to_le_bytes());
    for i in 0..p.len() {
        for f in [
            p.pos[i].x, p.pos[i].y, p.pos[i].z, p.vel[i].x, p.vel[i].y, p.vel[i].z, p.mass[i],
        ] {
            v.extend_from_slice(&f.to_le_bytes());
        }
        v.extend_from_slice(&p.id[i].to_le_bytes());
    }
    Bytes::from(v)
}

/// Deserialize and strictly validate a particle payload: the length must
/// match the declared count exactly, and every position/velocity/mass must
/// be finite (masses non-negative). Errors name what is wrong.
pub fn particles_from_bytes(b: &[u8]) -> Result<Particles, String> {
    if b.len() < 8 {
        return Err(format!(
            "particle payload is {} bytes; need at least the 8-byte count",
            b.len()
        ));
    }
    let n = u64::from_le_bytes(b[0..8].try_into().unwrap()) as usize;
    let need = n
        .checked_mul(PARTICLE_WIRE_SIZE)
        .and_then(|x| x.checked_add(8))
        .ok_or_else(|| format!("particle count {n} overflows"))?;
    if b.len() != need {
        return Err(format!(
            "particle payload length {} != expected {need} for {n} particles",
            b.len()
        ));
    }
    let mut p = Particles::with_capacity(n);
    let mut off = 8;
    let f64_at = |off: &mut usize| {
        let v = f64::from_le_bytes(b[*off..*off + 8].try_into().unwrap());
        *off += 8;
        v
    };
    for i in 0..n {
        let pos = Vec3::new(f64_at(&mut off), f64_at(&mut off), f64_at(&mut off));
        let vel = Vec3::new(f64_at(&mut off), f64_at(&mut off), f64_at(&mut off));
        let mass = f64_at(&mut off);
        let id = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
        off += 8;
        let finite = pos.x.is_finite()
            && pos.y.is_finite()
            && pos.z.is_finite()
            && vel.x.is_finite()
            && vel.y.is_finite()
            && vel.z.is_finite()
            && mass.is_finite();
        if !finite || mass < 0.0 {
            return Err(format!("particle {i}: non-finite or negative data"));
        }
        p.push(pos, vel, mass, id);
    }
    Ok(p)
}

/// Which local particles must move to which rank.
#[derive(Clone, Debug)]
pub struct ExchangePlan {
    /// `send[r]` = local indices destined for rank `r` (sorted ascending).
    pub send: Vec<Vec<usize>>,
    /// This rank's id (its own bucket is always empty).
    pub me: usize,
}

impl ExchangePlan {
    /// Classify every local particle against the new `domains` partition.
    pub fn plan(me: usize, keys: &[u64], domains: &[KeyRange]) -> Self {
        let mut send: Vec<Vec<usize>> = vec![Vec::new(); domains.len()];
        for (i, &k) in keys.iter().enumerate() {
            let owner = find_owner(domains, k);
            if owner != me {
                send[owner].push(i);
            }
        }
        Self { send, me }
    }

    /// Number of particles leaving this rank.
    pub fn emigrant_count(&self) -> usize {
        self.send.iter().map(Vec::len).sum()
    }

    /// Bytes this rank puts on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.emigrant_count() * PARTICLE_WIRE_SIZE
    }

    /// Number of distinct destination ranks.
    pub fn destination_count(&self) -> usize {
        self.send.iter().filter(|v| !v.is_empty()).count()
    }

    /// Drain the emigrants out of `particles`; returns one [`Particles`] per
    /// destination rank (empty for ranks receiving nothing, including `me`).
    ///
    /// `particles` must be the same set (same order) the plan was built from.
    pub fn apply(&self, particles: &mut Particles) -> Vec<Particles> {
        // Single pass: mark destination per index.
        let mut dest: Vec<i32> = vec![-1; particles.len()];
        for (r, idxs) in self.send.iter().enumerate() {
            for &i in idxs {
                dest[i] = r as i32;
            }
        }
        let mut out: Vec<Particles> = (0..self.send.len()).map(|_| Particles::new()).collect();
        let mut keep = Particles::with_capacity(particles.len() - self.emigrant_count());
        for i in 0..particles.len() {
            let target = if dest[i] >= 0 {
                &mut out[dest[i] as usize]
            } else {
                &mut keep
            };
            target.push(particles.pos[i], particles.vel[i], particles.mass[i], particles.id[i]);
        }
        *particles = keep;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_sfc::range::ranges_from_cuts;
    use bonsai_util::Vec3;

    fn particles_with_keys(keys: &[u64]) -> (Particles, Vec<u64>) {
        let mut p = Particles::new();
        for (i, _) in keys.iter().enumerate() {
            p.push(Vec3::splat(i as f64), Vec3::zero(), 1.0, i as u64);
        }
        (p, keys.to_vec())
    }

    #[test]
    fn plan_routes_by_owner() {
        let domains = ranges_from_cuts(&[100, 200]);
        let (_, keys) = particles_with_keys(&[50, 150, 250, 99, 100]);
        let plan = ExchangePlan::plan(0, &keys, &domains);
        assert_eq!(plan.send[0], Vec::<usize>::new());
        assert_eq!(plan.send[1], vec![1, 4]);
        assert_eq!(plan.send[2], vec![2]);
        assert_eq!(plan.emigrant_count(), 3);
        assert_eq!(plan.destination_count(), 2);
        assert_eq!(plan.wire_bytes(), 3 * PARTICLE_WIRE_SIZE);
    }

    #[test]
    fn apply_partitions_particles() {
        let domains = ranges_from_cuts(&[100, 200]);
        let (mut p, keys) = particles_with_keys(&[50, 150, 250, 99, 100]);
        let plan = ExchangePlan::plan(0, &keys, &domains);
        let shipped = plan.apply(&mut p);
        // stayers: ids 0, 3 (keys 50, 99)
        assert_eq!(p.id, vec![0, 3]);
        assert_eq!(shipped[1].id, vec![1, 4]);
        assert_eq!(shipped[2].id, vec![2]);
        assert!(shipped[0].is_empty());
        let total: usize = shipped.iter().map(|s| s.len()).sum::<usize>() + p.len();
        assert_eq!(total, 5);
    }

    #[test]
    fn no_movement_when_all_local() {
        let domains = ranges_from_cuts(&[1000]);
        let (mut p, keys) = particles_with_keys(&[1, 2, 3]);
        let plan = ExchangePlan::plan(0, &keys, &domains);
        assert_eq!(plan.emigrant_count(), 0);
        let shipped = plan.apply(&mut p);
        assert_eq!(p.len(), 3);
        assert!(shipped.iter().all(|s| s.is_empty()));
    }
}
