//! Domain decomposition via sampling (§III-B1).
//!
//! The decomposition cuts the sorted global key sequence into `p` equal-weight
//! pieces. Gathering *every* key is out of the question, so cut positions are
//! estimated from samples:
//!
//! * [`serial_cuts`] — the original method of Blackston & Suel: every rank
//!   systematically samples its keys at a fixed rate and ships them to one
//!   DD-process, which sorts and cuts. Its gather size grows linearly with
//!   the rank count, the serial bottleneck the paper identifies.
//! * [`parallel_cuts`] — the paper's two-level scheme: factor `p = px × py`.
//!   A first, coarse sample round cuts the curve into `px` super-domains; a
//!   second round bins finer samples by super-domain so `px` DD-processes
//!   each cut their own piece into `py` parts. No single process ever
//!   gathers more than `O(total_samples / px)` keys.
//!
//! Both return [`SamplingStats`] whose `max_dd_gather` is the quantity the
//! `ablation_sampling` bench plots against rank count.

use bonsai_sfc::range::{ranges_from_cuts, KeyRange};

/// Cost accounting of a decomposition round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplingStats {
    /// Largest number of sample keys any single DD-process had to gather,
    /// sort and cut — the serial bottleneck metric.
    pub max_dd_gather: usize,
    /// Total samples shipped across the machine.
    pub total_samples: usize,
    /// Communication rounds used.
    pub rounds: usize,
}

/// Systematic (deterministic, evenly spaced) sample of `count` keys from a
/// sorted slice. Returns fewer if the slice is shorter than `count`.
pub fn systematic_sample(sorted_keys: &[u64], count: usize) -> Vec<u64> {
    if sorted_keys.is_empty() || count == 0 {
        return Vec::new();
    }
    if sorted_keys.len() <= count {
        return sorted_keys.to_vec();
    }
    (0..count)
        .map(|i| sorted_keys[(i * sorted_keys.len()) / count + sorted_keys.len() / (2 * count)])
        .collect()
}

/// Cut a sorted sample sequence into `p` equal pieces; returns the `p - 1`
/// interior cut keys.
fn cuts_from_sorted_samples(samples: &[u64], p: usize) -> Vec<u64> {
    assert!(p > 0);
    (1..p)
        .map(|i| {
            if samples.is_empty() {
                0
            } else {
                samples[(i * samples.len() / p).min(samples.len() - 1)]
            }
        })
        .collect()
}

/// The original serial sampling method: one DD-process gathers
/// `samples_per_rank` keys from every rank.
pub fn serial_cuts(
    per_rank_keys: &[Vec<u64>],
    p: usize,
    samples_per_rank: usize,
) -> (Vec<KeyRange>, SamplingStats) {
    assert!(p > 0);
    let mut samples: Vec<u64> = Vec::with_capacity(per_rank_keys.len() * samples_per_rank);
    for keys in per_rank_keys {
        samples.extend(systematic_sample(keys, samples_per_rank));
    }
    let total = samples.len();
    samples.sort_unstable();
    let cuts = cuts_from_sorted_samples(&samples, p);
    (
        ranges_from_cuts(&cuts),
        SamplingStats {
            max_dd_gather: total,
            total_samples: total,
            rounds: 1,
        },
    )
}

/// The paper's two-level parallel sampling method with `p = px × py`.
///
/// `s1` is the per-rank sample count of the coarse round (rate R1), `s2` of
/// the fine round (rate R2).
pub fn parallel_cuts(
    per_rank_keys: &[Vec<u64>],
    px: usize,
    py: usize,
    s1: usize,
    s2: usize,
) -> (Vec<KeyRange>, SamplingStats) {
    assert!(px > 0 && py > 0);

    // Round 1: coarse cut into px super-domains at DD-process 0.
    let mut coarse: Vec<u64> = Vec::with_capacity(per_rank_keys.len() * s1);
    for keys in per_rank_keys {
        coarse.extend(systematic_sample(keys, s1));
    }
    let round1_gather = coarse.len();
    coarse.sort_unstable();
    let super_cuts = cuts_from_sorted_samples(&coarse, px); // px-1 boundaries

    // Round 2: fine samples, binned by super-domain; DD-process j gathers
    // bin j from everyone and cuts it into py pieces.
    let mut bins: Vec<Vec<u64>> = vec![Vec::new(); px];
    let mut round2_total = 0usize;
    for keys in per_rank_keys {
        for k in systematic_sample(keys, s2) {
            let j = super_cuts.partition_point(|&c| c <= k);
            bins[j].push(k);
            round2_total += 1;
        }
    }
    let max_bin = bins.iter().map(Vec::len).max().unwrap_or(0);
    let mut cuts: Vec<u64> = Vec::with_capacity(px * py - 1);
    for (j, bin) in bins.iter_mut().enumerate() {
        bin.sort_unstable();
        let inner = cuts_from_sorted_samples(bin, py);
        // Clamp inner cuts inside the super-domain so the final partition is
        // monotone even with skewed bins.
        let lo = if j == 0 { 0 } else { super_cuts[j - 1] };
        let hi = if j == px - 1 { u64::MAX } else { super_cuts[j] };
        for c in inner {
            cuts.push(c.clamp(lo, hi));
        }
        if j < px - 1 {
            cuts.push(super_cuts[j]);
        }
    }
    (
        ranges_from_cuts(&cuts),
        SamplingStats {
            max_dd_gather: round1_gather.max(max_bin),
            total_samples: round1_gather + round2_total,
            rounds: 2,
        },
    )
}

/// Quality metric: given the true per-rank key multiset and a candidate
/// partition, the max/mean particle imbalance the partition would produce.
pub fn partition_imbalance(per_rank_keys: &[Vec<u64>], ranges: &[KeyRange]) -> f64 {
    let mut counts = vec![0usize; ranges.len()];
    for keys in per_rank_keys {
        for &k in keys {
            counts[bonsai_sfc::range::find_owner(ranges, k)] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / ranges.len() as f64;
    counts.iter().map(|&c| c as f64).fold(0.0f64, f64::max) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;

    /// Clustered synthetic key sets: each rank draws keys around a random
    /// centre (mimicking spatially clustered particles after an exchange).
    fn clustered_keys(ranks: usize, per_rank: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..ranks)
            .map(|_| {
                let center = rng.next_u64() >> 1;
                let spread = 1u64 << 55;
                let mut keys: Vec<u64> = (0..per_rank)
                    .map(|_| {
                        let off = (rng.uniform() * spread as f64) as u64;
                        (center.saturating_sub(spread / 2)).saturating_add(off) & (bonsai_sfc::KEY_END - 1)
                    })
                    .collect();
                keys.sort_unstable();
                keys
            })
            .collect()
    }

    #[test]
    fn systematic_sample_is_sorted_subset() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7).collect();
        let s = systematic_sample(&keys, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        for k in &s {
            assert!(keys.binary_search(k).is_ok());
        }
        // Degenerate cases.
        assert!(systematic_sample(&[], 5).is_empty());
        assert_eq!(systematic_sample(&keys, 5000).len(), 1000);
    }

    #[test]
    fn serial_cuts_balance_uniform_data() {
        let data = clustered_keys(16, 2000, 1);
        let (ranges, stats) = serial_cuts(&data, 16, 64);
        assert_eq!(ranges.len(), 16);
        assert_eq!(stats.max_dd_gather, 16 * 64);
        let imb = partition_imbalance(&data, &ranges);
        assert!(imb < 1.35, "serial imbalance {imb}");
    }

    #[test]
    fn parallel_cuts_balance_matches_serial() {
        let data = clustered_keys(16, 2000, 2);
        let (serial, _) = serial_cuts(&data, 16, 64);
        let (parallel, _) = parallel_cuts(&data, 4, 4, 16, 64);
        assert_eq!(parallel.len(), 16);
        let imb_s = partition_imbalance(&data, &serial);
        let imb_p = partition_imbalance(&data, &parallel);
        assert!(imb_p < 1.5, "parallel imbalance {imb_p} (serial {imb_s})");
    }

    #[test]
    fn parallel_sampling_shrinks_dd_gather() {
        // The whole point of the two-level method: the biggest gather any
        // DD-process performs is much smaller than the serial gather.
        let data = clustered_keys(64, 500, 3);
        let (_, st_serial) = serial_cuts(&data, 64, 64);
        let (_, st_par) = parallel_cuts(&data, 8, 8, 8, 64);
        assert!(
            st_par.max_dd_gather * 2 < st_serial.max_dd_gather,
            "parallel {} vs serial {}",
            st_par.max_dd_gather,
            st_serial.max_dd_gather
        );
        assert_eq!(st_par.rounds, 2);
        assert_eq!(st_serial.rounds, 1);
    }

    #[test]
    fn partition_is_monotone_and_complete() {
        let data = clustered_keys(9, 300, 4);
        let (ranges, _) = parallel_cuts(&data, 3, 3, 8, 32);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, bonsai_sfc::KEY_END);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn single_rank_partition() {
        let data = clustered_keys(1, 100, 5);
        let (ranges, _) = serial_cuts(&data, 1, 16);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], KeyRange::everything());
    }
}
