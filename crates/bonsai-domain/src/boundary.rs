//! Boundary-tree extraction (§III-B2, Fig. 2).
//!
//! "To extract these boundaries we use the local tree-structure and select
//! the cells that form the edges of the local particle set (gray squares in
//! Fig. 2). We then send a copy of our local tree in which all cells except
//! these boundary cells (and their parents) are removed. In this way, we can
//! also use this tree as a LET structure."
//!
//! Because domains are SFC key ranges, the "gray squares" are exactly the
//! minimal octree-cell covering of the rank's key range
//! ([`bonsai_sfc::KeyRange::covering_cells`]). The boundary tree is the local
//! tree pruned at those cells: covering cells become multipole-only `Cut`
//! nodes, their ancestors stay `Internal`, and nothing below the frontier —
//! in particular no particle data — is shipped. Every rank broadcasts its
//! boundary tree with one `MPI_Allgatherv`-style collective; distant ranks
//! then use it directly as their LET.

use crate::letbuild::{extract_pruned, Action};
use crate::lettree::LetTree;
use bonsai_sfc::{KeyRange, DIM_BITS};
use bonsai_tree::build::Tree;
use bonsai_tree::node::NodeKind;
use std::collections::HashSet;

/// Mask `key` to the aligned prefix of `level`.
#[inline]
fn prefix_at(key: u64, level: u32) -> u64 {
    let shift = 3 * (DIM_BITS - level);
    if shift >= 64 {
        0
    } else {
        key >> shift << shift
    }
}

/// Index of the leftmost (lowest-key) particle under node `idx`.
fn leftmost_particle(tree: &Tree, mut idx: usize) -> usize {
    loop {
        let n = &tree.nodes[idx];
        match n.kind {
            NodeKind::Leaf => return n.first as usize,
            // Children are pushed in ascending digit order, so the first
            // child holds the lowest keys.
            NodeKind::Internal => idx = n.first as usize,
            NodeKind::Cut => unreachable!("local trees have no Cut nodes"),
        }
    }
}

/// Extract the boundary tree of `tree`, whose particles occupy the key range
/// `domain`.
///
/// Frontier nodes are the covering cells of `domain` — or local *leaves*
/// sitting above a covering cell, in which case the frontier is slightly
/// coarser there (still correct: frontier nodes carry exact multipoles of
/// exactly the local particles below them).
pub fn boundary_tree(tree: &Tree, domain: &KeyRange) -> LetTree {
    if tree.is_empty() {
        return LetTree::default();
    }
    let covering: HashSet<(u64, u32)> = domain.covering_cells().into_iter().collect();
    extract_pruned(tree, |idx, node| {
        let left_key = tree.keys[leftmost_particle(tree, idx)];
        let cell = (prefix_at(left_key, node.level), node.level);
        if covering.contains(&cell) {
            Action::Cut
        } else if node.kind == NodeKind::Leaf {
            // Leaf coarser than the covering cells below it.
            Action::Cut
        } else {
            Action::Open
        }
    })
}

/// Convenience: per-rank boundary trees for a full partition. `trees[r]`
/// must hold exactly the particles of `domains[r]`.
pub fn all_boundaries(trees: &[&Tree], domains: &[KeyRange]) -> Vec<LetTree> {
    assert_eq!(trees.len(), domains.len());
    trees
        .iter()
        .zip(domains)
        .map(|(t, d)| boundary_tree(t, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_sfc::range::find_owner;
    use bonsai_tree::build::TreeParams;
    use bonsai_tree::Particles;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    fn uniform(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            p.push(
                Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()),
                Vec3::zero(),
                1.0,
                i as u64,
            );
        }
        p
    }

    /// Split a particle set into per-rank trees sharing one keymap.
    fn split_ranks(n: usize, ranks: usize, seed: u64) -> (Vec<Tree>, Vec<KeyRange>) {
        let all = uniform(n, seed);
        let keymap = bonsai_sfc::KeyMap::new(&all.bounds(), bonsai_sfc::Curve::Hilbert);
        let mut keys: Vec<u64> = all.pos.iter().map(|&p| keymap.key_of(p)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let cuts: Vec<u64> = (1..ranks).map(|i| sorted[i * n / ranks]).collect();
        let domains = bonsai_sfc::range::ranges_from_cuts(&cuts);
        let mut per_rank: Vec<Particles> = (0..ranks).map(|_| Particles::new()).collect();
        for i in 0..n {
            let r = find_owner(&domains, keys[i]);
            per_rank[r].push(all.pos[i], all.vel[i], all.mass[i], all.id[i]);
        }
        keys.clear();
        let trees: Vec<Tree> = per_rank
            .into_iter()
            .map(|p| Tree::build_with_keymap(p, keymap.clone(), TreeParams::default()))
            .collect();
        (trees, domains)
    }

    #[test]
    fn boundary_has_no_particles_and_full_mass() {
        let (trees, domains) = split_ranks(4000, 4, 1);
        for (t, d) in trees.iter().zip(&domains) {
            let b = boundary_tree(t, d);
            assert_eq!(b.particle_count(), 0, "boundary trees ship no particles");
            assert!((b.total_mass() - t.particles.total_mass()).abs() < 1e-9);
            b.check_invariants().unwrap();
        }
    }

    #[test]
    fn frontier_cells_tile_domain_mass() {
        // Sum of Cut-node masses equals total mass (each particle under
        // exactly one frontier cell).
        let (trees, domains) = split_ranks(3000, 5, 2);
        for (t, d) in trees.iter().zip(&domains) {
            let b = boundary_tree(t, d);
            let cut_mass: f64 = b
                .nodes
                .iter()
                .filter(|n| n.kind == NodeKind::Cut)
                .map(|n| n.mass)
                .sum();
            assert!(
                (cut_mass - t.particles.total_mass()).abs() < 1e-9,
                "cut mass {cut_mass} vs {}",
                t.particles.total_mass()
            );
        }
    }

    #[test]
    fn boundary_is_small() {
        let (trees, domains) = split_ranks(20_000, 8, 3);
        for (t, d) in trees.iter().zip(&domains) {
            let b = boundary_tree(t, d);
            assert!(
                b.nodes.len() * 4 < t.nodes.len(),
                "boundary {} nodes vs tree {}",
                b.nodes.len(),
                t.nodes.len()
            );
        }
    }

    #[test]
    fn single_rank_boundary_is_root_cut() {
        let all = uniform(500, 4);
        let tree = Tree::build(all, TreeParams::default());
        let b = boundary_tree(&tree, &KeyRange::everything());
        assert_eq!(b.nodes.len(), 1);
        assert_eq!(b.nodes[0].kind, NodeKind::Cut);
    }

    #[test]
    fn frontier_boxes_contain_local_particles() {
        let (trees, domains) = split_ranks(2000, 4, 5);
        for (t, d) in trees.iter().zip(&domains) {
            let b = boundary_tree(t, d);
            let boxes = b.frontier_boxes();
            for &p in &t.particles.pos {
                assert!(
                    boxes.iter().any(|bb| bb.contains(p)),
                    "particle {p} outside all frontier boxes"
                );
            }
        }
    }
}
