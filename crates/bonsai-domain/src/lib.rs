//! # bonsai-domain
//!
//! The distributed-memory machinery of the paper (§III-B): how 18600 ranks
//! agree on who owns which particles and what they must tell each other so
//! every rank can compute exact (MAC-bounded) global gravity from local data.
//!
//! * [`sampling`] — the domain decomposition: the original serial sampling
//!   method and the paper's two-level parallel variant (`p = px × py`
//!   DD-processes) that removes the serial bottleneck;
//! * [`load`] — flop-weighted load balancing with the paper's restriction
//!   that no process exceeds the mean particle count by more than 30%;
//! * [`exchange`] — the particle-exchange plan after domains move;
//! * [`remap`] — online re-decomposition across a membership view change:
//!   re-split the key space for a new world size and migrate particles
//!   between the old and new rank sets;
//! * [`lettree`] — the wire format of boundary trees and Local Essential
//!   Trees: pruned trees with `Cut` nodes, plus byte-level serialization so
//!   the network model sees real message sizes;
//! * [`boundary`] — boundary-tree extraction: the covering cells of a rank's
//!   key range ("gray squares" of Fig. 2) plus their ancestors;
//! * [`letbuild`] — LET construction against a remote domain's geometry and
//!   the sender-side sufficiency check that lets distant ranks reuse the
//!   already-broadcast boundary tree as their LET.
//!
//! ```
//! use bonsai_domain::build_let;
//! use bonsai_tree::build::{Tree, TreeParams};
//! use bonsai_ic::plummer_sphere;
//! use bonsai_util::{Aabb, Vec3};
//!
//! let tree = Tree::build(plummer_sphere(2_000, 1), TreeParams::default());
//! // A distant receiver needs only a pruned multipole skeleton…
//! let far = build_let(&tree, &[Aabb::cube(Vec3::splat(100.0), 1.0)], 0.4);
//! // …while a nearby one needs cells *and* surface particles.
//! let near = build_let(&tree, &[Aabb::cube(Vec3::new(1.2, 0.0, 0.0), 0.5)], 0.4);
//! assert!(far.wire_size() < near.wire_size());
//! assert_eq!(far.particle_count(), 0);
//! // Both carry the sender's full mass — forces stay exact.
//! assert!((far.total_mass() - tree.particles.total_mass()).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod boundary;
pub mod exchange;
pub mod letbuild;
pub mod lettree;
pub mod load;
pub mod remap;
pub mod sampling;

pub use boundary::boundary_tree;
pub use exchange::ExchangePlan;
pub use letbuild::{boundary_sufficient_for, build_let};
pub use lettree::LetTree;
pub use remap::{replan, Migration};
