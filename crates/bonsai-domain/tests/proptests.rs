//! Property-based tests for the decomposition/LET layer: partitions always
//! cover, exchanges conserve, serialization round-trips, and boundary/LET
//! structures honour their contracts for arbitrary particle sets.

use bonsai_domain::exchange::ExchangePlan;
use bonsai_domain::letbuild::{boundary_sufficient_for, build_let};
use bonsai_domain::load::{enforce_particle_cap, populations, weighted_cuts};
use bonsai_domain::lettree::LetTree;
use bonsai_domain::{boundary_tree, replan, sampling, Migration};
use bonsai_sfc::range::{find_owner, ranges_from_cuts};
use bonsai_sfc::{KeyMap, KeyRange, KEY_END};
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::node::NodeKind;
use bonsai_tree::Particles;
use bonsai_util::rng::Xoshiro256;
use bonsai_util::{Aabb, Vec3};
use proptest::prelude::*;

fn blob(n: usize, seed: u64) -> Particles {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut p = Particles::with_capacity(n);
    for i in 0..n {
        p.push(
            rng.unit_sphere() * (1.5 * rng.uniform().powf(0.4)),
            Vec3::zero(),
            rng.uniform_in(0.5, 1.5),
            i as u64,
        );
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sampled_partitions_always_cover_key_space(
        ranks in 1usize..12, per_rank in 1usize..200, seed in any::<u64>(), s in 2usize..32
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vec<u64>> = (0..ranks)
            .map(|_| {
                let mut ks: Vec<u64> = (0..per_rank).map(|_| rng.next_u64() >> 1).collect();
                ks.sort_unstable();
                ks
            })
            .collect();
        let (serial, _) = sampling::serial_cuts(&data, ranks, s);
        prop_assert_eq!(serial.len(), ranks);
        prop_assert_eq!(serial[0].start, 0u64);
        prop_assert_eq!(serial.last().unwrap().end, KEY_END);
        for w in serial.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // parallel variant with any factorization
        let px = (1..=ranks).rev().find(|px| ranks % px == 0).unwrap();
        let (parallel, _) = sampling::parallel_cuts(&data, px, ranks / px, s, s);
        prop_assert_eq!(parallel.len(), ranks);
        for w in parallel.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn cap_enforcement_never_loses_keys(
        nkeys in 1usize..500, p in 1usize..10, seed in any::<u64>(), cap in 1.05f64..2.0
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut keys: Vec<u64> = (0..nkeys).map(|_| rng.next_u64() >> 1).collect();
        keys.sort_unstable();
        let sorted: Vec<(u64, f64)> = keys.iter().map(|&k| (k, rng.uniform_in(0.1, 10.0))).collect();
        let ranges = weighted_cuts(&sorted, p);
        let capped = enforce_particle_cap(&ranges, &keys, cap);
        prop_assert_eq!(capped.len(), p);
        let pops = populations(&capped, &keys);
        prop_assert_eq!(pops.iter().sum::<usize>(), nkeys);
    }

    #[test]
    fn exchange_conserves_everything(n in 1usize..300, p in 1usize..8, seed in any::<u64>()) {
        let mut particles = blob(n, seed);
        let keymap = KeyMap::new(&particles.bounds(), bonsai_sfc::Curve::Hilbert);
        let keys: Vec<u64> = particles.pos.iter().map(|&q| keymap.key_of(q)).collect();
        let mut rng = Xoshiro256::seed_from(seed ^ 1);
        let mut cuts: Vec<u64> = (0..p - 1).map(|_| rng.next_u64() >> 1).collect();
        cuts.sort_unstable();
        let domains = ranges_from_cuts(&cuts);
        let me = rng.uniform_usize(p);
        let plan = ExchangePlan::plan(me, &keys, &domains);
        let mass_before = particles.total_mass();
        let shipped = plan.apply(&mut particles);
        let total: usize = particles.len() + shipped.iter().map(Particles::len).sum::<usize>();
        prop_assert_eq!(total, n);
        let mass_after = particles.total_mass()
            + shipped.iter().map(Particles::total_mass).sum::<f64>();
        prop_assert!((mass_before - mass_after).abs() < 1e-9 * mass_before);
        prop_assert!(shipped[me].is_empty());
        // All keepers really belong to me.
        for i in 0..particles.len() {
            let k = keymap.key_of(particles.pos[i]);
            prop_assert!(domains[me].contains(k));
        }
    }

    #[test]
    fn let_serialization_round_trips(n in 2usize..300, seed in any::<u64>(), theta in 0.2f64..1.0) {
        let tree = Tree::build(blob(n, seed), TreeParams::default());
        let geom = vec![Aabb::cube(Vec3::new(3.0, 0.0, 0.0), 0.5)];
        let lt = build_let(&tree, &geom, theta);
        let bytes = lt.to_bytes();
        prop_assert_eq!(bytes.len(), lt.wire_size());
        let back = LetTree::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.nodes.len(), lt.nodes.len());
        prop_assert_eq!(back.particle_count(), lt.particle_count());
        prop_assert!(back.check_invariants().is_ok());
        prop_assert!((back.total_mass() - tree.particles.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn boundary_frontier_masses_partition(n in 2usize..300, seed in any::<u64>(), pieces in 1usize..6) {
        // Split the key space arbitrarily; the boundary of each rank's tree
        // carries exactly that rank's mass on its frontier.
        let all = blob(n, seed);
        let keymap = KeyMap::new(&all.bounds(), bonsai_sfc::Curve::Hilbert);
        let mut keys: Vec<u64> = all.pos.iter().map(|&q| keymap.key_of(q)).collect();
        keys.sort_unstable();
        let cuts: Vec<u64> = (1..pieces).map(|i| keys[i * n / pieces]).collect();
        let domains = ranges_from_cuts(&cuts);
        let mut total_frontier = 0.0;
        for d in &domains {
            let mut mine = Particles::new();
            for i in 0..all.len() {
                if d.contains(keymap.key_of(all.pos[i])) {
                    mine.push(all.pos[i], all.vel[i], all.mass[i], all.id[i]);
                }
            }
            let local_mass = mine.total_mass();
            let tree = Tree::build_with_keymap(mine, keymap.clone(), TreeParams::default());
            let b = boundary_tree(&tree, d);
            let frontier: f64 = b
                .nodes
                .iter()
                .filter(|x| x.kind == NodeKind::Cut)
                .map(|x| x.mass)
                .sum();
            prop_assert!((frontier - local_mass).abs() < 1e-9 * local_mass.max(1.0));
            total_frontier += frontier;
        }
        prop_assert!((total_frontier - all.total_mass()).abs() < 1e-9 * all.total_mass());
    }

    #[test]
    fn from_bytes_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // Wire-format decoding must reject or parse — never panic — for any
        // byte soup a buggy or malicious peer could deliver.
        let _ = LetTree::from_bytes(&bytes);
    }

    #[test]
    fn from_bytes_never_panics_on_bitflipped_valid_trees(
        n in 2usize..120, seed in any::<u64>(), flip in any::<u64>()
    ) {
        let tree = Tree::build(blob(n, seed), TreeParams::default());
        let lt = boundary_tree(&tree, &KeyRange::everything());
        let mut bytes = lt.to_bytes().to_vec();
        if !bytes.is_empty() {
            let idx = (flip as usize) % bytes.len();
            bytes[idx] ^= 1 << (flip % 8) as u8;
            let _ = LetTree::from_bytes(&bytes); // decode or reject, no panic
        }
    }

    #[test]
    fn replan_yields_disjoint_covering_ranges(
        nkeys in 1usize..600, new_p in 1usize..12, seed in any::<u64>(), cap in 1.05f64..2.0
    ) {
        // Any re-partition for any new world size must tile the full key
        // space with contiguous, disjoint ranges that account for every
        // live key exactly once — a gap or overlap would lose or duplicate
        // particles at the next view change.
        let mut rng = Xoshiro256::seed_from(seed);
        let mut keys: Vec<u64> = (0..nkeys).map(|_| rng.next_u64() >> 1).collect();
        keys.sort_unstable();
        let sorted: Vec<(u64, f64)> =
            keys.iter().map(|&k| (k, rng.uniform_in(0.1, 10.0))).collect();
        let domains = replan(&sorted, new_p, cap);
        prop_assert_eq!(domains.len(), new_p);
        prop_assert_eq!(domains[0].start, 0u64);
        prop_assert_eq!(domains.last().unwrap().end, KEY_END);
        for w in domains.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "gap or overlap between ranges");
        }
        // Every key has exactly one owner and find_owner agrees with
        // range membership.
        for &k in &keys {
            let owner = find_owner(&domains, k);
            prop_assert!(domains[owner].contains(k));
        }
    }

    #[test]
    fn migration_preserves_the_exact_id_multiset(
        old_p in 1usize..7, per_rank in 0usize..80, seed in any::<u64>(),
        grow in any::<bool>(), delta in 1usize..4
    ) {
        // Arbitrary old world, arbitrary grow/shrink: after plan + apply +
        // routing, the union of kept and landed particles is *exactly* the
        // original id multiset, every particle sits in its new owner's
        // domain, and departing ranks end empty.
        let mut rng = Xoshiro256::seed_from(seed);
        let keys: Vec<Vec<u64>> = (0..old_p)
            .map(|_| (0..per_rank).map(|_| rng.next_u64() >> 1).collect())
            .collect();
        let (new_p, new_rank): (usize, Vec<Option<usize>>) = if grow {
            // Joins append: old ranks keep their indices.
            (old_p + delta, (0..old_p).map(Some).collect())
        } else {
            // Retire the highest ranks (at least one survivor).
            let survivors = (old_p - delta.min(old_p - 1)).max(1);
            (
                survivors,
                (0..old_p).map(|r| if r < survivors { Some(r) } else { None }).collect(),
            )
        };
        let sorted: Vec<(u64, f64)> = {
            let mut all: Vec<u64> = keys.iter().flatten().copied().collect();
            all.sort_unstable();
            all.into_iter().map(|k| (k, 1.0)).collect()
        };
        let new_domains = replan(&sorted, new_p, 2.0);
        let m = Migration::plan(&keys, &new_domains, &new_rank);

        // Drain every old rank and route the buckets like the cluster does.
        let mut landed: Vec<Particles> = (0..new_p).map(|_| Particles::new()).collect();
        let mut landed_keys: Vec<Vec<u64>> = vec![Vec::new(); new_p];
        let mut before: Vec<u64> = Vec::new();
        let mut shipped_total = 0usize;
        for (r, ks) in keys.iter().enumerate() {
            let mut p = Particles::new();
            for (i, _) in ks.iter().enumerate() {
                p.push(Vec3::splat(i as f64), Vec3::zero(), 1.0, (r * 1000 + i) as u64);
            }
            before.extend(p.id.iter().copied());
            let buckets = m.apply(r, &mut p);
            shipped_total += buckets.iter().map(Particles::len).sum::<usize>();
            match new_rank[r] {
                Some(d) => {
                    landed_keys[d].extend(
                        ks.iter().enumerate()
                            .filter(|(i, _)| p.id.contains(&((r * 1000 + i) as u64)))
                            .map(|(_, &k)| k),
                    );
                    landed[d].extend_from(&p);
                }
                None => prop_assert!(p.is_empty(), "departing rank {} kept particles", r),
            }
            for (d, b) in buckets.iter().enumerate() {
                landed_keys[d].extend(
                    b.id.iter().map(|&id| keys[(id / 1000) as usize][(id % 1000) as usize]),
                );
                landed[d].extend_from(b);
            }
        }
        prop_assert_eq!(shipped_total, m.migrant_count());

        // Exact multiset conservation.
        let mut after: Vec<u64> = landed.iter().flat_map(|p| p.id.iter().copied()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after, "id multiset changed across migration");

        // Every landed particle belongs to its new owner's domain.
        for (d, ks) in landed_keys.iter().enumerate() {
            for &k in ks {
                prop_assert!(new_domains[d].contains(k), "key {} landed outside domain {}", k, d);
            }
        }
    }

    #[test]
    fn sufficiency_is_monotone_in_distance(n in 50usize..300, seed in any::<u64>()) {
        // If the boundary suffices for a near geometry it must suffice for
        // the same geometry moved farther away (along +x).
        let tree = Tree::build(blob(n, seed), TreeParams::default());
        let b = boundary_tree(&tree, &KeyRange::everything());
        let theta = 0.5;
        let mut prev_ok = false;
        for dist in [2.0, 4.0, 8.0, 16.0, 64.0, 256.0] {
            let geom = vec![Aabb::cube(Vec3::new(dist, 0.0, 0.0), 0.5)];
            let ok = boundary_sufficient_for(&b, &geom, theta);
            prop_assert!(!prev_ok || ok, "sufficiency regressed at distance {}", dist);
            prev_ok = ok;
        }
        prop_assert!(prev_ok, "far geometry must always be satisfied by the boundary");
    }
}
