//! Property-based tests for the Barnes–Hut engine: topology invariants,
//! multipole identities, walk/direct agreement, and accounting consistency.

use bonsai_sfc::Curve;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::node::NodeKind;
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::{Node, OpeningCriterion, Particles};
use bonsai_util::rng::Xoshiro256;
use bonsai_util::{Aabb, Sym3, Vec3};
use proptest::prelude::*;

fn make_particles(n: usize, seed: u64, clustered: bool) -> Particles {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut p = Particles::with_capacity(n);
    for i in 0..n {
        let pos = if clustered && i % 3 == 0 {
            rng.unit_sphere() * (0.05 * rng.uniform())
        } else {
            rng.unit_sphere() * (2.0 * rng.uniform().powf(0.33))
        };
        p.push(pos, Vec3::zero(), rng.uniform_in(0.1, 2.0), i as u64);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_for_all_shapes(n in 1usize..400, seed in any::<u64>(), clustered in any::<bool>(),
                                 nleaf in 1usize..40) {
        let params = TreeParams { nleaf, curve: Curve::Hilbert, group_size: 2 * nleaf.max(4) };
        let tree = Tree::build(make_particles(n, seed, clustered), params);
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
    }

    #[test]
    fn morton_and_hilbert_trees_carry_identical_physics(n in 2usize..300, seed in any::<u64>()) {
        // Different curves give different topologies but the same root
        // moments and the same forces (at θ=0 exactly).
        let p = make_particles(n, seed, true);
        let th = Tree::build(p.clone(), TreeParams { curve: Curve::Hilbert, ..Default::default() });
        let tm = Tree::build(p, TreeParams { curve: Curve::Morton, ..Default::default() });
        prop_assert!((th.nodes[0].mass - tm.nodes[0].mass).abs() < 1e-9);
        prop_assert!((th.nodes[0].com - tm.nodes[0].com).norm() < 1e-9);
        let (fh, _) = walk::self_gravity(&th, &WalkParams::new(0.0, 0.01));
        let (fm, _) = walk::self_gravity(&tm, &WalkParams::new(0.0, 0.01));
        // compare per id
        for i in 0..th.len() {
            let id = th.particles.id[i];
            let j = tm.particles.id.iter().position(|&x| x == id).unwrap();
            prop_assert!((fh.acc[i] - fm.acc[j]).norm() <= 1e-9 * fh.acc[i].norm().max(1e-20));
        }
    }

    #[test]
    fn root_quadrupole_matches_brute_force(n in 2usize..300, seed in any::<u64>()) {
        let p = make_particles(n, seed, false);
        let tree = Tree::build(p, TreeParams::default());
        let root = tree.nodes[0];
        let mut q = Sym3::zero();
        for i in 0..tree.len() {
            q += Sym3::outer(tree.particles.pos[i] - root.com, tree.particles.mass[i]);
        }
        let err = (root.quad - q).frobenius();
        prop_assert!(err <= 1e-8 * q.frobenius().max(1e-12), "quad err {}", err);
    }

    #[test]
    fn walk_error_bounded_by_mac(n in 50usize..300, seed in any::<u64>(), theta in 0.2f64..0.9) {
        let p = make_particles(n, seed, false);
        let tree = Tree::build(p, TreeParams::default());
        let (direct, _) = direct_self_forces(&tree.particles, 0.05, 1.0);
        let (forces, _) = walk::self_gravity(&tree, &WalkParams::new(theta, 0.05));
        let rms = forces.rms_rel_acc_error(&direct);
        // Empirical MAC bound with quadrupoles: rms error ≲ θ⁴ for these
        // sizes (generous factor to avoid flakes).
        prop_assert!(rms < 0.5 * theta.powi(3), "theta {}: rms {}", theta, rms);
    }

    #[test]
    fn counts_scale_with_targets(n in 100usize..250, seed in any::<u64>()) {
        // Walking the same source tree for twice the probes must produce
        // exactly twice the interactions (per-group accounting sanity).
        let p = make_particles(n, seed, false);
        let tree = Tree::build(p, TreeParams::default());
        let mut rng = Xoshiro256::seed_from(seed ^ 0xDEAD);
        let probes: Vec<Vec3> = (0..32).map(|_| rng.unit_sphere() * 3.0).collect();
        let bbox = bonsai_util::Aabb::from_points(&probes);
        let one = vec![bonsai_tree::node::Group { begin: 0, end: 32, bbox }];
        let params = WalkParams::new(0.5, 0.01);
        let (_, s1) = walk::walk_tree(&tree.view(), &probes, &one, &params);

        let mut doubled = probes.clone();
        doubled.extend_from_slice(&probes);
        let two = vec![
            bonsai_tree::node::Group { begin: 0, end: 32, bbox },
            bonsai_tree::node::Group { begin: 32, end: 64, bbox },
        ];
        let (_, s2) = walk::walk_tree(&tree.view(), &doubled, &two, &params);
        prop_assert_eq!(s2.counts.pp, 2 * s1.counts.pp);
        prop_assert_eq!(s2.counts.pc, 2 * s1.counts.pc);
    }

    #[test]
    fn potential_is_negative_and_bounded(n in 10usize..200, seed in any::<u64>()) {
        let p = make_particles(n, seed, true);
        let tree = Tree::build(p, TreeParams::default());
        let (forces, _) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.05));
        let eps = 0.05;
        for i in 0..tree.len() {
            prop_assert!(forces.pot[i] < 0.0, "potential must be negative");
            // |φ| ≤ Σ m / ε (worst case: everything at zero distance)
            let bound = tree.particles.total_mass() / eps;
            prop_assert!(forces.pot[i].abs() <= bound * (1.0 + 1e-9));
        }
    }

    #[test]
    fn mac_is_monotone_in_theta(seed in any::<u64>(), t_lo in 0.05f64..1.2, t_hi in 0.05f64..1.2) {
        // Shrinking θ grows the opening radius l/θ + s, so the set of
        // (target, cell) pairs a walk opens at θ_hi is a subset of what it
        // opens at θ_lo ≤ θ_hi: a smaller θ never opens fewer nodes.
        let (t_lo, t_hi) = if t_lo <= t_hi { (t_lo, t_hi) } else { (t_hi, t_lo) };
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..16 {
            let center = rng.unit_sphere() * (4.0 * rng.uniform());
            let half = rng.uniform_in(0.01, 1.5);
            // COM anywhere inside the geometric cell (offset MAC territory).
            let com = center
                + Vec3::new(
                    half * (2.0 * rng.uniform() - 1.0),
                    half * (2.0 * rng.uniform() - 1.0),
                    half * (2.0 * rng.uniform() - 1.0),
                );
            let node = Node {
                com,
                mass: 1.0,
                quad: Sym3::zero(),
                bbox: Aabb::cube(center, half),
                geo_center: center,
                geo_half: half,
                first: 0,
                count: 0,
                kind: NodeKind::Internal,
                level: 1,
            };
            let target = Aabb::cube(rng.unit_sphere() * (6.0 * rng.uniform()), rng.uniform_in(0.01, 2.0));
            if OpeningCriterion::new(t_hi).must_open(&target, &node) {
                prop_assert!(
                    OpeningCriterion::new(t_lo).must_open(&target, &node),
                    "θ={t_lo} accepted a cell that θ={t_hi} opened"
                );
            }
            let point = rng.unit_sphere() * (6.0 * rng.uniform());
            if OpeningCriterion::new(t_hi).must_open_point(point, &node) {
                prop_assert!(OpeningCriterion::new(t_lo).must_open_point(point, &node));
            }
            // Group acceptance must be conservative for every member point.
            if !OpeningCriterion::new(t_hi).must_open(&target, &node) {
                let inside = Vec3::new(
                    target.min.x + (target.max.x - target.min.x) * rng.uniform(),
                    target.min.y + (target.max.y - target.min.y) * rng.uniform(),
                    target.min.z + (target.max.z - target.min.z) * rng.uniform(),
                );
                prop_assert!(!OpeningCriterion::new(t_hi).must_open_point(inside, &node));
            }
        }
    }

    #[test]
    fn walk_opens_monotonically_more_as_theta_shrinks(n in 100usize..300, seed in any::<u64>()) {
        // Whole-walk corollary of the MAC monotonicity: at smaller θ the
        // walk resolves more cells, so p-p work never decreases and p-c
        // approximations never increase.
        let p = make_particles(n, seed, true);
        let tree = Tree::build(p, TreeParams::default());
        let mut prev: Option<bonsai_tree::InteractionCounts> = None;
        for theta in [0.8, 0.5, 0.3, 0.15] {
            let (_, stats) = walk::self_gravity(&tree, &WalkParams::new(theta, 0.05));
            if let Some(c) = prev {
                prop_assert!(
                    stats.counts.pp >= c.pp,
                    "θ={theta}: pp fell {} -> {}", c.pp, stats.counts.pp
                );
            }
            prev = Some(stats.counts);
        }
    }

    #[test]
    fn forces_invariant_under_particle_permutation(n in 2usize..250, seed in any::<u64>(),
                                                   theta in 0.2f64..0.9) {
        // The SFC sort canonicalizes particle order before the walk, so the
        // same point set fed in any order must give bit-identical per-id
        // forces (same tree, same groups, same summation order).
        let p = make_particles(n, seed, true);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Xoshiro256::seed_from(seed ^ 0x5EED);
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut q = Particles::with_capacity(n);
        for &i in &order {
            q.push(p.pos[i], p.vel[i], p.mass[i], p.id[i]);
        }
        let ta = Tree::build(p, TreeParams::default());
        let tb = Tree::build(q, TreeParams::default());
        let (fa, _) = walk::self_gravity(&ta, &WalkParams::new(theta, 0.05));
        let (fb, _) = walk::self_gravity(&tb, &WalkParams::new(theta, 0.05));
        for i in 0..n {
            let id = ta.particles.id[i];
            let j = tb.particles.id.iter().position(|&x| x == id).unwrap();
            prop_assert_eq!(fa.acc[i], fb.acc[j], "id {} acc differs under permutation", id);
            prop_assert_eq!(fa.pot[i], fb.pot[j], "id {} pot differs under permutation", id);
        }
    }

    #[test]
    fn unsort_scatter_is_inverse_of_sort(n in 1usize..300, seed in any::<u64>()) {
        let p = make_particles(n, seed, false);
        let positions_in = p.pos.clone();
        let tree = Tree::build(p, TreeParams::default());
        let restored = tree.unsort(&tree.particles.pos);
        for i in 0..n {
            prop_assert_eq!(restored[i], positions_in[i]);
        }
    }
}
