//! Thread-sweep conformance suite: the whole point of `bonsai-par`'s
//! deterministic reductions is that thread count is *invisible* to the
//! physics. Build + walk + direct on three IC families at 1, 2, 4 and 8
//! threads must produce bit-identical `Forces` buffers and identical walk
//! `WalkStats` — not "close", identical to the last mantissa bit.
//!
//! Set `PAR_STRESS_ITERS=<n>` to repeat the whole sweep n times (the CI
//! race-stress stanza uses this when ThreadSanitizer is unavailable);
//! scheduling nondeterminism then gets n chances to leak into the results.

use bonsai_ic::{make_merger, plummer_sphere, MergerOrbit, MilkyWayModel};
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::walk::{self, WalkParams, WalkStats};
use bonsai_tree::{Forces, Particles};
use rayon::ThreadPool;

const N: usize = 1200;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The three IC families: a relaxed sphere, the paper's Milky Way model
/// (disk + bulge + halo), and a two-body merger — different density
/// contrasts, so different tree shapes and chunk workloads.
fn ic_families() -> Vec<(&'static str, Particles)> {
    let plummer = plummer_sphere(N, 11);
    let milky_way = MilkyWayModel::paper().generate(N, 12);
    let merger = make_merger(
        &plummer_sphere(N / 2, 13),
        &plummer_sphere(N / 2, 14),
        MergerOrbit::head_on(3.0, 1.0, 1.0),
        N as u64,
    );
    vec![("plummer", plummer), ("milky-way", milky_way), ("merger", merger)]
}

/// Everything a sweep run produces, reduced to exact (hashable) form.
struct RunResult {
    tree_bits: Vec<u64>,
    walk_bits: Vec<u64>,
    walk_stats: WalkStats,
    direct_bits: Vec<u64>,
}

fn force_bits(f: &Forces) -> Vec<u64> {
    let mut bits = Vec::with_capacity(4 * f.len());
    for (a, &p) in f.acc.iter().zip(&f.pot) {
        bits.extend_from_slice(&[
            a.x.to_bits(),
            a.y.to_bits(),
            a.z.to_bits(),
            p.to_bits(),
        ]);
    }
    bits
}

/// Multipole bits of every node: catches nondeterminism in the parallel
/// moment pass even where it would be invisible after the walk's MAC.
fn tree_bits(tree: &Tree) -> Vec<u64> {
    let mut bits = Vec::with_capacity(10 * tree.nodes.len());
    for n in &tree.nodes {
        bits.extend_from_slice(&[
            n.com.x.to_bits(),
            n.com.y.to_bits(),
            n.com.z.to_bits(),
            n.mass.to_bits(),
        ]);
        bits.extend(n.quad.m.iter().map(|q| q.to_bits()));
    }
    bits
}

fn run_pipeline(ic: &Particles) -> RunResult {
    let tree = Tree::build(ic.clone(), TreeParams::default());
    let params = WalkParams::new(0.4, 0.01);
    let (walk_forces, walk_stats) = walk::self_gravity(&tree, &params);
    let (direct_forces, _) = direct_self_forces(&tree.particles, 0.01, 1.0);
    RunResult {
        tree_bits: tree_bits(&tree),
        walk_bits: force_bits(&walk_forces),
        walk_stats,
        direct_bits: force_bits(&direct_forces),
    }
}

fn assert_stats_eq(name: &str, t: usize, a: &WalkStats, b: &WalkStats) {
    assert_eq!(a.counts, b.counts, "{name}: interaction counts differ at t={t}");
    assert_eq!(
        a.nodes_visited, b.nodes_visited,
        "{name}: nodes_visited differs at t={t}"
    );
    assert_eq!(a.forced_cuts, b.forced_cuts, "{name}: forced_cuts differs at t={t}");
}

fn stress_iters() -> usize {
    std::env::var("PAR_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

#[test]
fn forces_and_stats_bit_identical_across_thread_sweep() {
    for iter in 0..stress_iters() {
        for (name, ic) in ic_families() {
            let baseline = ThreadPool::new(1).install(|| run_pipeline(&ic));
            for t in THREADS {
                let run = ThreadPool::new(t).install(|| run_pipeline(&ic));
                assert_eq!(
                    run.tree_bits, baseline.tree_bits,
                    "{name}: tree moments not bit-identical at t={t} (iter {iter})"
                );
                assert_eq!(
                    run.walk_bits, baseline.walk_bits,
                    "{name}: walk forces not bit-identical at t={t} (iter {iter})"
                );
                assert_eq!(
                    run.direct_bits, baseline.direct_bits,
                    "{name}: direct forces not bit-identical at t={t} (iter {iter})"
                );
                assert_stats_eq(name, t, &run.walk_stats, &baseline.walk_stats);
            }
        }
    }
}

#[test]
fn thread_count_does_not_leak_into_tree_topology() {
    // Cheap structural cross-check: same node count, same leaf layout, same
    // sorted key order at every thread count (the key map runs in parallel).
    let ic = plummer_sphere(N, 15);
    let reference = ThreadPool::new(1).install(|| Tree::build(ic.clone(), TreeParams::default()));
    for t in THREADS {
        let tree = ThreadPool::new(t).install(|| Tree::build(ic.clone(), TreeParams::default()));
        assert_eq!(tree.nodes.len(), reference.nodes.len(), "node count at t={t}");
        assert_eq!(tree.keys, reference.keys, "sorted keys at t={t}");
        assert_eq!(
            tree.particles.id, reference.particles.id,
            "particle order at t={t}"
        );
        tree.check_invariants().unwrap();
    }
}

#[test]
fn pool_install_nests_and_restores() {
    // A sweep harness installs pools back to back; an inner install must not
    // poison the outer one's results.
    let ic = plummer_sphere(300, 16);
    let outer = ThreadPool::new(4);
    let baseline = run_pipeline(&ic);
    let nested = outer.install(|| {
        let inner = ThreadPool::new(2).install(|| run_pipeline(&ic));
        let after = run_pipeline(&ic); // back on the 4-lane pool
        (inner, after)
    });
    assert_eq!(nested.0.walk_bits, baseline.walk_bits);
    assert_eq!(nested.1.walk_bits, baseline.walk_bits);
}
