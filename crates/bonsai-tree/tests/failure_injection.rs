//! Failure injection: the structural validators must actually catch
//! corrupted trees and particle sets — a validator that never fires is
//! worse than none.

use bonsai_ic::plummer_sphere;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::node::NodeKind;
use bonsai_util::Vec3;

fn healthy_tree(n: usize, seed: u64) -> Tree {
    Tree::build(plummer_sphere(n, seed), TreeParams::default())
}

#[test]
fn healthy_tree_passes() {
    healthy_tree(500, 1).check_invariants().unwrap();
}

#[test]
fn detects_corrupted_root_mass() {
    let mut t = healthy_tree(500, 2);
    t.nodes[0].mass *= 1.5;
    assert!(t.check_invariants().is_err());
}

#[test]
fn detects_corrupted_com() {
    let mut t = healthy_tree(500, 3);
    t.nodes[0].com += Vec3::splat(10.0);
    assert!(t.check_invariants().is_err());
}

#[test]
fn detects_unsorted_keys() {
    let mut t = healthy_tree(500, 4);
    let len = t.keys.len();
    t.keys.swap(0, len - 1);
    assert!(t.check_invariants().is_err());
}

#[test]
fn detects_leaf_gap() {
    let mut t = healthy_tree(500, 5);
    // Shrink some leaf's particle range: creates a coverage gap.
    let leaf_idx = t
        .nodes
        .iter()
        .position(|n| n.kind == NodeKind::Leaf && n.count > 1)
        .unwrap();
    t.nodes[leaf_idx].count -= 1;
    assert!(t.check_invariants().is_err());
}

#[test]
fn detects_escaped_particle() {
    let mut t = healthy_tree(500, 6);
    // Move a particle out of its leaf's bounding box without rebuilding.
    t.particles.pos[0] = Vec3::splat(1e9);
    assert!(t.check_invariants().is_err());
}

#[test]
fn particle_validator_catches_all_corruption_modes() {
    let make = || plummer_sphere(50, 7);

    let mut p = make();
    p.mass[10] = -1.0;
    assert!(p.validate().is_err(), "negative mass");

    let mut p = make();
    p.mass[10] = 0.0;
    assert!(p.validate().is_err(), "zero mass");

    let mut p = make();
    p.pos[3].y = f64::INFINITY;
    assert!(p.validate().is_err(), "infinite position");

    let mut p = make();
    p.vel[3].z = f64::NAN;
    assert!(p.validate().is_err(), "NaN velocity");

    let mut p = make();
    p.id.pop();
    assert!(p.validate().is_err(), "length mismatch");

    assert!(make().validate().is_ok(), "healthy set must pass");
}

#[test]
fn group_walk_rejects_non_tiling_groups() {
    // The walk asserts that groups tile the target range — a mis-specified
    // group set must panic, not compute garbage.
    let t = healthy_tree(100, 8);
    let bad_groups = vec![bonsai_tree::node::Group {
        begin: 10, // gap: does not start at 0
        end: 100,
        bbox: bonsai_util::Aabb::cube(Vec3::zero(), 5.0),
    }];
    let result = std::panic::catch_unwind(|| {
        bonsai_tree::walk::walk_tree(
            &t.view(),
            &t.particles.pos,
            &bad_groups,
            &bonsai_tree::walk::WalkParams::new(0.4, 0.01),
        )
    });
    assert!(result.is_err(), "non-tiling groups must be rejected");
}
