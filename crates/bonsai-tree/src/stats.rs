//! Tree-structure statistics: depth, occupancy, memory footprint.
//!
//! Used by the benches to report what the builder produced (the paper's
//! device-memory budget — 13M particles in 5.4 GB — depends on node counts
//! and per-node size), and by tests as an independent cross-check on the
//! builder.

use crate::build::Tree;
use crate::forces::InteractionCounts;
use crate::node::NodeKind;
use bonsai_obs::MetricsRegistry;

/// Summary statistics of a built tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Total nodes.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Internal nodes.
    pub internals: usize,
    /// Deepest level (root = 0).
    pub max_depth: u32,
    /// Mean leaf depth.
    pub mean_leaf_depth: f64,
    /// Mean particles per leaf.
    pub mean_leaf_occupancy: f64,
    /// Largest leaf population.
    pub max_leaf_occupancy: u32,
    /// Approximate in-memory bytes (nodes + particle arrays + keys).
    pub memory_bytes: usize,
}

/// Compute statistics for a tree.
pub fn tree_stats(tree: &Tree) -> TreeStats {
    let mut leaves = 0usize;
    let mut internals = 0usize;
    let mut max_depth = 0u32;
    let mut depth_sum = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0u32;
    for n in &tree.nodes {
        max_depth = max_depth.max(n.level);
        match n.kind {
            NodeKind::Leaf => {
                leaves += 1;
                depth_sum += n.level as u64;
                occ_sum += n.count as u64;
                occ_max = occ_max.max(n.count);
            }
            NodeKind::Internal => internals += 1,
            NodeKind::Cut => {}
        }
    }
    let node_bytes = std::mem::size_of::<crate::node::Node>();
    let particle_bytes = 7 * 8 + 8; // pos+vel+mass+id
    TreeStats {
        nodes: tree.nodes.len(),
        leaves,
        internals,
        max_depth,
        mean_leaf_depth: if leaves > 0 {
            depth_sum as f64 / leaves as f64
        } else {
            0.0
        },
        mean_leaf_occupancy: if leaves > 0 {
            occ_sum as f64 / leaves as f64
        } else {
            0.0
        },
        max_leaf_occupancy: occ_max,
        memory_bytes: tree.nodes.len() * node_bytes
            + tree.len() * (particle_bytes + 8 /* key */ + 4 /* origin */),
    }
}

/// Record one rank's walk interaction counts into the unified metrics
/// registry: log-scale histograms over ranks of particle-particle and
/// particle-cell interactions per `scope` ("local" or "lets"), plus
/// machine-wide counters. These are the distributions behind Table II's
/// pp/pc-per-particle rows — the histogram spread is the load imbalance.
pub fn record_walk_counts(reg: &mut MetricsRegistry, scope: &str, counts: InteractionCounts) {
    reg.histogram_observe(
        "bonsai_walk_pp_interactions",
        &[("scope", scope)],
        counts.pp as f64,
    );
    reg.histogram_observe(
        "bonsai_walk_pc_interactions",
        &[("scope", scope)],
        counts.pc as f64,
    );
    reg.counter_add("bonsai_walk_pp_total", &[("scope", scope)], counts.pp);
    reg.counter_add("bonsai_walk_pc_total", &[("scope", scope)], counts.pc);
    reg.counter_add("bonsai_walk_flops_total", &[("scope", scope)], counts.flops());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeParams;
    use crate::particles::Particles;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    fn uniform(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            p.push(
                Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()),
                Vec3::zero(),
                1.0,
                i as u64,
            );
        }
        p
    }

    #[test]
    fn counts_are_consistent() {
        let tree = Tree::build(uniform(10_000, 1), TreeParams::default());
        let s = tree_stats(&tree);
        assert_eq!(s.nodes, s.leaves + s.internals);
        assert!(s.leaves > 0);
        // Leaves hold every particle exactly once.
        let leaf_total: u64 = tree
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Leaf)
            .map(|n| n.count as u64)
            .sum();
        assert_eq!(leaf_total, 10_000);
        assert!((s.mean_leaf_occupancy - leaf_total as f64 / s.leaves as f64).abs() < 1e-12);
    }

    #[test]
    fn depth_scales_logarithmically_for_uniform_points() {
        // Uniform points: depth ≈ log8(N / NLEAF) + O(1).
        let t1 = tree_stats(&Tree::build(uniform(1_000, 2), TreeParams::default()));
        let t2 = tree_stats(&Tree::build(uniform(64_000, 3), TreeParams::default()));
        // 64x more particles = 2 more octree levels.
        let dd = t2.mean_leaf_depth - t1.mean_leaf_depth;
        assert!((dd - 2.0).abs() < 0.7, "depth growth {dd}");
    }

    #[test]
    fn occupancy_bounded_by_nleaf() {
        let tree = Tree::build(uniform(20_000, 4), TreeParams::default());
        let s = tree_stats(&tree);
        assert!(s.max_leaf_occupancy as usize <= tree.params.nleaf);
        assert!(s.mean_leaf_occupancy > 1.0);
    }

    #[test]
    fn memory_footprint_matches_paper_budget_order() {
        // Extrapolating the per-particle footprint to 13M particles must
        // land in the K20X's 5.4 GB envelope (~100-300 B/particle).
        let tree = Tree::build(uniform(50_000, 5), TreeParams::default());
        let s = tree_stats(&tree);
        let per_particle = s.memory_bytes as f64 / tree.len() as f64;
        assert!(
            (80.0..400.0).contains(&per_particle),
            "footprint {per_particle} B/particle"
        );
    }

    #[test]
    fn empty_tree_stats() {
        let tree = Tree::build(Particles::new(), TreeParams::default());
        let s = tree_stats(&tree);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_leaf_occupancy, 0.0);
    }

    #[test]
    fn walk_counts_land_in_registry() {
        let mut reg = MetricsRegistry::new();
        record_walk_counts(&mut reg, "local", InteractionCounts { pp: 100, pc: 300 });
        record_walk_counts(&mut reg, "local", InteractionCounts { pp: 140, pc: 260 });
        record_walk_counts(&mut reg, "lets", InteractionCounts { pp: 50, pc: 900 });
        assert_eq!(reg.counter("bonsai_walk_pp_total", &[("scope", "local")]), 240);
        assert_eq!(reg.counter("bonsai_walk_pc_total", &[("scope", "lets")]), 900);
        // flops at the §VI-A rates: 23·pp + 65·pc
        assert_eq!(
            reg.counter("bonsai_walk_flops_total", &[("scope", "lets")]),
            23 * 50 + 65 * 900
        );
        let h = reg
            .histogram("bonsai_walk_pp_interactions", &[("scope", "local")])
            .unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(100.0));
        assert_eq!(h.max(), Some(140.0));
    }
}
