//! Octree construction over SFC-sorted particles.
//!
//! Mirrors the paper's GPU pipeline (§III-A): particles are sorted by their
//! space-filling-curve keys, then key ranges are split by successive 3-bit
//! octant digits until a range holds at most [`crate::NLEAF`] particles. A
//! breadth-first layout keeps the children of every internal node contiguous.
//! Two upward passes then compute (mass, centre of mass, tight boxes) and the
//! quadrupole moments about each cell's own centre of mass via the parallel
//! axis theorem.
//!
//! Because the keys are SFC keys over a *global* root cube, every local tree
//! built with a shared [`KeyMap`] is a non-overlapping branch of a
//! hypothetical global octree — the property (§III-B1) that lets ranks use
//! boundary trees as LETs and process remote LETs without merging.

use crate::node::{Group, Node, NodeKind, TreeView};
use crate::particles::{Particles, PosSoa};
use crate::NLEAF;
use bonsai_sfc::{Curve, KeyMap, MAX_LEVEL};
use bonsai_util::{Aabb, Sym3, Vec3};
use rayon::prelude::*;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Leaf capacity; the paper uses 16.
    pub nleaf: usize,
    /// Space-filling curve used for the sort.
    pub curve: Curve,
    /// Target size of walk groups (consecutive leaves are merged up to this).
    pub group_size: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            nleaf: NLEAF,
            curve: Curve::Hilbert,
            group_size: 2 * NLEAF,
        }
    }
}

/// A built octree owning its (key-sorted) particles.
#[derive(Clone, Debug)]
pub struct Tree {
    /// Build parameters.
    pub params: TreeParams,
    /// Global key geometry used for the sort.
    pub keymap: KeyMap,
    /// Nodes in BFS order; `nodes[0]` is the root.
    pub nodes: Vec<Node>,
    /// Particles sorted by key.
    pub particles: Particles,
    /// Sorted keys, parallel to `particles`.
    pub keys: Vec<u64>,
    /// `origin[i]` = index the sorted particle `i` had in the input.
    pub origin: Vec<u32>,
    /// Walk groups tiling `0..n` in sorted order.
    pub groups: Vec<Group>,
    /// SoA copy of the sorted positions for the batched leaf kernel. Kept
    /// coherent with `particles.pos` by construction; `check_invariants`
    /// verifies the two stay bitwise equal.
    pub soa: PosSoa,
}

impl Tree {
    /// Build a tree over `particles`, deriving the root cube from their
    /// bounding box.
    pub fn build(particles: Particles, params: TreeParams) -> Tree {
        let bounds = if particles.is_empty() {
            Aabb::cube(Vec3::zero(), 1.0)
        } else {
            particles.bounds()
        };
        let keymap = KeyMap::new(&bounds, params.curve);
        Self::build_with_keymap(particles, keymap, params)
    }

    /// Build with an externally supplied (e.g. globally agreed) key map.
    pub fn build_with_keymap(mut particles: Particles, keymap: KeyMap, params: TreeParams) -> Tree {
        assert!(params.nleaf > 0);
        let n = particles.len();

        // --- SFC sort -----------------------------------------------------
        let raw_keys: Vec<u64> = particles.pos.par_iter().map(|&p| keymap.key_of(p)).collect();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by_key(|&i| raw_keys[i as usize]);
        particles.permute(&perm);
        let keys: Vec<u64> = perm.iter().map(|&i| raw_keys[i as usize]).collect();

        // --- topology: BFS split by octant digits --------------------------
        let mut nodes: Vec<Node> = Vec::new();
        if n > 0 {
            nodes.push(Self::blank_node(&keymap, &keys, 0, n as u32, 0));
            let mut head = 0usize;
            while head < nodes.len() {
                let (begin, end, level) =
                    (nodes[head].first, nodes[head].first + nodes[head].count, nodes[head].level);
                let count = (end - begin) as usize;
                if count <= params.nleaf || level == MAX_LEVEL {
                    nodes[head].kind = NodeKind::Leaf;
                    head += 1;
                    continue;
                }
                // Split `begin..end` at octant-digit boundaries of `level+1`.
                let shift = 3 * (MAX_LEVEL - (level + 1));
                let first_child = nodes.len() as u32;
                let mut nchild = 0u32;
                let mut lo = begin;
                for digit in 0..8u64 {
                    let upper = (digit + 1) << shift;
                    // First key value whose level-(L+1) digit exceeds `digit`:
                    // the node's common prefix plus (digit+1)·8^(MAX-L-1).
                    // Addition, not OR — the prefix may have the carry bit set.
                    let prefix = keys[begin as usize] >> (shift + 3) << (shift + 3);
                    let bound = prefix + upper;
                    let hi = begin
                        + keys[begin as usize..end as usize].partition_point(|&k| k < bound) as u32;
                    if hi > lo {
                        nodes.push(Self::blank_node(&keymap, &keys, lo, hi - lo, level + 1));
                        nchild += 1;
                    }
                    lo = hi;
                    if lo == end {
                        break;
                    }
                }
                debug_assert_eq!(lo, end, "octant split lost particles");
                nodes[head].first = first_child;
                nodes[head].count = nchild;
                nodes[head].kind = NodeKind::Internal;
                head += 1;
            }
        }

        // --- upward passes --------------------------------------------------
        Self::compute_moments(&mut nodes, &particles);

        // --- walk groups ----------------------------------------------------
        let groups = Self::compute_groups(&nodes, &particles, params.group_size);

        let soa = PosSoa::from_pos(&particles.pos);
        Tree {
            params,
            keymap,
            nodes,
            particles,
            keys,
            origin: perm,
            groups,
            soa,
        }
    }

    fn blank_node(keymap: &KeyMap, keys: &[u64], first: u32, count: u32, level: u32) -> Node {
        let cell = keymap.cell_aabb(keys[first as usize], level);
        Node {
            com: Vec3::zero(),
            mass: 0.0,
            quad: Sym3::zero(),
            bbox: Aabb::empty(),
            geo_center: cell.center(),
            geo_half: 0.5 * cell.size().x,
            first,
            count,
            kind: NodeKind::Leaf, // provisional; flipped to Internal when split
            level,
        }
    }

    /// Upward passes: (mass, COM, tight box) then quadrupoles about own COM.
    ///
    /// BFS order makes every level a contiguous node range with children of
    /// level-L nodes living strictly after the level's end, so the pass runs
    /// level-synchronized from the deepest level up: nodes *within* a level
    /// have no dependencies on each other and are processed in parallel.
    /// Each node's arithmetic is identical to the old sequential reverse
    /// sweep, so the resulting moments are bit-identical at any thread count.
    fn compute_moments(nodes: &mut [Node], particles: &Particles) {
        // Level ranges (BFS appends children in nondecreasing level order).
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        for i in 1..=nodes.len() {
            if i == nodes.len() || nodes[i].level != nodes[start].level {
                ranges.push((start, i));
                start = i;
            }
        }
        for &(b, e) in ranges.iter().rev() {
            // Children of this level sit at indices >= e: borrow them
            // immutably while the level itself is mutated in parallel.
            let (head, deeper) = nodes.split_at_mut(e);
            let level_nodes = &mut head[b..e];
            let deeper = &*deeper;
            level_nodes.par_iter_mut().for_each(|node| match node.kind {
                NodeKind::Leaf => Self::leaf_moments(node, particles),
                NodeKind::Internal => {
                    debug_assert!(node.first as usize >= e, "child before level end");
                    Self::internal_moments(node, deeper, e);
                }
                NodeKind::Cut => unreachable!("local trees have no Cut nodes"),
            });
        }
    }

    /// Moments of a leaf from its particle range.
    fn leaf_moments(node: &mut Node, particles: &Particles) {
        let (b, e) = (node.first as usize, (node.first + node.count) as usize);
        let mut mass = 0.0;
        let mut com = Vec3::zero();
        let mut bbox = Aabb::empty();
        for j in b..e {
            mass += particles.mass[j];
            com += particles.pos[j] * particles.mass[j];
            bbox.grow(particles.pos[j]);
        }
        com /= mass.max(f64::MIN_POSITIVE);
        let mut quad = Sym3::zero();
        for j in b..e {
            quad += Sym3::outer(particles.pos[j] - com, particles.mass[j]);
        }
        node.mass = mass;
        node.com = com;
        node.bbox = bbox;
        node.quad = quad;
    }

    /// Moments of an internal node from its (already finished) children,
    /// which live in `deeper` at indices offset by `base`.
    fn internal_moments(node: &mut Node, deeper: &[Node], base: usize) {
        let (b, e) = (node.first as usize - base, (node.first + node.count) as usize - base);
        let mut mass = 0.0;
        let mut com = Vec3::zero();
        let mut bbox = Aabb::empty();
        for c in b..e {
            mass += deeper[c].mass;
            com += deeper[c].com * deeper[c].mass;
            bbox.merge(&deeper[c].bbox);
        }
        com /= mass.max(f64::MIN_POSITIVE);
        // Parallel axis theorem: shift each child quadrupole from the child
        // COM to this node's COM.
        let mut quad = Sym3::zero();
        for c in b..e {
            let d = deeper[c].com - com;
            quad += deeper[c].quad + Sym3::outer(d, deeper[c].mass);
        }
        node.mass = mass;
        node.com = com;
        node.bbox = bbox;
        node.quad = quad;
    }

    /// Merge consecutive leaves into walk groups of at most `group_size`
    /// particles (leaves never split, so a group is a whole number of leaves).
    fn compute_groups(nodes: &[Node], particles: &Particles, group_size: usize) -> Vec<Group> {
        let mut leaves: Vec<(u32, u32)> = nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Leaf)
            .map(|n| (n.first, n.first + n.count))
            .collect();
        leaves.sort_unstable();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut begin = 0u32;
        let mut end = 0u32;
        for (b, e) in leaves {
            debug_assert_eq!(b, end, "leaves must tile the particle range");
            if (e - begin) as usize > group_size && end > begin {
                ranges.push((begin, end));
                begin = b;
            }
            end = e;
        }
        if end > begin {
            ranges.push((begin, end));
        }
        // Tight boxes touch every particle once — fan the groups out.
        ranges
            .par_iter()
            .map(|&(b, e)| Self::make_group(particles, b, e))
            .collect()
    }

    fn make_group(particles: &Particles, begin: u32, end: u32) -> Group {
        let mut bbox = Aabb::empty();
        for j in begin..end {
            bbox.grow(particles.pos[j as usize]);
        }
        Group { begin, end, bbox }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Borrow as a walkable view.
    pub fn view(&self) -> TreeView<'_> {
        TreeView {
            nodes: &self.nodes,
            pos: &self.particles.pos,
            mass: &self.particles.mass,
            soa: Some(&self.soa),
        }
    }

    /// Scatter a per-sorted-particle array back to input order.
    pub fn unsort<T: Copy + Default>(&self, sorted_values: &[T]) -> Vec<T> {
        assert_eq!(sorted_values.len(), self.len());
        let mut out = vec![T::default(); self.len()];
        for (i, &o) in self.origin.iter().enumerate() {
            out[o as usize] = sorted_values[i];
        }
        out
    }

    /// Structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            if !self.nodes.is_empty() {
                return Err("empty tree with nodes".into());
            }
            return Ok(());
        }
        // keys sorted
        if !self.keys.windows(2).all(|w| w[0] <= w[1]) {
            return Err("keys not sorted".into());
        }
        // SoA cache coherent with the sorted positions
        if !self.soa.matches(&self.particles.pos) {
            return Err("SoA position cache out of sync with particles.pos".into());
        }
        // leaves tile 0..n exactly
        let mut leaves: Vec<(u32, u32)> = self
            .nodes
            .iter()
            .filter(|x| x.kind == NodeKind::Leaf)
            .map(|x| (x.first, x.first + x.count))
            .collect();
        leaves.sort_unstable();
        let mut cursor = 0u32;
        for (b, e) in &leaves {
            if *b != cursor {
                return Err(format!("leaf gap at {cursor}"));
            }
            cursor = *e;
        }
        if cursor != n as u32 {
            return Err("leaves do not cover all particles".into());
        }
        // mass conservation
        let root_mass = self.nodes[0].mass;
        let total = self.particles.total_mass();
        if (root_mass - total).abs() > 1e-9 * total.abs().max(1.0) {
            return Err(format!("root mass {root_mass} != total {total}"));
        }
        // root COM
        let com = self.particles.center_of_mass();
        if (self.nodes[0].com - com).norm() > 1e-9 * (com.norm() + 1.0) {
            return Err("root COM mismatch".into());
        }
        // parent boxes contain children; particles inside leaf boxes
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Internal => {
                    for c in node.first..node.first + node.count {
                        let child = &self.nodes[c as usize];
                        if child.level != node.level + 1 {
                            return Err(format!("child level wrong at node {i}"));
                        }
                        let padded = node.bbox.padded(1e-12);
                        if !padded.contains_box(&child.bbox) {
                            return Err(format!("child bbox escapes parent at node {i}"));
                        }
                    }
                }
                NodeKind::Leaf => {
                    for j in node.first..node.first + node.count {
                        if !node.bbox.contains(self.particles.pos[j as usize]) {
                            return Err(format!("particle {j} outside leaf bbox"));
                        }
                    }
                    if node.count as usize > self.params.nleaf && node.level < MAX_LEVEL {
                        return Err(format!("over-full leaf at node {i}"));
                    }
                }
                NodeKind::Cut => return Err("Cut node in local tree".into()),
            }
        }
        // groups tile 0..n
        let mut cursor = 0u32;
        for g in &self.groups {
            if g.begin != cursor {
                return Err("group gap".into());
            }
            cursor = g.end;
        }
        if cursor != n as u32 {
            return Err("groups do not cover".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;

    fn random_particles(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            p.push(
                Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()),
                Vec3::zero(),
                rng.uniform_in(0.5, 1.5),
                i as u64,
            );
        }
        p
    }

    #[test]
    fn build_satisfies_invariants() {
        for &n in &[1usize, 2, 15, 16, 17, 100, 1000, 5000] {
            let tree = Tree::build(random_particles(n, n as u64), TreeParams::default());
            tree.check_invariants().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(tree.len(), n);
        }
    }

    #[test]
    fn build_with_morton_satisfies_invariants() {
        let params = TreeParams {
            curve: Curve::Morton,
            ..Default::default()
        };
        let tree = Tree::build(random_particles(2000, 7), params);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree() {
        let tree = Tree::build(Particles::new(), TreeParams::default());
        assert!(tree.is_empty());
        assert!(tree.nodes.is_empty());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn single_particle_tree_is_one_leaf() {
        let mut p = Particles::new();
        p.push(Vec3::splat(0.5), Vec3::zero(), 3.0, 0);
        let tree = Tree::build(p, TreeParams::default());
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.nodes[0].kind, NodeKind::Leaf);
        assert_eq!(tree.nodes[0].mass, 3.0);
        assert_eq!(tree.nodes[0].com, Vec3::splat(0.5));
    }

    #[test]
    fn coincident_particles_bottom_out_at_max_level() {
        // NLEAF+1 particles at the same point can never be split; the builder
        // must stop at MAX_LEVEL instead of recursing forever.
        let mut p = Particles::new();
        for i in 0..(NLEAF + 5) {
            p.push(Vec3::splat(0.25), Vec3::zero(), 1.0, i as u64);
        }
        // plus one elsewhere so the box is not degenerate
        p.push(Vec3::splat(0.75), Vec3::zero(), 1.0, 99);
        let tree = Tree::build(p, TreeParams::default());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn quadrupole_of_leaf_matches_definition() {
        let mut p = Particles::new();
        p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 1.0, 0);
        p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::zero(), 1.0, 1);
        let tree = Tree::build(p, TreeParams::default());
        let root = &tree.nodes[0];
        assert_eq!(root.com, Vec3::zero());
        // Q = Σ m d dᵀ = 2·diag(1,0,0)
        assert!((root.quad.xx() - 2.0).abs() < 1e-12);
        assert!(root.quad.yy().abs() < 1e-12);
        assert!(root.quad.trace() - 2.0 < 1e-12);
    }

    #[test]
    fn internal_quadrupole_equals_direct_quadrupole() {
        // Parallel-axis accumulation must equal the straight definition
        // Σ m (r - com)(r - com)ᵀ at the root.
        let p = random_particles(500, 3);
        let tree = Tree::build(p, TreeParams::default());
        let root = tree.nodes[0];
        let mut q = Sym3::zero();
        for i in 0..tree.len() {
            q += Sym3::outer(tree.particles.pos[i] - root.com, tree.particles.mass[i]);
        }
        let err = (root.quad - q).frobenius() / q.frobenius();
        assert!(err < 1e-10, "quad err {err}");
    }

    #[test]
    fn unsort_round_trips() {
        let p = random_particles(300, 5);
        let ids_before = p.id.clone();
        let tree = Tree::build(p, TreeParams::default());
        let ids_sorted = tree.particles.id.clone();
        let restored = tree.unsort(&ids_sorted);
        assert_eq!(restored, ids_before);
    }

    #[test]
    fn groups_respect_size_bound() {
        let tree = Tree::build(random_particles(5000, 9), TreeParams::default());
        for g in &tree.groups {
            // A group may exceed group_size only if a single leaf does.
            assert!(g.len() <= tree.params.group_size + tree.params.nleaf);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn deterministic_build() {
        let a = Tree::build(random_particles(1000, 11), TreeParams::default());
        let b = Tree::build(random_particles(1000, 11), TreeParams::default());
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.particles.id, b.particles.id);
    }
}
