//! The two force kernels of the paper (§VI-A, Eq. 1–2).
//!
//! * [`p_p`] — particle–particle: softened monopole, 23 flops
//!   (4 sub, 3 mul, 6 fma, 1 rsqrt counted as 4);
//! * [`p_c`] — particle–cell with quadrupole corrections, 65 flops
//!   (4 sub, 6 add, 17 mul, 17 fma, 1 rsqrt counted as 4).
//!
//! Both kernels accumulate `(φ, a)` *without* the gravitational constant —
//! G is applied once per walk — and use Plummer softening `r² → r² + ε²`.
//!
//! Sign conventions, with `r = r_source − r_target` (pointing at the source):
//!
//! ```text
//! φ  += −m/|r| + ½ tr(Q)/|r|³ − (3/2) (rᵀQr)/|r|⁵
//! a  += m r/|r|³ − (3/2) tr(Q) r/|r|⁵ − 3 Q r/|r|⁵ + (15/2) (rᵀQr) r/|r|⁷
//! ```
//!
//! where `Q = Σ mⱼ dⱼ dⱼᵀ` is the *un-detraced* quadrupole about the cell's
//! centre of mass (so the monopole term uses the cell mass and COM, and the
//! dipole vanishes identically).

use bonsai_util::{Sym3, Vec3};

/// Particle–particle interaction: accumulate the softened monopole force of a
/// source point `(src_pos, src_mass)` on a target at `tgt_pos`.
///
/// Returns `(dφ, da)` (G **not** applied). A zero separation (the target
/// itself when walking its own leaf) contributes nothing — not even the
/// softened self-potential, matching the `i != j` guard of a direct code.
#[inline(always)]
pub fn p_p(tgt_pos: Vec3, src_pos: Vec3, src_mass: f64, eps2: f64) -> (f64, Vec3) {
    let dr = src_pos - tgt_pos; // 3 sub (the 4th sub of the count is the mass reuse slot)
    let r2 = dr.norm2() + eps2;
    if dr.norm2() == 0.0 {
        return (0.0, Vec3::zero());
    }
    let rinv = 1.0 / r2.sqrt(); // the kernel's rsqrt
    let rinv2 = rinv * rinv;
    let mrinv = src_mass * rinv;
    let mrinv3 = mrinv * rinv2;
    (-mrinv, dr * mrinv3)
}

/// Particle–cell interaction: softened monopole plus quadrupole correction of
/// a cell with mass `m`, centre of mass `com`, and un-detraced quadrupole `q`
/// (about `com`), acting on a target at `tgt_pos`.
///
/// Returns `(dφ, da)` (G **not** applied).
#[inline(always)]
pub fn p_c(tgt_pos: Vec3, com: Vec3, m: f64, q: &Sym3, eps2: f64) -> (f64, Vec3) {
    let dr = com - tgt_pos;
    let r2 = dr.norm2() + eps2;
    let rinv = 1.0 / r2.sqrt(); // rsqrt
    let rinv2 = rinv * rinv;
    let rinv3 = rinv * rinv2;
    let rinv5 = rinv3 * rinv2;
    let rinv7 = rinv5 * rinv2;

    let tr_q = q.trace();
    let qdr = q.mul_vec(dr);
    let rqr = dr.dot(qdr);

    let phi = -m * rinv + 0.5 * tr_q * rinv3 - 1.5 * rqr * rinv5;
    let acc = dr * (m * rinv3) - dr * (1.5 * tr_q * rinv5) - qdr * (3.0 * rinv5)
        + dr * (7.5 * rqr * rinv7);
    (phi, acc)
}

/// Batched particle-particle kernel: accumulate the forces of a contiguous
/// SoA batch of sources on one target.
///
/// The inner loop is written over plain slices with no early exits so the
/// compiler can vectorize it — the CPU counterpart of evaluating a warp's
/// shared interaction list on the GPU (§III-A). The self-interaction guard
/// is branchless: coincident sources contribute through a mask factor of
/// zero instead of a skip.
#[inline]
pub fn p_p_batch(
    tgt_pos: Vec3,
    src_x: &[f64],
    src_y: &[f64],
    src_z: &[f64],
    src_m: &[f64],
    eps2: f64,
) -> (f64, Vec3) {
    let n = src_x.len();
    debug_assert!(src_y.len() == n && src_z.len() == n && src_m.len() == n);
    let (mut phi, mut ax, mut ay, mut az) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for j in 0..n {
        let dx = src_x[j] - tgt_pos.x;
        let dy = src_y[j] - tgt_pos.y;
        let dz = src_z[j] - tgt_pos.z;
        let dr2 = dx * dx + dy * dy + dz * dz;
        // Branchless self/coincident mask: exactly zero distance → 0 weight.
        let mask = if dr2 > 0.0 { 1.0 } else { 0.0 };
        let r2 = dr2 + eps2;
        // max(r2, tiny) keeps the rsqrt finite when eps = 0 and dr = 0; the
        // mask zeroes the contribution anyway.
        let rinv = mask / r2.max(f64::MIN_POSITIVE).sqrt();
        let rinv2 = rinv * rinv;
        let mrinv = src_m[j] * rinv;
        let mrinv3 = mrinv * rinv2;
        phi -= mrinv;
        ax += dx * mrinv3;
        ay += dy * mrinv3;
        az += dz * mrinv3;
    }
    (phi, Vec3::new(ax, ay, az))
}

/// Split an AoS position slice into SoA component buffers (helper for
/// [`p_p_batch`] callers that hold `&[Vec3]`).
pub fn split_soa(pos: &[Vec3]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut x = Vec::with_capacity(pos.len());
    let mut y = Vec::with_capacity(pos.len());
    let mut z = Vec::with_capacity(pos.len());
    for p in pos {
        x.push(p.x);
        y.push(p.y);
        z.push(p.z);
    }
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_matches_newton() {
        // Unit mass at distance 2 along x: φ = -1/2, a = 1/4 toward source.
        let (phi, a) = p_p(Vec3::zero(), Vec3::new(2.0, 0.0, 0.0), 1.0, 0.0);
        assert!((phi + 0.5).abs() < 1e-15);
        assert!((a.x - 0.25).abs() < 1e-15);
        assert_eq!(a.y, 0.0);
        assert_eq!(a.z, 0.0);
    }

    #[test]
    fn pp_self_interaction_is_zero() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let (phi, a) = p_p(p, p, 5.0, 0.01);
        assert_eq!(phi, 0.0);
        assert_eq!(a, Vec3::zero());
    }

    #[test]
    fn pp_softening_caps_close_encounters() {
        let eps2 = 1.0;
        let (phi, a) = p_p(Vec3::zero(), Vec3::new(1e-8, 0.0, 0.0), 1.0, eps2);
        // φ → -1/ε, a → r/ε³ → 0
        assert!((phi + 1.0).abs() < 1e-6);
        assert!(a.norm() < 1e-6);
    }

    #[test]
    fn pc_with_zero_quadrupole_equals_pp() {
        let tgt = Vec3::new(0.1, -0.2, 0.3);
        let com = Vec3::new(3.0, 4.0, -1.0);
        let m = 2.5;
        let (p1, a1) = p_p(tgt, com, m, 0.0);
        let (p2, a2) = p_c(tgt, com, m, &Sym3::zero(), 0.0);
        assert!((p1 - p2).abs() < 1e-15);
        assert!((a1 - a2).norm() < 1e-15);
    }

    #[test]
    fn pc_quadrupole_matches_two_point_expansion() {
        // Cell: two unit masses at com ± d. Exact field vs multipole field at
        // distance R ≫ |d|: the quadrupole-corrected error must be O((d/R)^3)
        // relative — check it is dramatically smaller than the monopole error.
        let d = Vec3::new(0.05, 0.02, -0.03);
        let com = Vec3::zero();
        let (s1, s2) = (com + d, com - d);
        let q = Sym3::outer(d, 1.0) + Sym3::outer(-d, 1.0);
        let tgt = Vec3::new(2.0, 1.0, 0.5);

        let (pe1, ae1) = p_p(tgt, s1, 1.0, 0.0);
        let (pe2, ae2) = p_p(tgt, s2, 1.0, 0.0);
        let (phi_exact, acc_exact) = (pe1 + pe2, ae1 + ae2);

        let (phi_mono, acc_mono) = p_p(tgt, com, 2.0, 0.0);
        let (phi_quad, acc_quad) = p_c(tgt, com, 2.0, &q, 0.0);

        let e_mono = (acc_mono - acc_exact).norm() / acc_exact.norm();
        let e_quad = (acc_quad - acc_exact).norm() / acc_exact.norm();
        assert!(e_quad < e_mono / 10.0, "quad error {e_quad} vs mono {e_mono}");

        let p_mono = (phi_mono - phi_exact).abs() / phi_exact.abs();
        let p_quad = (phi_quad - phi_exact).abs() / phi_exact.abs();
        assert!(p_quad < p_mono / 10.0, "quad pot error {p_quad} vs mono {p_mono}");
    }

    #[test]
    fn pc_acceleration_is_gradient_of_potential() {
        // Numerical gradient check: a = -∇φ.
        let com = Vec3::new(1.0, -2.0, 0.5);
        let m = 3.0;
        let q = Sym3::outer(Vec3::new(0.2, 0.1, -0.1), 4.0);
        let tgt = Vec3::new(-1.0, 0.5, 2.0);
        let h = 1e-6;
        let phi_at = |p: Vec3| p_c(p, com, m, &q, 0.0).0;
        let grad = Vec3::new(
            (phi_at(tgt + Vec3::new(h, 0.0, 0.0)) - phi_at(tgt - Vec3::new(h, 0.0, 0.0))) / (2.0 * h),
            (phi_at(tgt + Vec3::new(0.0, h, 0.0)) - phi_at(tgt - Vec3::new(0.0, h, 0.0))) / (2.0 * h),
            (phi_at(tgt + Vec3::new(0.0, 0.0, h)) - phi_at(tgt - Vec3::new(0.0, 0.0, h))) / (2.0 * h),
        );
        let (_, acc) = p_c(tgt, com, m, &q, 0.0);
        assert!((acc + grad).norm() < 1e-6 * acc.norm().max(1.0), "a != -grad phi: {acc} vs {grad}");
    }

    #[test]
    fn batch_kernel_matches_scalar_kernel() {
        let mut rng = bonsai_util::rng::Xoshiro256::seed_from(7);
        let n = 137; // deliberately not a multiple of any lane width
        let pos: Vec<Vec3> = (0..n).map(|_| rng.unit_sphere() * rng.uniform_in(0.1, 3.0)).collect();
        let mass: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.1, 2.0)).collect();
        let (x, y, z) = split_soa(&pos);
        let tgt = Vec3::new(0.3, -0.2, 0.1);
        for &eps2 in &[0.0, 0.01] {
            let (bp, ba) = p_p_batch(tgt, &x, &y, &z, &mass, eps2);
            let mut sp = 0.0;
            let mut sa = Vec3::zero();
            for j in 0..n {
                let (p, a) = p_p(tgt, pos[j], mass[j], eps2);
                sp += p;
                sa += a;
            }
            assert!((bp - sp).abs() < 1e-12 * sp.abs().max(1.0), "phi {bp} vs {sp}");
            assert!((ba - sa).norm() < 1e-12 * sa.norm().max(1.0), "acc {ba} vs {sa}");
        }
    }

    #[test]
    fn batch_kernel_skips_coincident_source() {
        let tgt = Vec3::new(1.0, 2.0, 3.0);
        let pos = [tgt, Vec3::new(2.0, 2.0, 3.0)];
        let (x, y, z) = split_soa(&pos);
        let m = [5.0, 1.0];
        let (phi, acc) = p_p_batch(tgt, &x, &y, &z, &m, 0.0);
        // only the second source contributes: φ = -1, a = +x̂
        assert!((phi + 1.0).abs() < 1e-15);
        assert!((acc - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-15);
        // and the same with softening on (coincident still masked out)
        let (phi_s, _) = p_p_batch(tgt, &x, &y, &z, &m, 0.25);
        assert!(phi_s > -1.0, "softened potential magnitude shrinks: {phi_s}");
    }

    #[test]
    fn pp_acceleration_is_gradient_of_potential() {
        let src = Vec3::new(0.3, 0.4, -0.7);
        let m = 2.0;
        let eps2 = 0.01;
        let tgt = Vec3::new(1.5, -0.5, 0.2);
        let h = 1e-6;
        let phi_at = |p: Vec3| p_p(p, src, m, eps2).0;
        let grad = Vec3::new(
            (phi_at(tgt + Vec3::new(h, 0.0, 0.0)) - phi_at(tgt - Vec3::new(h, 0.0, 0.0))) / (2.0 * h),
            (phi_at(tgt + Vec3::new(0.0, h, 0.0)) - phi_at(tgt - Vec3::new(0.0, h, 0.0))) / (2.0 * h),
            (phi_at(tgt + Vec3::new(0.0, 0.0, h)) - phi_at(tgt - Vec3::new(0.0, 0.0, h))) / (2.0 * h),
        );
        let (_, acc) = p_p(tgt, src, m, eps2);
        assert!((acc + grad).norm() < 1e-6 * acc.norm().max(1.0));
    }
}
