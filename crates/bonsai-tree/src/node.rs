//! Tree node representation shared by local trees and Local Essential Trees.
//!
//! Nodes are stored in breadth-first order with the children of every
//! internal node contiguous, so the walk touches memory near-sequentially —
//! the CPU analogue of the texture-cache-friendly layout Bonsai uses on the
//! GPU. A node can be:
//!
//! * **Internal** — `first..first+count` indexes child *nodes*;
//! * **Leaf** — `first..first+count` indexes *particles*;
//! * **Cut** — a pruned LET node: its multipole data is valid but neither
//!   children nor particles were shipped, because the multipole acceptance
//!   criterion guarantees the receiving domain will never open it.

use crate::particles::PosSoa;
use bonsai_util::{Aabb, Sym3, Vec3};

/// What `first`/`count` of a [`Node`] refer to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Children are nodes `first..first+count`.
    Internal,
    /// Children are particles `first..first+count`.
    Leaf,
    /// LET-pruned: no children shipped; must be used as a particle-cell
    /// interaction.
    Cut,
}

/// One octree cell with multipole moments.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Centre of mass.
    pub com: Vec3,
    /// Total mass.
    pub mass: f64,
    /// Un-detraced quadrupole `Σ m d dᵀ` about [`Node::com`].
    pub quad: Sym3,
    /// Tight bounding box of the contained particles.
    pub bbox: Aabb,
    /// Geometric centre of the octree cell.
    pub geo_center: Vec3,
    /// Half side length of the (cubic) octree cell.
    pub geo_half: f64,
    /// First child node / first particle (see [`NodeKind`]).
    pub first: u32,
    /// Child node count / particle count.
    pub count: u32,
    /// Node role.
    pub kind: NodeKind,
    /// Depth below the root (root = 0).
    pub level: u32,
}

impl Node {
    /// Number of particles represented (for any kind).
    pub fn particle_population(&self, nodes: &[Node]) -> u64 {
        match self.kind {
            NodeKind::Leaf => self.count as u64,
            NodeKind::Cut => 0, // population unknown at the receiver
            NodeKind::Internal => {
                let mut n = 0;
                for c in self.first..self.first + self.count {
                    n += nodes[c as usize].particle_population(nodes);
                }
                n
            }
        }
    }

    /// Full side length of the geometric cell.
    #[inline(always)]
    pub fn geo_side(&self) -> f64 {
        2.0 * self.geo_half
    }
}

/// A borrowed, walkable tree: nodes plus the particle fields the kernels read.
///
/// Both a rank's local tree and every received LET expose this view, so the
/// force walk is a single code path (§III-B2: LETs are "processed separately
/// as soon as they arrive" rather than merged).
#[derive(Clone, Copy, Debug)]
pub struct TreeView<'a> {
    /// Nodes in BFS order; `nodes[0]` is the root (if non-empty).
    pub nodes: &'a [Node],
    /// Source particle positions (leaf `first`/`count` index into these).
    pub pos: &'a [Vec3],
    /// Source particle masses.
    pub mass: &'a [f64],
    /// Optional SoA copy of `pos` for the batched leaf kernel. When absent
    /// (e.g. decoded LETs that don't cache one) the walk falls back to the
    /// scalar kernel, which produces bit-identical results — the batch
    /// kernel performs the same operations in the same order per source.
    pub soa: Option<&'a PosSoa>,
}

impl<'a> TreeView<'a> {
    /// `true` if there is nothing to walk.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node; panics on an empty tree.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Sum of leaf particle counts (consistency checks).
    pub fn leaf_particle_total(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Leaf)
            .map(|n| n.count as u64)
            .sum()
    }
}

/// A contiguous run of *target* particles walked together, the CPU analogue
/// of the warp-sized particle groups of the GPU tree-walk (§III-A): one
/// interaction list is built per group against the group's tight bounding
/// box, then evaluated for every member.
#[derive(Clone, Copy, Debug)]
pub struct Group {
    /// First target particle index.
    pub begin: u32,
    /// One past the last target particle index.
    pub end: u32,
    /// Tight bounding box of the member particles.
    pub bbox: Aabb,
}

impl Group {
    /// Number of members.
    pub fn len(&self) -> usize {
        (self.end - self.begin) as usize
    }

    /// `true` if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}
