//! Force accumulators and interaction accounting.
//!
//! The paper's performance numbers (§VI-A) are *derived* from interaction
//! counts: `flops = 23·N_pp + 65·N_pc`, divided by execution time. Every walk
//! in this crate therefore returns an [`InteractionCounts`] alongside the
//! physical result, and the device model in `bonsai-gpu` turns those counts
//! into simulated seconds.

use crate::{PC_FLOPS, PP_FLOPS};
use bonsai_util::Vec3;
use std::ops::{Add, AddAssign};

/// Accelerations and potentials for a set of target particles.
#[derive(Clone, Debug, Default)]
pub struct Forces {
    /// Acceleration per particle (kpc-internal units; includes G).
    pub acc: Vec<Vec3>,
    /// Specific potential per particle (includes G; negative near mass).
    pub pot: Vec<f64>,
}

impl Forces {
    /// Zeroed accumulator for `n` targets.
    pub fn zeros(n: usize) -> Self {
        Self {
            acc: vec![Vec3::zero(); n],
            pot: vec![0.0; n],
        }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// `true` if no targets.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Element-wise accumulate another force set (e.g. one per LET source).
    pub fn accumulate(&mut self, o: &Forces) {
        assert_eq!(self.len(), o.len());
        for i in 0..self.len() {
            self.acc[i] += o.acc[i];
            self.pot[i] += o.pot[i];
        }
    }

    /// Scale all entries (used to apply the gravitational constant once).
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.acc {
            *a *= s;
        }
        for p in &mut self.pot {
            *p *= s;
        }
    }

    /// Largest relative acceleration difference against a reference
    /// (`|a - a_ref| / |a_ref|`), the accuracy metric of the θ sweeps.
    pub fn max_rel_acc_error(&self, reference: &Forces) -> f64 {
        assert_eq!(self.len(), reference.len());
        let mut worst = 0.0f64;
        for i in 0..self.len() {
            let denom = reference.acc[i].norm();
            if denom > 0.0 {
                worst = worst.max((self.acc[i] - reference.acc[i]).norm() / denom);
            }
        }
        worst
    }

    /// RMS relative acceleration error against a reference.
    pub fn rms_rel_acc_error(&self, reference: &Forces) -> f64 {
        assert_eq!(self.len(), reference.len());
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            let denom = reference.acc[i].norm();
            if denom > 0.0 {
                let e = (self.acc[i] - reference.acc[i]).norm() / denom;
                sum += e * e;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64).sqrt()
        }
    }
}

/// Counts of evaluated interactions, the currency of the performance model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InteractionCounts {
    /// Particle-particle interactions (23 flops each).
    pub pp: u64,
    /// Particle-cell interactions (65 flops each).
    pub pc: u64,
}

impl InteractionCounts {
    /// Zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total flops at the paper's §VI-A rates.
    pub fn flops(&self) -> u64 {
        PP_FLOPS * self.pp + PC_FLOPS * self.pc
    }

    /// Mean interactions per particle, the quantity Table II reports.
    pub fn per_particle(&self, n: usize) -> (f64, f64) {
        if n == 0 {
            (0.0, 0.0)
        } else {
            (self.pp as f64 / n as f64, self.pc as f64 / n as f64)
        }
    }
}

impl Add for InteractionCounts {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            pp: self.pp + o.pp,
            pc: self.pc + o.pc,
        }
    }
}

impl AddAssign for InteractionCounts {
    fn add_assign(&mut self, o: Self) {
        self.pp += o.pp;
        self.pc += o.pc;
    }
}

impl std::iter::Sum for InteractionCounts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_arithmetic_matches_paper() {
        let c = InteractionCounts { pp: 10, pc: 3 };
        assert_eq!(c.flops(), 10 * 23 + 3 * 65);
    }

    #[test]
    fn per_particle_rates() {
        let c = InteractionCounts { pp: 100, pc: 50 };
        let (pp, pc) = c.per_particle(10);
        assert_eq!(pp, 10.0);
        assert_eq!(pc, 5.0);
        assert_eq!(c.per_particle(0), (0.0, 0.0));
    }

    #[test]
    fn counts_sum() {
        let a = InteractionCounts { pp: 1, pc: 2 };
        let b = InteractionCounts { pp: 10, pc: 20 };
        let s: InteractionCounts = [a, b].into_iter().sum();
        assert_eq!(s, InteractionCounts { pp: 11, pc: 22 });
    }

    #[test]
    fn forces_accumulate_and_scale() {
        let mut f = Forces::zeros(2);
        let mut g = Forces::zeros(2);
        g.acc[0] = Vec3::new(1.0, 0.0, 0.0);
        g.pot[1] = -3.0;
        f.accumulate(&g);
        f.accumulate(&g);
        f.scale(0.5);
        assert_eq!(f.acc[0], Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(f.pot[1], -3.0);
    }

    #[test]
    fn error_metrics() {
        let mut a = Forces::zeros(2);
        let mut b = Forces::zeros(2);
        a.acc[0] = Vec3::new(1.0, 0.0, 0.0);
        b.acc[0] = Vec3::new(1.1, 0.0, 0.0);
        a.acc[1] = Vec3::new(0.0, 2.0, 0.0);
        b.acc[1] = Vec3::new(0.0, 2.0, 0.0);
        let max = b.max_rel_acc_error(&a);
        assert!((max - 0.1).abs() < 1e-12);
        let rms = b.rms_rel_acc_error(&a);
        assert!((rms - (0.01f64 / 2.0).sqrt()).abs() < 1e-12);
    }
}
