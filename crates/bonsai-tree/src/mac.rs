//! The multipole acceptance criterion (MAC).
//!
//! The paper parameterizes acceptance by an opening angle θ (§I, citing [9]):
//! a cell of side `l` at distance `d` from the target may be used as a single
//! particle-cell interaction when
//!
//! ```text
//! d  >  l/θ + s
//! ```
//!
//! where `s = |com − geometric cell centre|` guards against cells whose mass
//! is concentrated far from their geometric centre (Barnes' "offset" MAC, the
//! variant Bonsai implements). Distances are measured from the target
//! *group's* tight bounding box to the cell's centre of mass, which makes the
//! test conservative for every particle in the group — the same trick the GPU
//! code uses so one warp shares one interaction list.
//!
//! θ → 0 degenerates to direct summation (everything opens); the paper's
//! production value is θ = 0.4, and the cost grows like θ⁻³ (§IV).

use crate::node::Node;
use bonsai_util::Aabb;

/// Precomputed opening criterion for a walk at fixed θ.
#[derive(Clone, Copy, Debug)]
pub struct OpeningCriterion {
    inv_theta: f64,
}

impl OpeningCriterion {
    /// Criterion for opening angle `theta`. `theta <= 0` means "always open"
    /// (degenerate direct summation).
    pub fn new(theta: f64) -> Self {
        Self {
            inv_theta: if theta > 0.0 { 1.0 / theta } else { f64::INFINITY },
        }
    }

    /// `true` if the cell must be **opened** (descended into) for any target
    /// inside `target_box`.
    #[inline(always)]
    pub fn must_open(&self, target_box: &Aabb, node: &Node) -> bool {
        if !self.inv_theta.is_finite() {
            return true;
        }
        let s = (node.com - node.geo_center).norm();
        let crit = node.geo_side() * self.inv_theta + s;
        let d2 = target_box.min_dist2_point(node.com);
        d2 <= crit * crit
    }

    /// Point-target variant (used by accuracy sweeps on single particles).
    #[inline(always)]
    pub fn must_open_point(&self, target: bonsai_util::Vec3, node: &Node) -> bool {
        if !self.inv_theta.is_finite() {
            return true;
        }
        let s = (node.com - node.geo_center).norm();
        let crit = node.geo_side() * self.inv_theta + s;
        node.com.distance2(target) <= crit * crit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use bonsai_util::{Sym3, Vec3};

    fn cell_at(center: Vec3, half: f64, com: Vec3) -> Node {
        Node {
            com,
            mass: 1.0,
            quad: Sym3::zero(),
            bbox: Aabb::cube(center, half),
            geo_center: center,
            geo_half: half,
            first: 0,
            count: 0,
            kind: NodeKind::Internal,
            level: 1,
        }
    }

    #[test]
    fn far_cells_are_accepted() {
        let mac = OpeningCriterion::new(0.5);
        let node = cell_at(Vec3::zero(), 0.5, Vec3::zero());
        // crit = 1/0.5 = 2; a target 10 away must accept.
        let tgt = Aabb::cube(Vec3::new(10.0, 0.0, 0.0), 0.1);
        assert!(!mac.must_open(&tgt, &node));
    }

    #[test]
    fn near_cells_must_open() {
        let mac = OpeningCriterion::new(0.5);
        let node = cell_at(Vec3::zero(), 0.5, Vec3::zero());
        let tgt = Aabb::cube(Vec3::new(1.5, 0.0, 0.0), 0.1);
        assert!(mac.must_open(&tgt, &node));
    }

    #[test]
    fn smaller_theta_opens_more() {
        let node = cell_at(Vec3::zero(), 0.5, Vec3::zero());
        let tgt = Aabb::cube(Vec3::new(3.0, 0.0, 0.0), 0.1);
        // θ=0.8: crit = 1.25 → accept. θ=0.2: crit = 5 → open.
        assert!(!OpeningCriterion::new(0.8).must_open(&tgt, &node));
        assert!(OpeningCriterion::new(0.2).must_open(&tgt, &node));
    }

    #[test]
    fn com_offset_makes_test_stricter() {
        let centered = cell_at(Vec3::zero(), 0.5, Vec3::zero());
        let offset = cell_at(Vec3::zero(), 0.5, Vec3::new(0.45, 0.0, 0.0));
        let tgt = Aabb::cube(Vec3::new(2.4, 0.0, 0.0), 0.01);
        let mac = OpeningCriterion::new(0.5);
        // Same geometric cell: the offset-COM one must be opened although the
        // centred one is accepted (distance measured to COM: 2.39 vs crit
        // 2.0 for centred, 1.94 vs crit 2.45 for offset).
        assert!(!mac.must_open(&tgt, &centered));
        assert!(mac.must_open(&tgt, &offset));
    }

    #[test]
    fn zero_theta_always_opens() {
        let mac = OpeningCriterion::new(0.0);
        let node = cell_at(Vec3::zero(), 0.1, Vec3::zero());
        let tgt = Aabb::cube(Vec3::splat(1e9), 0.1);
        assert!(mac.must_open(&tgt, &node));
    }

    #[test]
    fn group_test_is_conservative_for_members() {
        // If the group box accepts, every point in the box accepts.
        let mac = OpeningCriterion::new(0.7);
        let node = cell_at(Vec3::zero(), 0.5, Vec3::new(0.1, -0.2, 0.0));
        let tgt = Aabb::new(Vec3::new(2.0, 1.0, -1.0), Vec3::new(4.0, 3.0, 1.0));
        if !mac.must_open(&tgt, &node) {
            for &p in &[tgt.min, tgt.max, tgt.center(), Vec3::new(2.0, 3.0, 1.0)] {
                assert!(!mac.must_open_point(p, &node));
            }
        } else {
            // The nearest corner must also open it.
            assert!(mac.must_open_point(Vec3::new(2.0, 1.0, -1.0), &node));
        }
    }
}
