//! Group-based tree walk with on-the-fly force evaluation.
//!
//! This is the CPU analogue of Bonsai's fused tree-walk + force kernel
//! (§III-A): interaction lists are never written to memory; each accepted
//! cell or opened leaf is consumed immediately, and the only outputs are the
//! accumulated `(φ, a)` per target plus the interaction counts that feed the
//! performance model. Work fans out over target groups onto the `bonsai-par`
//! work-stealing pool — the role the GPU's warps play in the paper — with
//! each group owning a disjoint output window, so results are bit-identical
//! at any thread count (see the `bonsai-par` crate docs for the
//! deterministic-reduction contract the stats reduction relies on).
//!
//! The walk takes *any* [`TreeView`] as the source: a rank's own local tree,
//! or a received Local Essential Tree. Summing the resulting [`Forces`] over
//! all sources reproduces the global gravitational field — the key
//! correctness property the integration tests assert.

use crate::forces::{Forces, InteractionCounts};
use crate::kernels::{p_c, p_p, p_p_batch};
use crate::mac::OpeningCriterion;
use crate::node::{Group, NodeKind, TreeView};
use bonsai_util::Vec3;
use rayon::prelude::*;

/// Parameters of a force walk.
#[derive(Clone, Copy, Debug)]
pub struct WalkParams {
    /// Opening angle; the paper's production value is 0.4.
    pub theta: f64,
    /// Plummer softening length (same units as positions).
    pub eps: f64,
    /// Gravitational constant applied to the results (1 for N-body units,
    /// `bonsai_util::units::G` for galactic units).
    pub g: f64,
    /// Evaluate quadrupole corrections in particle-cell interactions (the
    /// paper's 65-flop kernel). Disable for the monopole-only ablation.
    pub use_quadrupole: bool,
}

impl WalkParams {
    /// N-body-unit parameters (G = 1), quadrupoles on.
    pub fn new(theta: f64, eps: f64) -> Self {
        Self {
            theta,
            eps,
            g: 1.0,
            use_quadrupole: true,
        }
    }

    /// Use galactic units (G in kpc (km/s)²/M☉).
    pub fn with_galactic_g(mut self) -> Self {
        self.g = bonsai_util::units::G;
        self
    }

    /// Disable quadrupole corrections (monopole-only cells).
    pub fn monopole_only(mut self) -> Self {
        self.use_quadrupole = false;
        self
    }
}

impl Default for WalkParams {
    fn default() -> Self {
        Self {
            theta: 0.4,
            eps: 0.0,
            g: 1.0,
            use_quadrupole: true,
        }
    }
}

/// Per-walk diagnostics beyond the raw interaction counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkStats {
    /// Interactions evaluated.
    pub counts: InteractionCounts,
    /// Nodes popped from traversal stacks.
    pub nodes_visited: u64,
    /// `Cut` LET nodes that *failed* the MAC and were force-used as p-c;
    /// nonzero values indicate an insufficient LET (a bug upstream).
    pub forced_cuts: u64,
}

impl WalkStats {
    /// Merge another stats record.
    pub fn merge(&mut self, o: &WalkStats) {
        self.counts += o.counts;
        self.nodes_visited += o.nodes_visited;
        self.forced_cuts += o.forced_cuts;
    }
}

/// Compute forces exerted by `src` on the targets `tgt_pos`, walking one
/// interaction list per `group`. Returns per-target forces (G applied) and
/// walk statistics.
///
/// `groups` must tile `0..tgt_pos.len()` contiguously and in order.
pub fn walk_tree(
    src: &TreeView<'_>,
    tgt_pos: &[Vec3],
    groups: &[Group],
    params: &WalkParams,
) -> (Forces, WalkStats) {
    let n = tgt_pos.len();
    let mut forces = Forces::zeros(n);
    if src.is_empty() || n == 0 {
        return (forces, WalkStats::default());
    }
    let mac = OpeningCriterion::new(params.theta);
    let eps2 = params.eps * params.eps;

    // Split the output arrays at group boundaries so every group owns a
    // disjoint mutable window (groups tile the target range).
    let mut acc_chunks: Vec<&mut [Vec3]> = Vec::with_capacity(groups.len());
    let mut pot_chunks: Vec<&mut [f64]> = Vec::with_capacity(groups.len());
    {
        let mut acc_rest: &mut [Vec3] = &mut forces.acc;
        let mut pot_rest: &mut [f64] = &mut forces.pot;
        let mut cursor = 0u32;
        for g in groups {
            assert_eq!(g.begin, cursor, "groups must tile the targets in order");
            let len = g.len();
            let (a, ar) = acc_rest.split_at_mut(len);
            let (p, pr) = pot_rest.split_at_mut(len);
            acc_chunks.push(a);
            pot_chunks.push(p);
            acc_rest = ar;
            pot_rest = pr;
            cursor = g.end;
        }
        assert_eq!(cursor as usize, n, "groups must cover every target");
    }

    let stats = groups
        .par_iter()
        .zip(acc_chunks.into_par_iter().zip(pot_chunks.into_par_iter()))
        .map(|(group, (acc, pot))| {
            walk_group(src, tgt_pos, group, &mac, eps2, params.use_quadrupole, acc, pot)
        })
        .reduce(WalkStats::default, |mut a, b| {
            a.merge(&b);
            a
        });

    if params.g != 1.0 {
        forces.scale(params.g);
    }
    (forces, stats)
}

/// Walk a single group: iterative stack traversal, immediate evaluation.
fn walk_group(
    src: &TreeView<'_>,
    tgt_pos: &[Vec3],
    group: &Group,
    mac: &OpeningCriterion,
    eps2: f64,
    use_quadrupole: bool,
    acc: &mut [Vec3],
    pot: &mut [f64],
) -> WalkStats {
    const ZERO_QUAD: bonsai_util::Sym3 = bonsai_util::Sym3 { m: [0.0; 6] };
    let mut stats = WalkStats::default();
    let targets = &tgt_pos[group.begin as usize..group.end as usize];
    let mut stack: Vec<u32> = vec![0];
    while let Some(ni) = stack.pop() {
        let node = &src.nodes[ni as usize];
        stats.nodes_visited += 1;
        if node.mass == 0.0 {
            continue;
        }
        let open = mac.must_open(&group.bbox, node);
        match node.kind {
            _ if !open => {
                // Accepted: one particle-cell interaction per target.
                let quad = if use_quadrupole { &node.quad } else { &ZERO_QUAD };
                for (i, &t) in targets.iter().enumerate() {
                    let (dphi, da) = p_c(t, node.com, node.mass, quad, eps2);
                    pot[i] += dphi;
                    acc[i] += da;
                }
                stats.counts.pc += targets.len() as u64;
            }
            NodeKind::Internal => {
                for c in node.first..node.first + node.count {
                    stack.push(c);
                }
            }
            NodeKind::Leaf => {
                let (b, e) = (node.first as usize, (node.first + node.count) as usize);
                match src.soa {
                    // SoA source store: evaluate the whole leaf batch per
                    // target with the vectorizable kernel. Same per-source
                    // operations in the same order as the scalar loop, so
                    // the accumulated values are bit-identical to it.
                    Some(soa) => {
                        let masses = &src.mass[b..e];
                        for (i, &t) in targets.iter().enumerate() {
                            let (dphi, da) = p_p_batch(
                                t,
                                &soa.x[b..e],
                                &soa.y[b..e],
                                &soa.z[b..e],
                                masses,
                                eps2,
                            );
                            pot[i] += dphi;
                            acc[i] += da;
                        }
                    }
                    None => {
                        for (i, &t) in targets.iter().enumerate() {
                            let (mut dphi, mut da) = (0.0, Vec3::zero());
                            for j in b..e {
                                let (p, a) = p_p(t, src.pos[j], src.mass[j], eps2);
                                dphi += p;
                                da += a;
                            }
                            pot[i] += dphi;
                            acc[i] += da;
                        }
                    }
                }
                stats.counts.pp += (targets.len() * (e - b)) as u64;
            }
            NodeKind::Cut => {
                // The LET promised this node would never be opened; honour
                // the promise with a p-c but record the violation.
                let quad = if use_quadrupole { &node.quad } else { &ZERO_QUAD };
                for (i, &t) in targets.iter().enumerate() {
                    let (dphi, da) = p_c(t, node.com, node.mass, quad, eps2);
                    pot[i] += dphi;
                    acc[i] += da;
                }
                stats.counts.pc += targets.len() as u64;
                stats.forced_cuts += 1;
            }
        }
    }
    stats
}

/// Convenience: forces of a tree on its *own* particles (sorted order).
pub fn self_gravity(tree: &crate::build::Tree, params: &WalkParams) -> (Forces, WalkStats) {
    walk_tree(&tree.view(), &tree.particles.pos, &tree.groups, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{Tree, TreeParams};
    use crate::direct::direct_self_forces;
    use crate::particles::Particles;
    use bonsai_util::rng::Xoshiro256;

    fn plummer_like(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            // Centrally concentrated blob: exponential radii.
            let r = -0.3 * rng.uniform_open0().ln();
            let dir = rng.unit_sphere();
            p.push(dir * r, Vec3::zero(), 1.0 / n as f64, i as u64);
        }
        p
    }

    #[test]
    fn tree_forces_converge_to_direct_as_theta_shrinks() {
        let n = 800;
        let tree = Tree::build(plummer_like(n, 1), TreeParams::default());
        let (direct, _) = direct_self_forces(&tree.particles, 0.01, 1.0);
        let mut prev_err = f64::INFINITY;
        for &theta in &[0.8, 0.4, 0.2] {
            let (forces, _) = self_gravity(&tree, &WalkParams::new(theta, 0.01));
            let err = forces.rms_rel_acc_error(&direct);
            assert!(err < prev_err, "error must shrink with theta: {err} !< {prev_err}");
            prev_err = err;
        }
        // θ = 0.4 should already be quite accurate with quadrupoles.
        let (forces, _) = self_gravity(&tree, &WalkParams::new(0.4, 0.01));
        assert!(forces.rms_rel_acc_error(&direct) < 2e-3);
    }

    #[test]
    fn zero_theta_walk_equals_direct() {
        let tree = Tree::build(plummer_like(200, 2), TreeParams::default());
        let (direct, dc) = direct_self_forces(&tree.particles, 0.05, 1.0);
        let (forces, ws) = self_gravity(&tree, &WalkParams::new(0.0, 0.05));
        assert!(forces.max_rel_acc_error(&direct) < 1e-12);
        // All interactions degenerate to p-p and the counts agree with
        // direct summation (including self-pairs the kernel skips).
        assert_eq!(ws.counts.pc, 0);
        assert_eq!(ws.counts.pp, dc.pp + tree.len() as u64); // walk visits self too
    }

    #[test]
    fn interaction_cost_grows_as_theta_shrinks() {
        let tree = Tree::build(plummer_like(3000, 3), TreeParams::default());
        let mut prev = 0u64;
        for &theta in &[0.8, 0.55, 0.4] {
            let (_, ws) = self_gravity(&tree, &WalkParams::new(theta, 0.01));
            assert!(ws.counts.flops() > prev, "flops must grow as theta shrinks");
            prev = ws.counts.flops();
        }
    }

    #[test]
    fn forces_are_finite_and_sum_to_zero() {
        // Momentum conservation: Σ m a ≈ 0 for self-gravity at θ=0 (exact
        // pairwise antisymmetry); small at finite θ.
        let tree = Tree::build(plummer_like(500, 4), TreeParams::default());
        let (forces, _) = self_gravity(&tree, &WalkParams::new(0.0, 0.02));
        let mut net = Vec3::zero();
        let mut scale = 0.0;
        for i in 0..tree.len() {
            assert!(forces.acc[i].is_finite());
            net += forces.acc[i] * tree.particles.mass[i];
            scale += (forces.acc[i] * tree.particles.mass[i]).norm();
        }
        assert!(net.norm() < 1e-12 * scale, "net force {net} vs scale {scale}");
    }

    #[test]
    fn g_scaling_applies() {
        let tree = Tree::build(plummer_like(100, 5), TreeParams::default());
        let (f1, _) = self_gravity(&tree, &WalkParams::new(0.4, 0.01));
        let p2 = WalkParams {
            g: 2.0,
            ..WalkParams::new(0.4, 0.01)
        };
        let (f2, _) = self_gravity(&tree, &p2);
        for i in 0..tree.len() {
            assert!((f2.acc[i] - f1.acc[i] * 2.0).norm() < 1e-12 * f1.acc[i].norm().max(1e-30));
            assert!((f2.pot[i] - f1.pot[i] * 2.0).abs() < 1e-12 * f1.pot[i].abs().max(1e-30));
        }
    }

    #[test]
    fn monopole_only_is_less_accurate_at_same_theta() {
        let tree = Tree::build(plummer_like(1500, 9), TreeParams::default());
        let (direct, _) = direct_self_forces(&tree.particles, 0.01, 1.0);
        let params = WalkParams::new(0.5, 0.01);
        let (fq, cq) = self_gravity(&tree, &params);
        let (fm, cm) = self_gravity(&tree, &params.monopole_only());
        let eq = fq.rms_rel_acc_error(&direct);
        let em = fm.rms_rel_acc_error(&direct);
        assert!(
            em > 3.0 * eq,
            "monopole ({em}) should be much worse than quadrupole ({eq})"
        );
        // Same traversal, same interaction counts — only the kernel differs.
        assert_eq!(cq.counts, cm.counts);
    }

    #[test]
    fn empty_inputs() {
        let tree = Tree::build(Particles::new(), TreeParams::default());
        let (f, ws) = self_gravity(&tree, &WalkParams::default());
        assert!(f.is_empty());
        assert_eq!(ws.counts, InteractionCounts::zero());
    }

    #[test]
    fn walk_against_foreign_targets() {
        // Source tree and an unrelated set of probe targets: compare with a
        // brute-force sum over the sources.
        let src_tree = Tree::build(plummer_like(600, 6), TreeParams::default());
        let mut rng = Xoshiro256::seed_from(7);
        let probes: Vec<Vec3> = (0..64).map(|_| rng.unit_sphere() * 3.0).collect();
        let groups = vec![crate::node::Group {
            begin: 0,
            end: probes.len() as u32,
            bbox: bonsai_util::Aabb::from_points(&probes),
        }];
        let (f, _) = walk_tree(&src_tree.view(), &probes, &groups, &WalkParams::new(0.3, 0.0));
        // brute force
        for (i, &t) in probes.iter().enumerate() {
            let mut a = Vec3::zero();
            for j in 0..src_tree.len() {
                let (_, da) = p_p(t, src_tree.particles.pos[j], src_tree.particles.mass[j], 0.0);
                a += da;
            }
            let err = (f.acc[i] - a).norm() / a.norm();
            assert!(err < 5e-3, "probe {i}: err {err}");
        }
    }
}
