//! # bonsai-tree
//!
//! The Barnes–Hut octree engine at the heart of the reproduction: everything
//! the paper's GPU executes (§III-A) — SFC sort, tree construction, multipole
//! computation, and the fused tree-walk + force kernel — implemented as a
//! multithreaded CPU library (key mapping, the multipole pass, the walk's
//! group fan-out and direct summation all run on the `bonsai-par`
//! work-stealing pool, with deterministic reductions keeping every result
//! bit-identical at any thread count) with exact interaction accounting so
//! the device-model crate (`bonsai-gpu`) can convert the same operation
//! counts the paper reports into simulated device time.
//!
//! Pipeline (mirroring Bonsai's GPU stages):
//!
//! 1. [`particles::Particles`] — structure-of-arrays particle storage;
//! 2. [`build::Tree::build`] — sort by SFC key, then split key ranges by
//!    3-bit octant digits until ≤ `NLEAF` (= 16, §I) particles per leaf;
//! 3. multipole upward pass — monopole + quadrupole per cell (paper Eq. 1–2);
//! 4. [`walk`] — group-based (warp-like) tree walk with the opening-angle
//!    multipole acceptance criterion, counting every particle-particle
//!    (23 flop) and particle-cell (65 flop) interaction;
//! 5. [`direct`] — the O(N²) reference used for accuracy tests and the
//!    direct-kernel bar of the paper's Fig. 1.
//!
//! ```
//! use bonsai_tree::build::{Tree, TreeParams};
//! use bonsai_tree::walk::{self, WalkParams};
//! use bonsai_ic::plummer_sphere;
//!
//! // Build the octree over a small star cluster and evaluate self-gravity
//! // at the paper's production opening angle.
//! let tree = Tree::build(plummer_sphere(500, 42), TreeParams::default());
//! let (forces, stats) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01));
//! assert_eq!(forces.len(), 500);
//! assert!(stats.counts.pp > 0 && stats.counts.pc > 0);
//! // flops are charged at the §VI-A rates: 23 per p-p, 65 per p-c
//! assert_eq!(stats.counts.flops(), 23 * stats.counts.pp + 65 * stats.counts.pc);
//! ```

#![deny(missing_docs)]

pub mod build;
pub mod direct;
pub mod forces;
pub mod kernels;
pub mod mac;
pub mod node;
pub mod particles;
pub mod stats;
pub mod walk;

pub use build::{Tree, TreeParams};
pub use forces::{Forces, InteractionCounts};
pub use mac::OpeningCriterion;
pub use node::{Node, TreeView};
pub use particles::Particles;
pub use walk::{walk_tree, WalkParams};

/// The paper's leaf capacity: octants are split until they hold fewer than
/// this many particles (§I cites [9] for the choice of 16).
pub const NLEAF: usize = 16;

/// Flops charged per particle-particle interaction (§VI-A: 4 sub, 3 mul,
/// 6 fma, 1 rsqrt counted as 4).
pub const PP_FLOPS: u64 = 23;

/// Flops charged per particle-cell interaction with quadrupole corrections
/// (§VI-A: 4 sub, 6 add, 17 mul, 17 fma, 1 rsqrt counted as 4).
pub const PC_FLOPS: u64 = 65;

#[cfg(test)]
mod flop_accounting {
    use super::*;

    #[test]
    fn pp_instruction_mix_sums_to_23() {
        let (sub, mul, fma, rsqrt) = (4u64, 3, 6, 1);
        assert_eq!(sub + mul + 2 * fma + 4 * rsqrt, PP_FLOPS);
    }

    #[test]
    fn pc_instruction_mix_sums_to_65() {
        let (sub, add, mul, fma, rsqrt) = (4u64, 6, 17, 17, 1);
        assert_eq!(sub + add + mul + 2 * fma + 4 * rsqrt, PC_FLOPS);
    }
}
