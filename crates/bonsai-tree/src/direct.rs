//! Direct O(N²) summation — the accuracy reference and the "direct N-body
//! kernel" whose device performance appears alongside the tree kernel in the
//! paper's Fig. 1.

use crate::forces::{Forces, InteractionCounts};
use crate::kernels::{p_p_batch, split_soa};
use crate::particles::Particles;
use bonsai_util::{KahanSum, Vec3};
use rayon::prelude::*;

/// Forces of `src` particles on `tgt` positions by direct summation, using
/// the vectorizable batched kernel per target.
///
/// If `skip_same_index` is true, pair `(i, i)` is skipped by *index* — use
/// this when `tgt` and `src` are the same set in the same order. (The batch
/// kernel masks zero-distance pairs, which covers the self term; a distinct
/// source coincident with its target is also masked — physically a zero
/// force anyway, see `kernels::p_p`.)
pub fn direct_forces(
    tgt: &[Vec3],
    src_pos: &[Vec3],
    src_mass: &[f64],
    eps: f64,
    g: f64,
    skip_same_index: bool,
) -> (Forces, InteractionCounts) {
    assert_eq!(src_pos.len(), src_mass.len());
    let eps2 = eps * eps;
    let (sx, sy, sz) = split_soa(src_pos);
    let mut forces = Forces::zeros(tgt.len());
    forces
        .acc
        .par_iter_mut()
        .zip(forces.pot.par_iter_mut())
        .enumerate()
        .for_each(|(i, (acc, pot))| {
            let (p, a) = p_p_batch(tgt[i], &sx, &sy, &sz, src_mass, eps2);
            // Softened self term: the mask removed pair (i,i) entirely, which
            // is exactly the skip_same_index semantics; when the caller does
            // NOT want index skipping (disjoint sets), a coincident source
            // still contributes nothing — identical to the scalar kernel.
            let _ = skip_same_index;
            *acc = a * g;
            *pot = p * g;
        });
    let n = tgt.len() as u64;
    let m = src_pos.len() as u64;
    let pp = if skip_same_index { n * m - n } else { n * m };
    (forces, InteractionCounts { pp, pc: 0 })
}

/// Self-gravity of a particle set by direct summation.
pub fn direct_self_forces(particles: &Particles, eps: f64, g: f64) -> (Forces, InteractionCounts) {
    direct_forces(&particles.pos, &particles.pos, &particles.mass, eps, g, true)
}

/// Total potential energy `½ Σᵢ mᵢ φᵢ` by direct summation (Kahan-compensated).
pub fn potential_energy(particles: &Particles, eps: f64, g: f64) -> f64 {
    let (forces, _) = direct_self_forces(particles, eps, g);
    let mut k = KahanSum::new();
    for i in 0..particles.len() {
        k.add(0.5 * particles.mass[i] * forces.pot[i]);
    }
    k.value()
}

/// Total energy (kinetic + potential) by direct summation.
pub fn total_energy(particles: &Particles, eps: f64, g: f64) -> f64 {
    particles.kinetic_energy() + potential_energy(particles, eps, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> Particles {
        let mut p = Particles::new();
        p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0, 0);
        p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0, 1);
        p
    }

    #[test]
    fn two_body_forces() {
        let (f, c) = direct_self_forces(&two_body(), 0.0, 1.0);
        // |a| = m/r² = 1/4, attracting.
        assert!((f.acc[0].x + 0.25).abs() < 1e-15);
        assert!((f.acc[1].x - 0.25).abs() < 1e-15);
        assert!((f.pot[0] + 0.5).abs() < 1e-15);
        assert_eq!(c.pp, 2);
    }

    #[test]
    fn newtons_third_law() {
        let mut p = two_body();
        p.push(Vec3::new(0.0, 2.0, 1.0), Vec3::zero(), 3.0, 2);
        let (f, _) = direct_self_forces(&p, 0.0, 1.0);
        let net: Vec3 = (0..3).map(|i| f.acc[i] * p.mass[i]).sum();
        assert!(net.norm() < 1e-14);
    }

    #[test]
    fn two_body_energy() {
        // E = 2·(½·1·0.25) + ½(m0 φ0 + m1 φ1) = 0.25 - 0.5
        let e = total_energy(&two_body(), 0.0, 1.0);
        assert!((e + 0.25).abs() < 1e-14);
    }

    #[test]
    fn g_factor_scales_linearly() {
        let p = two_body();
        let e1 = total_energy(&p, 0.0, 1.0);
        let e2 = total_energy(&p, 0.0, 2.0);
        let ke = p.kinetic_energy();
        assert!(((e2 - ke) - 2.0 * (e1 - ke)).abs() < 1e-14);
    }

    #[test]
    fn cross_set_forces_count() {
        let p = two_body();
        let probes = [Vec3::new(0.0, 5.0, 0.0)];
        let (f, c) = direct_forces(&probes, &p.pos, &p.mass, 0.0, 1.0, false);
        assert_eq!(c.pp, 2);
        // Symmetric sources: x components cancel, net pull in -y.
        assert!(f.acc[0].x.abs() < 1e-15);
        assert!(f.acc[0].y < 0.0);
    }
}
