//! Structure-of-arrays particle storage.
//!
//! Positions, velocities and masses live in separate contiguous arrays so the
//! hot force kernels stream exactly the fields they touch — the CPU analogue
//! of the coalesced-access layout the paper's GPU kernels rely on. Every
//! particle carries a stable 64-bit id so tests can track identity across the
//! SFC reorderings and inter-rank exchanges.

use bonsai_util::{Aabb, Vec3};

/// Position components as three contiguous `f64` arrays — the layout the
/// batched walk kernel ([`crate::kernels::p_p_batch`]) streams. Built once
/// per tree from the sorted positions and cached alongside them.
#[derive(Clone, Debug, Default)]
pub struct PosSoa {
    /// X components.
    pub x: Vec<f64>,
    /// Y components.
    pub y: Vec<f64>,
    /// Z components.
    pub z: Vec<f64>,
}

impl PosSoa {
    /// Split an AoS position slice into component arrays.
    pub fn from_pos(pos: &[Vec3]) -> PosSoa {
        let mut soa = PosSoa {
            x: Vec::with_capacity(pos.len()),
            y: Vec::with_capacity(pos.len()),
            z: Vec::with_capacity(pos.len()),
        };
        for p in pos {
            soa.x.push(p.x);
            soa.y.push(p.y);
            soa.z.push(p.z);
        }
        soa
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if there are no positions.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// `true` if this SoA is a bitwise copy of `pos` (coherence check).
    pub fn matches(&self, pos: &[Vec3]) -> bool {
        self.len() == pos.len()
            && pos.iter().enumerate().all(|(i, p)| {
                self.x[i].to_bits() == p.x.to_bits()
                    && self.y[i].to_bits() == p.y.to_bits()
                    && self.z[i].to_bits() == p.z.to_bits()
            })
    }
}

/// A set of particles in structure-of-arrays layout.
#[derive(Clone, Debug, Default)]
pub struct Particles {
    /// Positions (kpc).
    pub pos: Vec<Vec3>,
    /// Velocities (km/s).
    pub vel: Vec<Vec3>,
    /// Masses (M☉).
    pub mass: Vec<f64>,
    /// Stable identity, unique within a simulation.
    pub id: Vec<u64>,
}

impl Particles {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty set with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if there are no particles.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Append one particle.
    pub fn push(&mut self, pos: Vec3, vel: Vec3, mass: f64, id: u64) {
        self.pos.push(pos);
        self.vel.push(vel);
        self.mass.push(mass);
        self.id.push(id);
    }

    /// Append all particles of `other`.
    pub fn extend_from(&mut self, other: &Particles) {
        self.pos.extend_from_slice(&other.pos);
        self.vel.extend_from_slice(&other.vel);
        self.mass.extend_from_slice(&other.mass);
        self.id.extend_from_slice(&other.id);
    }

    /// Remove and return the particle at `i` (order not preserved).
    pub fn swap_remove(&mut self, i: usize) -> (Vec3, Vec3, f64, u64) {
        (
            self.pos.swap_remove(i),
            self.vel.swap_remove(i),
            self.mass.swap_remove(i),
            self.id.swap_remove(i),
        )
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Mass-weighted centre of mass.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        if m == 0.0 {
            return Vec3::zero();
        }
        let mut c = Vec3::zero();
        for (&p, &w) in self.pos.iter().zip(&self.mass) {
            c += p * w;
        }
        c / m
    }

    /// Total momentum `Σ m v`.
    pub fn momentum(&self) -> Vec3 {
        let mut p = Vec3::zero();
        for (&v, &m) in self.vel.iter().zip(&self.mass) {
            p += v * m;
        }
        p
    }

    /// Total angular momentum `Σ m r × v` about the origin.
    pub fn angular_momentum(&self) -> Vec3 {
        let mut l = Vec3::zero();
        for i in 0..self.len() {
            l += self.pos[i].cross(self.vel[i]) * self.mass[i];
        }
        l
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        let mut k = bonsai_util::KahanSum::new();
        for (&v, &m) in self.vel.iter().zip(&self.mass) {
            k.add(0.5 * m * v.norm2());
        }
        k.value()
    }

    /// Tight bounding box of all positions.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.pos)
    }

    /// Apply a permutation: output slot `i` receives input slot `perm[i]`.
    /// `perm` must be a permutation of `0..len`.
    pub fn permute(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.len());
        self.pos = perm.iter().map(|&j| self.pos[j as usize]).collect();
        self.vel = perm.iter().map(|&j| self.vel[j as usize]).collect();
        self.mass = perm.iter().map(|&j| self.mass[j as usize]).collect();
        self.id = perm.iter().map(|&j| self.id[j as usize]).collect();
    }

    /// Split off the particles at the given (sorted, unique) indices into a
    /// new set, removing them from `self` while preserving the relative order
    /// of the survivors.
    pub fn drain_indices(&mut self, indices: &[usize]) -> Particles {
        let mut take = vec![false; self.len()];
        for &i in indices {
            take[i] = true;
        }
        let mut out = Particles::with_capacity(indices.len());
        let mut keep = Particles::with_capacity(self.len() - indices.len());
        for i in 0..self.len() {
            let dst = if take[i] { &mut out } else { &mut keep };
            dst.push(self.pos[i], self.vel[i], self.mass[i], self.id[i]);
        }
        *self = keep;
        out
    }

    /// Structural validity: equal array lengths, finite values, positive mass.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if self.vel.len() != n || self.mass.len() != n || self.id.len() != n {
            return Err(format!(
                "length mismatch: pos {} vel {} mass {} id {}",
                n,
                self.vel.len(),
                self.mass.len(),
                self.id.len()
            ));
        }
        for i in 0..n {
            if !self.pos[i].is_finite() || !self.vel[i].is_finite() {
                return Err(format!("non-finite state at {i}"));
            }
            if !(self.mass[i] > 0.0) {
                return Err(format!("non-positive mass at {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Particles {
        let mut p = Particles::new();
        p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 2.0, 10);
        p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), 2.0, 11);
        p.push(Vec3::new(0.0, 3.0, 0.0), Vec3::zero(), 1.0, 12);
        p
    }

    #[test]
    fn aggregates() {
        let p = sample();
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_mass(), 5.0);
        // COM: (2*1 - 2*1 + 0, 3*1, 0)/5
        assert_eq!(p.center_of_mass(), Vec3::new(0.0, 0.6, 0.0));
        assert_eq!(p.momentum(), Vec3::zero());
        // L = 2*(x̂ × ŷ) + 2*(-x̂ × -ŷ) = 4 ẑ
        assert_eq!(p.angular_momentum(), Vec3::new(0.0, 0.0, 4.0));
        assert_eq!(p.kinetic_energy(), 2.0);
    }

    #[test]
    fn permute_preserves_identity() {
        let mut p = sample();
        p.permute(&[2, 0, 1]);
        assert_eq!(p.id, vec![12, 10, 11]);
        assert_eq!(p.pos[0], Vec3::new(0.0, 3.0, 0.0));
        p.validate().unwrap();
    }

    #[test]
    fn drain_indices_splits() {
        let mut p = sample();
        let out = p.drain_indices(&[0, 2]);
        assert_eq!(out.id, vec![10, 12]);
        assert_eq!(p.id, vec![11]);
        assert_eq!(out.len() + p.len(), 3);
    }

    #[test]
    fn validate_catches_bad_mass() {
        let mut p = sample();
        p.mass[1] = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_nan() {
        let mut p = sample();
        p.pos[0].x = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bounds_are_tight() {
        let p = sample();
        let b = p.bounds();
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn extend_and_swap_remove() {
        let mut p = sample();
        let q = sample();
        p.extend_from(&q);
        assert_eq!(p.len(), 6);
        let (pos, _, m, id) = p.swap_remove(0);
        assert_eq!(pos, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(m, 2.0);
        assert_eq!(id, 10);
        assert_eq!(p.len(), 5);
    }
}
