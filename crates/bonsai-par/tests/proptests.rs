//! Property-based tests for the work-stealing pool: for arbitrary input
//! lengths, lane counts and workloads, the parallel combinators must agree
//! *exactly* with their sequential counterparts, panics must propagate
//! without deadlocking the pool, and nested joins must complete.

use bonsai_par::prelude::*;
use bonsai_par::{chunk_bounds, deterministic_chunks, join, ThreadPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn par_map_collect_matches_sequential(xs in proptest::collection::vec(any::<u64>(), 0..500),
                                          lanes in 1usize..9) {
        let expect: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(0x9E3779B97F4A7C15) ^ 17).collect();
        let got: Vec<u64> = ThreadPool::new(lanes).install(|| {
            xs.clone()
                .into_par_iter()
                .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) ^ 17)
                .collect()
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_float_reduce_is_lane_invariant(xs in proptest::collection::vec(0.0f64..1.0, 1..600),
                                          lanes in 2usize..9) {
        // The reduction tree is a function of length alone, so the sum must
        // be bit-identical on 1 lane and on `lanes` lanes — floats included.
        let one = ThreadPool::new(1).install(|| {
            xs.clone().into_par_iter().map(|x| 1.0 / (x + 0.5)).reduce(|| 0.0, |a, b| a + b)
        });
        let many = ThreadPool::new(lanes).install(|| {
            xs.clone().into_par_iter().map(|x| 1.0 / (x + 0.5)).reduce(|| 0.0, |a, b| a + b)
        });
        prop_assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn chunk_bounds_tile_exactly(n in 0usize..100_000, c in 1usize..200) {
        let bounds = chunk_bounds(n, c);
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(*bounds.last().unwrap(), n);
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1]);
            // Balanced: chunk sizes differ by at most one.
            prop_assert!(w[1] - w[0] <= n / c + 1);
        }
        let chunks = deterministic_chunks(n);
        prop_assert!(chunks >= 1 && chunks <= bonsai_par::MAX_CHUNKS.max(1));
    }

    #[test]
    fn nested_joins_complete(depth in 1usize..8, lanes in 1usize..5) {
        fn fib(n: usize) -> u64 {
            if n < 2 {
                return n as u64;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let expect = [0, 1, 1, 2, 3, 5, 8, 13][depth];
        let got = ThreadPool::new(lanes).install(|| fib(depth));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn panic_propagates_without_deadlock(xs in proptest::collection::vec(any::<u64>(), 1..300),
                                         lanes in 1usize..6) {
        let poison = xs[xs.len() / 2];
        let input = xs.clone();
        let result = std::panic::catch_unwind(move || {
            ThreadPool::new(lanes).install(|| {
                input.into_par_iter().for_each(|x| {
                    if x == poison {
                        panic!("boom");
                    }
                });
            })
        });
        prop_assert!(result.is_err(), "poisoned element must panic the caller");
        // The pool that hosted the panic must still be usable afterwards.
        let sum: u64 = ThreadPool::new(lanes)
            .install(|| xs.clone().into_par_iter().map(|x| x % 97).sum());
        let expect: u64 = xs.iter().map(|x| x % 97).sum();
        prop_assert_eq!(sum, expect);
    }

    #[test]
    fn for_each_visits_each_index_exactly_once(n in 0usize..2000, lanes in 1usize..9) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        ThreadPool::new(lanes).install(|| {
            (0..n).collect::<Vec<_>>().into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} hit count", i);
        }
    }
}
