//! `par_chunks` / `par_chunks_mut` extension traits for slices.
//!
//! Chunk *sizes here are caller-chosen* (they define the work items, e.g.
//! one tile of targets per chunk); determinism still holds because the
//! chunk list is a pure function of the slice length and the requested
//! size, and the engine underneath assigns results to indexed slots.

use crate::iter::{IntoParallelIterator, Par};

/// Adds [`par_chunks`](ParChunks::par_chunks) to slices.
pub trait ParChunks<T> {
    /// Parallel iterator over `size`-sized sub-slices (last may be short).
    fn par_chunks(&self, size: usize) -> Par<&[T]>;
}

impl<T> ParChunks<T> for [T] {
    fn par_chunks(&self, size: usize) -> Par<&[T]> {
        self.chunks(size).collect::<Vec<_>>().into_par_iter()
    }
}

/// Adds [`par_chunks_mut`](ParChunksMut::par_chunks_mut) to slices.
pub trait ParChunksMut<T> {
    /// Parallel iterator over exclusive `size`-sized sub-slices.
    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]>;
}

impl<T> ParChunksMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]> {
        self.chunks_mut(size).collect::<Vec<_>>().into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn chunked_writes_cover_the_slice() {
        let pool = ThreadPool::new(4);
        let mut v = vec![0u32; 103];
        pool.install(|| {
            v.par_chunks_mut(10)
                .enumerate()
                .for_each(|(j, chunk)| chunk.iter_mut().for_each(|x| *x = j as u32));
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32);
        }
        let sums: Vec<u32> = pool.install(|| {
            v.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect()
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums[0], 0);
        assert_eq!(sums[10], 3 * 10);
    }
}
