//! # bonsai-par
//!
//! A real work-stealing thread pool with **deterministic** parallel
//! iterators — the in-tree replacement for the sequential `rayon` stand-in
//! the workspace used to build against. The `shims/rayon` facade re-exports
//! this crate, so every `par_iter` call site in the tree build, walk and
//! direct-summation hot paths now executes on worker threads.
//!
//! ## The deterministic-reduction contract
//!
//! The repo's crown-jewel invariant is byte-determinism: every
//! `BENCH_*.json` artifact and the force oracle must be bit-identical run
//! to run *and thread count to thread count*. Parallel execution keeps that
//! promise by construction:
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose
//!    boundaries are a pure function of the input length
//!    ([`deterministic_chunks`] / [`chunk_bounds`]) — never of the thread
//!    count, the scheduler state, or timing. A sweep over 1..=N threads
//!    executes the exact same chunks, merely on different workers.
//! 2. **Exactly-once indexed results.** `map`/`collect`/`for_each` write
//!    each item's result into its own slot (or disjoint `&mut` window), so
//!    scheduling order cannot reorder visible effects.
//! 3. **Fixed-shape reductions.** [`iter::Par::reduce`] folds each chunk
//!    sequentially in item order, then combines the per-chunk partials
//!    along a fixed-shape binary tree (adjacent pairs, level by level).
//!    The floating-point summation order is therefore identical for every
//!    thread count, including one.
//!
//! Point 3 is the one that costs something: a chunked tree reduction is a
//! *different* summation order than a single left fold, so the chunk shape
//! is part of the numerical contract and must not be "tuned" per machine.
//! Integer reductions (interaction counts, node-visit counters) are exact
//! either way.
//!
//! ## Pool model
//!
//! [`pool::ThreadPool::new(t)`](pool::ThreadPool::new) provides `t`
//! execution lanes: `t − 1` spawned workers plus the calling thread, which
//! always helps execute while it waits. `t = 1` therefore runs strictly
//! inline — no worker threads, no synchronization — which is what makes the
//! 1-thread rung of the conformance sweep a true sequential baseline. Each
//! worker owns a deque; idle workers steal from siblings (oldest-first) or
//! from the shared injector, so an uneven walk group costs only the worker
//! that drew it. Panics inside tasks are caught, forwarded, and re-thrown
//! on the calling thread after the scope drains — a poisoned chunk never
//! deadlocks the pool.
//!
//! The default global pool sizes itself from the `BONSAI_THREADS`
//! environment variable (falling back to the machine's available
//! parallelism); [`pool::ThreadPool::install`] overrides it for a scope,
//! which is how the thread-sweep benches drive 1/2/4/8-lane runs inside
//! one process.

#![deny(missing_docs)]

pub mod iter;
pub mod pool;
pub mod slice;

pub use pool::{join, ThreadPool};

/// Upper bound on the number of chunks any single parallel call fans out
/// into. Part of the deterministic-reduction contract: chunk boundaries
/// derive from the input length and this constant only.
pub const MAX_CHUNKS: usize = 64;

/// Number of chunks used for an input of length `n` — a pure function of
/// `n` (never of thread count or timing), as the determinism contract
/// requires.
pub fn deterministic_chunks(n: usize) -> usize {
    n.min(MAX_CHUNKS).max(1)
}

/// Chunk boundaries for `n` items in `c` chunks: `c + 1` offsets starting
/// at 0 and ending at `n`, sizes differing by at most one, larger chunks
/// first. Fixed for a given `(n, c)`.
pub fn chunk_bounds(n: usize, c: usize) -> Vec<usize> {
    assert!(c >= 1);
    let base = n / c;
    let rem = n % c;
    let mut bounds = Vec::with_capacity(c + 1);
    let mut at = 0;
    bounds.push(0);
    for j in 0..c {
        at += base + usize::from(j < rem);
        bounds.push(at);
    }
    debug_assert_eq!(*bounds.last().unwrap(), n);
    bounds
}

/// The rayon-compatible prelude: traits that add the `par_*` methods.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par, ParMap,
    };
    pub use crate::slice::{ParChunks, ParChunksMut};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_tile_exactly() {
        for n in [0usize, 1, 2, 63, 64, 65, 1000, 4096] {
            let c = deterministic_chunks(n.max(1));
            let b = chunk_bounds(n, c);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), n);
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
                assert!(w[1] - w[0] <= n / c + 1);
            }
        }
    }

    #[test]
    fn chunk_count_is_a_function_of_length_only() {
        assert_eq!(deterministic_chunks(1), 1);
        assert_eq!(deterministic_chunks(63), 63);
        assert_eq!(deterministic_chunks(64), MAX_CHUNKS);
        assert_eq!(deterministic_chunks(1 << 20), MAX_CHUNKS);
    }
}
