//! The work-stealing thread pool.
//!
//! A pool with `t` lanes spawns `t − 1` worker threads; the calling thread
//! is always the remaining lane and helps execute while it waits, so
//! `t = 1` degenerates to strictly inline execution. Every worker owns a
//! deque: it pushes and pops its own work LIFO (cache-warm), while idle
//! threads steal FIFO from siblings or from the shared injector — the
//! crossbeam-deque discipline, implemented here over mutexed `VecDeque`s
//! because the workspace is offline and the critical sections are a few
//! pointer moves on coarse chunk-sized tasks.
//!
//! Scheduling is free to vary run to run; determinism is the *iterator*
//! layer's job (fixed chunks, indexed results, fixed-shape reductions — see
//! the crate docs). The pool only guarantees: every task runs exactly once,
//! scopes don't return until every task finished, and a panicking task is
//! re-thrown on the scoping thread instead of wedging a worker.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of work queued on the pool (lifetime-erased by [`Inner::scope`],
/// which cannot return before the task has run).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle thread sleeps between wake-up checks. A safety net on
/// top of explicit wake-ups, not the scheduling mechanism.
const IDLE_PARK: Duration = Duration::from_millis(20);

/// Shared pool state: queues, sleep machinery, shutdown flag.
struct Inner {
    /// One deque per spawned worker. Owners pop LIFO; thieves pop FIFO.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue for work submitted by non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Wake-up generation counter; bumped on every submission.
    work_gen: Mutex<u64>,
    /// Signalled (broadcast) whenever new work arrives or shutdown starts.
    work_cv: Condvar,
    /// Set once when the owning [`ThreadPool`] drops.
    shutdown: AtomicBool,
    /// Total execution lanes (spawned workers + the scoping thread).
    lanes: usize,
}

/// Completion state of one `scope` call.
struct ScopeState {
    /// Tasks not yet finished.
    remaining: AtomicUsize,
    /// First panic payload observed in any task of this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion flag + broadcast for the scoping thread.
    done: Mutex<bool>,
    done_cv: Condvar,
}

thread_local! {
    /// The pool this thread executes on: set permanently for workers
    /// (with their deque index), temporarily by [`ThreadPool::install`]
    /// for external threads (index `None`).
    static CURRENT: RefCell<Option<(Arc<Inner>, Option<usize>)>> = const { RefCell::new(None) };
}

/// A work-stealing thread pool; see the module docs for the model.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `lanes` execution lanes (`lanes − 1` spawned
    /// workers plus the scoping thread). `lanes` is clamped to at least 1.
    pub fn new(lanes: usize) -> ThreadPool {
        let lanes = lanes.max(1);
        let inner = Arc::new(Inner {
            deques: (1..lanes).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_gen: Mutex::new(0),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            lanes,
        });
        let workers = (0..lanes - 1)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bonsai-par-{idx}"))
                    .spawn(move || worker_main(inner, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, workers }
    }

    /// Pool sized from the `BONSAI_THREADS` environment variable, falling
    /// back to the machine's available parallelism.
    pub fn from_env() -> ThreadPool {
        ThreadPool::new(threads_from_env())
    }

    /// Number of execution lanes (spawned workers + the scoping thread).
    pub fn lanes(&self) -> usize {
        self.inner.lanes
    }

    /// Number of spawned worker threads (`lanes − 1`).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `f` with this pool as the thread's current pool: every
    /// `par_iter`/`join` reached from `f` executes here. Restores the
    /// previous current pool on exit (panic-safe).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<(Arc<Inner>, Option<usize>)>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let prev = CURRENT.with(|c| {
            c.borrow_mut()
                .replace((Arc::clone(&self.inner), None))
        });
        let _restore = Restore(prev);
        f()
    }

    /// Run `inline` on the calling thread while `tasks` execute on the
    /// pool, returning when **all** of them (and `inline`) have finished.
    /// The first panic from any of them is re-thrown here afterwards.
    pub fn scope<'s>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 's>>, inline: impl FnOnce()) {
        self.inner.scope(tasks, inline);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut g = self.inner.work_gen.lock().unwrap();
            *g += 1;
        }
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Thread count from `BONSAI_THREADS` (≥ 1), else available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("BONSAI_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The process-wide default pool (first use wins; sized by
/// [`threads_from_env`]).
fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::from_env)
}

/// The pool the current thread executes on: its own (worker threads and
/// `install` scopes), else the global default.
fn current_inner() -> (Arc<Inner>, Option<usize>) {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|(i, idx)| (Arc::clone(i), *idx))
            .unwrap_or_else(|| (Arc::clone(&global().inner), None))
    })
}

/// Lanes of the current thread's pool (used by the iterator layer to pick
/// the inline fast path).
pub(crate) fn current_lanes() -> usize {
    current_inner().0.lanes
}

/// Run lifetime-scoped tasks on the current pool alongside `inline` on the
/// calling thread; returns when every task completed. Crate-internal
/// engine behind the iterator terminals.
pub(crate) fn scope_current<'s>(
    tasks: Vec<Box<dyn FnOnce() + Send + 's>>,
    inline: impl FnOnce(),
) {
    let (inner, _) = current_inner();
    inner.scope(tasks, inline);
}

/// Run `a` on the calling thread and `b` on the pool (work-stealing
/// `join`): either may be stolen back and executed inline if no worker is
/// free. Panics propagate after both sides finish, `a`'s first.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
            rb = Some(b());
        });
        scope_current(vec![task], || ra = Some(a()));
    }
    (ra.unwrap(), rb.unwrap())
}

impl Inner {
    /// See [`ThreadPool::scope`]. Lifetime-erases the tasks; sound because
    /// this function does not return until `remaining == 0`, so every
    /// borrow a task carries outlives its execution.
    fn scope<'s>(
        self: &Arc<Inner>,
        tasks: Vec<Box<dyn FnOnce() + Send + 's>>,
        inline: impl FnOnce(),
    ) {
        let state = Arc::new(ScopeState {
            remaining: AtomicUsize::new(tasks.len()),
            panic: Mutex::new(None),
            done: Mutex::new(tasks.len() == 0),
            done_cv: Condvar::new(),
        });

        // Strictly inline when there is nobody to offload to: a 1-lane
        // pool is the true sequential baseline of the thread sweeps.
        if self.deques.is_empty() || tasks.is_empty() {
            let inline_panic = catch_unwind(AssertUnwindSafe(inline)).err();
            for t in tasks {
                if let Err(p) = catch_unwind(AssertUnwindSafe(t)) {
                    let mut slot = state.panic.lock().unwrap();
                    slot.get_or_insert(p);
                }
            }
            resume_scope_panics(inline_panic, &state);
            return;
        }

        let me = CURRENT.with(|c| c.borrow().as_ref().and_then(|(_, idx)| *idx));
        {
            // Queue the wrapped, lifetime-erased tasks. A worker queues on
            // its own deque (stealable from the front); external threads
            // queue on the injector.
            let wrapped: Vec<Task> = tasks
                .into_iter()
                .map(|t| {
                    let state = Arc::clone(&state);
                    let run: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
                        if let Err(p) = catch_unwind(AssertUnwindSafe(t)) {
                            let mut slot = state.panic.lock().unwrap();
                            slot.get_or_insert(p);
                        }
                        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let mut done = state.done.lock().unwrap();
                            *done = true;
                            state.done_cv.notify_all();
                        }
                    });
                    // SAFETY: `scope` blocks below until `remaining == 0`,
                    // i.e. until this closure (and the `'s` borrows inside
                    // it) has finished running on whatever thread took it.
                    unsafe {
                        std::mem::transmute::<
                            Box<dyn FnOnce() + Send + 's>,
                            Box<dyn FnOnce() + Send + 'static>,
                        >(run)
                    }
                })
                .collect();
            match me {
                Some(idx) => self.deques[idx].lock().unwrap().extend(wrapped),
                None => self.injector.lock().unwrap().extend(wrapped),
            }
            let mut g = self.work_gen.lock().unwrap();
            *g += 1;
            drop(g);
            self.work_cv.notify_all();
        }

        let inline_panic = catch_unwind(AssertUnwindSafe(inline)).err();

        // Help until the scope drains: execute own/stolen tasks while any
        // remain anywhere, park briefly when the only outstanding tasks are
        // already running on other threads.
        loop {
            if *state.done.lock().unwrap() {
                break;
            }
            if let Some(task) = self.find_task(me) {
                task();
                continue;
            }
            let done = state.done.lock().unwrap();
            if !*done {
                let _ = state
                    .done_cv
                    .wait_timeout(done, Duration::from_micros(200))
                    .unwrap();
            }
        }
        resume_scope_panics(inline_panic, &state);
    }

    /// Take one queued task, if any: own deque newest-first (when `me` is a
    /// worker), injector oldest-first, then steal oldest-first from
    /// sibling deques.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(idx) = me {
            if let Some(t) = self.deques[idx].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| (i + 1) % n.max(1));
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Re-throw the scope's panics on the scoping thread: the inline closure's
/// own panic first, else the first task panic.
fn resume_scope_panics(inline_panic: Option<Box<dyn Any + Send>>, state: &ScopeState) {
    let task_panic = state.panic.lock().unwrap().take();
    if let Some(p) = inline_panic.or(task_panic) {
        std::panic::resume_unwind(p);
    }
}

/// Worker main loop: run tasks while any are queued, park otherwise.
fn worker_main(inner: Arc<Inner>, idx: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), Some(idx))));
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Read the generation *before* scanning so a submission racing the
        // scan bumps it and the wait below falls through (no lost wake-up).
        let gen = *inner.work_gen.lock().unwrap();
        if let Some(task) = inner.find_task(Some(idx)) {
            task();
            continue;
        }
        let mut g = inner.work_gen.lock().unwrap();
        while *g == gen && !inner.shutdown.load(Ordering::SeqCst) {
            let (ng, _) = inner.work_cv.wait_timeout(g, IDLE_PARK).unwrap();
            g = ng;
            break; // rescan queues after any wake-up or timeout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_lane_scope_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 0);
        let mut hits = 0u32;
        {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| {});
            pool.scope(vec![task], || hits += 1);
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1 + i as u64, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks, || {});
        assert_eq!(counter.load(Ordering::Relaxed), (1..=100).sum::<u64>());
    }

    #[test]
    fn join_computes_both_sides() {
        let pool = ThreadPool::new(4);
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok"));
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn nested_joins_complete() {
        let pool = ThreadPool::new(2);
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn task_panic_propagates_without_deadlock() {
        let pool = ThreadPool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| panic!("task boom"));
            pool.scope(vec![task], || {});
        }));
        assert!(caught.is_err());
        // The pool survives and keeps executing afterwards.
        let (a, b) = pool.install(|| join(|| 1, || 2));
        assert_eq!(a + b, 3);
    }

    #[test]
    fn install_overrides_and_restores() {
        let one = ThreadPool::new(1);
        let four = ThreadPool::new(4);
        assert_eq!(one.install(super::current_lanes), 1);
        assert_eq!(four.install(super::current_lanes), 4);
        four.install(|| {
            assert_eq!(super::current_lanes(), 4);
            one.install(|| assert_eq!(super::current_lanes(), 1));
            assert_eq!(super::current_lanes(), 4);
        });
    }
}
