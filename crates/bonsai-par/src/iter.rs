//! Deterministic parallel iterators.
//!
//! [`Par`] holds the materialized items of a parallel computation; adapters
//! (`zip`, `enumerate`, `filter`) restructure that item list eagerly and
//! sequentially, while the work-carrying stages — [`Par::map`] (via
//! [`ParMap`]), [`Par::for_each`], [`Par::reduce`] — execute on the current
//! [`pool`](crate::pool) through the chunked engine:
//!
//! * items are split at [`chunk_bounds`](crate::chunk_bounds), a pure
//!   function of the input length;
//! * each chunk becomes one pool task whose result lands in the chunk's own
//!   slot, so scheduling cannot reorder anything observable;
//! * `reduce` folds within chunks in item order and combines the per-chunk
//!   partials along a fixed-shape adjacent-pair binary tree — the same
//!   floating-point order at every thread count, *including one* (the
//!   single-lane path still uses the chunked shape).
//!
//! Closures therefore need `Fn + Sync` (they are shared by reference across
//! worker threads) instead of the `FnMut` the old sequential stand-in
//! accepted; items and results need `Send`.

use crate::pool;
use crate::{chunk_bounds, deterministic_chunks};
use std::sync::Mutex;

/// A parallel iterator over an owned list of items.
pub struct Par<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage: the map closure runs on
/// the pool when a terminal (`collect`, `for_each`, `reduce`, `sum`) fires.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Split `items` into the deterministic chunk list for its length: chunk
/// count and boundaries depend on `items.len()` only.
fn split_chunks<T>(mut items: Vec<T>) -> Vec<Vec<T>> {
    let n = items.len();
    let c = deterministic_chunks(n);
    let bounds = chunk_bounds(n, c);
    let mut chunks = Vec::with_capacity(c);
    for j in (0..c).rev() {
        chunks.push(items.split_off(bounds[j]));
    }
    chunks.reverse();
    chunks
}

/// Run `work` once per chunk on the current pool and return the per-chunk
/// results in chunk order. The chunk shape is fixed by the input length;
/// only the *placement* of chunks on threads varies.
fn run_chunks<T, R, W>(items: Vec<T>, work: W) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(Vec<T>) -> R + Sync,
{
    let chunks = split_chunks(items);
    if chunks.len() == 1 || pool::current_lanes() == 1 {
        // Same chunks, executed in order on the calling thread.
        return chunks.into_iter().map(work).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    {
        let work = &work;
        let slots = &slots;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .enumerate()
            .map(|(j, chunk)| {
                Box::new(move || {
                    let r = work(chunk);
                    *slots[j].lock().unwrap() = Some(r);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::scope_current(tasks, || {});
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("chunk task ran"))
        .collect()
}

/// Combine per-chunk partials along a fixed-shape binary tree: adjacent
/// pairs, level by level, odd tail carried up unchanged. The shape is a
/// pure function of the partial count (itself a pure function of the input
/// length), so the combination order never varies.
fn combine_tree<R>(mut xs: Vec<R>, op: impl Fn(R, R) -> R) -> R {
    debug_assert!(!xs.is_empty());
    while xs.len() > 1 {
        let mut next = Vec::with_capacity(xs.len().div_ceil(2));
        let mut it = xs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(op(a, b)),
                None => next.push(a),
            }
        }
        xs = next;
    }
    xs.pop().unwrap()
}

/// Shared map+reduce engine: per-chunk `fold(identity(), op)` over mapped
/// items in order, then the fixed-shape combine.
fn map_reduce<T, R, M, ID, OP>(items: Vec<T>, m: M, identity: ID, op: OP) -> R
where
    T: Send,
    R: Send,
    M: Fn(T) -> R + Sync,
    ID: Fn() -> R + Sync,
    OP: Fn(R, R) -> R + Sync,
{
    let partials = run_chunks(items, |chunk| {
        chunk.into_iter().map(&m).fold(identity(), &op)
    });
    combine_tree(partials, op)
}

impl<T> Par<T> {
    /// Map each item; the closure runs on the pool at the terminal.
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Zip with another parallel iterator (truncating to the shorter).
    pub fn zip<U>(self, other: Par<U>) -> Par<(T, U)> {
        Par {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keep items matching the predicate (evaluated eagerly, in order).
    pub fn filter<F: FnMut(&T) -> bool>(self, f: F) -> Par<T> {
        Par {
            items: self.items.into_iter().filter(f).collect(),
        }
    }

    /// Consume every item with a side effect, in parallel over chunks.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        run_chunks(self.items, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Collect the items. Order is the item order by construction.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Deterministic rayon-style reduce: per-chunk fold from `identity`,
    /// fixed-shape binary combine of the partials (see the module docs).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        map_reduce(self.items, |t| t, identity, op)
    }

    /// Sum the items: per-chunk sums in item order, folded in chunk order.
    pub fn sum<S>(self) -> S
    where
        T: Send,
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        run_chunks(self.items, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

impl<T, F> ParMap<T, F> {
    /// Chain another map; the closures compose and both run on the pool.
    pub fn map<R, R2, G>(self, g: G) -> ParMap<T, impl Fn(T) -> R2>
    where
        F: Fn(T) -> R,
        G: Fn(R) -> R2,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Consume every mapped item with a side effect, in parallel.
    pub fn for_each<R, G>(self, g: G)
    where
        T: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_chunks(self.items, |chunk| {
            chunk.into_iter().for_each(|t| g(f(t)));
        });
    }

    /// Map on the pool and collect in item order.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        run_chunks(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Deterministic map+reduce (see [`Par::reduce`]).
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        map_reduce(self.items, self.f, identity, op)
    }

    /// Sum the mapped items (per-chunk sums in item order, chunk order
    /// fold — fixed for a given input length).
    pub fn sum<R, S>(self) -> S
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let f = self.f;
        run_chunks(self.items, |chunk| {
            chunk.into_iter().map(&f).sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::Item> {
        Par {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter` on shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared borrow of the container's elements).
    type Item;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Par<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> Par<Self::Item> {
        Par {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter_mut` on exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (an exclusive borrow of the container's elements).
    type Item;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Par<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    fn par_iter_mut(&'a mut self) -> Par<Self::Item> {
        Par {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = v.iter().map(|x| x * 3 + 1).collect();
        for lanes in [1, 2, 4, 8] {
            let pool = ThreadPool::new(lanes);
            let par: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(par, serial, "lanes={lanes}");
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_lane_counts() {
        // Floats chosen so that a *different* summation order would give a
        // different bit pattern; the chunked fixed-shape reduce must not.
        let v: Vec<f64> = (0..1777).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference = ThreadPool::new(1)
            .install(|| v.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b));
        for lanes in [2, 3, 4, 8] {
            let pool = ThreadPool::new(lanes);
            for _ in 0..5 {
                let s = pool.install(|| v.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b));
                assert_eq!(s.to_bits(), reference.to_bits(), "lanes={lanes}");
            }
        }
    }

    #[test]
    fn for_each_writes_disjoint_slots() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 500];
        pool.install(|| {
            out.par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot = i * i);
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn zip_and_ranges_work() {
        let pool = ThreadPool::new(3);
        let a: Vec<u32> = (0..100).collect();
        let s: u32 = pool.install(|| {
            (0u32..100)
                .into_par_iter()
                .zip(a.par_iter())
                .map(|(x, &y)| x + y)
                .sum()
        });
        assert_eq!(s, 2 * (0..100u32).sum::<u32>());
    }

    #[test]
    fn empty_input_reduces_to_identity() {
        let v: Vec<f64> = Vec::new();
        let s = v.into_par_iter().reduce(|| 42.0, |a, b| a + b);
        assert_eq!(s, 42.0);
    }

    #[test]
    fn combine_tree_shape_is_adjacent_pairs() {
        // With string concatenation the combine order is observable.
        let xs: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let joined = combine_tree(xs, |a, b| format!("({a}{b})"));
        assert_eq!(joined, "(((01)(23))4)");
    }
}
