//! Integration tests for the differential force oracle: the full
//! family × θ × kernel conformance sweep at the calibration scale
//! (N = 4096), the Fig. 2 qualitative orderings, and the proof that the
//! deliberate θ-inflation hook trips the tolerance bands.

use bonsai_verify::{measure, tolerance_band, ErrorPercentiles, Family, FAMILIES, THETA_SWEEP};

const N: usize = 4096;
const SEED: u64 = 42;

/// Run the whole sweep once and hand each observation to `visit`.
fn sweep(mut visit: impl FnMut(Family, f64, bool, ErrorPercentiles)) {
    for &family in &FAMILIES {
        for &theta in &THETA_SWEEP {
            for quadrupole in [true, false] {
                visit(
                    family,
                    theta,
                    quadrupole,
                    measure(family, N, SEED, theta, quadrupole, 1.0),
                );
            }
        }
    }
}

#[test]
fn full_sweep_stays_inside_tolerance_bands() {
    let mut violations = Vec::new();
    sweep(|family, theta, quadrupole, p| {
        if let Some(why) = tolerance_band(theta, quadrupole).violation(&p) {
            violations.push(format!(
                "{} θ={theta} {}: {why}",
                family.name(),
                if quadrupole { "quad" } else { "mono" }
            ));
        }
    });
    assert!(violations.is_empty(), "band violations:\n{}", violations.join("\n"));
}

#[test]
fn fig2_error_orderings_hold() {
    // Collect the sweep into a lookup keyed by (family, θ-index, kernel).
    let mut p95 = std::collections::HashMap::new();
    sweep(|family, theta, quadrupole, p| {
        p95.insert((family.name(), theta.to_bits(), quadrupole), p.p95);
    });
    for &family in &FAMILIES {
        // Ordering 1 (Fig. 2 x-axis): error grows monotonically with θ.
        for quadrupole in [true, false] {
            for w in THETA_SWEEP.windows(2) {
                let lo = p95[&(family.name(), w[0].to_bits(), quadrupole)];
                let hi = p95[&(family.name(), w[1].to_bits(), quadrupole)];
                assert!(
                    lo <= hi,
                    "{} quad={quadrupole}: p95(θ={}) = {lo:.3e} > p95(θ={}) = {hi:.3e}",
                    family.name(),
                    w[0],
                    w[1]
                );
            }
        }
        // Ordering 2 (Fig. 2 curve separation): quadrupole beats monopole
        // at every θ.
        for &theta in &THETA_SWEEP {
            let quad = p95[&(family.name(), theta.to_bits(), true)];
            let mono = p95[&(family.name(), theta.to_bits(), false)];
            assert!(
                quad <= mono,
                "{} θ={theta}: quadrupole p95 {quad:.3e} worse than monopole {mono:.3e}",
                family.name()
            );
        }
    }
}

#[test]
fn bands_are_seed_robust_at_production_theta() {
    // The bands carry ~4× headroom over the calibration seed; a different
    // realization of each family must not eat that margin.
    for seed in [7u64, 1234] {
        for &family in &FAMILIES {
            for quadrupole in [true, false] {
                let p = measure(family, N, seed, 0.4, quadrupole, 1.0);
                assert!(
                    tolerance_band(0.4, quadrupole).violation(&p).is_none(),
                    "{} seed={seed} quad={quadrupole}: {p:?}",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn theta_inflation_hook_trips_the_gate() {
    // The CI gate's self-test, exercising both of its tripwires.
    //
    // Absolute tolerance bands: for the families whose error is dominated
    // by genuine MAC acceptances, walking at 2.5×θ while checking against
    // the nominal-θ band must be flagged. (deep_clusters is excluded by
    // design: its levels are so well separated that even θ = 1 stays
    // inside the Fig. 2 band — the drift gate below is what covers it.)
    for family in [Family::Plummer, Family::MilkyWay, Family::NearCoincident, Family::ColdCube] {
        let p = measure(family, N, SEED, 0.4, true, 2.5);
        assert!(
            tolerance_band(0.4, true).violation(&p).is_some(),
            "{}: inflated walk escaped the band ({p:?})",
            family.name()
        );
    }
    // Baseline drift: the `--check` gate allows 25% relative drift per
    // percentile; a 2×θ walk must blow far past that for every family.
    for &family in &FAMILIES {
        let honest = measure(family, N, SEED, 0.4, true, 1.0);
        let inflated = measure(family, N, SEED, 0.4, true, 2.0);
        assert!(
            inflated.p95 > 2.0 * honest.p95,
            "{}: p95 {:.3e} → {:.3e} would slip past the drift gate",
            family.name(),
            honest.p95,
            inflated.p95
        );
    }
}
