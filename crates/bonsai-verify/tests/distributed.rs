//! Integration tests for the distributed equivalence oracle: the rank
//! ladder against the serial reference, fault-plan runs proving recovery
//! is physics-preserving, and the graceful-degradation contract of the
//! boundary-tree fallback.

use bonsai_ic::plummer_sphere;
use bonsai_net::fault::{FaultKind, FaultPlan};
use bonsai_sim::ClusterConfig;
use bonsai_verify::{equivalence, equivalence_band, serial_reference};

const N: usize = 2048;
const IC_SEED: u64 = 9;

#[test]
fn rank_ladder_matches_serial_reference() {
    let cfg = ClusterConfig::default();
    let ic = plummer_sphere(N, IC_SEED);
    let reference = serial_reference(&ic, &cfg);
    for ranks in [1usize, 2, 4, 8] {
        let rep = equivalence(&ic, ranks, &cfg, None, &reference);
        assert_eq!(rep.faults_injected, 0);
        assert_eq!(rep.degraded_lets, 0);
        let band = equivalence_band(cfg.theta, ranks);
        assert!(
            band.violation(&rep.diff).is_none(),
            "R={ranks}: {:?} outside {band:?}",
            rep.diff
        );
    }
}

#[test]
fn single_rank_is_exactly_the_serial_walk() {
    // R = 1 builds the same tree over the same SFC order and runs the same
    // kernels; the distributed plumbing must be invisible to round-off.
    let cfg = ClusterConfig::default();
    let ic = plummer_sphere(N, IC_SEED);
    let rep = equivalence(&ic, 1, &cfg, None, &serial_reference(&ic, &cfg));
    assert_eq!(rep.diff.max, 0.0, "R=1 must be bit-identical to serial");
}

#[test]
fn recovered_message_faults_are_physics_invisible() {
    // Drop/duplicate/corrupt/reorder at rates the retransmission machinery
    // fully absorbs: the accepted gravity epoch must be *identical* to the
    // clean run — recovery is physics-preserving, not merely crash-free.
    let cfg = ClusterConfig::default();
    let ic = plummer_sphere(N, IC_SEED);
    let reference = serial_reference(&ic, &cfg);
    let clean = equivalence(&ic, 8, &cfg, None, &reference);
    let plan = FaultPlan::new(0xFA17)
        .with_rate(FaultKind::Drop, 0.04)
        .with_rate(FaultKind::Duplicate, 0.03)
        .with_rate(FaultKind::Corrupt, 0.03)
        .with_rate(FaultKind::Reorder, 0.05);
    let faulty = equivalence(&ic, 8, &cfg, Some((plan, None)), &reference);
    assert!(faulty.faults_injected > 0, "plan injected nothing");
    assert_eq!(
        faulty.degraded_lets, 0,
        "at these rates every LET must survive retransmission"
    );
    assert_eq!(
        (faulty.diff.median, faulty.diff.p95, faulty.diff.max),
        (clean.diff.median, clean.diff.p95, clean.diff.max),
        "recovered faults must not perturb the force field at all"
    );
}

#[test]
fn boundary_fallback_degrades_gracefully() {
    // A drop rate high enough to defeat the LET retry budget (original +
    // 2 retries) forces the receiver onto the sender's boundary tree.
    // That is an *availability* trade: the walk proceeds with forced cuts
    // and the error leaves the MAC band — the contract is that it stays
    // bounded and every particle keeps a finite force, not that Fig. 2
    // accuracy survives. (Seed chosen so heartbeats live; a rank death
    // without a RecoveryConfig is a documented panic.)
    let cfg = ClusterConfig::default();
    let ic = plummer_sphere(1024, IC_SEED);
    let reference = serial_reference(&ic, &cfg);
    let plan = FaultPlan::new(14).with_rate(FaultKind::Drop, 0.35);
    let rep = equivalence(&ic, 8, &cfg, Some((plan, None)), &reference);
    assert!(rep.degraded_lets >= 1, "fallback path not exercised");
    assert!(rep.forced_cuts > 0, "degraded walk should force MAC cuts");
    assert!(rep.diff.median < 1e-3, "median {:.3e}", rep.diff.median);
    assert!(
        rep.diff.max.is_finite() && rep.diff.max < 0.5,
        "max {:.3e} unbounded",
        rep.diff.max
    );
}

#[test]
fn cluster_steps_bit_equal_across_thread_counts() {
    // The threading rung of the equivalence ladder: decomposing the *work*
    // across threads (on top of decomposing the *domain* across ranks) must
    // be invisible to round-off. Two full steps at 4 ranks, threads swept
    // 1/2/4/8 — every accepted acceleration bit-identical to the 1-thread run.
    use bonsai_sim::Cluster;

    let ic = plummer_sphere(N, IC_SEED);
    let run = |threads: usize| {
        let cfg = ClusterConfig {
            threads: Some(threads),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(ic.clone(), 4, cfg);
        cluster.step();
        cluster.step();
        cluster.accelerations_by_id()
    };
    let reference = run(1);
    for t in [2usize, 4, 8] {
        let acc = run(t);
        assert_eq!(acc.len(), reference.len(), "particle count at threads={t}");
        for (id, a) in &acc {
            let r = reference[id];
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits(), a.z.to_bits()),
                (r.x.to_bits(), r.y.to_bits(), r.z.to_bits()),
                "particle {id} acceleration differs at threads={t}"
            );
        }
    }
}
