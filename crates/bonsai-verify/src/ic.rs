//! Seeded initial-condition families for the conformance oracle.
//!
//! Two physical families (the Plummer sphere and the paper's Milky Way
//! disk+bulge+halo model) plus three adversarial generators chosen to
//! stress exactly the places a tree code goes wrong: near-coincident
//! pairs (deep tree levels, softening masks, catastrophic cancellation),
//! deep hierarchical clusters (maximally inhomogeneous cell occupancy,
//! large COM offsets — the `s` term of the MAC), and a cold uniform cube
//! (near-zero net forces in the interior, so *relative* error is at its
//! most unforgiving). Every generator is deterministic in its seed.

use bonsai_ic::{plummer_sphere, MilkyWayModel};
use bonsai_tree::Particles;
use bonsai_util::rng::Xoshiro256;
use bonsai_util::Vec3;

/// The IC families the conformance suite sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Equilibrium Plummer sphere in N-body units (the classic benchmark).
    Plummer,
    /// Scaled sample of the paper's Milky Way model (disk + bulge + halo).
    MilkyWay,
    /// Pairs separated by `1e-9 … 1e-4` inside a unit ball.
    NearCoincident,
    /// Four-level hierarchy of sub-clusters (scale ratio 0.08 per level).
    DeepClusters,
    /// Cold uniform cube: zero velocities, interior forces nearly cancel.
    ColdCube,
}

/// Every family, in the order reports list them.
pub const FAMILIES: [Family; 5] = [
    Family::Plummer,
    Family::MilkyWay,
    Family::NearCoincident,
    Family::DeepClusters,
    Family::ColdCube,
];

impl Family {
    /// Stable name used in JSON reports and test output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Plummer => "plummer",
            Family::MilkyWay => "milky_way",
            Family::NearCoincident => "near_coincident",
            Family::DeepClusters => "deep_clusters",
            Family::ColdCube => "cold_cube",
        }
    }

    /// Softening length appropriate to the family's length unit (kpc for
    /// the Milky Way model, N-body/unit-box scales otherwise). Chosen well
    /// below each model's structural scales so the MAC error — not the
    /// softening — dominates the tree-vs-direct difference.
    pub fn eps(self) -> f64 {
        match self {
            Family::Plummer => 0.01,
            Family::MilkyWay => 0.05,
            // Softening must *cover* the coincident separations (≤ 1e-4) or
            // the pair term swamps every other contribution.
            Family::NearCoincident => 1e-3,
            Family::DeepClusters => 1e-4,
            Family::ColdCube => 0.01,
        }
    }

    /// Generate `n` particles deterministically from `seed`.
    pub fn generate(self, n: usize, seed: u64) -> Particles {
        match self {
            Family::Plummer => plummer_sphere(n, seed),
            Family::MilkyWay => MilkyWayModel::paper().generate(n, seed),
            Family::NearCoincident => near_coincident_pairs(n, seed),
            Family::DeepClusters => deep_clusters(n, seed),
            Family::ColdCube => cold_cube(n, seed),
        }
    }
}

/// `n` particles arranged as ⌈n/2⌉ pairs: each pair's centre is uniform in
/// the unit ball and its two members are split by a tiny offset whose
/// length is log-uniform in `[1e-9, 1e-4]`. Odd `n` leaves one singleton.
pub fn near_coincident_pairs(n: usize, seed: u64) -> Particles {
    assert!(n > 0);
    let mut p = Particles::with_capacity(n);
    let m = 1.0 / n as f64;
    let mut id = 0u64;
    let mut rng = Xoshiro256::seed_from(seed);
    while (id as usize) < n {
        let center = rng.unit_sphere() * rng.uniform().cbrt();
        let sep = 10f64.powf(rng.uniform_in(-9.0, -4.0));
        let dir = rng.unit_sphere();
        p.push(center + dir * (0.5 * sep), Vec3::zero(), m, id);
        id += 1;
        if (id as usize) < n {
            p.push(center - dir * (0.5 * sep), Vec3::zero(), m, id);
            id += 1;
        }
    }
    p
}

/// A four-level hierarchy: clusters of clusters of clusters of particles,
/// with the spatial scale shrinking by 0.08 per level and 4-way branching.
/// Produces leaves at wildly different depths and cells whose centre of
/// mass sits far from their geometric centre.
pub fn deep_clusters(n: usize, seed: u64) -> Particles {
    assert!(n > 0);
    let mut p = Particles::with_capacity(n);
    let m = 1.0 / n as f64;
    const BRANCH: usize = 4;
    const RATIO: f64 = 0.08;
    for i in 0..n {
        let mut rng = Xoshiro256::stream(seed, i as u64);
        // Walk the hierarchy: at each of 4 levels pick one of BRANCH
        // sub-cluster centres (seeded by the path so centres are shared).
        let mut pos = Vec3::zero();
        let mut scale = 1.0;
        let mut path = 0u64;
        for level in 0..4 {
            let choice = rng.uniform_usize(BRANCH);
            path = path * BRANCH as u64 + choice as u64;
            let mut crng = Xoshiro256::stream(seed ^ 0xDEC1_57E5, path | ((level as u64) << 56));
            pos += crng.unit_sphere() * scale;
            scale *= RATIO;
        }
        // Final jitter inside the innermost cluster.
        pos += rng.unit_sphere() * (scale / RATIO * 0.3 * rng.uniform());
        p.push(pos, Vec3::zero(), m, i as u64);
    }
    p
}

/// `n` particles uniform in the unit cube, all at rest, equal masses. The
/// interior sees nearly cancelling pulls, making relative force error the
/// hardest to keep small — the reason the oracle floors its denominator at
/// a fraction of the mean field.
pub fn cold_cube(n: usize, seed: u64) -> Particles {
    assert!(n > 0);
    let mut p = Particles::with_capacity(n);
    let m = 1.0 / n as f64;
    for i in 0..n {
        let mut rng = Xoshiro256::stream(seed, i as u64);
        let pos = Vec3::new(rng.uniform(), rng.uniform(), rng.uniform());
        p.push(pos, Vec3::zero(), m, i as u64);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_valid() {
        for fam in FAMILIES {
            let a = fam.generate(257, 11);
            let b = fam.generate(257, 11);
            assert_eq!(a.len(), 257, "{}", fam.name());
            assert!(a.validate().is_ok(), "{}", fam.name());
            for i in 0..a.len() {
                assert_eq!(a.pos[i], b.pos[i], "{} not deterministic", fam.name());
                assert_eq!(a.id[i], b.id[i]);
            }
            let c = fam.generate(257, 12);
            assert!(
                (0..a.len()).any(|i| a.pos[i] != c.pos[i]),
                "{} ignores its seed",
                fam.name()
            );
        }
    }

    #[test]
    fn near_coincident_pairs_are_actually_close() {
        let p = near_coincident_pairs(100, 3);
        let mut tight = 0;
        for k in 0..50 {
            let d = (p.pos[2 * k] - p.pos[2 * k + 1]).norm();
            assert!(d <= 1.0e-4 * 1.01, "pair {k} separation {d}");
            if d < 1e-5 {
                tight += 1;
            }
        }
        assert!(tight > 5, "log-uniform separations should reach deep scales");
    }

    #[test]
    fn deep_clusters_span_scales() {
        let p = deep_clusters(512, 7);
        let bounds = p.bounds();
        let side = (bounds.max - bounds.min).norm();
        assert!(side > 1.0, "hierarchy should span the top-level scale");
        // At least two particles end up in the same innermost cluster,
        // i.e. within a distance far below the top-level spacing.
        let mut min_d = f64::INFINITY;
        for i in 0..64 {
            for j in (i + 1)..64 {
                min_d = min_d.min((p.pos[i] - p.pos[j]).norm());
            }
        }
        assert!(min_d < 0.01, "no deep pairs found (min {min_d})");
    }
}
