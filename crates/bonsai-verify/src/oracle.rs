//! The differential force oracle: tree walk vs direct summation.
//!
//! The gold standard of every tree-code paper (Fig. 2 of the SC'14 paper,
//! §III of the Bonsai paper): evaluate the same particle set with
//! `walk_tree` at finite θ and with the O(N²) reference, and look at the
//! *distribution* of per-particle relative force errors. The oracle
//! reports the distribution's median, 95th percentile and maximum and
//! checks them against θ-dependent tolerance bands, for both the 65-flop
//! quadrupole kernel and the monopole-only ablation.

use crate::ic::Family;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::{Forces, Particles};
use bonsai_util::stats::percentile_sorted;

/// The θ values the conformance sweep covers (paper production value 0.4;
/// 0.2 near-direct, 0.75 the loose end of Fig. 2's range).
pub const THETA_SWEEP: [f64; 4] = [0.2, 0.4, 0.5, 0.75];

/// Summary of a relative-error distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorPercentiles {
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest error.
    pub max: f64,
}

impl ErrorPercentiles {
    /// Reduce a list of per-particle errors (need not be sorted).
    pub fn from_errors(mut errors: Vec<f64>) -> Self {
        if errors.is_empty() {
            return Self::default();
        }
        errors.sort_by(|a, b| a.partial_cmp(b).expect("non-finite error"));
        Self {
            median: percentile_sorted(&errors, 0.50),
            p95: percentile_sorted(&errors, 0.95),
            max: *errors.last().unwrap(),
        }
    }
}

/// Allowed ceilings for one error distribution.
#[derive(Clone, Copy, Debug)]
pub struct ToleranceBand {
    /// Ceiling on the median error.
    pub median: f64,
    /// Ceiling on the 95th percentile.
    pub p95: f64,
    /// Ceiling on the maximum error.
    pub max: f64,
}

impl ToleranceBand {
    /// `Some(reason)` if `p` pokes through the band.
    pub fn violation(&self, p: &ErrorPercentiles) -> Option<String> {
        if p.median > self.median {
            Some(format!("median {:.3e} > band {:.3e}", p.median, self.median))
        } else if p.p95 > self.p95 {
            Some(format!("p95 {:.3e} > band {:.3e}", p.p95, self.p95))
        } else if p.max > self.max {
            Some(format!("max {:.3e} > band {:.3e}", p.max, self.max))
        } else {
            None
        }
    }
}

/// θ-dependent tolerance band for the tree-vs-direct error.
///
/// Rationale: with the offset MAC the error of an accepted cell scales like
/// θ^(pole+2) — θ³ for monopole, θ⁴ for quadrupole (§III of the Bonsai
/// paper; the orderings of Fig. 2). The constants are calibrated on the
/// five IC families at N = 4096 with ≥ 4× headroom over the worst observed
/// value, so the gate trips on genuine MAC/multipole regressions rather
/// than on noise. The max ceiling is the loosest: a single particle
/// sitting in a near-cancellation of the field can legitimately see a
/// large *relative* error (which is why the denominator is floored, see
/// [`rel_errors`]).
pub fn tolerance_band(theta: f64, quadrupole: bool) -> ToleranceBand {
    // θ = 0 degenerates to direct summation: round-off only.
    if theta <= 0.0 {
        return ToleranceBand {
            median: 1e-12,
            p95: 1e-12,
            max: 1e-10,
        };
    }
    if quadrupole {
        ToleranceBand {
            median: 1.2e-2 * theta.powi(4),
            p95: 4.0e-2 * theta.powi(4),
            max: 1.0 * theta.powi(4),
        }
    } else {
        ToleranceBand {
            median: 3.0e-2 * theta.powi(3),
            p95: 1.5e-1 * theta.powi(3),
            max: 4.0 * theta.powi(3),
        }
    }
}

/// Per-particle relative acceleration errors `|a − a_ref| / denom`.
///
/// The denominator is `max(|a_ref[i]|, 1e-3 · ⟨|a_ref|⟩)`: Fig. 2-style
/// relative error, floored at a fraction of the mean field so particles
/// sitting in a near-perfect cancellation (the cold-cube interior) don't
/// divide by ≈ 0 and dominate the tail for reasons unrelated to the MAC.
pub fn rel_errors(test: &Forces, reference: &Forces) -> Vec<f64> {
    assert_eq!(test.len(), reference.len());
    let n = reference.len();
    if n == 0 {
        return Vec::new();
    }
    let mean: f64 = reference.acc.iter().map(|a| a.norm()).sum::<f64>() / n as f64;
    let floor = 1e-3 * mean;
    (0..n)
        .map(|i| (test.acc[i] - reference.acc[i]).norm() / reference.acc[i].norm().max(floor))
        .collect()
}

/// One oracle evaluation: build the tree, walk it at (θ, kernel), compare
/// against direct summation over the same (sorted) particles.
///
/// `theta_inflation` multiplies the θ the *walk* actually uses while the
/// tolerance band stays keyed to the nominal θ — the deliberate-loosening
/// hook the CI gate uses to prove it would catch a MAC regression. Pass
/// 1.0 for a real measurement.
pub fn measure_family(
    particles: Particles,
    theta: f64,
    eps: f64,
    quadrupole: bool,
    theta_inflation: f64,
) -> ErrorPercentiles {
    let tree = Tree::build(particles, TreeParams::default());
    let (reference, _) = direct_self_forces(&tree.particles, eps, 1.0);
    let mut params = WalkParams::new(theta * theta_inflation, eps);
    if !quadrupole {
        params = params.monopole_only();
    }
    let (forces, _) = walk::self_gravity(&tree, &params);
    ErrorPercentiles::from_errors(rel_errors(&forces, &reference))
}

/// [`measure_family`] for a named family at its own softening length.
pub fn measure(
    family: Family,
    n: usize,
    seed: u64,
    theta: f64,
    quadrupole: bool,
    theta_inflation: f64,
) -> ErrorPercentiles {
    measure_family(
        family.generate(n, seed),
        theta,
        family.eps(),
        quadrupole,
        theta_inflation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic;

    #[test]
    fn percentiles_reduce_correctly() {
        let p = ErrorPercentiles::from_errors(vec![0.4, 0.1, 0.2, 0.3, 1.0]);
        assert_eq!(p.median, 0.3);
        assert_eq!(p.max, 1.0);
        assert!(p.p95 >= 0.4 && p.p95 <= 1.0);
        assert_eq!(ErrorPercentiles::from_errors(vec![]), ErrorPercentiles::default());
    }

    #[test]
    fn rel_errors_floor_guards_cancellation() {
        // Two opposite reference accelerations and a tiny one: the tiny
        // one's error is measured against the floor, not against ≈ 0.
        use bonsai_util::Vec3;
        let reference = Forces {
            acc: vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0), Vec3::zero()],
            pot: vec![0.0; 3],
        };
        let mut test = reference.clone();
        test.acc[2] = Vec3::new(1e-6, 0.0, 0.0);
        let e = rel_errors(&test, &reference);
        assert!(e[2] <= 1e-6 / (1e-3 * (2.0 / 3.0)) + 1e-12);
    }

    #[test]
    fn zero_theta_is_roundoff_exact() {
        let p = measure(ic::Family::Plummer, 512, 1, 0.0, true, 1.0);
        assert!(p.max < 1e-10, "θ=0 max err {}", p.max);
    }

    #[test]
    fn inflation_hook_degrades_accuracy() {
        let honest = measure(ic::Family::Plummer, 1024, 2, 0.4, true, 1.0);
        let inflated = measure(ic::Family::Plummer, 1024, 2, 0.4, true, 2.0);
        assert!(
            inflated.p95 > 4.0 * honest.p95,
            "inflating θ must visibly degrade accuracy ({} vs {})",
            inflated.p95,
            honest.p95
        );
    }
}
