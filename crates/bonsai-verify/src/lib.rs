//! # bonsai-verify
//!
//! The force-accuracy conformance layer: the correctness backstop every
//! kernel and parallelism change is gated on.
//!
//! Three pillars (DESIGN.md §6f):
//!
//! * [`oracle`] — the **differential force oracle**: `walk_tree` vs
//!   `direct_forces` over seeded IC families ([`ic`]), sweeping
//!   θ ∈ {0.2, 0.4, 0.5, 0.75} and monopole/quadrupole kernels, with
//!   θ-dependent tolerance bands on the median/p95/max of the relative
//!   force-error distribution — the reproduction of the paper's Fig. 2
//!   methodology.
//! * [`distributed`] — the **distributed equivalence oracle**: a
//!   `bonsai-sim` [`Cluster`](bonsai_sim::Cluster) at R ∈ {1, 2, 4, 8}
//!   ranks must match the serial [`Simulation`](bonsai_core::Simulation)
//!   per particle id, with and without injected faults, proving LET
//!   construction, boundary fallback and recovery physics-preserving.
//! * [`report`] — the **accuracy baseline**: byte-deterministic
//!   `bonsai-accuracy-v1` JSON plus the `--check` regression gate wired
//!   into CI via the `verify_accuracy` bench bin.

#![deny(missing_docs)]

pub mod distributed;
pub mod ic;
pub mod oracle;
pub mod report;

pub use distributed::{
    acceleration_diff, equivalence, equivalence_band, serial_reference, EquivalenceReport,
};
pub use ic::{Family, FAMILIES};
pub use oracle::{measure, tolerance_band, ErrorPercentiles, ToleranceBand, THETA_SWEEP};
pub use report::{accuracy_json, check_accuracy, run, AccuracyReport, RunConfig};
