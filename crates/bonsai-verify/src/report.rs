//! The `bonsai-accuracy-v1` report: a byte-deterministic JSON record of
//! the differential and distributed oracles, plus the `--check` gate that
//! compares a fresh run against the committed baseline.
//!
//! Gate semantics (mirroring `bonsai-bench::scaling::check_scaling`):
//!
//! 1. **Absolute bands** — every differential entry of the *current* run
//!    must sit inside its θ-dependent tolerance band, and every
//!    distributed entry inside the equivalence band. This catches a MAC
//!    or multipole regression even if someone regenerates the baseline
//!    with the regression in place.
//! 2. **Fig. 2 ordering** — per family/kernel the error must not grow as
//!    θ shrinks, and quadrupole must beat monopole at every θ.
//! 3. **Baseline drift** — numeric leaves are compared against the
//!    baseline with per-key tolerance bands (exact for configuration and
//!    counts, relative for error percentiles).

use crate::distributed::{equivalence, equivalence_band, serial_reference, EquivalenceReport};
use crate::ic::{Family, FAMILIES};
use crate::oracle::{measure, tolerance_band, ErrorPercentiles, THETA_SWEEP};
use bonsai_net::fault::FaultKind;
use bonsai_net::FaultPlan;
use bonsai_obs::json::{fmt_f64, parse, Value};
use bonsai_sim::ClusterConfig;

/// Configuration of a conformance run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Particles per family in the differential sweep.
    pub n: usize,
    /// Seed for every generator.
    pub seed: u64,
    /// Particles in the distributed comparisons.
    pub dist_n: usize,
    /// Rank ladder of the distributed comparisons.
    pub dist_ranks: Vec<usize>,
    /// Multiplier on the θ the walk uses (1.0 = honest; the CI loosening
    /// hook passes > 1 to prove the gate trips).
    pub theta_inflation: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            n: 4096,
            seed: 42,
            dist_n: 2048,
            dist_ranks: vec![1, 2, 4, 8],
            theta_inflation: 1.0,
        }
    }
}

/// One differential-oracle row.
#[derive(Clone, Debug)]
pub struct DifferentialRow {
    /// IC family.
    pub family: Family,
    /// Nominal opening angle.
    pub theta: f64,
    /// Quadrupole (`true`) or monopole-only kernel.
    pub quadrupole: bool,
    /// Measured error percentiles.
    pub pcts: ErrorPercentiles,
}

/// One distributed-oracle row.
#[derive(Clone, Debug)]
pub struct DistributedRow {
    /// Whether a fault plan was injected.
    pub faulty: bool,
    /// The comparison outcome.
    pub report: EquivalenceReport,
}

/// Full conformance-run record.
#[derive(Clone, Debug)]
pub struct AccuracyReport {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// θ used by the distributed section.
    pub dist_theta: f64,
    /// Differential sweep: family × θ × kernel.
    pub differential: Vec<DifferentialRow>,
    /// Distributed ladder (clean runs plus one faulty rung).
    pub distributed: Vec<DistributedRow>,
}

/// The message-level fault plan the faulty rung injects: drops, duplicates
/// and bit flips at rates the retransmission budget absorbs, so the run
/// exercises recovery while remaining physics-preserving.
pub fn conformance_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rate(FaultKind::Drop, 0.04)
        .with_rate(FaultKind::Duplicate, 0.03)
        .with_rate(FaultKind::Corrupt, 0.03)
        .with_rate(FaultKind::Reorder, 0.05)
}

/// Execute the full conformance run.
pub fn run(cfg: &RunConfig) -> AccuracyReport {
    let mut differential = Vec::new();
    for family in FAMILIES {
        for &theta in &THETA_SWEEP {
            for quadrupole in [true, false] {
                differential.push(DifferentialRow {
                    family,
                    theta,
                    quadrupole,
                    pcts: measure(
                        family,
                        cfg.n,
                        cfg.seed,
                        theta,
                        quadrupole,
                        cfg.theta_inflation,
                    ),
                });
            }
        }
    }

    let ccfg = ClusterConfig {
        theta: 0.4 * cfg.theta_inflation,
        ..ClusterConfig::default()
    };
    let ic = Family::Plummer.generate(cfg.dist_n, cfg.seed ^ 0xD157);
    let reference = serial_reference(&ic, &ClusterConfig::default());
    let mut distributed = Vec::new();
    for &r in &cfg.dist_ranks {
        distributed.push(DistributedRow {
            faulty: false,
            report: equivalence(&ic, r, &ccfg, None, &reference),
        });
    }
    // One faulty rung: message-level faults only (no crash), so no
    // recovery directory is needed and the run stays byte-deterministic.
    if let Some(&r) = cfg.dist_ranks.iter().max() {
        if r > 1 {
            distributed.push(DistributedRow {
                faulty: true,
                report: equivalence(
                    &ic,
                    r,
                    &ccfg,
                    Some((conformance_fault_plan(cfg.seed), None)),
                    &reference,
                ),
            });
        }
    }
    AccuracyReport {
        config: cfg.clone(),
        dist_theta: 0.4,
        differential,
        distributed,
    }
}

fn pcts_json(p: &ErrorPercentiles) -> String {
    format!(
        "\"median\": {}, \"p95\": {}, \"max\": {}",
        fmt_f64(p.median),
        fmt_f64(p.p95),
        fmt_f64(p.max)
    )
}

/// Render the report as byte-deterministic `bonsai-accuracy-v1` JSON.
pub fn accuracy_json(r: &AccuracyReport) -> String {
    let ranks: Vec<String> = r.config.dist_ranks.iter().map(|p| p.to_string()).collect();
    let thetas: Vec<String> = THETA_SWEEP.iter().map(|t| fmt_f64(*t)).collect();
    let diff_rows: Vec<String> = r
        .differential
        .iter()
        .map(|row| {
            let band = tolerance_band(row.theta, row.quadrupole);
            format!(
                "    {{\"family\": \"{}\", \"theta\": {}, \"kernel\": \"{}\", {}, \
                 \"band_median\": {}, \"band_p95\": {}, \"band_max\": {}}}",
                row.family.name(),
                fmt_f64(row.theta),
                if row.quadrupole { "quadrupole" } else { "monopole" },
                pcts_json(&row.pcts),
                fmt_f64(band.median),
                fmt_f64(band.p95),
                fmt_f64(band.max)
            )
        })
        .collect();
    let dist_rows: Vec<String> = r
        .distributed
        .iter()
        .map(|row| {
            let band = equivalence_band(r.dist_theta, row.report.ranks);
            format!(
                "    {{\"ranks\": {}, \"faulty\": {}, {}, \"forced_cuts\": {}, \
                 \"degraded_lets\": {}, \"faults_injected\": {}, \
                 \"band_median\": {}, \"band_p95\": {}, \"band_max\": {}}}",
                row.report.ranks,
                row.faulty,
                pcts_json(&row.report.diff),
                row.report.forced_cuts,
                row.report.degraded_lets,
                row.report.faults_injected,
                fmt_f64(band.median),
                fmt_f64(band.p95),
                fmt_f64(band.max)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-accuracy-v1\",\n  \"config\": {{\"n\": {}, \"seed\": {}, \
         \"dist_n\": {}, \"dist_ranks\": [{}], \"dist_theta\": {}, \"thetas\": [{}], \
         \"theta_inflation\": {}}},\n  \"differential\": [\n{}\n  ],\n  \"distributed\": [\n{}\n  ]\n}}\n",
        r.config.n,
        r.config.seed,
        r.config.dist_n,
        ranks.join(", "),
        fmt_f64(r.dist_theta),
        thetas.join(", "),
        fmt_f64(r.config.theta_inflation),
        diff_rows.join(",\n"),
        dist_rows.join(",\n")
    )
}

fn num(v: &Value, key: &str, path: &str, out: &mut Vec<String>) -> Option<f64> {
    match v.get(key) {
        Some(Value::Num(x)) => Some(*x),
        _ => {
            out.push(format!("{path}.{key}: missing or non-numeric"));
            None
        }
    }
}

fn str_of(v: &Value, key: &str) -> String {
    match v.get(key) {
        Some(Value::Str(s)) => s.clone(),
        other => format!("{other:?}"),
    }
}

/// Check the *current* run against its own recorded bands and the Fig. 2
/// orderings (baseline-independent). Returns violations.
fn check_bands_and_ordering(cur: &Value, out: &mut Vec<String>) {
    let rows = match cur.get("differential") {
        Some(Value::Arr(rows)) => rows,
        _ => {
            out.push("$.differential: missing".into());
            return;
        }
    };
    // (family, kernel, theta) -> p95, for the ordering checks.
    let mut by_key: Vec<(String, String, f64, f64)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let path = format!("$.differential[{i}]");
        let (fam, kern) = (str_of(row, "family"), str_of(row, "kernel"));
        let theta = num(row, "theta", &path, out).unwrap_or(0.0);
        for key in ["median", "p95", "max"] {
            let (Some(v), Some(b)) = (
                num(row, key, &path, out),
                num(row, &format!("band_{key}"), &path, out),
            ) else {
                continue;
            };
            if v > b {
                out.push(format!(
                    "{path} ({fam}/{kern}/θ={theta}): {key} {v:.3e} outside tolerance band {b:.3e}"
                ));
            }
        }
        if let Some(p95) = num(row, "p95", &path, out) {
            by_key.push((fam, kern, theta, p95));
        }
    }
    // Fig. 2 ordering 1: at fixed family+kernel, shrinking θ must not
    // increase the p95 error.
    for (fam, kern, theta, p95) in &by_key {
        for (fam2, kern2, theta2, p95b) in &by_key {
            if fam == fam2 && kern == kern2 && theta2 > theta && p95b < p95 {
                out.push(format!(
                    "ordering: {fam}/{kern} p95 at θ={theta} ({p95:.3e}) exceeds θ={theta2} ({p95b:.3e})"
                ));
            }
        }
    }
    // Fig. 2 ordering 2: quadrupole beats monopole at every (family, θ).
    for (fam, kern, theta, p95) in &by_key {
        if kern != "quadrupole" {
            continue;
        }
        if let Some((_, _, _, mono)) = by_key
            .iter()
            .find(|(f2, k2, t2, _)| f2 == fam && k2 == "monopole" && t2 == theta)
        {
            if p95 > mono {
                out.push(format!(
                    "ordering: {fam} θ={theta}: quadrupole p95 {p95:.3e} worse than monopole {mono:.3e}"
                ));
            }
        }
    }
    if let Some(Value::Arr(rows)) = cur.get("distributed") {
        for (i, row) in rows.iter().enumerate() {
            let path = format!("$.distributed[{i}]");
            for key in ["median", "p95", "max"] {
                let (Some(v), Some(b)) = (
                    num(row, key, &path, out),
                    num(row, &format!("band_{key}"), &path, out),
                ) else {
                    continue;
                };
                if v > b {
                    out.push(format!(
                        "{path} (ranks {}): {key} {v:.3e} outside equivalence band {b:.3e}",
                        str_of(row, "ranks")
                    ));
                }
            }
        }
    } else {
        out.push("$.distributed: missing".into());
    }
}

/// Per-key drift tolerance against the baseline. Configuration, counts and
/// bands must match exactly; error percentiles drift only if the physics
/// changed, but small refactors (summation order, rayon chunking) can move
/// round-off, so they get a relative band with a floor far below any real
/// error scale.
fn drift_ok(key: &str, base: f64, cur: f64) -> bool {
    match key {
        "n" | "seed" | "dist_n" | "dist_ranks" | "dist_theta" | "thetas" | "theta" | "ranks"
        | "theta_inflation" | "forced_cuts" | "degraded_lets" | "faults_injected" => base == cur,
        k if k.starts_with("band_") => base == cur,
        // median / p95 / max
        _ => (base - cur).abs() <= 0.25 * base.abs().max(1e-12),
    }
}

fn compare(path: &str, key: &str, base: &Value, cur: &Value, out: &mut Vec<String>) {
    match (base, cur) {
        (Value::Obj(b), Value::Obj(c)) => {
            for (k, bv) in b {
                match c.get(k) {
                    Some(cv) => compare(&format!("{path}.{k}"), k, bv, cv, out),
                    None => out.push(format!("{path}.{k}: missing from current run")),
                }
            }
            for k in c.keys() {
                if !b.contains_key(k) {
                    out.push(format!("{path}.{k}: not in baseline (regenerate it)"));
                }
            }
        }
        (Value::Arr(b), Value::Arr(c)) => {
            if b.len() != c.len() {
                out.push(format!(
                    "{path}: length {} in baseline vs {} current",
                    b.len(),
                    c.len()
                ));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                compare(&format!("{path}[{i}]"), key, bv, cv, out);
            }
        }
        (Value::Num(b), Value::Num(c)) => {
            if !drift_ok(key, *b, *c) {
                out.push(format!("{path}: baseline {b} vs current {c} out of tolerance"));
            }
        }
        (b, c) if b == c => {}
        _ => out.push(format!("{path}: baseline {base:?} vs current {cur:?} differ")),
    }
}

/// Compare a fresh `BENCH_accuracy.json` against the committed baseline
/// and the absolute tolerance bands. Returns the violation list (empty =
/// gate passes) or an error if either document fails to parse.
pub fn check_accuracy(baseline: &str, current: &str) -> Result<Vec<String>, String> {
    let b = parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let c = parse(current).map_err(|e| format!("current: {e}"))?;
    let mut out = Vec::new();
    check_bands_and_ordering(&c, &mut out);
    compare("$", "", &b, &c, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            n: 256,
            seed: 9,
            dist_n: 400,
            dist_ranks: vec![1, 2],
            theta_inflation: 1.0,
        }
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let cfg = tiny_cfg();
        let a = accuracy_json(&run(&cfg));
        let b = accuracy_json(&run(&cfg));
        assert_eq!(a, b, "report must be byte-deterministic");
        let v = parse(&a).expect("report JSON parses");
        assert_eq!(
            v.get("schema"),
            Some(&Value::Str("bonsai-accuracy-v1".into()))
        );
    }

    #[test]
    fn self_check_passes() {
        let json = accuracy_json(&run(&tiny_cfg()));
        let ok = check_accuracy(&json, &json).unwrap();
        assert!(ok.is_empty(), "self-comparison must pass: {ok:?}");
    }

    /// A handcrafted two-row document exercising every gate clause at a
    /// realistic error scale (real tiny-N runs sit in the θ-opens-all
    /// regime where errors are round-off and the drift floor hides them).
    fn doc(median: f64, p95: f64, mono_p95: f64, small_theta_p95: f64) -> String {
        format!(
            r#"{{"schema": "bonsai-accuracy-v1",
  "config": {{"n": 64, "seed": 1, "dist_n": 0, "dist_ranks": [], "dist_theta": 0.4, "thetas": [0.2, 0.4], "theta_inflation": 1.0}},
  "differential": [
    {{"family": "plummer", "theta": 0.4, "kernel": "quadrupole", "median": {median}, "p95": {p95}, "max": 0.001, "band_median": 6e-5, "band_p95": 7e-4, "band_max": 0.026}},
    {{"family": "plummer", "theta": 0.4, "kernel": "monopole", "median": 2e-4, "p95": {mono_p95}, "max": 0.01, "band_median": 1.3e-3, "band_p95": 9.6e-3, "band_max": 0.26}},
    {{"family": "plummer", "theta": 0.2, "kernel": "quadrupole", "median": 1e-6, "p95": {small_theta_p95}, "max": 1e-4, "band_median": 4e-6, "band_p95": 4e-5, "band_max": 0.0016}}
  ],
  "distributed": []}}
"#
        )
    }

    #[test]
    fn drift_band_and_ordering_violations_trip() {
        let good = doc(2e-5, 2e-4, 2e-3, 2e-5);
        assert_eq!(check_accuracy(&good, &good).unwrap(), Vec::<String>::new());
        // Drift: p95 moved 10x against an unchanged baseline.
        let bad = check_accuracy(&good, &doc(2e-5, 2e-3, 2e-2, 2e-5)).unwrap();
        assert!(bad.iter().any(|v| v.contains("out of tolerance")), "{bad:?}");
        // Absolute band: p95 above band_p95 even with baseline == current.
        let inflated = doc(2e-5, 8e-4, 2e-3, 2e-5);
        let bad = check_accuracy(&inflated, &inflated).unwrap();
        assert!(bad.iter().any(|v| v.contains("outside tolerance band")), "{bad:?}");
        // Ordering 1: smaller θ must not have a larger p95.
        let unordered = doc(2e-5, 2e-4, 2e-3, 3e-4);
        let bad = check_accuracy(&unordered, &unordered).unwrap();
        assert!(bad.iter().any(|v| v.contains("ordering")), "{bad:?}");
        // Ordering 2: quadrupole worse than monopole at the same θ.
        let flipped = doc(2e-5, 4e-3, 2e-3, 2e-5);
        let bad = check_accuracy(&flipped, &flipped).unwrap();
        assert!(
            bad.iter().any(|v| v.contains("worse than monopole")),
            "{bad:?}"
        );
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(check_accuracy("{", "{}").is_err());
        assert!(check_accuracy("{}", "nope").is_err());
    }
}
