//! The distributed equivalence oracle.
//!
//! The full distributed pipeline — PH sort, domain exchange, per-rank tree
//! build, boundary allgather, LET construction and exchange, per-rank
//! walks — must produce the *same physics* as one serial tree walk at the
//! same θ. This module runs a [`Cluster`] at R ranks against the serial
//! [`Simulation`] on identical initial conditions and summarizes the
//! per-particle-id acceleration differences, optionally with a fault plan
//! injected so LET retransmission, boundary fallback and crash recovery
//! are proven physics-preserving rather than merely crash-free.

use crate::oracle::ErrorPercentiles;
use bonsai_core::{Simulation, SimulationConfig};
use bonsai_net::fault::FaultPlan;
use bonsai_sim::{Cluster, ClusterConfig, RecoveryConfig};
use bonsai_tree::Particles;
use bonsai_util::Vec3;
use std::collections::HashMap;

/// Outcome of one serial-vs-distributed comparison.
#[derive(Clone, Debug)]
pub struct EquivalenceReport {
    /// Rank count of the distributed run.
    pub ranks: usize,
    /// Percentiles of the per-id relative acceleration difference.
    pub diff: ErrorPercentiles,
    /// `Cut` LET nodes that failed the receiver's MAC (≈ 0 expected).
    pub forced_cuts: u64,
    /// Dedicated LETs that never arrived and fell back to boundary walks.
    pub degraded_lets: usize,
    /// Faults injected during the accepted gravity epoch.
    pub faults_injected: usize,
}

/// Serial reference accelerations, keyed by particle id, computed by a
/// single-process tree walk with the same θ/ε/tree parameters a default
/// [`ClusterConfig`] uses.
pub fn serial_reference(ic: &Particles, cfg: &ClusterConfig) -> HashMap<u64, Vec3> {
    let scfg = SimulationConfig {
        theta: cfg.theta,
        eps: cfg.eps,
        dt: cfg.dt,
        g: cfg.g,
        nleaf: cfg.tree.nleaf,
        group_size: cfg.tree.group_size,
        use_hilbert: cfg.tree.curve == bonsai_sfc::Curve::Hilbert,
    };
    Simulation::new(ic.clone(), scfg).accelerations_by_id()
}

/// Percentiles of the per-id relative difference between two acceleration
/// maps (denominator floored at `1e-3 · ⟨|a_ref|⟩`, as in the differential
/// oracle). Panics if the key sets differ — losing a particle *is* a
/// conformance failure.
pub fn acceleration_diff(
    test: &HashMap<u64, Vec3>,
    reference: &HashMap<u64, Vec3>,
) -> ErrorPercentiles {
    assert_eq!(
        test.len(),
        reference.len(),
        "particle count diverged: {} vs {}",
        test.len(),
        reference.len()
    );
    let mean = reference.values().map(|a| a.norm()).sum::<f64>() / reference.len().max(1) as f64;
    let floor = 1e-3 * mean;
    let errors: Vec<f64> = reference
        .iter()
        .map(|(id, r)| {
            let t = test
                .get(id)
                .unwrap_or_else(|| panic!("particle id {id} missing from distributed run"));
            (*t - *r).norm() / r.norm().max(floor)
        })
        .collect();
    ErrorPercentiles::from_errors(errors)
}

/// Build a cluster at `ranks` ranks (with an optional fault plan and
/// recovery directory) and compare its initial-force field against the
/// serial reference.
pub fn equivalence(
    ic: &Particles,
    ranks: usize,
    cfg: &ClusterConfig,
    faults: Option<(FaultPlan, Option<RecoveryConfig>)>,
    reference: &HashMap<u64, Vec3>,
) -> EquivalenceReport {
    let cluster = match faults {
        Some((plan, recovery)) => Cluster::with_faults(ic.clone(), ranks, cfg.clone(), plan, recovery),
        None => Cluster::new(ic.clone(), ranks, cfg.clone()),
    };
    let diff = acceleration_diff(&cluster.accelerations_by_id(), reference);
    let m = &cluster.last_measurements;
    EquivalenceReport {
        ranks,
        diff,
        forced_cuts: m.forced_cuts,
        degraded_lets: m.degraded_lets,
        faults_injected: cluster.fault_log().injected.len(),
    }
}

/// Equivalence tolerance for a distributed run at opening angle θ.
///
/// R = 1 must match the serial walk to round-off: same tree, same groups,
/// same kernels — only the code path differs. R > 1 legitimately differs
/// from the serial walk at the MAC-error level: each rank's groups (and
/// hence MAC decisions) come from its local tree, and remote mass arrives
/// through LETs. Both fields are within the MAC band of the true forces,
/// so their mutual distance is bounded by ~2× the Fig. 2 error at that θ;
/// the constants below carry the same ≥ 4× headroom as the differential
/// bands.
pub fn equivalence_band(theta: f64, ranks: usize) -> crate::oracle::ToleranceBand {
    if ranks <= 1 {
        crate::oracle::ToleranceBand {
            median: 1e-13,
            p95: 1e-13,
            max: 1e-11,
        }
    } else {
        crate::oracle::ToleranceBand {
            median: 2.0e-3 * theta.powi(4),
            p95: 2.0e-2 * theta.powi(4),
            max: 4.0e-1 * theta.powi(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    #[test]
    fn serial_reference_covers_every_id() {
        let ic = plummer_sphere(600, 4);
        let reference = serial_reference(&ic, &ClusterConfig::default());
        assert_eq!(reference.len(), 600);
        for id in 0..600u64 {
            assert!(reference.contains_key(&id));
        }
    }

    #[test]
    #[should_panic(expected = "particle count diverged")]
    fn missing_particles_are_a_failure() {
        let mut a = HashMap::new();
        a.insert(0u64, Vec3::zero());
        let b = HashMap::new();
        acceleration_diff(&b, &a);
    }
}
