//! Minimal dependency-free image/table writers, so every figure of the paper
//! can be regenerated as an actual artifact from the benches.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// An "inferno"-like colour map: dark blue/black → purple → orange → yellow.
fn heat_color(v: f64) -> [u8; 3] {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 * (1.5 * v).min(1.0).powf(0.8)) as u8;
    let g = (255.0 * ((v - 0.25) * 1.6).clamp(0.0, 1.0).powf(1.1)) as u8;
    let b = (255.0 * ((0.3 - (v - 0.15).abs()) * 2.0 + (v - 0.85) * 4.0).clamp(0.0, 1.0)) as u8;
    [r, g, b]
}

/// Write a row-major brightness grid (`values` in `[0,1]`, `n × n`) to a
/// binary PPM with the heat colour map. Row 0 is rendered at the *bottom*
/// (mathematical orientation).
pub fn write_heatmap<P: AsRef<Path>>(path: P, values: &[f64], n: usize) -> io::Result<()> {
    assert_eq!(values.len(), n * n);
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{n} {n}\n255\n")?;
    for row in (0..n).rev() {
        for col in 0..n {
            w.write_all(&heat_color(values[row * n + col]))?;
        }
    }
    w.flush()
}

/// Write `(x, columns…)` series as CSV with a header line.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &str, rows: &[Vec<f64>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{header}")?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()
}

/// Render a brightness grid as coarse ASCII art (for terminal output in the
/// benches), `cols` characters wide.
pub fn ascii_art(values: &[f64], n: usize, cols: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let rows = cols / 2; // terminal cells are ~2x taller than wide
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in (0..rows).rev() {
        for c in 0..cols {
            // average the source cells mapping to this character
            let y0 = r * n / rows;
            let y1 = ((r + 1) * n / rows).max(y0 + 1);
            let x0 = c * n / cols;
            let x1 = ((c + 1) * n / cols).max(x0 + 1);
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for y in y0..y1.min(n) {
                for x in x0..x1.min(n) {
                    sum += values[y * n + x];
                    cnt += 1.0;
                }
            }
            let v = if cnt > 0.0 { sum / cnt } else { 0.0 };
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_file_has_correct_header_and_size() {
        let dir = std::env::temp_dir().join("bonsai_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let n = 16;
        let vals: Vec<f64> = (0..n * n).map(|i| i as f64 / (n * n) as f64).collect();
        write_heatmap(&path, &vals, n).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n16 16\n255\n"));
        assert_eq!(data.len(), 13 + 3 * n * n);
    }

    #[test]
    fn csv_round_trip_shape() {
        let dir = std::env::temp_dir().join("bonsai_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, "x,y", &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = s.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,y");
        assert!(lines[1].contains(','));
    }

    #[test]
    fn ascii_art_dimensions() {
        let n = 32;
        let vals = vec![0.5; n * n];
        let art = ascii_art(&vals, n, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 20);
        assert!(lines.iter().all(|l| l.len() == 40));
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), [0, 0, 0]);
        let hot = heat_color(1.0);
        assert_eq!(hot[0], 255);
        assert!(hot[1] > 200);
    }
}
