//! Energy and angular-momentum diagnostics.

use bonsai_tree::{Forces, Particles};
use bonsai_util::{KahanSum, Vec3};

/// Snapshot-level conservation diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// Total kinetic energy.
    pub kinetic: f64,
    /// Total potential energy (½ Σ m φ).
    pub potential: f64,
    /// Total angular momentum (z component, the disk axis).
    pub l_z: f64,
    /// Total linear momentum magnitude.
    pub momentum: f64,
}

impl EnergyReport {
    /// Build from particles and the potentials of a completed force
    /// evaluation (tree or direct; must include G).
    pub fn from_forces(particles: &Particles, forces: &Forces) -> Self {
        assert_eq!(particles.len(), forces.len());
        let mut pot = KahanSum::new();
        for i in 0..particles.len() {
            pot.add(0.5 * particles.mass[i] * forces.pot[i]);
        }
        Self {
            kinetic: particles.kinetic_energy(),
            potential: pot.value(),
            l_z: particles.angular_momentum().z,
            momentum: particles.momentum().norm(),
        }
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.potential
    }

    /// Virial ratio `T / |W|` (½ in equilibrium).
    pub fn virial_ratio(&self) -> f64 {
        if self.potential == 0.0 {
            0.0
        } else {
            self.kinetic / (-self.potential)
        }
    }

    /// Relative energy drift against an initial report.
    pub fn drift_from(&self, initial: &EnergyReport) -> f64 {
        let e0 = initial.total();
        if e0 == 0.0 {
            return 0.0;
        }
        ((self.total() - e0) / e0).abs()
    }
}

/// Mass-weighted density centre (shrinking-sphere approximation in one pass:
/// COM of the densest octant refined twice) — robust centre for analysis of
/// a wandering galaxy.
pub fn density_center(particles: &Particles, iterations: usize) -> Vec3 {
    let mut center = particles.center_of_mass();
    let mut radius = {
        let b = particles.bounds();
        0.5 * b.diagonal()
    };
    for _ in 0..iterations {
        radius *= 0.6;
        let r2 = radius * radius;
        let mut m = 0.0;
        let mut c = Vec3::zero();
        for i in 0..particles.len() {
            if particles.pos[i].distance2(center) <= r2 {
                m += particles.mass[i];
                c += particles.pos[i] * particles.mass[i];
            }
        }
        if m > 0.0 {
            center = c / m;
        } else {
            break;
        }
    }
    center
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_tree::direct::direct_self_forces;

    fn two_body() -> Particles {
        let mut p = Particles::new();
        p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0, 0);
        p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0, 1);
        p
    }

    #[test]
    fn two_body_report() {
        let p = two_body();
        let (f, _) = direct_self_forces(&p, 0.0, 1.0);
        let r = EnergyReport::from_forces(&p, &f);
        assert!((r.kinetic - 0.25).abs() < 1e-14);
        assert!((r.potential + 0.5).abs() < 1e-14);
        assert!((r.total() + 0.25).abs() < 1e-14);
        assert!((r.l_z - 1.0).abs() < 1e-14);
        assert!(r.momentum < 1e-14);
        assert!((r.virial_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_measure() {
        let p = two_body();
        let (f, _) = direct_self_forces(&p, 0.0, 1.0);
        let a = EnergyReport::from_forces(&p, &f);
        let mut b = a;
        b.kinetic *= 1.01; // +1% of T = 0.25 → ΔE = 0.0025 on E = -0.25
        assert!((b.drift_from(&a) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn density_center_finds_clump() {
        let mut p = Particles::new();
        // Dense clump at (3,0,0), sparse background.
        for i in 0..1000 {
            let t = i as f64 * 0.001;
            p.push(
                Vec3::new(3.0 + 0.01 * (t * 700.0).sin(), 0.01 * (t * 900.0).cos(), 0.0),
                Vec3::zero(),
                1.0,
                i,
            );
        }
        for i in 0..50 {
            p.push(Vec3::new(-10.0 + i as f64 * 0.4, 5.0, -3.0), Vec3::zero(), 1.0, 1000 + i);
        }
        let c = density_center(&p, 8);
        assert!((c - Vec3::new(3.0, 0.0, 0.0)).norm() < 0.2, "center {c}");
    }
}
