//! Bar-strength and pattern-speed diagnostics.
//!
//! The standard m = 2 Fourier analysis of the disk surface density:
//!
//! ```text
//! A₂(R) = | Σⱼ mⱼ e^(2iφⱼ) | / Σⱼ mⱼ        (over an annulus at R)
//! ```
//!
//! A global `A₂ ≳ 0.2` inside a few scale lengths is the usual "a bar has
//! formed" criterion; the bar *phase* `½·arg Σ mⱼ e^(2iφⱼ)` drifting linearly
//! in time gives the pattern speed Ω_b — the observable the paper wants to
//! compare against Gaia (§IV).

use bonsai_tree::Particles;

/// Result of an m = 2 analysis of one snapshot.
#[derive(Clone, Copy, Debug)]
pub struct BarAnalysis {
    /// Global bar amplitude within the analysis radius.
    pub a2: f64,
    /// Bar position angle, radians in `(-π/2, π/2]`.
    pub phase: f64,
    /// Particles that entered the measurement.
    pub count: usize,
}

impl BarAnalysis {
    /// Measure the m=2 mode of particles with cylindrical radius < `r_max`
    /// (restrict to disk ids with `id_filter` when analysing a composite
    /// model: the spheroidal halo would dilute the signal).
    pub fn measure(particles: &Particles, r_max: f64, id_filter: Option<(u64, u64)>) -> Self {
        let mut re = 0.0;
        let mut im = 0.0;
        let mut m_tot = 0.0;
        let mut count = 0usize;
        for i in 0..particles.len() {
            if let Some((lo, hi)) = id_filter {
                if particles.id[i] < lo || particles.id[i] >= hi {
                    continue;
                }
            }
            let p = particles.pos[i];
            let r = p.cyl_radius();
            if r >= r_max || r <= 0.0 {
                continue;
            }
            let m = particles.mass[i];
            let phi = p.azimuth();
            re += m * (2.0 * phi).cos();
            im += m * (2.0 * phi).sin();
            m_tot += m;
            count += 1;
        }
        if m_tot <= 0.0 {
            return Self {
                a2: 0.0,
                phase: 0.0,
                count: 0,
            };
        }
        Self {
            a2: (re * re + im * im).sqrt() / m_tot,
            phase: 0.5 * im.atan2(re),
            count,
        }
    }

    /// Radial A₂ profile: `(r_center, a2)` per annulus.
    pub fn profile(
        particles: &Particles,
        r_max: f64,
        nbins: usize,
        id_filter: Option<(u64, u64)>,
    ) -> Vec<(f64, f64)> {
        let mut re = vec![0.0; nbins];
        let mut im = vec![0.0; nbins];
        let mut mm = vec![0.0; nbins];
        for i in 0..particles.len() {
            if let Some((lo, hi)) = id_filter {
                if particles.id[i] < lo || particles.id[i] >= hi {
                    continue;
                }
            }
            let p = particles.pos[i];
            let r = p.cyl_radius();
            if r >= r_max || r <= 0.0 {
                continue;
            }
            let b = ((r / r_max) * nbins as f64) as usize;
            let b = b.min(nbins - 1);
            let m = particles.mass[i];
            let phi = p.azimuth();
            re[b] += m * (2.0 * phi).cos();
            im[b] += m * (2.0 * phi).sin();
            mm[b] += m;
        }
        let dr = r_max / nbins as f64;
        (0..nbins)
            .map(|b| {
                let a2 = if mm[b] > 0.0 {
                    (re[b] * re[b] + im[b] * im[b]).sqrt() / mm[b]
                } else {
                    0.0
                };
                ((b as f64 + 0.5) * dr, a2)
            })
            .collect()
    }
}

/// Estimate the pattern speed Ω_b (radians per time unit) from a series of
/// `(time, phase)` measurements by least squares on the unwrapped phase.
/// The m = 2 phase is π-periodic; jumps are unwrapped accordingly.
pub fn pattern_speed(series: &[(f64, f64)]) -> f64 {
    assert!(series.len() >= 2);
    // Unwrap (period π/... the phase returned is in (-π/2, π/2], period π/1
    // after the ½ factor: actually period π).
    let mut unwrapped = Vec::with_capacity(series.len());
    let mut offset = 0.0;
    let mut prev = series[0].1;
    unwrapped.push((series[0].0, prev));
    for &(t, ph) in &series[1..] {
        let mut d = ph - prev;
        while d > std::f64::consts::FRAC_PI_2 {
            d -= std::f64::consts::PI;
        }
        while d < -std::f64::consts::FRAC_PI_2 {
            d += std::f64::consts::PI;
        }
        offset += d;
        unwrapped.push((t, series[0].1 + offset));
        prev = ph;
    }
    // Least-squares slope.
    let n = unwrapped.len() as f64;
    let (mut st, mut sp, mut stt, mut stp) = (0.0, 0.0, 0.0, 0.0);
    for &(t, p) in &unwrapped {
        st += t;
        sp += p;
        stt += t * t;
        stp += t * p;
    }
    (n * stp - st * sp) / (n * stt - st * st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    /// A synthetic "bar": particles along ±x within a Gaussian envelope.
    fn synthetic_bar(n: usize, angle: f64, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::new();
        for i in 0..n {
            let r = rng.uniform() * 3.0;
            let along = if rng.uniform() < 0.5 { 1.0 } else { -1.0 };
            let spread = rng.normal_scaled(0.0, 0.15);
            let phi = angle + spread;
            let x = along * r * phi.cos();
            let y = along * r * phi.sin();
            p.push(Vec3::new(x, y, 0.0), Vec3::zero(), 1.0, i as u64);
        }
        p
    }

    fn axisymmetric(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::new();
        for i in 0..n {
            let r = rng.uniform() * 3.0;
            let phi = rng.uniform_in(0.0, std::f64::consts::TAU);
            p.push(Vec3::new(r * phi.cos(), r * phi.sin(), 0.0), Vec3::zero(), 1.0, i as u64);
        }
        p
    }

    #[test]
    fn bar_detected_axisymmetric_not() {
        let bar = synthetic_bar(20_000, 0.4, 1);
        let axi = axisymmetric(20_000, 2);
        let ab = BarAnalysis::measure(&bar, 4.0, None);
        let aa = BarAnalysis::measure(&axi, 4.0, None);
        assert!(ab.a2 > 0.6, "bar a2 {}", ab.a2);
        assert!(aa.a2 < 0.05, "axisymmetric a2 {}", aa.a2);
    }

    #[test]
    fn phase_recovers_bar_angle() {
        for &angle in &[0.0, 0.3, 0.7, 1.2] {
            let bar = synthetic_bar(50_000, angle, 3);
            let a = BarAnalysis::measure(&bar, 4.0, None);
            let mut d = a.phase - angle;
            while d > std::f64::consts::FRAC_PI_2 {
                d -= std::f64::consts::PI;
            }
            while d < -std::f64::consts::FRAC_PI_2 {
                d += std::f64::consts::PI;
            }
            assert!(d.abs() < 0.02, "angle {angle}: phase {} (d={d})", a.phase);
        }
    }

    #[test]
    fn pattern_speed_from_rotating_bar() {
        // Phase series of a bar rotating at Ω = 0.5 rad/unit, sampled so the
        // phase wraps several times.
        let omega = 0.5;
        let series: Vec<(f64, f64)> = (0..40)
            .map(|k| {
                let t = k as f64 * 0.3;
                let mut ph = omega * t;
                // map into (-π/2, π/2] like the measurement does (period π)
                while ph > std::f64::consts::FRAC_PI_2 {
                    ph -= std::f64::consts::PI;
                }
                (t, ph)
            })
            .collect();
        let est = pattern_speed(&series);
        assert!((est - omega).abs() < 1e-9, "estimated {est}");
    }

    #[test]
    fn profile_localizes_bar() {
        // Bar only inside r<1.5: outer annuli should be quiet.
        let mut p = synthetic_bar(20_000, 0.2, 4);
        for i in 0..p.len() {
            if p.pos[i].cyl_radius() > 1.5 {
                // replace outer bar particles with a ring (axisymmetric)
                let r = p.pos[i].cyl_radius();
                let phi = (i as f64) * 0.777;
                p.pos[i] = Vec3::new(r * phi.cos(), r * phi.sin(), 0.0);
            }
        }
        let prof = BarAnalysis::profile(&p, 3.0, 6, None);
        assert!(prof[0].1 > 0.5, "inner a2 {}", prof[0].1);
        assert!(prof[5].1 < 0.2, "outer a2 {}", prof[5].1);
    }

    #[test]
    fn empty_selection_is_quiet() {
        let p = axisymmetric(100, 5);
        let a = BarAnalysis::measure(&p, 4.0, Some((1000, 2000)));
        assert_eq!(a.count, 0);
        assert_eq!(a.a2, 0.0);
    }
}
