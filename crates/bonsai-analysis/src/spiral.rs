//! Spiral-structure diagnostics: azimuthal mode spectra and pitch angles.
//!
//! The science driver of the paper is resolving the *fine structure* of the
//! disk — spiral arms, their multiplicity and pitch angle (§II cites the
//! pitch-angle/galactic-shear studies of Grand et al. and the dynamic
//! spiral-arm work of Baba et al. and Fujii et al.). Two instruments:
//!
//! * [`mode_spectrum`] — amplitudes `A_m(R)` of azimuthal Fourier modes
//!   m = 0…M of the disk surface density (m = 2 is the bar/two-armed
//!   spiral; higher m captures multi-armed flocculence);
//! * [`pitch_angle`] — the pitch angle of an m-armed logarithmic spiral
//!   fitted through the radial drift of the m-mode phase: for
//!   `φ_m(R) = φ₀ + m·cot(i)·ln R`, the slope of phase vs `ln R` gives the
//!   pitch angle `i`.

use bonsai_tree::Particles;

/// Azimuthal Fourier amplitudes per annulus.
#[derive(Clone, Debug)]
pub struct ModeSpectrum {
    /// Annulus centre radii.
    pub radii: Vec<f64>,
    /// `amp[m][k]` = |A_m| in annulus `k`, normalized by A₀ (so `amp[0]` is 1).
    pub amp: Vec<Vec<f64>>,
    /// `phase[m][k]` = arg(A_m)/m in annulus `k` (radians; NaN where empty).
    pub phase: Vec<Vec<f64>>,
}

/// Compute mode amplitudes `m = 0..=m_max` in `nbins` annuli out to `r_max`.
pub fn mode_spectrum(
    particles: &Particles,
    r_max: f64,
    nbins: usize,
    m_max: usize,
    id_filter: Option<(u64, u64)>,
) -> ModeSpectrum {
    assert!(nbins > 0 && r_max > 0.0);
    let n_modes = m_max + 1;
    let mut re = vec![vec![0.0f64; nbins]; n_modes];
    let mut im = vec![vec![0.0f64; nbins]; n_modes];
    for i in 0..particles.len() {
        if let Some((lo, hi)) = id_filter {
            if particles.id[i] < lo || particles.id[i] >= hi {
                continue;
            }
        }
        let p = particles.pos[i];
        let r = p.cyl_radius();
        if r <= 0.0 || r >= r_max {
            continue;
        }
        let b = (((r / r_max) * nbins as f64) as usize).min(nbins - 1);
        let phi = p.azimuth();
        let m_w = particles.mass[i];
        for (m, (re_m, im_m)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
            re_m[b] += m_w * (m as f64 * phi).cos();
            im_m[b] += m_w * (m as f64 * phi).sin();
        }
    }
    let dr = r_max / nbins as f64;
    let radii = (0..nbins).map(|b| (b as f64 + 0.5) * dr).collect();
    let mut amp = vec![vec![0.0; nbins]; n_modes];
    let mut phase = vec![vec![f64::NAN; nbins]; n_modes];
    for b in 0..nbins {
        let a0 = (re[0][b] * re[0][b] + im[0][b] * im[0][b]).sqrt();
        for m in 0..n_modes {
            let a = (re[m][b] * re[m][b] + im[m][b] * im[m][b]).sqrt();
            amp[m][b] = if a0 > 0.0 { a / a0 } else { 0.0 };
            if m > 0 && a > 0.0 {
                phase[m][b] = im[m][b].atan2(re[m][b]) / m as f64;
            }
        }
    }
    ModeSpectrum { radii, amp, phase }
}

impl ModeSpectrum {
    /// Mass-weighted mean amplitude of mode `m` over annuli with radii in
    /// `[r_lo, r_hi]`.
    pub fn mean_amplitude(&self, m: usize, r_lo: f64, r_hi: f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (k, &r) in self.radii.iter().enumerate() {
            if r >= r_lo && r <= r_hi {
                sum += self.amp[m][k];
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The dominant non-axisymmetric mode in `[r_lo, r_hi]`.
    pub fn dominant_mode(&self, r_lo: f64, r_hi: f64) -> usize {
        (1..self.amp.len())
            .max_by(|&a, &b| {
                self.mean_amplitude(a, r_lo, r_hi)
                    .total_cmp(&self.mean_amplitude(b, r_lo, r_hi))
            })
            .unwrap_or(1)
    }
}

/// Fit the pitch angle (degrees) of an `m`-armed logarithmic spiral from the
/// phase drift of mode `m` between `r_lo` and `r_hi`. Returns `None` if
/// fewer than 3 annuli carry a measurable phase.
///
/// Convention: trailing spirals in a counter-clockwise-rotating disk have
/// positive pitch; 90° means purely radial arms (a bar reads as ~90°).
pub fn pitch_angle(spectrum: &ModeSpectrum, m: usize, r_lo: f64, r_hi: f64) -> Option<f64> {
    assert!(m >= 1 && m < spectrum.amp.len());
    // Collect (ln R, unwrapped phase·m) samples.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let period = std::f64::consts::TAU / m as f64;
    let mut prev: Option<f64> = None;
    let mut offset = 0.0;
    for (k, &r) in spectrum.radii.iter().enumerate() {
        if r < r_lo || r > r_hi {
            continue;
        }
        let ph = spectrum.phase[m][k];
        if !ph.is_finite() {
            continue;
        }
        let unwrapped = match prev {
            None => ph,
            Some(p) => {
                let mut d = ph - p;
                while d > period / 2.0 {
                    d -= period;
                }
                while d < -period / 2.0 {
                    d += period;
                }
                offset += d;
                ys.first().copied().unwrap_or(ph) + offset
            }
        };
        prev = Some(ph);
        xs.push(r.ln());
        ys.push(unwrapped);
    }
    if xs.len() < 3 {
        return None;
    }
    // Least squares slope dφ/d ln R = cot(i).
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let cot_i = (n * sxy - sx * sy) / denom;
    Some((1.0_f64 / cot_i.abs().max(1e-9)).atan().to_degrees())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    /// Synthetic m-armed logarithmic spiral with given pitch (degrees).
    fn spiral_disk(n: usize, arms: usize, pitch_deg: f64, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let cot_i = 1.0 / pitch_deg.to_radians().tan();
        let mut p = Particles::new();
        for i in 0..n {
            let r = 1.0 + 7.0 * rng.uniform();
            // place along the spiral ridge with some scatter
            let arm = rng.uniform_usize(arms);
            let phi_ridge = cot_i * r.ln()
                + std::f64::consts::TAU * arm as f64 / arms as f64
                + rng.normal_scaled(0.0, 0.08);
            p.push(
                Vec3::new(r * phi_ridge.cos(), r * phi_ridge.sin(), 0.0),
                Vec3::zero(),
                1.0,
                i as u64,
            );
        }
        p
    }

    #[test]
    fn axisymmetric_disk_has_flat_spectrum() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut p = Particles::new();
        for i in 0..50_000 {
            let r = 1.0 + 7.0 * rng.uniform();
            let phi = rng.uniform_in(0.0, std::f64::consts::TAU);
            p.push(Vec3::new(r * phi.cos(), r * phi.sin(), 0.0), Vec3::zero(), 1.0, i);
        }
        let s = mode_spectrum(&p, 9.0, 12, 6, None);
        for m in 1..=6 {
            let a = s.mean_amplitude(m, 1.0, 8.0);
            assert!(a < 0.05, "m={m} amplitude {a} should be noise-level");
        }
    }

    #[test]
    fn detects_arm_multiplicity() {
        for arms in [2usize, 4] {
            let p = spiral_disk(60_000, arms, 20.0, arms as u64);
            let s = mode_spectrum(&p, 9.0, 12, 6, None);
            assert_eq!(
                s.dominant_mode(2.0, 8.0),
                arms,
                "should find the {arms}-armed pattern"
            );
        }
    }

    #[test]
    fn recovers_pitch_angle() {
        for &pitch in &[15.0f64, 25.0, 40.0] {
            let p = spiral_disk(80_000, 2, pitch, 7);
            let s = mode_spectrum(&p, 9.0, 24, 4, None);
            let got = pitch_angle(&s, 2, 1.5, 8.0).expect("fit");
            assert!(
                (got - pitch).abs() < 4.0,
                "pitch {pitch}°: recovered {got}°"
            );
        }
    }

    #[test]
    fn bar_reads_as_high_pitch() {
        // Straight bar: phase constant with radius → cot(i) ≈ 0 → i ≈ 90°.
        let mut rng = Xoshiro256::seed_from(9);
        let mut p = Particles::new();
        for i in 0..30_000 {
            let r = 0.5 + 3.0 * rng.uniform();
            let sign = if rng.uniform() < 0.5 { 0.0 } else { std::f64::consts::PI };
            let phi = 0.7 + sign + rng.normal_scaled(0.0, 0.05);
            p.push(Vec3::new(r * phi.cos(), r * phi.sin(), 0.0), Vec3::zero(), 1.0, i);
        }
        let s = mode_spectrum(&p, 4.0, 16, 4, None);
        let i_deg = pitch_angle(&s, 2, 0.6, 3.5).expect("fit");
        assert!(i_deg > 60.0, "bar pitch {i_deg}° should be near 90°");
    }

    #[test]
    fn id_filter_respected() {
        let p = spiral_disk(10_000, 2, 20.0, 3);
        let s_all = mode_spectrum(&p, 9.0, 8, 3, None);
        let s_none = mode_spectrum(&p, 9.0, 8, 3, Some((1_000_000, 2_000_000)));
        assert!(s_all.mean_amplitude(2, 2.0, 8.0) > 0.5);
        assert_eq!(s_none.mean_amplitude(2, 2.0, 8.0), 0.0);
    }
}
