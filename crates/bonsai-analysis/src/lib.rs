//! # bonsai-analysis
//!
//! The science instruments behind the paper's Fig. 3 and the conservation
//! diagnostics behind every long integration:
//!
//! * [`density`] — mass-weighted face-on surface-density maps and radial
//!   profiles (the galaxy images of Fig. 3);
//! * [`bar`] — m = 2 Fourier bar strength `A₂`, bar phase, and pattern-speed
//!   estimation from phase drift (how we detect that "a barred spiral galaxy
//!   similar to the Milky Way has formed");
//! * [`velocity`] — the solar-neighbourhood (v_r, v_φ) velocity-structure
//!   histogram (Fig. 3 bottom-left, the moving-groups panel);
//! * [`energy`] — kinetic/potential/total energy, angular momentum and
//!   virial diagnostics used by the integrator tests;
//! * [`ppm`] — tiny dependency-free PPM/CSV writers so every figure can be
//!   regenerated as an actual image/table from the benches.
//!
//! ```
//! use bonsai_analysis::bar::BarAnalysis;
//! use bonsai_ic::plummer_sphere;
//!
//! // A spherical cluster has no m=2 distortion.
//! let p = plummer_sphere(5_000, 1);
//! let bar = BarAnalysis::measure(&p, 2.0, None);
//! assert!(bar.a2 < 0.1);
//! ```

#![deny(missing_docs)]

pub mod bar;
pub mod density;
pub mod energy;
pub mod ppm;
pub mod rotation;
pub mod spiral;
pub mod velocity;

pub use bar::BarAnalysis;
pub use density::SurfaceDensityMap;
pub use energy::EnergyReport;
pub use velocity::VelocityStructure;
