//! Face-on surface-density maps and radial profiles.

use bonsai_tree::Particles;

/// A mass-weighted 2D grid over the x–y (disk) plane.
#[derive(Clone, Debug)]
pub struct SurfaceDensityMap {
    /// Half-extent of the map (centred on the origin), in position units.
    pub half_extent: f64,
    /// Grid resolution per axis.
    pub n: usize,
    /// Row-major surface density, mass / area per cell.
    pub sigma: Vec<f64>,
}

impl SurfaceDensityMap {
    /// Bin `particles` (optionally restricted to ids in `[id_lo, id_hi)`)
    /// into an `n × n` face-on map covering `[-half_extent, half_extent]²`.
    pub fn compute(
        particles: &Particles,
        half_extent: f64,
        n: usize,
        id_filter: Option<(u64, u64)>,
    ) -> Self {
        assert!(n > 0 && half_extent > 0.0);
        let mut mass = vec![0.0f64; n * n];
        let cell = 2.0 * half_extent / n as f64;
        for i in 0..particles.len() {
            if let Some((lo, hi)) = id_filter {
                if particles.id[i] < lo || particles.id[i] >= hi {
                    continue;
                }
            }
            let p = particles.pos[i];
            let fx = (p.x + half_extent) / cell;
            let fy = (p.y + half_extent) / cell;
            if fx < 0.0 || fy < 0.0 {
                continue;
            }
            let (ix, iy) = (fx as usize, fy as usize);
            if ix >= n || iy >= n {
                continue;
            }
            mass[iy * n + ix] += particles.mass[i];
        }
        let area = cell * cell;
        for m in &mut mass {
            *m /= area;
        }
        Self {
            half_extent,
            n,
            sigma: mass,
        }
    }

    /// Surface density at cell `(ix, iy)`.
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        self.sigma[iy * self.n + ix]
    }

    /// Maximum cell value.
    pub fn max(&self) -> f64 {
        self.sigma.iter().copied().fold(0.0, f64::max)
    }

    /// Total mass represented on the map.
    pub fn total_mass(&self) -> f64 {
        let cell = 2.0 * self.half_extent / self.n as f64;
        self.sigma.iter().sum::<f64>() * cell * cell
    }

    /// Log-scaled brightness in `[0, 1]` for rendering (decades of dynamic
    /// range below the peak).
    pub fn log_brightness(&self, decades: f64) -> Vec<f64> {
        let max = self.max().max(f64::MIN_POSITIVE);
        self.sigma
            .iter()
            .map(|&s| {
                if s <= 0.0 {
                    0.0
                } else {
                    ((s / max).log10() / decades + 1.0).clamp(0.0, 1.0)
                }
            })
            .collect()
    }
}

/// Azimuthally averaged radial surface-density profile: returns
/// `(r_center, sigma)` pairs for `nbins` annuli out to `r_max`.
pub fn radial_profile(particles: &Particles, r_max: f64, nbins: usize) -> Vec<(f64, f64)> {
    assert!(nbins > 0 && r_max > 0.0);
    let mut mass = vec![0.0f64; nbins];
    for i in 0..particles.len() {
        let r = particles.pos[i].cyl_radius();
        if r < r_max {
            let b = ((r / r_max) * nbins as f64) as usize;
            mass[b.min(nbins - 1)] += particles.mass[i];
        }
    }
    let dr = r_max / nbins as f64;
    (0..nbins)
        .map(|b| {
            let r0 = b as f64 * dr;
            let r1 = r0 + dr;
            let area = std::f64::consts::PI * (r1 * r1 - r0 * r0);
            (r0 + 0.5 * dr, mass[b] / area)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    fn ring(n: usize, radius: f64) -> Particles {
        let mut p = Particles::new();
        for i in 0..n {
            let phi = std::f64::consts::TAU * i as f64 / n as f64;
            p.push(
                Vec3::new(radius * phi.cos(), radius * phi.sin(), 0.0),
                Vec3::zero(),
                1.0,
                i as u64,
            );
        }
        p
    }

    #[test]
    fn map_conserves_in_range_mass() {
        let p = ring(1000, 2.0);
        let m = SurfaceDensityMap::compute(&p, 5.0, 64, None);
        assert!((m.total_mass() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn off_map_particles_dropped() {
        let p = ring(100, 10.0);
        let m = SurfaceDensityMap::compute(&p, 5.0, 32, None);
        assert_eq!(m.total_mass(), 0.0);
    }

    #[test]
    fn id_filter_selects_component() {
        let mut p = ring(100, 1.0);
        let q = ring(100, 3.0);
        for i in 0..q.len() {
            p.push(q.pos[i], q.vel[i], q.mass[i], 100 + q.id[i]);
        }
        let m = SurfaceDensityMap::compute(&p, 5.0, 32, Some((0, 100)));
        assert!((m.total_mass() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn radial_profile_is_exponential_for_exponential_disk() {
        // Sample an exponential disk and recover its scale length.
        let mut rng = Xoshiro256::seed_from(1);
        let rd = 2.0;
        let mut p = Particles::new();
        for i in 0..200_000 {
            // crude inverse sampling by rejection on r·e^(-r/rd)
            let r = loop {
                let r = rng.uniform() * 12.0 * rd;
                let y = rng.uniform() * rd * (-1.0f64).exp();
                if y <= r * (-r / rd).exp() {
                    break r;
                }
            };
            let phi = rng.uniform_in(0.0, std::f64::consts::TAU);
            p.push(Vec3::new(r * phi.cos(), r * phi.sin(), 0.0), Vec3::zero(), 1.0, i);
        }
        let prof = radial_profile(&p, 8.0 * rd, 32);
        // Fit log-slope between 2 and 10 kpc-ish.
        let lo = prof.iter().find(|&&(r, _)| r > 2.0).unwrap();
        let hi = prof.iter().find(|&&(r, _)| r > 10.0).unwrap();
        let slope = (hi.1.ln() - lo.1.ln()) / (hi.0 - lo.0);
        assert!(
            (slope + 1.0 / rd).abs() < 0.07,
            "profile slope {slope} vs expected {}",
            -1.0 / rd
        );
    }

    #[test]
    fn log_brightness_bounds() {
        let p = ring(100, 2.0);
        let m = SurfaceDensityMap::compute(&p, 5.0, 32, None);
        let b = m.log_brightness(3.0);
        assert!(b.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let peak_idx = (0..b.len()).max_by(|&i, &j| b[i].total_cmp(&b[j])).unwrap();
        assert_eq!(b[peak_idx], 1.0);
    }
}
