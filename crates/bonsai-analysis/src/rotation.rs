//! Measured rotation curves and disk-stability profiles.
//!
//! The initial-condition generator *imposes* a rotation curve; these
//! instruments *measure* one from a snapshot, closing the loop: IC quality
//! checks, and the observable the paper's Gaia comparison ultimately needs
//! (§IV: "the pattern speed and resonances of both the bar and spiral
//! arms" are read against the disk's rotation).

use crate::velocity::cylindrical_velocity;
use bonsai_tree::Particles;

/// One annulus of a measured rotation curve.
#[derive(Clone, Copy, Debug)]
pub struct RotationBin {
    /// Annulus centre radius.
    pub r: f64,
    /// Mass-weighted mean streaming velocity ⟨v_φ⟩.
    pub v_phi: f64,
    /// Radial velocity dispersion σ_R.
    pub sigma_r: f64,
    /// Vertical velocity dispersion σ_z.
    pub sigma_z: f64,
    /// Particles in the annulus.
    pub count: usize,
}

/// Measure the streaming + dispersion profile of (a subset of) a snapshot
/// in `nbins` annuli out to `r_max`.
pub fn rotation_curve(
    particles: &Particles,
    r_max: f64,
    nbins: usize,
    id_filter: Option<(u64, u64)>,
) -> Vec<RotationBin> {
    assert!(nbins > 0 && r_max > 0.0);
    let mut w = vec![0.0f64; nbins];
    let mut s_vphi = vec![0.0f64; nbins];
    let mut s_vr = vec![0.0f64; nbins];
    let mut s_vr2 = vec![0.0f64; nbins];
    let mut s_vz = vec![0.0f64; nbins];
    let mut s_vz2 = vec![0.0f64; nbins];
    let mut count = vec![0usize; nbins];
    for i in 0..particles.len() {
        if let Some((lo, hi)) = id_filter {
            if particles.id[i] < lo || particles.id[i] >= hi {
                continue;
            }
        }
        let r = particles.pos[i].cyl_radius();
        if r <= 0.0 || r >= r_max {
            continue;
        }
        let b = (((r / r_max) * nbins as f64) as usize).min(nbins - 1);
        let (vr, vphi) = cylindrical_velocity(particles.pos[i], particles.vel[i]);
        let vz = particles.vel[i].z;
        let m = particles.mass[i];
        w[b] += m;
        s_vphi[b] += m * vphi;
        s_vr[b] += m * vr;
        s_vr2[b] += m * vr * vr;
        s_vz[b] += m * vz;
        s_vz2[b] += m * vz * vz;
        count[b] += 1;
    }
    let dr = r_max / nbins as f64;
    (0..nbins)
        .map(|b| {
            let (v_phi, sigma_r, sigma_z) = if w[b] > 0.0 {
                let mean_r = s_vr[b] / w[b];
                let mean_z = s_vz[b] / w[b];
                (
                    s_vphi[b] / w[b],
                    (s_vr2[b] / w[b] - mean_r * mean_r).max(0.0).sqrt(),
                    (s_vz2[b] / w[b] - mean_z * mean_z).max(0.0).sqrt(),
                )
            } else {
                (0.0, 0.0, 0.0)
            };
            RotationBin {
                r: (b as f64 + 0.5) * dr,
                v_phi,
                sigma_r,
                sigma_z,
                count: count[b],
            }
        })
        .collect()
}

/// Toomre Q profile of a disk subset: `Q = σ_R·κ / (3.36·G·Σ)`, with the
/// epicyclic frequency κ estimated from the measured ⟨v_φ⟩ curve and Σ from
/// the annulus masses. `Q ≲ 1` marks axisymmetric instability; bars grow
/// from `Q ≈ 1–1.5` disks.
pub fn toomre_q_profile(
    particles: &Particles,
    r_max: f64,
    nbins: usize,
    g: f64,
    id_filter: Option<(u64, u64)>,
) -> Vec<(f64, f64)> {
    let curve = rotation_curve(particles, r_max, nbins, id_filter);
    // Surface density per annulus.
    let dr = r_max / nbins as f64;
    let mut sigma = vec![0.0f64; nbins];
    for i in 0..particles.len() {
        if let Some((lo, hi)) = id_filter {
            if particles.id[i] < lo || particles.id[i] >= hi {
                continue;
            }
        }
        let r = particles.pos[i].cyl_radius();
        if r > 0.0 && r < r_max {
            let b = (((r / r_max) * nbins as f64) as usize).min(nbins - 1);
            sigma[b] += particles.mass[i];
        }
    }
    for (b, s) in sigma.iter_mut().enumerate() {
        let r0 = b as f64 * dr;
        let r1 = r0 + dr;
        *s /= std::f64::consts::PI * (r1 * r1 - r0 * r0);
    }
    // κ² = 2Ω/r · d(r²Ω)/dr via finite differences on ⟨v_φ⟩.
    (1..nbins - 1)
        .map(|b| {
            let r = curve[b].r;
            let omega = curve[b].v_phi / r;
            let r2o_hi = curve[b + 1].r * curve[b + 1].v_phi;
            let r2o_lo = curve[b - 1].r * curve[b - 1].v_phi;
            let d = (r2o_hi - r2o_lo) / (curve[b + 1].r - curve[b - 1].r);
            let kappa2 = (2.0 * omega / r * d).max(0.0);
            let q = if sigma[b] > 0.0 && kappa2 > 0.0 {
                curve[b].sigma_r * kappa2.sqrt() / (3.36 * g * sigma[b])
            } else {
                f64::INFINITY
            };
            (r, q)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Vec3;

    /// Cold disk rotating at exactly v_c = 200 with σ = 10.
    fn spinning_disk(n: usize, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::new();
        for i in 0..n {
            let r = 2.0 + 10.0 * rng.uniform();
            let phi = rng.uniform_in(0.0, std::f64::consts::TAU);
            let pos = Vec3::new(r * phi.cos(), r * phi.sin(), rng.normal_scaled(0.0, 0.2));
            let ephi = Vec3::new(-phi.sin(), phi.cos(), 0.0);
            let er = Vec3::new(phi.cos(), phi.sin(), 0.0);
            let vel = ephi * (200.0 + rng.normal_scaled(0.0, 10.0))
                + er * rng.normal_scaled(0.0, 10.0)
                + Vec3::new(0.0, 0.0, rng.normal_scaled(0.0, 5.0));
            p.push(pos, vel, 1.0, i as u64);
        }
        p
    }

    #[test]
    fn recovers_flat_curve_and_dispersions() {
        let p = spinning_disk(60_000, 1);
        let curve = rotation_curve(&p, 12.0, 12, None);
        for bin in curve.iter().filter(|b| b.count > 500) {
            assert!((bin.v_phi - 200.0).abs() < 3.0, "v_phi {} at r {}", bin.v_phi, bin.r);
            assert!((bin.sigma_r - 10.0).abs() < 1.5, "sigma_r {}", bin.sigma_r);
            assert!((bin.sigma_z - 5.0).abs() < 1.0, "sigma_z {}", bin.sigma_z);
        }
    }

    #[test]
    fn milky_way_ic_rotation_matches_model() {
        use bonsai_ic::MilkyWayModel;
        let mw = MilkyWayModel::paper();
        let n = 40_000;
        let (nb, nd, _) = mw.component_counts(n);
        let p = mw.generate(n, 3);
        let curve = rotation_curve(&p, 16.0, 8, Some((nb as u64, (nb + nd) as u64)));
        for bin in curve.iter().filter(|b| b.count > 200 && b.r > 4.0) {
            let vc = mw.circular_velocity(bin.r);
            assert!(
                (bin.v_phi / vc - 1.0).abs() < 0.25,
                "r {}: measured {} vs model {}",
                bin.r,
                bin.v_phi,
                vc
            );
        }
    }

    #[test]
    fn empty_annuli_are_zero() {
        let p = spinning_disk(100, 2);
        let curve = rotation_curve(&p, 1.0, 4, None); // all particles beyond 2
        assert!(curve.iter().all(|b| b.count == 0 && b.v_phi == 0.0));
    }

    #[test]
    fn flat_curve_toomre_q_magnitude() {
        // For the synthetic disk: Σ ≈ n·m/(π(12²−2²)) ≈ …, κ = √2·Ω for a
        // flat curve; just check Q is finite, positive, and decreasing with
        // the surface-density-richer inner annuli excluded.
        let p = spinning_disk(60_000, 4);
        let q = toomre_q_profile(&p, 12.0, 12, 1.0, None);
        for &(r, qv) in q.iter().filter(|(r, _)| *r > 3.0 && *r < 11.0) {
            assert!(qv.is_finite() && qv > 0.0, "Q at {r} = {qv}");
        }
    }
}
