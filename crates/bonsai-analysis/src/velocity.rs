//! Solar-neighbourhood velocity structure (Fig. 3, bottom-left panel).
//!
//! The paper selects the 68,000 particles within 500 pc of the assumed solar
//! position (8 kpc from the Galactic Centre) and plots the distribution of
//! radial velocity v_r against azimuthal velocity v_φ with the disk rotation
//! subtracted — the plane where "moving groups" appear as clumps/streams.

use bonsai_tree::Particles;
use bonsai_util::stats::Histogram2d;
use bonsai_util::Vec3;

/// The (v_r, v_φ − v_rot) distribution of a local sphere of stars.
#[derive(Clone, Debug)]
pub struct VelocityStructure {
    /// 2D histogram over (v_r, Δv_φ), both in km/s.
    pub hist: Histogram2d,
    /// Number of selected particles ("sample stars").
    pub count: usize,
    /// Mean azimuthal velocity that was subtracted.
    pub v_rot: f64,
}

impl VelocityStructure {
    /// Select particles within `radius` of `center` (a point in the disk
    /// plane), optionally restricted to ids in `[lo, hi)`, and histogram
    /// their in-plane velocities over ±`v_range` km/s with `bins²` cells.
    pub fn measure(
        particles: &Particles,
        center: Vec3,
        radius: f64,
        v_range: f64,
        bins: usize,
        id_filter: Option<(u64, u64)>,
    ) -> Self {
        let r2 = radius * radius;
        // First pass: mean rotation velocity of the selection.
        let mut selected: Vec<usize> = Vec::new();
        for i in 0..particles.len() {
            if let Some((lo, hi)) = id_filter {
                if particles.id[i] < lo || particles.id[i] >= hi {
                    continue;
                }
            }
            if particles.pos[i].distance2(center) <= r2 {
                selected.push(i);
            }
        }
        let mut v_rot_sum = 0.0;
        for &i in &selected {
            let (_, vphi) = cylindrical_velocity(particles.pos[i], particles.vel[i]);
            v_rot_sum += vphi;
        }
        let v_rot = if selected.is_empty() {
            0.0
        } else {
            v_rot_sum / selected.len() as f64
        };
        // Second pass: histogram (v_r, v_φ − v_rot).
        let mut hist = Histogram2d::new(-v_range, v_range, bins, -v_range, v_range, bins);
        for &i in &selected {
            let (vr, vphi) = cylindrical_velocity(particles.pos[i], particles.vel[i]);
            hist.add(vr, vphi - v_rot);
        }
        Self {
            hist,
            count: selected.len(),
            v_rot,
        }
    }

    /// Fraction of selected stars inside the histogram range.
    pub fn coverage(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.hist.total() as f64 / self.count as f64
        }
    }
}

/// Decompose a velocity into galactocentric cylindrical components
/// `(v_r, v_φ)` at the particle's own position.
pub fn cylindrical_velocity(pos: Vec3, vel: Vec3) -> (f64, f64) {
    let r = pos.cyl_radius().max(1e-12);
    let er = Vec3::new(pos.x / r, pos.y / r, 0.0);
    let ephi = Vec3::new(-pos.y / r, pos.x / r, 0.0);
    (vel.dot(er), vel.dot(ephi))
}

/// Detect "moving groups": connected clumps of velocity-plane cells whose
/// counts significantly exceed a smoothed background.
///
/// The paper reads its Fig. 3 bottom-left panel as "several streams and
/// spots of high density regions … known as moving groups". This makes that
/// qualitative statement measurable: the histogram is compared against a
/// boxcar-smoothed version of itself; cells exceeding `background +
/// threshold_sigma·√background` are flagged, and 4-connected flagged
/// components with at least `min_cells` cells count as one group.
pub fn moving_group_count(hist: &Histogram2d, threshold_sigma: f64, min_cells: usize) -> usize {
    let (nx, ny) = hist.shape();
    // Boxcar background (5x5 window).
    let mut background = vec![0.0f64; nx * ny];
    for iy in 0..ny {
        for ix in 0..nx {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for dy in -2i64..=2 {
                for dx in -2i64..=2 {
                    let (x, y) = (ix as i64 + dx, iy as i64 + dy);
                    if x >= 0 && y >= 0 && (x as usize) < nx && (y as usize) < ny {
                        sum += hist.get(x as usize, y as usize) as f64;
                        cnt += 1.0;
                    }
                }
            }
            background[iy * nx + ix] = sum / cnt;
        }
    }
    // Flag significant cells.
    let mut flagged = vec![false; nx * ny];
    for i in 0..nx * ny {
        let b = background[i];
        let c = hist.bins()[i] as f64;
        if b > 0.0 && c > b + threshold_sigma * b.sqrt() {
            flagged[i] = true;
        }
    }
    // Count 4-connected components of at least min_cells.
    let mut seen = vec![false; nx * ny];
    let mut groups = 0usize;
    for start in 0..nx * ny {
        if !flagged[start] || seen[start] {
            continue;
        }
        let mut stack = vec![start];
        seen[start] = true;
        let mut size = 0usize;
        while let Some(i) = stack.pop() {
            size += 1;
            let (ix, iy) = (i % nx, i / nx);
            let mut push = |x: i64, y: i64| {
                if x >= 0 && y >= 0 && (x as usize) < nx && (y as usize) < ny {
                    let j = y as usize * nx + x as usize;
                    if flagged[j] && !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            };
            push(ix as i64 - 1, iy as i64);
            push(ix as i64 + 1, iy as i64);
            push(ix as i64, iy as i64 - 1);
            push(ix as i64, iy as i64 + 1);
        }
        if size >= min_cells {
            groups += 1;
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;

    /// Rotating ring passing through the "solar" position with dispersion.
    fn rotating_patch(n: usize, v_c: f64, sigma: f64, seed: u64) -> Particles {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut p = Particles::new();
        for i in 0..n {
            let pos = Vec3::new(8.0, 0.0, 0.0) + rng.unit_sphere() * (0.5 * rng.uniform());
            let r = pos.cyl_radius();
            let ephi = Vec3::new(-pos.y / r, pos.x / r, 0.0);
            let er = Vec3::new(pos.x / r, pos.y / r, 0.0);
            let vel = ephi * (v_c + rng.normal_scaled(0.0, sigma)) + er * rng.normal_scaled(0.0, sigma);
            p.push(pos, vel, 1.0, i as u64);
        }
        p
    }

    #[test]
    fn selects_only_local_sphere() {
        let mut p = rotating_patch(5000, 220.0, 20.0, 1);
        // Far-away contaminant.
        p.push(Vec3::new(-8.0, 0.0, 0.0), Vec3::zero(), 1.0, 99_999);
        let vs = VelocityStructure::measure(&p, Vec3::new(8.0, 0.0, 0.0), 0.5, 80.0, 40, None);
        assert_eq!(vs.count, 5000);
    }

    #[test]
    fn rotation_is_subtracted() {
        let p = rotating_patch(20_000, 220.0, 15.0, 2);
        let vs = VelocityStructure::measure(&p, Vec3::new(8.0, 0.0, 0.0), 0.5, 80.0, 40, None);
        assert!((vs.v_rot - 220.0).abs() < 2.0, "v_rot {}", vs.v_rot);
        // Distribution centred: peak cell near the middle.
        let (nx, ny) = vs.hist.shape();
        let mut best = (0, 0);
        let mut best_c = 0;
        for iy in 0..ny {
            for ix in 0..nx {
                if vs.hist.get(ix, iy) > best_c {
                    best_c = vs.hist.get(ix, iy);
                    best = (ix, iy);
                }
            }
        }
        assert!((best.0 as i64 - nx as i64 / 2).abs() <= 3);
        assert!((best.1 as i64 - ny as i64 / 2).abs() <= 3);
        // nearly all stars within ±80 km/s at σ=15
        assert!(vs.coverage() > 0.95);
    }

    #[test]
    fn cylindrical_decomposition() {
        // At (0, 5, 0): e_r = ŷ, e_φ = −x̂.
        let (vr, vphi) = cylindrical_velocity(Vec3::new(0.0, 5.0, 0.0), Vec3::new(-3.0, 2.0, 0.0));
        assert!((vr - 2.0).abs() < 1e-12);
        assert!((vphi - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_groups_detected_in_clumpy_velocity_plane() {
        // Smooth Gaussian background + two injected velocity clumps.
        let mut rng = Xoshiro256::seed_from(5);
        let mut hist = Histogram2d::new(-80.0, 80.0, 40, -80.0, 80.0, 40);
        for _ in 0..40_000 {
            hist.add(rng.normal_scaled(0.0, 30.0), rng.normal_scaled(0.0, 30.0));
        }
        let smooth_groups = moving_group_count(&hist, 5.0, 3);
        for _ in 0..1200 {
            hist.add(rng.normal_scaled(35.0, 4.0), rng.normal_scaled(-20.0, 4.0));
            hist.add(rng.normal_scaled(-30.0, 4.0), rng.normal_scaled(25.0, 4.0));
        }
        let clumpy_groups = moving_group_count(&hist, 5.0, 3);
        assert!(
            clumpy_groups >= smooth_groups + 2,
            "clumps not detected: {smooth_groups} -> {clumpy_groups}"
        );
    }

    #[test]
    fn smooth_plane_has_few_spurious_groups() {
        let mut rng = Xoshiro256::seed_from(6);
        let mut hist = Histogram2d::new(-80.0, 80.0, 40, -80.0, 80.0, 40);
        for _ in 0..100_000 {
            hist.add(rng.normal_scaled(0.0, 30.0), rng.normal_scaled(0.0, 30.0));
        }
        assert!(moving_group_count(&hist, 5.0, 3) <= 1);
    }

    #[test]
    fn empty_selection() {
        let p = rotating_patch(100, 220.0, 10.0, 3);
        let vs = VelocityStructure::measure(&p, Vec3::new(100.0, 0.0, 0.0), 0.1, 80.0, 10, None);
        assert_eq!(vs.count, 0);
        assert_eq!(vs.coverage(), 0.0);
    }
}
