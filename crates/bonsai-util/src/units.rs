//! The galactic unit system used throughout bonsai-rs.
//!
//! | quantity | unit |
//! |---|---|
//! | length   | kiloparsec (kpc) |
//! | velocity | km/s |
//! | mass     | solar mass (M☉) |
//! | time     | kpc / (km/s) ≈ 0.97779 Gyr |
//!
//! In these units Newton's constant is
//! `G = 4.300917270e-6 kpc (km/s)² / M☉`, so the paper's Milky Way model
//! (§IV: halo 6.0×10¹¹ M☉ NFW, disk 5.0×10¹⁰ M☉ exponential, bulge
//! 4.6×10⁹ M☉ Hernquist; ε = 1 pc; Δt = 75 kyr) can be written down directly.

/// Newton's gravitational constant in kpc (km/s)² / M☉.
pub const G: f64 = 4.300_917_270e-6;

/// One internal time unit (kpc / (km/s)) expressed in megayears.
pub const TIME_UNIT_MYR: f64 = 977.792_221;

/// One internal time unit expressed in gigayears.
pub const TIME_UNIT_GYR: f64 = TIME_UNIT_MYR / 1000.0;

/// One parsec in kpc.
pub const PARSEC: f64 = 1.0e-3;

/// Convert megayears to internal time units.
pub fn myr_to_internal(myr: f64) -> f64 {
    myr / TIME_UNIT_MYR
}

/// Convert gigayears to internal time units.
pub fn gyr_to_internal(gyr: f64) -> f64 {
    gyr * 1000.0 / TIME_UNIT_MYR
}

/// Convert internal time units to megayears.
pub fn internal_to_myr(t: f64) -> f64 {
    t * TIME_UNIT_MYR
}

/// Convert internal time units to gigayears.
pub fn internal_to_gyr(t: f64) -> f64 {
    t * TIME_UNIT_GYR
}

/// Circular velocity (km/s) at radius `r` (kpc) around enclosed mass `m` (M☉).
pub fn circular_velocity(m_enclosed: f64, r: f64) -> f64 {
    (G * m_enclosed / r).sqrt()
}

/// Dynamical (crossing) time `sqrt(r³ / (G m))` in internal units.
pub fn dynamical_time(m: f64, r: f64) -> f64 {
    (r * r * r / (G * m)).sqrt()
}

/// The paper's production time step, 75 000 yr, in internal units.
pub fn paper_time_step() -> f64 {
    myr_to_internal(0.075)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_circular_velocity_is_sane() {
        // ~1e11 Msun enclosed within 8 kpc gives ~230 km/s, the observed
        // rotation velocity at the Sun's radius.
        let v = circular_velocity(1.0e11, 8.0);
        assert!((200.0..260.0).contains(&v), "v_circ = {v}");
    }

    #[test]
    fn time_unit_round_trip() {
        let t = 3.5; // internal
        assert!((myr_to_internal(internal_to_myr(t)) - t).abs() < 1e-12);
        assert!((gyr_to_internal(internal_to_gyr(t)) - t).abs() < 1e-12);
    }

    #[test]
    fn gyr_consistency() {
        assert!((gyr_to_internal(1.0) - myr_to_internal(1000.0)).abs() < 1e-12);
        // 1 internal unit is just under a Gyr.
        assert!((internal_to_gyr(1.0) - 0.977792221).abs() < 1e-9);
    }

    #[test]
    fn paper_step_magnitude() {
        // 75 kyr is ~7.7e-5 internal units; a 6 Gyr run is ~80k steps at this dt.
        let dt = paper_time_step();
        assert!((dt - 7.67e-5).abs() < 1e-6);
        let steps = gyr_to_internal(8.0) / dt;
        assert!((steps - 106_667.0).abs() / 106_667.0 < 0.01, "paper quotes ~106,667 steps for 8 Gyr");
    }

    #[test]
    fn dynamical_time_scaling() {
        // t_dyn scales as r^(3/2)
        let t1 = dynamical_time(1e11, 8.0);
        let t2 = dynamical_time(1e11, 32.0);
        assert!((t2 / t1 - 8.0).abs() < 1e-9);
    }
}
