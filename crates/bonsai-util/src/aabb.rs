//! Axis-aligned bounding boxes and cubic tree cells.
//!
//! Two geometric queries drive the whole parallel tree-code:
//!
//! 1. point-to-box minimum distance — used by the group-based multipole
//!    acceptance criterion (MAC) during the tree walk, and
//! 2. box-to-box minimum distance — used when building a Local Essential Tree
//!    for a *remote domain*: a local cell must be opened if **any** point of
//!    the remote domain could open it, i.e. if the minimum distance from the
//!    cell to the remote domain geometry fails the MAC.

use crate::vec3::Vec3;

/// An axis-aligned bounding box given by inclusive min/max corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// An "empty" box that absorbs any point on the first [`Aabb::grow`].
    pub fn empty() -> Self {
        Self {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Box from explicit corners. Panics in debug builds if inverted.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z, "inverted AABB");
        Self { min, max }
    }

    /// Cube centred at `center` with half-side `half`.
    pub fn cube(center: Vec3, half: f64) -> Self {
        Self {
            min: center - Vec3::splat(half),
            max: center + Vec3::splat(half),
        }
    }

    /// Smallest box containing a set of points. Returns [`Aabb::empty`] for an
    /// empty slice.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut b = Self::empty();
        for &p in points {
            b.grow(p);
        }
        b
    }

    /// `true` if the box contains no points (min > max on some axis).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Extend to include point `p`.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Extend to include another box.
    #[inline]
    pub fn merge(&mut self, o: &Aabb) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the longest axis.
    #[inline]
    pub fn longest_side(&self) -> f64 {
        self.size().max_component()
    }

    /// Full-diagonal length.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.size().norm()
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if `o` lies fully inside `self`.
    pub fn contains_box(&self, o: &Aabb) -> bool {
        self.contains(o.min) && self.contains(o.max)
    }

    /// `true` if the boxes overlap (inclusive).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Squared minimum distance from a point to the box (0 inside).
    #[inline]
    pub fn min_dist2_point(&self, p: Vec3) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Squared minimum distance between two boxes (0 if they overlap).
    #[inline]
    pub fn min_dist2_box(&self, o: &Aabb) -> f64 {
        let dx = (self.min.x - o.max.x).max(0.0).max(o.min.x - self.max.x);
        let dy = (self.min.y - o.max.y).max(0.0).max(o.min.y - self.max.y);
        let dz = (self.min.z - o.max.z).max(0.0).max(o.min.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Expand symmetrically by `pad` on every side.
    pub fn padded(&self, pad: f64) -> Self {
        Self {
            min: self.min - Vec3::splat(pad),
            max: self.max + Vec3::splat(pad),
        }
    }

    /// The smallest *cube* that contains this box, centred on the box centre.
    ///
    /// The global tree root must be a cube so that octant subdivision maps
    /// exactly onto space-filling-curve key prefixes.
    pub fn bounding_cube(&self) -> Aabb {
        let half = 0.5 * self.longest_side();
        // Tiny padding keeps max-corner particles strictly inside so key
        // quantization never produces an out-of-range coordinate.
        Aabb::cube(self.center(), half * (1.0 + 1e-12) + f64::MIN_POSITIVE)
    }

    /// One of the 8 octants of a cubic cell. `idx` bit 0 → x-high, bit 1 →
    /// y-high, bit 2 → z-high.
    pub fn octant(&self, idx: u8) -> Aabb {
        debug_assert!(idx < 8);
        let c = self.center();
        let mut min = self.min;
        let mut max = c;
        if idx & 1 != 0 {
            min.x = c.x;
            max.x = self.max.x;
        }
        if idx & 2 != 0 {
            min.y = c.y;
            max.y = self.max.y;
        }
        if idx & 4 != 0 {
            min.z = c.z;
            max.z = self.max.z;
        }
        Aabb { min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_and_contains() {
        let mut b = Aabb::empty();
        assert!(b.is_empty());
        b.grow(Vec3::new(1.0, 2.0, 3.0));
        b.grow(Vec3::new(-1.0, 0.0, 5.0));
        assert!(!b.is_empty());
        assert!(b.contains(Vec3::new(0.0, 1.0, 4.0)));
        assert!(!b.contains(Vec3::new(0.0, 1.0, 5.1)));
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 3.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn point_distance() {
        let b = Aabb::new(Vec3::zero(), Vec3::splat(1.0));
        // inside
        assert_eq!(b.min_dist2_point(Vec3::splat(0.5)), 0.0);
        // face
        assert!((b.min_dist2_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-15);
        // corner
        assert!((b.min_dist2_point(Vec3::splat(2.0)) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn box_distance() {
        let a = Aabb::new(Vec3::zero(), Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!((a.min_dist2_box(&b) - 3.0).abs() < 1e-15);
        assert!((b.min_dist2_box(&a) - 3.0).abs() < 1e-15);
        let c = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        assert_eq!(a.min_dist2_box(&c), 0.0);
        assert!(a.intersects(&c));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn octants_partition_cube() {
        let cell = Aabb::cube(Vec3::new(1.0, 2.0, 3.0), 2.0);
        let mut vol = 0.0;
        for i in 0..8u8 {
            let o = cell.octant(i);
            let s = o.size();
            vol += s.x * s.y * s.z;
            assert!(cell.contains_box(&o));
        }
        let s = cell.size();
        assert!((vol - s.x * s.y * s.z).abs() < 1e-9);
    }

    #[test]
    fn octant_index_convention() {
        let cell = Aabb::cube(Vec3::zero(), 1.0);
        let o7 = cell.octant(7);
        assert_eq!(o7.min, Vec3::zero());
        assert_eq!(o7.max, Vec3::splat(1.0));
        let o0 = cell.octant(0);
        assert_eq!(o0.min, Vec3::splat(-1.0));
        assert_eq!(o0.max, Vec3::zero());
    }

    #[test]
    fn bounding_cube_contains_box() {
        let b = Aabb::new(Vec3::new(-3.0, 1.0, 0.0), Vec3::new(5.0, 2.0, 0.5));
        let c = b.bounding_cube();
        assert!(c.contains_box(&b));
        let s = c.size();
        assert!((s.x - s.y).abs() < 1e-9 && (s.y - s.z).abs() < 1e-9);
    }

    #[test]
    fn from_points_and_merge() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, -1.0, 2.0)];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 0.0));
        let mut m = b;
        m.merge(&Aabb::cube(Vec3::splat(10.0), 1.0));
        assert!(m.contains(Vec3::splat(10.5)));
        assert!(m.contains(Vec3::zero()));
    }

    #[test]
    fn padded_expands() {
        let b = Aabb::cube(Vec3::zero(), 1.0).padded(0.5);
        assert_eq!(b.min, Vec3::splat(-1.5));
        assert_eq!(b.max, Vec3::splat(1.5));
    }
}
