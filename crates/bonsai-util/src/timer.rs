//! Wall-clock timing and named accumulators.
//!
//! The paper's Table II decomposes a full N-body step into named phases
//! (sorting, domain update, tree construction, tree properties, local gravity,
//! LET gravity, non-hidden communication, other). [`PhaseTimes`] is the
//! mutable record each simulated rank fills in per step; the cluster simulator
//! reduces these across ranks.

use std::collections::BTreeMap;
use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed seconds since start.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Restart and return the elapsed seconds of the lap just finished.
    pub fn lap(&mut self) -> f64 {
        let e = self.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Named accumulation of (simulated or measured) seconds per phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    phases: BTreeMap<&'static str, f64>,
}

impl PhaseTimes {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(phase, seconds)` pairs (duplicates accumulate). This is
    /// the interchange used by the observability layer: a `StepBreakdown`
    /// flattens into phase pairs, the metrics registry stores them as a
    /// gauge family, and a reduction rebuilds the record from either side.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (&'static str, f64)>) -> Self {
        let mut pt = Self::new();
        for (name, secs) in pairs {
            pt.add(name, secs);
        }
        pt
    }

    /// Add `secs` to phase `name`.
    pub fn add(&mut self, name: &'static str, secs: f64) {
        *self.phases.entry(name).or_insert(0.0) += secs;
    }

    /// Seconds recorded for `name` (0 if absent).
    pub fn get(&self, name: &str) -> f64 {
        self.phases.get(name).copied().unwrap_or(0.0)
    }

    /// Total over all phases.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// Iterate `(phase, seconds)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.phases.iter().map(|(k, v)| (*k, *v))
    }

    /// Element-wise maximum with another record (per-phase critical path).
    pub fn max_with(&mut self, o: &PhaseTimes) {
        for (k, v) in o.iter() {
            let e = self.phases.entry(k).or_insert(0.0);
            if v > *e {
                *e = v;
            }
        }
    }

    /// Element-wise sum with another record.
    pub fn add_all(&mut self, o: &PhaseTimes) {
        for (k, v) in o.iter() {
            self.add(k, v);
        }
    }

    /// Scale every phase by `s` (e.g. to average over steps).
    pub fn scale(&mut self, s: f64) {
        for v in self.phases.values_mut() {
            *v *= s;
        }
    }

    /// Clear all phases.
    pub fn clear(&mut self) {
        self.phases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let lap = sw.lap();
        assert!(lap >= 0.009, "lap {lap} too short");
        // after lap the clock restarted
        assert!(sw.elapsed() < lap + 0.005);
    }

    #[test]
    fn from_pairs_accumulates() {
        let p = PhaseTimes::from_pairs([("sort", 0.1), ("gravity", 1.0), ("gravity", 0.5)]);
        assert_eq!(p.get("sort"), 0.1);
        assert_eq!(p.get("gravity"), 1.5);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn phase_accumulation() {
        let mut p = PhaseTimes::new();
        p.add("gravity", 1.5);
        p.add("gravity", 0.5);
        p.add("sort", 0.1);
        assert_eq!(p.get("gravity"), 2.0);
        assert_eq!(p.get("missing"), 0.0);
        assert!((p.total() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn max_with_takes_critical_path() {
        let mut a = PhaseTimes::new();
        a.add("x", 1.0);
        a.add("y", 3.0);
        let mut b = PhaseTimes::new();
        b.add("x", 2.0);
        b.add("z", 0.5);
        a.max_with(&b);
        assert_eq!(a.get("x"), 2.0);
        assert_eq!(a.get("y"), 3.0);
        assert_eq!(a.get("z"), 0.5);
    }

    #[test]
    fn add_all_and_scale() {
        let mut a = PhaseTimes::new();
        a.add("x", 1.0);
        let mut b = PhaseTimes::new();
        b.add("x", 3.0);
        a.add_all(&b);
        a.scale(0.5);
        assert_eq!(a.get("x"), 2.0);
    }
}
