//! Compensated (Kahan–Neumaier) summation.
//!
//! Long-term energy-conservation diagnostics sum ~10⁵–10⁶ terms per snapshot;
//! naive summation loses enough precision to mask the 2nd-order leapfrog
//! error signal the tests assert on. Neumaier's variant also handles the case
//! where the addend is larger than the running sum.

/// A compensated accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// New accumulator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Sum an iterator of terms with compensation.
    pub fn sum_iter<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut k = Self::new();
        for x in iter {
            k.add(x);
        }
        k.value()
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut k = Self::new();
        for x in iter {
            k.add(x);
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_sets() {
        let k: KahanSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(k.value(), 6.0);
    }

    #[test]
    fn recovers_cancelled_terms() {
        // 1 + 1e100 - 1e100 == 1 with compensation (Neumaier), 0 naively.
        let mut k = KahanSum::new();
        k.add(1.0);
        k.add(1e100);
        k.add(-1e100);
        assert_eq!(k.value(), 1.0);
    }

    #[test]
    fn beats_naive_on_many_small_terms() {
        let n = 10_000_000usize;
        let term = 0.1f64;
        let mut naive = 0.0f64;
        let mut k = KahanSum::new();
        for _ in 0..n {
            naive += term;
            k.add(term);
        }
        let exact = term * n as f64;
        assert!((k.value() - exact).abs() <= (naive - exact).abs());
        assert!((k.value() - exact).abs() < 1e-6);
    }

    #[test]
    fn sum_iter_helper() {
        let xs = vec![0.1; 1000];
        let s = KahanSum::sum_iter(xs.iter().copied());
        assert!((s - 100.0).abs() < 1e-12);
    }
}
