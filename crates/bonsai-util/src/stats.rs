//! Running statistics and histograms.
//!
//! Used by the analysis crate (velocity-structure histograms for Fig. 3, bar
//! strength time series) and by the benchmark harness (per-rank load-balance
//! statistics and interaction-count summaries for Table II).

/// Welford-style running mean/variance/min/max accumulator.
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf for empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf for empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// max / mean — the paper's load-imbalance metric (§III-B1 caps a rank at
    /// 1.3× the mean particle count).
    pub fn imbalance(&self) -> f64 {
        if self.n == 0 || self.mean == 0.0 {
            0.0
        } else {
            self.max / self.mean
        }
    }

    /// Fold observations from another accumulator.
    pub fn merge(&mut self, o: &Running) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = o.clone();
            return;
        }
        let n = (self.n + o.n) as f64;
        let d = o.mean - self.mean;
        let mean = self.mean + d * o.n as f64 / n;
        let m2 = self.m2 + o.m2 + d * d * self.n as f64 * o.n as f64 / n;
        self.n += o.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// A fixed-range 1D histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    under: u64,
    over: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `nbins` equal bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            under: 0,
            over: 0,
        }
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            let i = ((f * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Bin centre of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Count below range / above range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.under, self.over)
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// A fixed-range 2D histogram (used for the v_r–v_φ plane of Fig. 3 and for
/// face-on surface-density maps).
#[derive(Clone, Debug)]
pub struct Histogram2d {
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    nx: usize,
    ny: usize,
    bins: Vec<u64>,
}

impl Histogram2d {
    /// Histogram over `[x_lo,x_hi) × [y_lo,y_hi)` with `nx × ny` bins.
    pub fn new(x_lo: f64, x_hi: f64, nx: usize, y_lo: f64, y_hi: f64, ny: usize) -> Self {
        assert!(x_hi > x_lo && y_hi > y_lo && nx > 0 && ny > 0);
        Self {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            nx,
            ny,
            bins: vec![0; nx * ny],
        }
    }

    /// Add an observation; out-of-range points are dropped.
    pub fn add(&mut self, x: f64, y: f64) {
        if x < self.x_lo || x >= self.x_hi || y < self.y_lo || y >= self.y_hi {
            return;
        }
        let fx = (x - self.x_lo) / (self.x_hi - self.x_lo);
        let fy = (y - self.y_lo) / (self.y_hi - self.y_lo);
        let ix = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let iy = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        self.bins[iy * self.nx + ix] += 1;
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Count in cell `(ix, iy)`.
    pub fn get(&self, ix: usize, iy: usize) -> u64 {
        self.bins[iy * self.nx + ix]
    }

    /// Raw row-major counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Largest cell count.
    pub fn max_count(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// Percentile of a *sorted* slice using linear interpolation; `q` in [0,1].
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.add(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.imbalance() - 9.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        h.add(-1.0);
        h.add(10.0); // hi edge is exclusive -> over
        assert_eq!(h.total(), 10);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.outliers(), (1, 1));
        assert!((h.center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram2d_placement() {
        let mut h = Histogram2d::new(0.0, 4.0, 4, 0.0, 2.0, 2);
        h.add(0.5, 0.5);
        h.add(3.9, 1.9);
        h.add(5.0, 0.0); // dropped
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(3, 1), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.max_count(), 1);
        assert_eq!(h.shape(), (4, 2));
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&xs, 0.0), 0.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 100.0);
        assert!((percentile_sorted(&xs, 0.5) - 50.0).abs() < 1e-12);
        assert!((percentile_sorted(&xs, 0.25) - 25.0).abs() < 1e-12);
    }
}
