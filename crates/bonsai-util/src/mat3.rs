//! Symmetric 3×3 matrices.
//!
//! The Barnes–Hut quadrupole moment of a cell is a symmetric 3×3 matrix
//! `Q = Σ mⱼ (rⱼ − r̄)(rⱼ − r̄)ᵀ` (the paper's Eq. 1–2 use this un-detraced
//! form together with explicit `tr(Q)` terms). We store the six independent
//! components in the order `[xx, xy, xz, yy, yz, zz]`.

use crate::vec3::Vec3;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A symmetric 3×3 matrix with components `[xx, xy, xz, yy, yz, zz]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Sym3 {
    /// The six independent components.
    pub m: [f64; 6],
}

impl Sym3 {
    /// The zero matrix.
    #[inline(always)]
    pub const fn zero() -> Self {
        Self { m: [0.0; 6] }
    }

    /// The identity matrix.
    #[inline(always)]
    pub const fn identity() -> Self {
        Self { m: [1.0, 0.0, 0.0, 1.0, 0.0, 1.0] }
    }

    /// Outer product `w · v vᵀ` (symmetric by construction).
    #[inline(always)]
    pub fn outer(v: Vec3, w: f64) -> Self {
        Self {
            m: [
                w * v.x * v.x,
                w * v.x * v.y,
                w * v.x * v.z,
                w * v.y * v.y,
                w * v.y * v.z,
                w * v.z * v.z,
            ],
        }
    }

    /// `xx` component.
    #[inline(always)]
    pub fn xx(&self) -> f64 {
        self.m[0]
    }
    /// `xy` component.
    #[inline(always)]
    pub fn xy(&self) -> f64 {
        self.m[1]
    }
    /// `xz` component.
    #[inline(always)]
    pub fn xz(&self) -> f64 {
        self.m[2]
    }
    /// `yy` component.
    #[inline(always)]
    pub fn yy(&self) -> f64 {
        self.m[3]
    }
    /// `yz` component.
    #[inline(always)]
    pub fn yz(&self) -> f64 {
        self.m[4]
    }
    /// `zz` component.
    #[inline(always)]
    pub fn zz(&self) -> f64 {
        self.m[5]
    }

    /// Trace `xx + yy + zz`.
    #[inline(always)]
    pub fn trace(&self) -> f64 {
        self.m[0] + self.m[3] + self.m[5]
    }

    /// Matrix–vector product `Q·v`.
    #[inline(always)]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0] * v.x + self.m[1] * v.y + self.m[2] * v.z,
            self.m[1] * v.x + self.m[3] * v.y + self.m[4] * v.z,
            self.m[2] * v.x + self.m[4] * v.y + self.m[5] * v.z,
        )
    }

    /// Quadratic form `vᵀ Q v`.
    #[inline(always)]
    pub fn quad_form(&self, v: Vec3) -> f64 {
        v.dot(self.mul_vec(v))
    }

    /// Frobenius norm (treating the matrix as dense symmetric).
    pub fn frobenius(&self) -> f64 {
        let d = self.m[0] * self.m[0] + self.m[3] * self.m[3] + self.m[5] * self.m[5];
        let o = self.m[1] * self.m[1] + self.m[2] * self.m[2] + self.m[4] * self.m[4];
        (d + 2.0 * o).sqrt()
    }

    /// Detraced (traceless) version: `Q − tr(Q)/3 · I`.
    pub fn detraced(&self) -> Self {
        let t = self.trace() / 3.0;
        let mut m = self.m;
        m[0] -= t;
        m[3] -= t;
        m[5] -= t;
        Self { m }
    }

    /// `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().all(|x| x.is_finite())
    }
}

impl Add for Sym3 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut m = self.m;
        for i in 0..6 {
            m[i] += o.m[i];
        }
        Self { m }
    }
}

impl AddAssign for Sym3 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        for i in 0..6 {
            self.m[i] += o.m[i];
        }
    }
}

impl Sub for Sym3 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        let mut m = self.m;
        for i in 0..6 {
            m[i] -= o.m[i];
        }
        Self { m }
    }
}

impl Mul<f64> for Sym3 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: f64) -> Self {
        let mut m = self.m;
        for v in &mut m {
            *v *= s;
        }
        Self { m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_product_matches_definition() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let q = Sym3::outer(v, 2.0);
        assert_eq!(q.xx(), 2.0);
        assert_eq!(q.xy(), 4.0);
        assert_eq!(q.xz(), 6.0);
        assert_eq!(q.yy(), 8.0);
        assert_eq!(q.yz(), 12.0);
        assert_eq!(q.zz(), 18.0);
        assert_eq!(q.trace(), 2.0 * v.norm2());
    }

    #[test]
    fn mul_vec_vs_quadratic_form() {
        let v = Vec3::new(0.3, -1.1, 2.2);
        let q = Sym3::outer(Vec3::new(1.0, 2.0, -1.0), 1.5) + Sym3::identity() * 0.2;
        // For Q = w·u uᵀ + c·I: vᵀQv = w (u·v)² + c v·v
        let u = Vec3::new(1.0, 2.0, -1.0);
        let expect = 1.5 * u.dot(v) * u.dot(v) + 0.2 * v.norm2();
        assert!((q.quad_form(v) - expect).abs() < 1e-12);
    }

    #[test]
    fn detraced_is_traceless() {
        let q = Sym3::outer(Vec3::new(3.0, -2.0, 0.5), 4.0);
        assert!(q.detraced().trace().abs() < 1e-12);
    }

    #[test]
    fn identity_acts_as_identity() {
        let v = Vec3::new(5.0, -7.0, 11.0);
        assert_eq!(Sym3::identity().mul_vec(v), v);
        assert_eq!(Sym3::identity().trace(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = Sym3::outer(Vec3::new(1.0, 0.0, 0.0), 1.0);
        let b = Sym3::outer(Vec3::new(0.0, 1.0, 0.0), 1.0);
        let s = a + b;
        assert_eq!(s.trace(), 2.0);
        assert_eq!((s - b), a);
        assert_eq!((a * 3.0).xx(), 3.0);
    }

    #[test]
    fn frobenius_norm() {
        assert!((Sym3::identity().frobenius() - 3f64.sqrt()).abs() < 1e-15);
    }
}
