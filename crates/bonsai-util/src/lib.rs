//! # bonsai-util
//!
//! Foundation utilities shared by every crate in the bonsai-rs workspace:
//!
//! * [`vec3`] — 3-component `f64` vector used for positions, velocities and
//!   accelerations throughout the tree-code.
//! * [`mat3`] — symmetric 3×3 matrices for multipole (quadrupole) moments.
//! * [`aabb`] — axis-aligned bounding boxes and cubic tree cells, including the
//!   box–box minimum-distance query used by the multipole acceptance criterion
//!   during Local Essential Tree construction.
//! * [`rng`] — deterministic, platform-stable pseudo-random number generators
//!   (SplitMix64 and Xoshiro256++) so that initial conditions and tests
//!   reproduce bit-identically everywhere.
//! * [`hash`] — CRC-64 checksums and mixing functions backing message-envelope
//!   and snapshot integrity checks, plus the deterministic fault-injection
//!   schedule.
//! * [`kahan`] — compensated summation for energy diagnostics.
//! * [`stats`] — running statistics and 1D/2D histograms used by the analysis
//!   and benchmark crates.
//! * [`units`] — the galactic unit system (kpc, km/s, M☉) used to express the
//!   paper's Milky Way model.
//! * [`timer`] — wall-clock timers and named timing accumulators used to build
//!   per-step breakdowns (Table II of the paper).

#![deny(missing_docs)]

pub mod aabb;
pub mod hash;
pub mod kahan;
pub mod mat3;
pub mod rng;
pub mod stats;
pub mod timer;
pub mod units;
pub mod vec3;

pub use aabb::Aabb;
pub use hash::{crc64, mix64, mix_many};
pub use kahan::KahanSum;
pub use mat3::Sym3;
pub use rng::{SplitMix64, Xoshiro256};
pub use vec3::Vec3;
