//! Deterministic, platform-stable pseudo-random number generation.
//!
//! The paper generates its 51-billion-particle initial conditions *on the fly*
//! on every rank (§IV) — which only works if the generator is deterministic
//! and cheaply seekable per sub-range. We use SplitMix64 to derive stream
//! seeds and Xoshiro256++ as the workhorse generator; both are tiny, fast, and
//! produce identical sequences on every platform, unlike `rand`'s
//! `StdRng`, whose algorithm is not stability-guaranteed across versions.

/// SplitMix64: used for seeding and for cheap stateless hashing of stream ids.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ by Blackman & Vigna: the workhorse generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// An independent stream for `(seed, stream)` — used so each logical rank
    /// can generate its slice of the initial conditions without coordination.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn a few outputs so adjacent streams decorrelate even for
        // adversarial (sequential) stream ids.
        sm.next_u64();
        sm.next_u64();
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe as a log argument.
    #[inline]
    pub fn uniform_open0(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased).
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize(0)");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Standard normal deviate via the Box–Muller transform.
    #[inline]
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform_open0();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with given mean and standard deviation.
    #[inline]
    pub fn normal_scaled(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.normal()
    }

    /// A uniformly random point on the unit sphere.
    pub fn unit_sphere(&mut self) -> crate::vec3::Vec3 {
        let z = self.uniform_in(-1.0, 1.0);
        let phi = self.uniform_in(0.0, std::f64::consts::TAU);
        let r = (1.0 - z * z).max(0.0).sqrt();
        crate::vec3::Vec3::new(r * phi.cos(), r * phi.sin(), z)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism_and_streams() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s0 = Xoshiro256::stream(42, 0);
        let mut s1 = Xoshiro256::stream(42, 1);
        let overlap = (0..100).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(overlap, 0, "adjacent streams must not be correlated");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = Xoshiro256::seed_from(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn uniform_open0_never_zero() {
        let mut r = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform_open0();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn uniform_usize_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = r.uniform_usize(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seed_from(19);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "normal variance {var}");
    }

    #[test]
    fn unit_sphere_is_unit_and_isotropic() {
        let mut r = Xoshiro256::seed_from(23);
        let n = 50_000;
        let mut mean = crate::vec3::Vec3::zero();
        for _ in 0..n {
            let v = r.unit_sphere();
            assert!((v.norm() - 1.0).abs() < 1e-12);
            mean += v;
        }
        mean /= n as f64;
        assert!(mean.norm() < 0.02, "sphere mean {mean} should vanish");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from(31);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle should move things");
    }
}
