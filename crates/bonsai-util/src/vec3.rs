//! 3-component double-precision vector.
//!
//! The tree-code stores particle state in structure-of-arrays form, but all
//! point-wise arithmetic goes through [`Vec3`]. The type is `Copy`, 24 bytes,
//! and deliberately has no SIMD intrinsics: the hot kernels operate on slices
//! and rely on auto-vectorization (see `bonsai-tree::kernels`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-vector of `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

impl Vec3 {
    /// Create a vector from components.
    #[inline(always)]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline(always)]
    pub const fn zero() -> Self {
        ZERO
    }

    /// All components set to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        Self::new(v, v, v)
    }

    /// Build from a `[f64; 3]` array.
    #[inline(always)]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// Convert to a `[f64; 3]` array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction. Returns zero for the zero vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            ZERO
        }
    }

    /// Component-wise minimum.
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline(always)]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline(always)]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Euclidean distance to another point.
    #[inline(always)]
    pub fn distance(self, o: Self) -> f64 {
        (self - o).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline(always)]
    pub fn distance2(self, o: Self) -> f64 {
        (self - o).norm2()
    }

    /// `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Cylindrical radius `sqrt(x² + y²)` (galactic-disk convention: the disk
    /// lies in the x–y plane).
    #[inline(always)]
    pub fn cyl_radius(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Azimuthal angle in the x–y plane, in `(-π, π]`.
    #[inline(always)]
    pub fn azimuth(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: f64) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn div(self, s: f64) -> Self {
        Self::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline(always)]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, Add::add)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6e}, {:.6e}, {:.6e})", self.x, self.y, self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Self::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(a + Vec3::zero(), a);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        // cross product is orthogonal to both operands
        let a = Vec3::new(1.2, 3.4, -0.7);
        let b = Vec3::new(-2.0, 0.3, 9.1);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm2(), 169.0);
        assert_eq!(v.norm(), 13.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, -1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -1.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::zero();
        let _ = v[3];
    }

    #[test]
    fn cylindrical_helpers() {
        let v = Vec3::new(3.0, 4.0, 7.0);
        assert!((v.cyl_radius() - 5.0).abs() < 1e-15);
        let e = Vec3::new(0.0, 2.0, 0.0);
        assert!((e.azimuth() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn sum_iterator() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 3.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(0.1, 0.2, 0.3);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
