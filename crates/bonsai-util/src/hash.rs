//! Checksums and mixing functions for wire-format and snapshot integrity.
//!
//! The distributed protocol frames every payload in an envelope carrying a
//! CRC-64 checksum ([`crc64`]), so corrupted or truncated messages are
//! *detected* instead of deserialized into garbage, and the snapshot /
//! checkpoint formats append the same checksum so torn or bit-flipped files
//! are rejected on restart. [`mix64`] is the SplitMix64 finalizer used to
//! derive deterministic per-(rank, kind, step) fault decisions.

/// CRC-64/XZ (ECMA-182 polynomial, reflected) lookup table.
const CRC64_POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

const fn build_crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = build_crc64_table();

/// Streaming CRC-64/XZ state, for checksumming non-contiguous data
/// (e.g. an envelope header followed by its payload) without copying.
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// Fresh checksum state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { state: !0u64 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            crc = (crc >> 8) ^ CRC64_TABLE[idx];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// CRC-64/XZ of `data` (init/final XOR `!0`, reflected).
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

/// SplitMix64 finalizer: a high-quality 64→64-bit mix, used to turn
/// `(seed, rank, kind, step, …)` tuples into deterministic fault decisions.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a sequence of values into one deterministic 64-bit hash.
pub fn mix_many(values: &[u64]) -> u64 {
    let mut h = 0x2545_F491_4F6C_DD1Du64;
    for &v in values {
        h = mix64(h ^ v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA (standard check value).
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let data: Vec<u8> = (0..255u8).collect();
        let base = crc64(&data);
        for i in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc64(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn crc64_detects_truncation() {
        let data = vec![0xABu8; 64];
        let base = crc64(&data);
        for cut in [0, 1, 32, 63] {
            assert_ne!(crc64(&data[..cut]), base, "truncation to {cut} undetected");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello world, split across parts";
        let mut c = Crc64::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc64(data));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(1), mix64(2));
        assert_eq!(mix_many(&[1, 2, 3]), mix_many(&[1, 2, 3]));
        assert_ne!(mix_many(&[1, 2, 3]), mix_many(&[3, 2, 1]));
    }
}
