//! Property-based tests for the math foundations.

use bonsai_util::{Aabb, KahanSum, Sym3, Vec3};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vector_space_axioms(a in arb_vec3(), b in arb_vec3(), s in -1e3f64..1e3) {
        // commutativity / distributivity (exact in IEEE for these ops)
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a - a, Vec3::zero());
        let left = (a + b) * s;
        let right = a * s + b * s;
        prop_assert!((left - right).norm() <= 1e-9 * (left.norm() + 1.0));
    }

    #[test]
    fn cross_product_is_antisymmetric_and_orthogonal(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        prop_assert!((c + b.cross(a)).norm() <= 1e-9 * (c.norm() + 1.0));
        prop_assert!(c.dot(a).abs() <= 1e-6 * (a.norm() * b.norm() * a.norm()).max(1e-12));
    }

    #[test]
    fn cauchy_schwarz(a in arb_vec3(), b in arb_vec3()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12));
    }

    #[test]
    fn quadratic_form_is_nonnegative_for_outer_products(v in arb_vec3(), d in arb_vec3(), w in 0.0f64..10.0) {
        // Q = w d dᵀ is PSD, so vᵀQv ≥ 0 (up to roundoff).
        let q = Sym3::outer(d, w);
        prop_assert!(q.quad_form(v) >= -1e-6 * q.frobenius() * v.norm2());
    }

    #[test]
    fn parallel_axis_shift_preserves_trace_relation(d in arb_vec3(), m in 0.1f64..10.0) {
        // tr(outer(d, m)) = m·|d|²
        let q = Sym3::outer(d, m);
        prop_assert!((q.trace() - m * d.norm2()).abs() <= 1e-9 * (q.trace().abs() + 1.0));
    }

    #[test]
    fn aabb_distance_is_zero_iff_contained(p in arb_vec3(), c in arb_vec3(), h in 0.1f64..1e3) {
        let b = Aabb::cube(c, h);
        let d2 = b.min_dist2_point(p);
        if b.contains(p) {
            prop_assert_eq!(d2, 0.0);
        } else {
            prop_assert!(d2 > 0.0);
        }
    }

    #[test]
    fn aabb_box_distance_lower_bounds_point_distances(
        c1 in arb_vec3(), h1 in 0.1f64..100.0,
        c2 in arb_vec3(), h2 in 0.1f64..100.0,
        t in 0.0f64..1.0, u in 0.0f64..1.0, w in 0.0f64..1.0,
    ) {
        // Any point inside box2 is at least min_dist2_box away from box1.
        let a = Aabb::cube(c1, h1);
        let b = Aabb::cube(c2, h2);
        let p = Vec3::new(
            b.min.x + t * (b.max.x - b.min.x),
            b.min.y + u * (b.max.y - b.min.y),
            b.min.z + w * (b.max.z - b.min.z),
        );
        prop_assert!(a.min_dist2_point(p) + 1e-9 >= a.min_dist2_box(&b));
    }

    #[test]
    fn kahan_sum_is_permutation_stable(xs in proptest::collection::vec(-1e12f64..1e12, 1..200), seed in any::<u64>()) {
        let s1 = KahanSum::sum_iter(xs.iter().copied());
        let mut shuffled = xs.clone();
        let mut rng = bonsai_util::rng::Xoshiro256::seed_from(seed);
        rng.shuffle(&mut shuffled);
        let s2 = KahanSum::sum_iter(shuffled.into_iter());
        let scale: f64 = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        prop_assert!((s1 - s2).abs() <= 1e-9 * scale, "{s1} vs {s2}");
    }

    #[test]
    fn uniform_usize_is_always_in_range(seed in any::<u64>(), n in 1usize..1_000_000) {
        let mut rng = bonsai_util::rng::Xoshiro256::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.uniform_usize(n) < n);
        }
    }

    #[test]
    fn octants_partition_points(c in arb_vec3(), h in 0.1f64..100.0, p in arb_vec3()) {
        let cell = Aabb::cube(c, h);
        if cell.contains(p) {
            let containing = (0..8u8).filter(|&i| cell.octant(i).contains(p)).count();
            // interior points: exactly 1; points on octant faces: up to 8
            prop_assert!(containing >= 1, "point in cell but in no octant");
        }
    }
}
