//! Isotropic Jeans dispersion tables for spheroidal components.
//!
//! A tracer population with density `ρ(r)` living in a total potential with
//! enclosed mass `M_tot(<r)` has (isotropic, non-rotating) radial velocity
//! dispersion
//!
//! ```text
//! σ²(r) = 1/ρ(r) · ∫_r^∞ ρ(s) · G·M_tot(<s) / s²  ds
//! ```
//!
//! We tabulate the integral on a log grid from the outside in and
//! interpolate. This is how the halo and bulge of the Milky Way model get
//! their velocities; it is the standard Hernquist (1993) moment-based setup,
//! adequate for the bar/spiral phenomenology the paper studies.

/// Tabulated σ(r) for one component embedded in a total potential.
#[derive(Clone, Debug)]
pub struct JeansTable {
    log_r: Vec<f64>,
    sigma2: Vec<f64>,
}

impl JeansTable {
    /// Build a table for tracer `density` inside `m_total(<r)`, between
    /// `r_min` and `r_max`, with `n` log-spaced points.
    pub fn build(
        density: &dyn Fn(f64) -> f64,
        m_total: &dyn Fn(f64) -> f64,
        g: f64,
        r_min: f64,
        r_max: f64,
        n: usize,
    ) -> Self {
        assert!(r_min > 0.0 && r_max > r_min && n >= 8);
        let log_lo = r_min.ln();
        let log_hi = r_max.ln();
        let radii: Vec<f64> = (0..n)
            .map(|i| (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp())
            .collect();
        // Integrate ρ g M / s² ds from the outside in (trapezoid on the
        // log-spaced grid).
        let integrand = |r: f64| density(r) * g * m_total(r) / (r * r);
        let mut cumulative = vec![0.0; n];
        for i in (0..n - 1).rev() {
            let (a, b) = (radii[i], radii[i + 1]);
            let seg = 0.5 * (integrand(a) + integrand(b)) * (b - a);
            cumulative[i] = cumulative[i + 1] + seg;
        }
        let sigma2: Vec<f64> = (0..n)
            .map(|i| {
                let rho = density(radii[i]);
                if rho > 0.0 {
                    cumulative[i] / rho
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            log_r: radii.iter().map(|r| r.ln()).collect(),
            sigma2,
        }
    }

    /// One-dimensional velocity dispersion σ(r) (each Cartesian component).
    pub fn sigma(&self, r: f64) -> f64 {
        self.sigma2_at(r).max(0.0).sqrt()
    }

    /// σ²(r) with linear interpolation in log r (clamped at the ends).
    pub fn sigma2_at(&self, r: f64) -> f64 {
        let lr = r.max(1e-300).ln();
        let n = self.log_r.len();
        if lr <= self.log_r[0] {
            return self.sigma2[0];
        }
        if lr >= self.log_r[n - 1] {
            return self.sigma2[n - 1];
        }
        let i = self.log_r.partition_point(|&x| x < lr).clamp(1, n - 1);
        let (x0, x1) = (self.log_r[i - 1], self.log_r[i]);
        let f = (lr - x0) / (x1 - x0);
        self.sigma2[i - 1] * (1.0 - f) + self.sigma2[i] * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Hernquist, Profile};

    /// Hernquist (1990) Eq. 10: the exact isotropic radial dispersion of the
    /// self-gravitating model with G = M = a = 1.
    fn hernquist_sigma2_analytic(x: f64) -> f64 {
        (12.0 * x * (1.0 + x).powi(3) * ((1.0 + x) / x).ln()
            - x / (1.0 + x) * (25.0 + 52.0 * x + 42.0 * x * x + 12.0 * x * x * x))
            / 12.0
    }

    #[test]
    fn hernquist_dispersion_matches_analytic_solution() {
        let h = Hernquist { mass: 1.0, scale: 1.0, rcut: f64::INFINITY };
        let t = JeansTable::build(
            &|r| h.density(r),
            &|r| h.enclosed_mass(r),
            1.0,
            1e-4,
            1e4,
            600,
        );
        assert!(t.sigma(1e3) < 0.05, "sigma at infinity {}", t.sigma(1e3));
        for &x in &[0.1, 0.3, 0.5, 1.0, 2.0, 5.0] {
            let exact = hernquist_sigma2_analytic(x);
            let got = t.sigma2_at(x);
            assert!(
                (got - exact).abs() < 0.02 * exact,
                "sigma² at r={x}: table {got} vs analytic {exact}"
            );
        }
        // Peak of the analytic curve is ≈ 0.327 near r ≈ 0.3 a.
        let peak = (1..200).map(|i| t.sigma(0.01 * i as f64)).fold(0.0f64, f64::max);
        assert!((peak - 0.327).abs() < 0.02, "peak sigma {peak}");
    }

    #[test]
    fn dispersion_scales_with_sqrt_g() {
        let h = Hernquist { mass: 1.0, scale: 1.0, rcut: f64::INFINITY };
        let t1 = JeansTable::build(&|r| h.density(r), &|r| h.enclosed_mass(r), 1.0, 1e-3, 1e3, 300);
        let t4 = JeansTable::build(&|r| h.density(r), &|r| h.enclosed_mass(r), 4.0, 1e-3, 1e3, 300);
        let ratio = t4.sigma(1.0) / t1.sigma(1.0);
        assert!((ratio - 2.0).abs() < 1e-6, "sqrt(G) scaling, got {ratio}");
    }

    #[test]
    fn interpolation_clamps_outside_table() {
        let h = Hernquist { mass: 1.0, scale: 1.0, rcut: f64::INFINITY };
        let t = JeansTable::build(&|r| h.density(r), &|r| h.enclosed_mass(r), 1.0, 0.01, 100.0, 100);
        assert!((t.sigma2_at(0.001) - t.sigma2_at(0.01)).abs() < 1e-12);
        // The outermost table entry is ~0 (the integral vanishes at rmax);
        // beyond the table the value must stay clamped there.
        let edge = t.sigma2_at(100.0);
        assert!((t.sigma2_at(1e5) - edge).abs() < 1e-12);
    }
}
