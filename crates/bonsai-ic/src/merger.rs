//! Two-galaxy merger initial conditions.
//!
//! The paper's lineage includes minor-merger studies with earlier Bonsai
//! versions (§II cites Bédorf & Portegies Zwart 2013, "The effect of many
//! minor mergers on the size growth of compact quiescent galaxies"). This
//! module places two copies of any particle set on an approach orbit —
//! the standard workload for interaction/merger experiments and a natural
//! stress test for the domain decomposition (two dense clumps that fall
//! through each other force violent load rebalancing).

use bonsai_tree::Particles;
use bonsai_util::Vec3;

/// Orbit specification for a two-body encounter in the centre-of-mass frame.
#[derive(Clone, Copy, Debug)]
pub struct MergerOrbit {
    /// Initial separation of the two centres.
    pub separation: f64,
    /// Impact parameter (perpendicular offset).
    pub impact_parameter: f64,
    /// Relative approach speed.
    pub approach_speed: f64,
    /// Mass ratio `m2 / m1` applied to the secondary (particle masses are
    /// scaled; counts stay equal so the mass resolution differs, as in
    /// minor-merger setups).
    pub mass_ratio: f64,
}

impl MergerOrbit {
    /// A gentle head-on parabolic-ish encounter at the given separation, for
    /// systems in units where the primary has total mass ~`m` and radius ~`r`.
    pub fn head_on(separation: f64, m: f64, g: f64) -> Self {
        // Parabolic relative speed at this separation for a 1:1 pair.
        let v = (2.0 * g * 2.0 * m / separation).sqrt();
        Self {
            separation,
            impact_parameter: 0.0,
            approach_speed: v,
            mass_ratio: 1.0,
        }
    }
}

/// Combine `primary` and `secondary` on the given orbit. Ids of the
/// secondary are offset by `id_offset` to stay unique; both systems keep
/// their internal structure. Returns the merged set in the centre-of-mass
/// frame.
pub fn make_merger(
    primary: &Particles,
    secondary: &Particles,
    orbit: MergerOrbit,
    id_offset: u64,
) -> Particles {
    assert!(!primary.is_empty() && !secondary.is_empty());
    let m1 = primary.total_mass();
    let m2 = secondary.total_mass() * orbit.mass_ratio;
    let total = m1 + m2;

    // Positions/velocities of the two centres in the COM frame.
    let dx = Vec3::new(orbit.separation, orbit.impact_parameter, 0.0);
    let dv = Vec3::new(-orbit.approach_speed, 0.0, 0.0);
    let x1 = -dx * (m2 / total);
    let x2 = dx * (m1 / total);
    let v1 = -dv * (m2 / total);
    let v2 = dv * (m1 / total);

    let mut out = Particles::with_capacity(primary.len() + secondary.len());
    for i in 0..primary.len() {
        out.push(
            primary.pos[i] + x1,
            primary.vel[i] + v1,
            primary.mass[i],
            primary.id[i],
        );
    }
    for i in 0..secondary.len() {
        out.push(
            secondary.pos[i] + x2,
            secondary.vel[i] * orbit.mass_ratio.sqrt() + v2,
            secondary.mass[i] * orbit.mass_ratio,
            secondary.id[i] + id_offset,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plummer::plummer_sphere;

    #[test]
    fn merger_is_in_com_frame() {
        let a = plummer_sphere(500, 1);
        let b = plummer_sphere(400, 2);
        let orbit = MergerOrbit {
            separation: 10.0,
            impact_parameter: 1.0,
            approach_speed: 0.5,
            mass_ratio: 0.3,
        };
        let m = make_merger(&a, &b, orbit, 1_000_000);
        assert_eq!(m.len(), 900);
        assert!(m.center_of_mass().norm() < 1e-9, "COM {}", m.center_of_mass());
        assert!(m.momentum().norm() < 1e-9, "P {}", m.momentum());
    }

    #[test]
    fn ids_stay_unique() {
        let a = plummer_sphere(300, 3);
        let b = plummer_sphere(300, 4);
        let m = make_merger(&a, &b, MergerOrbit::head_on(8.0, 1.0, 1.0), 1_000_000);
        let mut ids = m.id.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 600);
    }

    #[test]
    fn mass_ratio_scales_secondary() {
        let a = plummer_sphere(200, 5);
        let b = plummer_sphere(200, 6);
        let orbit = MergerOrbit {
            separation: 10.0,
            impact_parameter: 0.0,
            approach_speed: 0.1,
            mass_ratio: 0.25,
        };
        let m = make_merger(&a, &b, orbit, 10_000);
        let m2: f64 = m
            .id
            .iter()
            .zip(&m.mass)
            .filter(|(&id, _)| id >= 10_000)
            .map(|(_, &w)| w)
            .sum();
        assert!((m2 - 0.25).abs() < 1e-9, "secondary mass {m2}");
    }

    #[test]
    fn centres_separated_as_requested() {
        let a = plummer_sphere(400, 7);
        let b = plummer_sphere(400, 8);
        let m = make_merger(&a, &b, MergerOrbit::head_on(12.0, 1.0, 1.0), 1_000_000);
        // COM of each half:
        let mut c1 = Vec3::zero();
        let mut c2 = Vec3::zero();
        let mut w1 = 0.0;
        let mut w2 = 0.0;
        for i in 0..m.len() {
            if m.id[i] < 1_000_000 {
                c1 += m.pos[i] * m.mass[i];
                w1 += m.mass[i];
            } else {
                c2 += m.pos[i] * m.mass[i];
                w2 += m.mass[i];
            }
        }
        let d = (c1 / w1).distance(c2 / w2);
        assert!((d - 12.0).abs() < 0.5, "separation {d}");
    }

    #[test]
    fn approach_velocity_is_closing() {
        let a = plummer_sphere(400, 9);
        let b = plummer_sphere(400, 10);
        let m = make_merger(&a, &b, MergerOrbit::head_on(10.0, 1.0, 1.0), 1_000_000);
        // relative velocity of secondary wrt primary along -x
        let mut v1 = Vec3::zero();
        let mut v2 = Vec3::zero();
        let mut w1 = 0.0;
        let mut w2 = 0.0;
        for i in 0..m.len() {
            if m.id[i] < 1_000_000 {
                v1 += m.vel[i] * m.mass[i];
                w1 += m.mass[i];
            } else {
                v2 += m.vel[i] * m.mass[i];
                w2 += m.mass[i];
            }
        }
        let rel = v2 / w2 - v1 / w1;
        assert!(rel.x < 0.0, "secondary must approach: {rel}");
    }
}
