//! Spherical density profiles with analytic structure.

/// A spherically symmetric mass profile.
pub trait Profile: Sync + Send {
    /// Total mass (of the truncated model if truncated).
    fn total_mass(&self) -> f64;
    /// Mass density at radius `r`.
    fn density(&self, r: f64) -> f64;
    /// Mass enclosed within radius `r`.
    fn enclosed_mass(&self, r: f64) -> f64;
    /// Radius such that `enclosed_mass(r) = u · total_mass`, `u ∈ [0, 1)`.
    fn sample_radius(&self, u: f64) -> f64;
    /// Outermost radius sampled (truncation).
    fn rmax(&self) -> f64;
}

/// Plummer sphere: `ρ ∝ (1 + r²/a²)^(-5/2)`.
#[derive(Clone, Copy, Debug)]
pub struct Plummer {
    /// Total mass.
    pub mass: f64,
    /// Scale radius `a`.
    pub scale: f64,
    /// Truncation radius.
    pub rcut: f64,
}

impl Plummer {
    /// Plummer model truncated at `10 a` (99.2% of the mass).
    pub fn new(mass: f64, scale: f64) -> Self {
        Self {
            mass,
            scale,
            rcut: 10.0 * scale,
        }
    }
}

impl Profile for Plummer {
    fn total_mass(&self) -> f64 {
        // mass within rcut
        self.enclosed_mass(self.rcut)
    }
    fn density(&self, r: f64) -> f64 {
        let a2 = self.scale * self.scale;
        3.0 * self.mass / (4.0 * std::f64::consts::PI * a2 * self.scale)
            * (1.0 + r * r / a2).powf(-2.5)
    }
    fn enclosed_mass(&self, r: f64) -> f64 {
        let x = r / self.scale;
        self.mass * x.powi(3) * (1.0 + x * x).powf(-1.5)
    }
    fn sample_radius(&self, u: f64) -> f64 {
        // Invert M(r)/M_cut = u: r = a / sqrt(m^(-2/3) - 1) with m scaled to
        // the truncated mass.
        let m = u * self.total_mass() / self.mass;
        let m = m.clamp(1e-12, 1.0 - 1e-12);
        self.scale / (m.powf(-2.0 / 3.0) - 1.0).sqrt()
    }
    fn rmax(&self) -> f64 {
        self.rcut
    }
}

/// Hernquist profile: `ρ ∝ 1 / (r/a · (1 + r/a)³)` — the paper's bulge.
#[derive(Clone, Copy, Debug)]
pub struct Hernquist {
    /// Total (untruncated) mass.
    pub mass: f64,
    /// Scale radius `a`.
    pub scale: f64,
    /// Truncation radius.
    pub rcut: f64,
}

impl Hernquist {
    /// Hernquist model truncated at `20 a` (~91% of the formal mass... the
    /// enclosed-mass form keeps this exact).
    pub fn new(mass: f64, scale: f64) -> Self {
        Self {
            mass,
            scale,
            rcut: 20.0 * scale,
        }
    }
}

impl Profile for Hernquist {
    fn total_mass(&self) -> f64 {
        self.enclosed_mass(self.rcut)
    }
    fn density(&self, r: f64) -> f64 {
        let a = self.scale;
        if r <= 0.0 {
            return f64::INFINITY;
        }
        self.mass * a / (2.0 * std::f64::consts::PI * r * (r + a).powi(3))
    }
    fn enclosed_mass(&self, r: f64) -> f64 {
        let x = r / (r + self.scale);
        self.mass * x * x
    }
    fn sample_radius(&self, u: f64) -> f64 {
        // M(r) = M (r/(r+a))² = u·M_cut  ⇒  r = a √m / (1 − √m)
        let m = (u * self.total_mass() / self.mass).clamp(0.0, 1.0 - 1e-12);
        let s = m.sqrt();
        self.scale * s / (1.0 - s)
    }
    fn rmax(&self) -> f64 {
        self.rcut
    }
}

/// Truncated NFW profile: `ρ ∝ 1 / (r/rs · (1 + r/rs)²)` — the paper's dark
/// matter halo (§IV cites Navarro–Frenk–White).
#[derive(Clone, Debug)]
pub struct Nfw {
    /// Mass within the truncation radius.
    pub mass: f64,
    /// Scale radius `r_s`.
    pub scale: f64,
    /// Truncation radius (the virial radius).
    pub rcut: f64,
    /// Characteristic density `ρ₀` (derived).
    rho0: f64,
    /// Inverse-CDF lookup grid (mass fraction → radius).
    inv_table: Vec<(f64, f64)>,
}

fn nfw_mu(x: f64) -> f64 {
    (1.0 + x).ln() - x / (1.0 + x)
}

impl Nfw {
    /// NFW with `mass` inside `rcut` and concentration `c = rcut / scale`.
    pub fn new(mass: f64, scale: f64, rcut: f64) -> Self {
        let c = rcut / scale;
        let rho0 = mass / (4.0 * std::f64::consts::PI * scale.powi(3) * nfw_mu(c));
        // Build a monotone inverse table on a log-radius grid.
        let n = 512;
        let mut inv_table = Vec::with_capacity(n + 1);
        let r_lo: f64 = scale * 1e-4;
        for i in 0..=n {
            let f = i as f64 / n as f64;
            let r = r_lo * (rcut / r_lo).powf(f);
            let m = nfw_mu(r / scale) / nfw_mu(c);
            inv_table.push((m, r));
        }
        Self {
            mass,
            scale,
            rcut,
            rho0,
            inv_table,
        }
    }

    /// Concentration `c = rcut / rs`.
    pub fn concentration(&self) -> f64 {
        self.rcut / self.scale
    }
}

impl Profile for Nfw {
    fn total_mass(&self) -> f64 {
        self.mass
    }
    fn density(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return f64::INFINITY;
        }
        if r > self.rcut {
            return 0.0;
        }
        let x = r / self.scale;
        self.rho0 / (x * (1.0 + x) * (1.0 + x))
    }
    fn enclosed_mass(&self, r: f64) -> f64 {
        let r = r.min(self.rcut);
        self.mass * nfw_mu(r / self.scale) / nfw_mu(self.concentration())
    }
    fn sample_radius(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        // binary search the inverse table, then linear interpolation
        let t = &self.inv_table;
        let i = t.partition_point(|&(m, _)| m < u).clamp(1, t.len() - 1);
        let (m0, r0) = t[i - 1];
        let (m1, r1) = t[i];
        if m1 <= m0 {
            return r0;
        }
        r0 + (r1 - r0) * (u - m0) / (m1 - m0)
    }
    fn rmax(&self) -> f64 {
        self.rcut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_profile<P: Profile>(p: &P, name: &str) {
        // Enclosed mass is monotone and reaches total at rcut.
        let mut prev = 0.0;
        for i in 1..=100 {
            let r = p.rmax() * i as f64 / 100.0;
            let m = p.enclosed_mass(r);
            assert!(m >= prev - 1e-9, "{name}: M(<r) not monotone at {r}");
            prev = m;
        }
        assert!(
            (p.enclosed_mass(p.rmax()) - p.total_mass()).abs() < 1e-6 * p.total_mass(),
            "{name}: M(rmax) != total"
        );
        // sample_radius inverts enclosed_mass.
        for &u in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let r = p.sample_radius(u);
            let m = p.enclosed_mass(r) / p.total_mass();
            assert!((m - u).abs() < 2e-3, "{name}: inverse CDF off at u={u}: got {m}");
        }
        // density integrates (roughly) to enclosed mass: check shell at mid.
        let r = p.rmax() * 0.3;
        let dr = r * 1e-4;
        let shell = 4.0 * std::f64::consts::PI * r * r * p.density(r) * dr;
        let dm = p.enclosed_mass(r + dr * 0.5) - p.enclosed_mass(r - dr * 0.5);
        assert!(
            (shell - dm).abs() < 0.01 * dm.abs().max(1e-12),
            "{name}: density inconsistent with enclosed mass: {shell} vs {dm}"
        );
    }

    #[test]
    fn plummer_consistency() {
        check_profile(&Plummer::new(1.0, 1.0), "plummer");
        check_profile(&Plummer::new(5.0e10, 3.0), "plummer-galactic");
    }

    #[test]
    fn hernquist_consistency() {
        check_profile(&Hernquist::new(1.0, 1.0), "hernquist");
        check_profile(&Hernquist::new(4.6e9, 0.7), "hernquist-bulge");
    }

    #[test]
    fn nfw_consistency() {
        check_profile(&Nfw::new(1.0, 1.0, 10.0), "nfw");
        check_profile(&Nfw::new(6.0e11, 20.0, 200.0), "nfw-halo");
    }

    #[test]
    fn hernquist_half_mass_radius() {
        // M(r)/M = (r/(r+a))² = 1/2 at r = a/(√2−1) ≈ 2.414 a.
        let h = Hernquist { mass: 1.0, scale: 1.0, rcut: f64::INFINITY };
        let r = 1.0 / (2f64.sqrt() - 1.0);
        assert!((h.enclosed_mass(r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nfw_density_slope() {
        // ρ ∝ r⁻¹ inside rs, ρ ∝ r⁻³ outside.
        let n = Nfw::new(1.0, 1.0, 100.0);
        let inner = n.density(0.001) / n.density(0.002);
        assert!((inner - 2.0).abs() < 0.02, "inner slope {inner}");
        let outer = n.density(50.0) / n.density(100.0);
        assert!((outer - 8.0).abs() < 0.5, "outer slope {outer}");
    }

    #[test]
    fn nfw_mass_outside_cut_is_zero_density() {
        let n = Nfw::new(1.0, 1.0, 10.0);
        assert_eq!(n.density(11.0), 0.0);
        assert!((n.enclosed_mass(1e9) - 1.0).abs() < 1e-12);
    }
}
