//! The paper's Milky Way model (§IV).
//!
//! | component | profile | mass | scale |
//! |---|---|---|---|
//! | dark halo | NFW, truncated at 200 kpc | 6.0×10¹¹ M☉ | r_s = 20 kpc |
//! | stellar disk | exponential, sech² vertical | 5.0×10¹⁰ M☉ | R_d = 2.5 kpc, z_d = 0.3 kpc |
//! | bulge | Hernquist | 4.6×10⁹ M☉ | a = 0.7 kpc |
//!
//! All particles have **equal mass** (the paper's choice to avoid numerical
//! heating), so component particle counts are proportional to component
//! masses — the same ~1 : 3 : 47 bulge/disk/halo split as the 51-billion
//! production run.
//!
//! Generation is deterministic *per particle index*: particle `i` is drawn
//! from its own RNG stream, so [`MilkyWayModel::generate_range`] produces
//! bit-identical particles regardless of how index ranges are distributed
//! over ranks — exactly the property the paper exploits to generate 51
//! billion particles on the fly with no start-up I/O.

use crate::disk::{ExponentialDisk, RotationCurve};
use crate::jeans::JeansTable;
use crate::profile::{Hernquist, Nfw, Profile};
use bonsai_tree::Particles;
use bonsai_util::rng::Xoshiro256;
use bonsai_util::units::G;
use bonsai_util::Vec3;

/// Which structural component a particle belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Hernquist bulge.
    Bulge,
    /// Exponential disk.
    Disk,
    /// NFW dark halo.
    Halo,
}

/// The composite Milky Way model.
#[derive(Clone, Debug)]
pub struct MilkyWayModel {
    /// NFW dark halo.
    pub halo: Nfw,
    /// Hernquist bulge.
    pub bulge: Hernquist,
    /// Exponential stellar disk.
    pub disk: ExponentialDisk,
    /// Gravitational constant (galactic units).
    pub g: f64,
}

impl MilkyWayModel {
    /// The §IV model in galactic units (kpc, km/s, M☉).
    pub fn paper() -> Self {
        Self {
            halo: Nfw::new(6.0e11, 20.0, 200.0),
            bulge: Hernquist::new(4.6e9, 0.7),
            disk: ExponentialDisk::new(5.0e10, 2.5, 0.3),
            g: G,
        }
    }

    /// Total mass of all components (truncated).
    pub fn total_mass(&self) -> f64 {
        self.halo.total_mass() + self.bulge.total_mass() + self.disk.total_mass()
    }

    /// Equal-mass particle counts `(bulge, disk, halo)` for `n_total`.
    pub fn component_counts(&self, n_total: usize) -> (usize, usize, usize) {
        let total = self.total_mass();
        let nb = ((self.bulge.total_mass() / total) * n_total as f64).round() as usize;
        let nd = ((self.disk.total_mass() / total) * n_total as f64).round() as usize;
        let nb = nb.max(1).min(n_total.saturating_sub(2));
        let nd = nd.max(1).min(n_total - nb - 1);
        (nb, nd, n_total - nb - nd)
    }

    /// Component of the particle with index `i` out of `n_total` (bulge
    /// first, then disk, then halo — mirroring the paper's §IV ordering).
    pub fn component_of_index(&self, i: usize, n_total: usize) -> Component {
        let (nb, nd, _) = self.component_counts(n_total);
        if i < nb {
            Component::Bulge
        } else if i < nb + nd {
            Component::Disk
        } else {
            Component::Halo
        }
    }

    /// Total enclosed mass at spherical radius `r` (disk folded in via its
    /// cylindrical enclosed mass — the usual spherical approximation).
    pub fn enclosed_mass_total(&self, r: f64) -> f64 {
        self.halo.enclosed_mass(r) + self.bulge.enclosed_mass(r) + self.disk.enclosed_mass_cyl(r)
    }

    /// Circular velocity of the composite model at radius `r` (km/s).
    pub fn circular_velocity(&self, r: f64) -> f64 {
        (self.g * self.enclosed_mass_total(r) / r).sqrt()
    }

    /// Generate the complete model with `n` particles.
    pub fn generate(&self, n: usize, seed: u64) -> Particles {
        self.generate_range(n, 0, n, seed)
    }

    /// Generate exactly the particles with indices `begin..end` of an
    /// `n_total`-particle realization. Deterministic and slice-independent.
    pub fn generate_range(&self, n_total: usize, begin: usize, end: usize, seed: u64) -> Particles {
        assert!(begin <= end && end <= n_total && n_total > 0);
        let m_part = self.total_mass() / n_total as f64;
        let (nb, nd, _) = self.component_counts(n_total);

        // Shared lookup tables (depend only on the model, not the slice).
        let m_tot = |r: f64| self.enclosed_mass_total(r);
        let halo_jeans = JeansTable::build(
            &|r| self.halo.density(r),
            &m_tot,
            self.g,
            1e-2,
            self.halo.rmax() * 1.5,
            400,
        );
        let bulge_jeans = JeansTable::build(
            &|r| self.bulge.density(r),
            &m_tot,
            self.g,
            1e-3,
            self.bulge.rmax() * 1.5,
            400,
        );
        let curve = RotationCurve::build(&m_tot, self.g, self.disk.r_cut * 1.5, 2048);
        let kappa_ref = curve.kappa(self.disk.r_ref);

        let mut out = Particles::with_capacity(end - begin);
        for i in begin..end {
            let mut rng = Xoshiro256::stream(seed, i as u64);
            let (pos, vel) = if i < nb {
                self.sample_spheroid(&self.bulge, &bulge_jeans, &mut rng)
            } else if i < nb + nd {
                self.sample_disk(&curve, kappa_ref, &mut rng)
            } else {
                self.sample_spheroid(&self.halo, &halo_jeans, &mut rng)
            };
            out.push(pos, vel, m_part, i as u64);
        }
        out
    }

    fn sample_spheroid(
        &self,
        profile: &dyn Profile,
        jeans: &JeansTable,
        rng: &mut Xoshiro256,
    ) -> (Vec3, Vec3) {
        let r = profile.sample_radius(rng.uniform());
        let pos = rng.unit_sphere() * r;
        let sigma = jeans.sigma(r);
        // Gaussian components, clipped at 3σ to avoid an unbound tail.
        let clip = |v: f64| v.clamp(-3.0 * sigma, 3.0 * sigma);
        let vel = Vec3::new(
            clip(rng.normal_scaled(0.0, sigma)),
            clip(rng.normal_scaled(0.0, sigma)),
            clip(rng.normal_scaled(0.0, sigma)),
        );
        (pos, vel)
    }

    fn sample_disk(&self, curve: &RotationCurve, kappa_ref: f64, rng: &mut Xoshiro256) -> (Vec3, Vec3) {
        let d = &self.disk;
        let r = d.sample_radius(rng.uniform());
        let phi = rng.uniform_in(0.0, std::f64::consts::TAU);
        let z = d.sample_z(rng.uniform());
        let pos = Vec3::new(r * phi.cos(), r * phi.sin(), z);

        let vc = curve.vc(r);
        let omega = curve.omega(r);
        let kappa = curve.kappa(r);
        let sigma_r = d.sigma_r(r, self.g, kappa_ref);
        let sigma_z = d.sigma_z(r, self.g);
        let sigma_phi = sigma_r * (kappa / (2.0 * omega)).min(1.0);
        // Asymmetric drift (Hernquist 1993 moment closure):
        // v̄_φ² = v_c² + σ_R²(1 − κ²/4Ω² − 2R/R_d), clamped non-negative.
        let va2 = vc * vc
            + sigma_r * sigma_r
                * (1.0 - (kappa * kappa) / (4.0 * omega * omega) - 2.0 * r / d.r_scale);
        let v_phi_mean = va2.max(0.0).sqrt();

        let clip = |v: f64, s: f64| v.clamp(-3.0 * s, 3.0 * s);
        let v_r = clip(rng.normal_scaled(0.0, sigma_r), sigma_r);
        let v_phi = v_phi_mean + clip(rng.normal_scaled(0.0, sigma_phi), sigma_phi);
        let v_z = clip(rng.normal_scaled(0.0, sigma_z), sigma_z);

        let (s, c) = phi.sin_cos();
        let vel = Vec3::new(v_r * c - v_phi * s, v_r * s + v_phi * c, v_z);
        (pos, vel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_paper_ratios() {
        let mw = MilkyWayModel::paper();
        let n = 1_000_000;
        let (nb, nd, nh) = mw.component_counts(n);
        assert_eq!(nb + nd + nh, n);
        // Paper: 51e9 total → ~1e9 bulge (2%), ~3e9 disk (6%), ~47e9 halo (92%).
        let fb = nb as f64 / n as f64;
        let fd = nd as f64 / n as f64;
        let fh = nh as f64 / n as f64;
        assert!((0.004..0.02).contains(&fb), "bulge fraction {fb}");
        assert!((0.05..0.11).contains(&fd), "disk fraction {fd}");
        assert!(fh > 0.85, "halo fraction {fh}");
    }

    #[test]
    fn equal_particle_masses() {
        let mw = MilkyWayModel::paper();
        let p = mw.generate(5000, 1);
        let m0 = p.mass[0];
        assert!(p.mass.iter().all(|&m| (m - m0).abs() < 1e-9 * m0));
        assert!((p.total_mass() - mw.total_mass()).abs() < 1e-6 * mw.total_mass());
    }

    #[test]
    fn rotation_curve_is_milky_way_like() {
        let mw = MilkyWayModel::paper();
        let v8 = mw.circular_velocity(8.0);
        assert!((180.0..260.0).contains(&v8), "v_c(8 kpc) = {v8} km/s");
        // roughly flat between 8 and 20 kpc
        let v20 = mw.circular_velocity(20.0);
        assert!((v20 / v8 - 1.0).abs() < 0.25, "flatness: v20/v8 = {}", v20 / v8);
    }

    #[test]
    fn slice_generation_is_consistent() {
        let mw = MilkyWayModel::paper();
        let n = 2000;
        let whole = mw.generate(n, 9);
        let a = mw.generate_range(n, 0, 700, 9);
        let b = mw.generate_range(n, 700, 2000, 9);
        assert_eq!(a.len() + b.len(), n);
        assert_eq!(&whole.pos[..700], &a.pos[..]);
        assert_eq!(&whole.pos[700..], &b.pos[..]);
        assert_eq!(&whole.vel[..700], &a.vel[..]);
        assert_eq!(whole.id[700], 700);
    }

    #[test]
    fn disk_particles_are_thin_and_rotating() {
        let mw = MilkyWayModel::paper();
        let n = 20_000;
        let (nb, nd, _) = mw.component_counts(n);
        let p = mw.generate_range(n, nb, nb + nd, 3);
        // Thin: rms |z| ~ z_d.
        let rms_z: f64 = (p.pos.iter().map(|q| q.z * q.z).sum::<f64>() / p.len() as f64).sqrt();
        assert!(rms_z < 3.0 * mw.disk.z_scale, "rms z = {rms_z}");
        // Rotating: mean tangential velocity close to v_c at the mass-weighted
        // mean radius.
        let mut vphi_sum = 0.0;
        let mut r_sum = 0.0;
        for i in 0..p.len() {
            let r = p.pos[i].cyl_radius();
            let t = Vec3::new(-p.pos[i].y / r, p.pos[i].x / r, 0.0);
            vphi_sum += p.vel[i].dot(t);
            r_sum += r;
        }
        let vphi = vphi_sum / p.len() as f64;
        let rbar = r_sum / p.len() as f64;
        let vc = mw.circular_velocity(rbar);
        assert!(
            (vphi / vc - 1.0).abs() < 0.25,
            "mean v_phi {vphi} vs v_c({rbar}) = {vc}"
        );
    }

    #[test]
    fn halo_particles_are_extended_and_pressure_supported() {
        let mw = MilkyWayModel::paper();
        let n = 20_000;
        let (nb, nd, _) = mw.component_counts(n);
        let p = mw.generate_range(n, nb + nd, n, 4);
        let mean_r: f64 = p.pos.iter().map(|q| q.norm()).sum::<f64>() / p.len() as f64;
        assert!(mean_r > 30.0, "halo mean radius {mean_r} kpc");
        // Net rotation ~ 0.
        let mut l = Vec3::zero();
        for i in 0..p.len() {
            l += p.pos[i].cross(p.vel[i]);
        }
        let l = l / p.len() as f64;
        let typical = mean_r * 100.0; // kpc · km/s scale
        assert!(l.norm() < 0.1 * typical, "halo net L {l}");
    }

    #[test]
    fn com_is_near_origin() {
        let mw = MilkyWayModel::paper();
        let p = mw.generate(30_000, 5);
        let com = p.center_of_mass();
        assert!(com.norm() < 5.0, "COM {com} kpc"); // statistical, halo-dominated
    }

    #[test]
    fn component_of_index_respects_boundaries() {
        let mw = MilkyWayModel::paper();
        let n = 10_000;
        let (nb, nd, _) = mw.component_counts(n);
        assert_eq!(mw.component_of_index(0, n), Component::Bulge);
        assert_eq!(mw.component_of_index(nb, n), Component::Disk);
        assert_eq!(mw.component_of_index(nb + nd, n), Component::Halo);
        assert_eq!(mw.component_of_index(n - 1, n), Component::Halo);
    }
}
