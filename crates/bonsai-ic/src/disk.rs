//! The exponential stellar disk (§IV).
//!
//! Surface density `Σ(R) = M/(2π R_d²) · e^(−R/R_d)`, vertical structure
//! `sech²(z/z_d)`. Kinematics follow the standard moment-based setup
//! (Hernquist 1993): radial dispersion from a Toomre-Q constraint at the
//! solar radius, vertical dispersion from the isothermal-sheet relation,
//! azimuthal dispersion from the epicyclic ratio, and mean streaming from
//! the asymmetric-drift equation against the *total* (halo + bulge + disk)
//! rotation curve supplied by the caller.

/// Geometry and mass of the disk.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialDisk {
    /// Total disk mass.
    pub mass: f64,
    /// Radial scale length `R_d`.
    pub r_scale: f64,
    /// Vertical scale height `z_d` (sech² profile).
    pub z_scale: f64,
    /// Radial truncation.
    pub r_cut: f64,
    /// Toomre Q at the reference radius (bar-unstable disks want Q ≈ 1–1.5).
    pub toomre_q: f64,
    /// Reference radius where Q is anchored (the "solar" radius).
    pub r_ref: f64,
}

impl ExponentialDisk {
    /// Disk with typical Milky Way shape parameters for a given mass/scale.
    pub fn new(mass: f64, r_scale: f64, z_scale: f64) -> Self {
        Self {
            mass,
            r_scale,
            z_scale,
            r_cut: 10.0 * r_scale,
            toomre_q: 1.2,
            r_ref: 8.0 / 2.5 * r_scale, // solar radius for R_d = 2.5 kpc
        }
    }

    /// Surface density at cylindrical radius `R`.
    pub fn surface_density(&self, r: f64) -> f64 {
        self.mass / (2.0 * std::f64::consts::PI * self.r_scale * self.r_scale)
            * (-r / self.r_scale).exp()
    }

    /// Mass enclosed in cylinder of radius `R` (untruncated form).
    pub fn enclosed_mass_cyl(&self, r: f64) -> f64 {
        let x = r / self.r_scale;
        self.mass * (1.0 - (1.0 + x) * (-x).exp())
    }

    /// Mass inside the truncation.
    pub fn total_mass(&self) -> f64 {
        self.enclosed_mass_cyl(self.r_cut)
    }

    /// Invert the cylindrical mass CDF by Newton iteration: radius such that
    /// `enclosed(R) = u · total`.
    pub fn sample_radius(&self, u: f64) -> f64 {
        let target = u.clamp(0.0, 1.0 - 1e-12) * self.total_mass() / self.mass;
        // Solve 1 − (1+x)e^(−x) = target for x.
        let mut x = 1.0f64;
        for _ in 0..60 {
            let f = 1.0 - (1.0 + x) * (-x).exp() - target;
            let df = x * (-x).exp();
            if df.abs() < 1e-300 {
                break;
            }
            let step = (f / df).clamp(-1.0, 1.0);
            x -= step;
            x = x.clamp(1e-9, self.r_cut / self.r_scale);
            if step.abs() < 1e-12 {
                break;
            }
        }
        x * self.r_scale
    }

    /// Sample a vertical offset from the sech² profile (`u ∈ (0,1)`).
    pub fn sample_z(&self, u: f64) -> f64 {
        let u = u.clamp(1e-9, 1.0 - 1e-9);
        self.z_scale * (2.0 * u - 1.0).atanh()
    }

    /// Radial velocity dispersion profile: `σ_R(R) ∝ e^(−R/2R_d)`, normalized
    /// by Toomre Q at `r_ref` against the epicyclic frequency `kappa_ref`.
    pub fn sigma_r(&self, r: f64, g: f64, kappa_ref: f64) -> f64 {
        let sigma_ref =
            self.toomre_q * 3.36 * g * self.surface_density(self.r_ref) / kappa_ref.max(1e-12);
        sigma_ref * ((self.r_ref - r) / (2.0 * self.r_scale)).exp()
    }

    /// Vertical dispersion of the isothermal sheet: `σ_z² = π G Σ z_d`.
    pub fn sigma_z(&self, r: f64, g: f64) -> f64 {
        (std::f64::consts::PI * g * self.surface_density(r) * self.z_scale).sqrt()
    }
}

/// A tabulated axisymmetric rotation curve with epicyclic frequencies,
/// built from the total enclosed mass of the composite model.
#[derive(Clone, Debug)]
pub struct RotationCurve {
    r: Vec<f64>,
    vc: Vec<f64>,
}

impl RotationCurve {
    /// Build from total (spherically approximated) enclosed mass.
    pub fn build(m_total: &dyn Fn(f64) -> f64, g: f64, r_max: f64, n: usize) -> Self {
        assert!(n >= 16);
        let r: Vec<f64> = (1..=n).map(|i| r_max * i as f64 / n as f64).collect();
        let vc = r.iter().map(|&ri| (g * m_total(ri) / ri).sqrt()).collect();
        Self { r, vc }
    }

    /// Circular velocity at `r` (linear interpolation, clamped).
    pub fn vc(&self, r: f64) -> f64 {
        let n = self.r.len();
        if r <= self.r[0] {
            return self.vc[0] * (r / self.r[0]).max(0.0).sqrt();
        }
        if r >= self.r[n - 1] {
            return self.vc[n - 1] * (self.r[n - 1] / r).sqrt();
        }
        let i = self.r.partition_point(|&x| x < r).clamp(1, n - 1);
        let f = (r - self.r[i - 1]) / (self.r[i] - self.r[i - 1]);
        self.vc[i - 1] * (1.0 - f) + self.vc[i] * f
    }

    /// Angular frequency Ω = v_c / r.
    pub fn omega(&self, r: f64) -> f64 {
        self.vc(r) / r.max(1e-12)
    }

    /// Epicyclic frequency `κ² = 4Ω² + r dΩ²/dr` (finite differences).
    pub fn kappa(&self, r: f64) -> f64 {
        let h = (r * 1e-3).max(1e-6);
        let o2 = |x: f64| {
            let o = self.omega(x);
            o * o
        };
        let d = (o2(r + h) - o2((r - h).max(1e-9))) / (2.0 * h);
        (4.0 * o2(r) + r * d).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> ExponentialDisk {
        ExponentialDisk::new(5.0e10, 2.5, 0.3)
    }

    #[test]
    fn radius_sampling_inverts_cdf() {
        let d = disk();
        for &u in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let r = d.sample_radius(u);
            let m = d.enclosed_mass_cyl(r) / d.total_mass();
            assert!((m - u).abs() < 1e-6, "u={u}: m={m}");
        }
    }

    #[test]
    fn z_sampling_is_symmetric_with_right_scale() {
        let d = disk();
        // median |z| of sech² is z_d·atanh(0.5) ≈ 0.549 z_d
        let median = d.sample_z(0.75);
        assert!((median - 0.3 * 0.5f64.atanh() * 1.0).abs() < 1e-9 || median > 0.0);
        assert!((d.sample_z(0.5)).abs() < 1e-12);
        assert!((d.sample_z(0.25) + d.sample_z(0.75)).abs() < 1e-12);
    }

    #[test]
    fn surface_density_integrates_to_mass() {
        let d = disk();
        // ∫ 2πR Σ dR over 0..rcut = enclosed_mass_cyl(rcut)
        let mut sum = 0.0;
        let n = 20_000;
        for i in 0..n {
            let r = d.r_cut * (i as f64 + 0.5) / n as f64;
            sum += 2.0 * std::f64::consts::PI * r * d.surface_density(r) * (d.r_cut / n as f64);
        }
        assert!((sum - d.total_mass()).abs() < 1e-3 * d.total_mass());
    }

    #[test]
    fn rotation_curve_keplerian_far_out() {
        let rc = RotationCurve::build(&|_r| 1.0e11, bonsai_util::units::G, 50.0, 256);
        let v10 = rc.vc(10.0);
        let v40 = rc.vc(40.0);
        assert!((v10 / v40 - 2.0).abs() < 0.02, "keplerian falloff: {}", v10 / v40);
    }

    #[test]
    fn kappa_between_omega_and_twice_omega() {
        // For any declining rotation curve, Ω ≤ κ ≤ 2Ω.
        let rc = RotationCurve::build(
            &|r| 1.0e11 * r / (r + 5.0), // rising then flat-ish curve
            bonsai_util::units::G,
            50.0,
            512,
        );
        for &r in &[2.0, 5.0, 10.0, 20.0] {
            let (o, k) = (rc.omega(r), rc.kappa(r));
            assert!(k >= o * 0.99 && k <= 2.0 * o * 1.01, "r={r}: omega={o}, kappa={k}");
        }
    }

    #[test]
    fn dispersions_positive_and_declining() {
        let d = disk();
        let g = bonsai_util::units::G;
        let s4 = d.sigma_r(4.0, g, 0.05);
        let s12 = d.sigma_r(12.0, g, 0.05);
        assert!(s4 > s12 && s12 > 0.0);
        assert!(d.sigma_z(8.0, g) > 0.0);
    }
}
