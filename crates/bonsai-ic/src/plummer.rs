//! Self-consistent Plummer sphere in N-body units (G = M = 1, E = −1/4).
//!
//! The standard test model: positions from the inverse mass CDF, velocities
//! from the isotropic distribution function by von Neumann rejection
//! (Aarseth, Hénon & Wielen 1974). Used by the quickstart example and by
//! every test that needs a stable, centrally concentrated equilibrium.

use bonsai_tree::Particles;
use bonsai_util::rng::Xoshiro256;


/// Generate an `n`-body Plummer sphere in N-body units. Deterministic in
/// `seed`. The centre of mass and mean velocity are exactly zeroed.
pub fn plummer_sphere(n: usize, seed: u64) -> Particles {
    assert!(n > 0);
    let mut p = Particles::with_capacity(n);
    let m = 1.0 / n as f64;
    // Standard N-body-unit Plummer scale: a = 3π/16.
    let a = 3.0 * std::f64::consts::PI / 16.0;
    for i in 0..n {
        let mut rng = Xoshiro256::stream(seed, i as u64);
        // Radius from inverse CDF, truncated at 10 a (re-draw otherwise).
        let r = loop {
            let u = rng.uniform();
            let r = a / ((1.0 - u).powf(-2.0 / 3.0) - 1.0).max(1e-12).sqrt();
            if r < 10.0 * a {
                break r;
            }
        };
        let pos = rng.unit_sphere() * r;
        // Speed: q = v / v_esc with pdf ∝ q²(1−q²)^(7/2), by rejection.
        let q = loop {
            let q = rng.uniform();
            let y = rng.uniform() * 0.1; // max of q²(1−q²)^3.5 is ≈ 0.092
            if y < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        // φ(r) = −1/√(r² + a²) in these units ⇒ v_esc = √(2/√(r²+a²))
        let v_esc = (2.0 / (r * r + a * a).sqrt()).sqrt();
        let vel = rng.unit_sphere() * (q * v_esc);
        p.push(pos, vel, m, i as u64);
    }
    // Exact COM / momentum removal.
    let com = p.center_of_mass();
    let vcm = p.momentum() / p.total_mass();
    for i in 0..p.len() {
        p.pos[i] -= com;
        p.vel[i] -= vcm;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_tree::direct::{potential_energy, total_energy};

    #[test]
    fn com_and_momentum_are_zero() {
        let p = plummer_sphere(2000, 42);
        assert!(p.center_of_mass().norm() < 1e-12);
        assert!(p.momentum().norm() < 1e-12);
        assert_eq!(p.len(), 2000);
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_near_standard_minus_quarter() {
        // N-body units: E = −1/4 (T = 1/4 · |W|... W = −1/2, T = 1/4).
        let p = plummer_sphere(4000, 7);
        let e = total_energy(&p, 0.0, 1.0);
        assert!((e + 0.25).abs() < 0.02, "E = {e}");
    }

    #[test]
    fn virial_ratio_near_one_half() {
        let p = plummer_sphere(4000, 11);
        let t = p.kinetic_energy();
        let w = potential_energy(&p, 0.0, 1.0);
        let q = t / (-w);
        assert!((q - 0.5).abs() < 0.04, "virial ratio {q}");
    }

    #[test]
    fn deterministic_and_slice_independent() {
        let a = plummer_sphere(500, 3);
        let b = plummer_sphere(500, 3);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
        let c = plummer_sphere(500, 4);
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn speeds_below_escape_velocity() {
        let p = plummer_sphere(3000, 13);
        let a = 3.0 * std::f64::consts::PI / 16.0;
        // After COM shifts the bound is approximate; allow 1% slack.
        for i in 0..p.len() {
            let r = p.pos[i].norm();
            let v_esc = (2.0 / (r * r + a * a).sqrt()).sqrt();
            assert!(
                p.vel[i].norm() <= v_esc * 1.05,
                "particle {i} unbound: v={} v_esc={v_esc}",
                p.vel[i].norm()
            );
        }
    }
}
