//! # bonsai-ic
//!
//! Initial-condition generators for the reproduction, standing in for the
//! (modified, distributed) GalacticICS generator the paper used (§IV).
//!
//! * [`profile`] — spherical density profiles with analytic enclosed mass
//!   and inverse-CDF radius sampling: Plummer, Hernquist (the paper's
//!   bulge), and a truncated NFW (the paper's dark halo);
//! * [`disk`] — the exponential stellar disk with sech² vertical structure,
//!   circular velocities from the composite potential, Toomre-Q radial
//!   dispersion and asymmetric-drift-corrected streaming;
//! * [`jeans`] — isotropic Jeans dispersion tables for the spheroidal
//!   components embedded in the total potential;
//! * [`plummer`] — a self-consistent Plummer sphere (distribution-function
//!   sampling) in N-body units: the standard test model;
//! * [`milkyway`] — the paper's Milky Way model: NFW halo 6.0×10¹¹ M☉ +
//!   exponential disk 5.0×10¹⁰ M☉ + Hernquist bulge 4.6×10⁹ M☉ with
//!   *equal-mass* particles, generated deterministically and in parallel
//!   slices so every rank can build exactly its share on the fly, as the
//!   paper does to avoid start-up I/O.
//!
//! ```
//! use bonsai_ic::MilkyWayModel;
//!
//! let mw = MilkyWayModel::paper();
//! // Equal-mass particles, components proportional to the §IV masses.
//! let (bulge, disk, halo) = mw.component_counts(100_000);
//! assert!(halo > 10 * disk && disk > bulge);
//! // Slice-deterministic generation: any index range, identical particles.
//! let a = mw.generate_range(10_000, 500, 510, 42);
//! let b = mw.generate_range(10_000, 0, 1_000, 42);
//! assert_eq!(a.pos[0], b.pos[500]);
//! ```

#![deny(missing_docs)]

pub mod disk;
pub mod jeans;
pub mod merger;
pub mod milkyway;
pub mod plummer;
pub mod profile;

pub use merger::{make_merger, MergerOrbit};
pub use milkyway::{Component, MilkyWayModel};
pub use plummer::plummer_sphere;
pub use profile::{Hernquist, Nfw, Plummer, Profile};
