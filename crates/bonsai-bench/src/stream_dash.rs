//! The in-run dashboard: a deterministic, zero-dependency HTML snapshot of
//! a streamed run *as a subscriber sees it* — rendered purely from the
//! telemetry frames the fast subscriber has received so far plus the bus's
//! accounting reports, never from the cluster's internal state. What the
//! dashboard can show is exactly what the bus delivered, so a frame the
//! backpressure policy dropped is visibly absent.

use crate::stream::StreamBenchConfig;
use bonsai_obs::overhead::OVERHEAD_BUDGET_FRACTION;
use bonsai_obs::stream::{FrameKind, TelemetryFrame};
use bonsai_sim::StreamTap;

/// The gauges charted as live sparklines, in display order.
pub const DASH_GAUGES: [&str; 4] = [
    "bonsai_step_seconds",
    "bonsai_gpu_gflops",
    "bonsai_recovery_actions",
    "bonsai_energy_drift",
];

/// Compact deterministic number for captions (mirrors the long-run
/// dashboard's formatting).
fn short(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1e5 || a < 1e-3 {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// One live sparkline over `(step, value)` points received so far.
fn spark(name: &str, pts: &[(u64, f64)], steps: u64) -> String {
    const W: f64 = 440.0;
    const H: f64 = 110.0;
    const L: f64 = 8.0;
    const T: f64 = 22.0;
    const B: f64 = 8.0;
    let lo = pts.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let hi = pts.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    let x = |step: f64| L + (W - 2.0 * L) * step / steps.max(1) as f64;
    let y = |v: f64| T + (H - T - B) * (1.0 - (v - lo) / span);
    let last = pts.last().map(|&(_, v)| v).unwrap_or(0.0);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\n\
         <text class=\"t\" x=\"{L}\" y=\"14\">{name}</text>\n\
         <text class=\"a\" x=\"{:.1}\" y=\"14\" text-anchor=\"end\">min {} · max {} · last {}</text>\n",
        W - L,
        short(lo),
        short(hi),
        short(last)
    );
    let line: Vec<String> = pts
        .iter()
        .map(|&(s, v)| format!("{:.1},{:.1}", x(s as f64), y(v)))
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#2563eb\" stroke-width=\"2\"><title>{name}: {} frames</title></polyline>\n</svg>\n",
        line.join(" "),
        pts.len()
    ));
    svg
}

/// Render the dashboard snapshot at `step` from the frames `received` so
/// far by the fast subscriber and the tap's live accounting.
pub fn render_snapshot(
    cfg: &StreamBenchConfig,
    step: u64,
    received: &[TelemetryFrame],
    tap: &StreamTap,
) -> String {
    let mut s = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>bonsai live telemetry</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:960px;color:#1a1a2e}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}\n\
         table{border-collapse:collapse;margin:0.5rem 0;font-size:13px}\n\
         td,th{border:1px solid #cbd5e1;padding:4px 10px;text-align:right}\n\
         td:first-child,th:first-child{text-align:left}\n\
         th{background:#eef2f7} .t{font:600 13px system-ui;fill:#1a1a2e}\n\
         .a{font:11px system-ui;fill:#556}\n\
         .charts{display:flex;gap:1rem;flex-wrap:wrap}\n\
         .bad{color:#dc2626;font-weight:600} .ok{color:#16a34a;font-weight:600}\n\
         code{background:#eef2f7;padding:0 3px;border-radius:3px}\n</style>\n</head>\n<body>\n\
         <h1>Live telemetry — streamed Milky Way run</h1>\n",
    );
    s.push_str(&format!(
        "<p>Snapshot at step {step} of {} ({} particles over {} ranks, seed {}). Rendered \
         entirely from the {} telemetry frames the <code>fast</code> subscriber received — \
         what the bus did not deliver is not shown.</p>\n",
        cfg.steps,
        cfg.n,
        cfg.ranks,
        cfg.seed,
        received.len()
    ));

    // Live sparklines from the gauges frames received so far.
    s.push_str("<h2>Live gauges</h2>\n<div class=\"charts\">\n");
    for name in DASH_GAUGES {
        let pts: Vec<(u64, f64)> = received
            .iter()
            .filter(|f| f.kind == FrameKind::Gauges)
            .filter_map(|f| f.f64(name).map(|v| (f.step, v)))
            .collect();
        if !pts.is_empty() {
            s.push_str(&spark(name, &pts, cfg.steps as u64));
        }
    }
    s.push_str("</div>\n");

    // The latest step as streamed: phase seconds of the newest phase frame.
    s.push_str("<h2>Latest step</h2>\n");
    if let Some(phase) = received
        .iter()
        .rev()
        .find(|f| f.kind == FrameKind::PhaseSample)
    {
        s.push_str(&format!(
            "<table>\n<tr><th>phase (step {})</th><th>seconds</th></tr>\n",
            phase.step
        ));
        for (name, _) in &phase.fields {
            if let Some(v) = phase.f64(name) {
                s.push_str(&format!("<tr><td>{name}</td><td>{}</td></tr>\n", short(v)));
            }
        }
        s.push_str("</table>\n");
    } else {
        s.push_str("<p>No phase frame received yet.</p>\n");
    }

    // Flow-conservation digest: the newest flow-digest frame.
    s.push_str("<h2>Flow digest</h2>\n");
    if let Some(d) = received
        .iter()
        .rev()
        .find(|f| f.kind == FrameKind::FlowDigest)
    {
        let holds = d.f64("holds") == Some(1.0);
        s.push_str(&format!(
            "<p>Flows at step {}: sealed {} = delivered {} + fallback {} + dead {} \
             (pending {}) — conservation <span class=\"{}\">{}</span>.</p>\n",
            d.step,
            d.f64("sealed").unwrap_or(0.0) as u64,
            d.f64("delivered").unwrap_or(0.0) as u64,
            d.f64("fallback").unwrap_or(0.0) as u64,
            d.f64("dead").unwrap_or(0.0) as u64,
            d.f64("pending").unwrap_or(0.0) as u64,
            if holds { "ok" } else { "bad" },
            if holds { "holds" } else { "VIOLATED" }
        ));
    } else {
        s.push_str("<p>No flow digest received yet.</p>\n");
    }

    // Subscriber accounting: the backpressure ledger, live.
    s.push_str(
        "<h2>Subscribers</h2>\n<table>\n<tr><th>subscriber</th><th>capacity</th>\
         <th>delivered</th><th>dropped</th><th>evicted</th><th>overflow</th>\
         <th>in ring</th><th>lag</th><th>max lag</th><th>must-deliver lost</th></tr>\n",
    );
    for r in tap.bus().reports() {
        let md = r.must_deliver_lost();
        s.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td class=\"{}\">{}</td></tr>\n",
            r.name,
            r.capacity,
            r.delivered,
            r.dropped.values().sum::<u64>(),
            r.evicted.values().sum::<u64>(),
            r.overflow,
            r.in_ring,
            r.lag,
            r.max_lag,
            if md == 0 { "ok" } else { "bad" },
            md
        ));
    }
    s.push_str("</table>\n");

    // Observability overhead: the self-metered budget, live.
    let frac = tap.meter().max_fraction();
    s.push_str(&format!(
        "<h2>Observability overhead</h2>\n<p>Worst per-step overhead fraction so far \
         <span class=\"{}\">{}</span> (budget {}); mean {}. Charged categories:</p>\n",
        if frac < OVERHEAD_BUDGET_FRACTION { "ok" } else { "bad" },
        short(frac),
        short(OVERHEAD_BUDGET_FRACTION),
        short(tap.meter().mean_fraction())
    ));
    s.push_str("<table>\n<tr><th>category</th><th>modelled seconds</th></tr>\n");
    for (cat, secs) in tap.meter().totals() {
        s.push_str(&format!(
            "<tr><td>{cat}</td><td>{}</td></tr>\n",
            short(*secs)
        ));
    }
    s.push_str("</table>\n");

    // Alerts as streamed: every must-deliver alert frame received.
    s.push_str("<h2>Alerts</h2>\n");
    let alerts: Vec<&TelemetryFrame> = received
        .iter()
        .filter(|f| f.kind == FrameKind::Alert)
        .collect();
    if alerts.is_empty() {
        s.push_str("<p>No alert frames received.</p>\n");
    } else {
        s.push_str(
            "<table>\n<tr><th>step</th><th>event</th><th>rule</th><th>severity</th><th>value</th></tr>\n",
        );
        for f in alerts {
            s.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                f.step,
                f.str("kind").unwrap_or("?"),
                f.str("rule").unwrap_or("?"),
                f.str("severity").unwrap_or("?"),
                short(f.f64("value").unwrap_or(0.0))
            ));
        }
        s.push_str("</table>\n");
    }
    s.push_str("</body>\n</html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{run, StreamBenchConfig};

    #[test]
    fn snapshots_are_self_contained_and_show_the_live_state() {
        let r = run(StreamBenchConfig {
            n: 600,
            ranks: 4,
            steps: 24,
            seed: 7,
            storm_epochs: (6, 10),
            grow_at: 0,
            shrink_at: 0,
            fast_capacity: 64,
            slow_capacity: 4,
            slow_drain_every: 8,
            snapshots: vec![12, 24],
            block_on_full: false,
        });
        assert_eq!(r.snapshots.len(), 2);
        for (step, html) in &r.snapshots {
            assert!(html.starts_with("<!DOCTYPE html>"));
            assert!(!html.contains("<script"), "snapshot must be zero-JS");
            assert!(!html.contains("http://") && !html.contains("https://"));
            assert!(html.contains(&format!("Snapshot at step {step}")));
            assert!(html.contains("<h2>Subscribers</h2>"));
            assert!(html.contains("<h2>Observability overhead</h2>"));
            assert!(html.contains("bonsai_step_seconds"));
        }
        // The mid-run snapshot shows fewer frames than the final one.
        assert_ne!(r.snapshots[0].1, r.snapshots[1].1);
    }
}
