//! The streaming-telemetry bench: a seeded faulty Milky Way run watched
//! *live* through the in-run telemetry bus by two subscribers — a fast one
//! polled every step and a deliberately slow one that must lose only
//! droppable frames — with deterministic mid-run dashboard snapshots and a
//! byte-deterministic `BENCH_stream.json` artifact.
//!
//! The run gates on the bus's own contract:
//!
//! * **losslessness where promised** — alerts and view changes reach every
//!   subscriber even under backpressure; sample drops are accounted
//!   exactly (`published == delivered + lost + in-ring` per subscriber);
//! * **the observability budget** — the self-metered overhead fraction
//!   stays under 3% of modelled step time.
//!
//! `--block-on-full` is the sabotage self-test: the bus stalls the
//! producer instead of dropping, the stall charges blow the overhead
//! budget, and the gate must exit nonzero.

use crate::stream_dash as dash;
use bonsai_ic::MilkyWayModel;
use bonsai_net::fault::{FaultKind, FaultPlan, Injection};
use bonsai_obs::json::fmt_f64;
use bonsai_obs::overhead::OVERHEAD_BUDGET_FRACTION;
use bonsai_obs::stream::{FrameKind, SubscriberConfig, TelemetryFrame};
use bonsai_sim::{Cluster, ClusterConfig, LongRunConfig, StreamConfig, StreamTap};
use bonsai_util::units;
use std::collections::BTreeMap;

/// The streaming bench configuration.
#[derive(Clone, Debug)]
pub struct StreamBenchConfig {
    /// Total particles of the scaled Milky Way model.
    pub n: usize,
    /// Logical ranks.
    pub ranks: usize,
    /// Steps to drive.
    pub steps: usize,
    /// IC + fault-plan seed.
    pub seed: u64,
    /// `[first, last)` gravity epochs of the injected drop storm (makes
    /// the health rules fire, so alert frames exist to stream).
    pub storm_epochs: (u64, u64),
    /// Step after which one rank is admitted (0 = no grow) — exercises a
    /// must-deliver view-change frame.
    pub grow_at: usize,
    /// Step after which one rank is retired (0 = no shrink).
    pub shrink_at: usize,
    /// Ring capacity of the fast subscriber (polled every step).
    pub fast_capacity: usize,
    /// Ring capacity of the slow subscriber — deliberately tiny, so it
    /// sheds samples between its sparse polls.
    pub slow_capacity: usize,
    /// The slow subscriber drains its ring only every this many steps.
    pub slow_drain_every: usize,
    /// Steps at which a dashboard snapshot is rendered.
    pub snapshots: Vec<usize>,
    /// Sabotage: make the bus stall the producer on a full ring. The
    /// overhead gate must catch this.
    pub block_on_full: bool,
}

impl Default for StreamBenchConfig {
    fn default() -> Self {
        Self {
            n: 1_500,
            ranks: 4,
            steps: 120,
            seed: 2014,
            storm_epochs: (41, 61),
            grow_at: 70,
            shrink_at: 100,
            fast_capacity: 64,
            slow_capacity: 8,
            slow_drain_every: 16,
            snapshots: vec![40, 80, 120],
            block_on_full: false,
        }
    }
}

/// Everything the exporters need from one completed streamed run.
pub struct StreamResult {
    /// The configuration that produced it.
    pub config: StreamBenchConfig,
    /// The detached tap (bus accounting, overhead meter, budget health).
    pub tap: StreamTap,
    /// Every frame the fast subscriber received, in delivery order.
    pub fast_frames: Vec<TelemetryFrame>,
    /// Frames the slow subscriber received, by kind name.
    pub slow_received: BTreeMap<&'static str, u64>,
    /// `(step, html)` dashboard snapshots, in step order.
    pub snapshots: Vec<(u64, String)>,
    /// Final simulated time in Gyr.
    pub time_gyr: f64,
}

impl StreamResult {
    /// Losslessness gate: no subscriber lost a must-deliver frame, the
    /// fast subscriber lost nothing at all, and the slow subscriber
    /// received every published alert and view change.
    pub fn lossless_ok(&self) -> bool {
        let reports = self.tap.bus().reports();
        let fast_clean = reports[0].lost_total() == 0;
        let no_md_loss = reports.iter().all(|r| r.must_deliver_lost() == 0);
        let slow_got_all = FrameKind::ALL.iter().filter(|k| !k.droppable()).all(|k| {
            self.slow_received.get(k.name()).copied().unwrap_or(0)
                == self.tap.bus().published().get(k.name()).copied().unwrap_or(0)
        });
        fast_clean && no_md_loss && slow_got_all
    }

    /// Accounting gate: every subscriber's ledger balances exactly.
    pub fn accounting_ok(&self) -> bool {
        self.tap.bus().accounting_violation().is_none()
    }

    /// Overhead gate: worst per-step observability fraction under budget.
    pub fn overhead_ok(&self) -> bool {
        self.tap.meter().max_fraction() < OVERHEAD_BUDGET_FRACTION
    }

    /// The whole gate.
    pub fn passed(&self) -> bool {
        self.lossless_ok() && self.accounting_ok() && self.overhead_ok()
    }
}

/// Drive the run: scaled Milky Way over `ranks` ranks with long-run
/// monitoring and streaming enabled, the drop storm injected over
/// `storm_epochs`, and scripted grow/shrink churn.
pub fn run(cfg: StreamBenchConfig) -> StreamResult {
    let ic = MilkyWayModel::paper().generate(cfg.n, cfg.seed);
    let mut ccfg = ClusterConfig::default();
    ccfg.g = units::G;
    ccfg.eps = 0.1 * (2.0e5_f64 / cfg.n as f64).powf(1.0 / 3.0);
    ccfg.dt = units::myr_to_internal(3.0);
    let mut plan = FaultPlan::new(cfg.seed);
    for epoch in cfg.storm_epochs.0..cfg.storm_epochs.1 {
        plan = plan.with_injection(Injection {
            epoch,
            from: None,
            to: None,
            kind: None,
            fault: FaultKind::Drop,
        });
    }
    let mut cluster = Cluster::with_faults(ic, cfg.ranks, ccfg, plan, None);
    cluster.enable_longrun(LongRunConfig::default());
    cluster.enable_streaming(StreamConfig {
        subscribers: vec![
            SubscriberConfig::new("fast", cfg.fast_capacity),
            SubscriberConfig::new("slow", cfg.slow_capacity),
        ],
        block_on_full: cfg.block_on_full,
        ..StreamConfig::default()
    });

    let mut fast_frames: Vec<TelemetryFrame> = Vec::new();
    let mut slow_received: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut snapshots: Vec<(u64, String)> = Vec::new();
    let tally_slow = |frames: &[TelemetryFrame],
                          slow_received: &mut BTreeMap<&'static str, u64>| {
        for f in frames {
            *slow_received.entry(f.kind.name()).or_insert(0) += 1;
        }
    };
    for step in 1..=cfg.steps {
        cluster.step();
        if cfg.grow_at > 0 && step == cfg.grow_at {
            cluster.admit_ranks(1);
        }
        if cfg.shrink_at > 0 && step == cfg.shrink_at {
            cluster.retire_ranks(1);
        }
        // The fast subscriber keeps up: fully drained every step. The slow
        // one only wakes every `slow_drain_every` steps and sheds samples
        // in between — the backpressure policy under test.
        let tap = cluster.stream_mut().expect("streaming enabled");
        fast_frames.extend(tap.bus_mut().poll(0, usize::MAX));
        if step % cfg.slow_drain_every == 0 {
            let drained = tap.bus_mut().poll(1, usize::MAX);
            tally_slow(&drained, &mut slow_received);
        }
        if cfg.snapshots.contains(&step) {
            let tap = cluster.stream().expect("streaming enabled");
            snapshots.push((
                step as u64,
                dash::render_snapshot(&cfg, step as u64, &fast_frames, tap),
            ));
        }
    }
    // Final drain: both rings empty, so the accounting identity reduces to
    // published == delivered + lost for every subscriber.
    let mut tap = cluster.take_stream().expect("streaming enabled");
    fast_frames.extend(tap.bus_mut().poll(0, usize::MAX));
    let drained = tap.bus_mut().poll(1, usize::MAX);
    tally_slow(&drained, &mut slow_received);
    StreamResult {
        config: cfg,
        tap,
        fast_frames,
        slow_received,
        snapshots,
        time_gyr: units::internal_to_gyr(cluster.time()),
    }
}

fn kind_counts_json(m: &BTreeMap<&'static str, u64>) -> String {
    let fields: Vec<String> = FrameKind::ALL
        .iter()
        .map(|k| format!("\"{}\": {}", k.name(), m.get(k.name()).copied().unwrap_or(0)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// `BENCH_stream.json`: schema `bonsai-stream-v1`, byte-deterministic.
pub fn stream_json(r: &StreamResult) -> String {
    let c = &r.config;
    let bus = r.tap.bus();
    let subscribers: Vec<String> = bus
        .reports()
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"capacity\": {}, \"delivered\": {}, \"dropped\": {}, \"evicted\": {}, \"overflow\": {}, \"in_ring\": {}, \"max_lag\": {}, \"must_deliver_lost\": {}}}",
                s.name,
                s.capacity,
                s.delivered,
                kind_counts_json(&s.dropped),
                kind_counts_json(&s.evicted),
                s.overflow,
                s.in_ring,
                s.max_lag,
                s.must_deliver_lost()
            )
        })
        .collect();
    let categories: Vec<String> = r
        .tap
        .meter()
        .totals()
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", fmt_f64(*v)))
        .collect();
    let alerts: Vec<String> = r
        .tap
        .health()
        .events()
        .iter()
        .map(|e| {
            format!(
                "    {{\"step\": {}, \"rule\": \"{}\", \"metric\": \"{}\", \"severity\": \"{}\", \"kind\": \"{}\", \"value\": {}}}",
                e.step,
                e.rule,
                e.metric,
                e.severity.name(),
                e.kind.name(),
                fmt_f64(e.value)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-stream-v1\",\n  \"config\": {{\"n\": {}, \"ranks\": {}, \"steps\": {}, \"seed\": {}, \"storm_epochs\": [{}, {}], \"grow_at\": {}, \"shrink_at\": {}, \"fast_capacity\": {}, \"slow_capacity\": {}, \"slow_drain_every\": {}, \"block_on_full\": {}}},\n  \"final\": {{\"time_gyr\": {}, \"fast_frames\": {}, \"snapshots\": {}}},\n  \"bus\": {{\"published\": {}, \"published_total\": {}, \"bytes_encoded\": {}, \"stalls\": {}}},\n  \"subscribers\": [\n{}\n  ],\n  \"overhead\": {{\"categories\": {{{}}}, \"total_s\": {}, \"mean_fraction\": {}, \"max_fraction\": {}, \"budget_fraction\": {}}},\n  \"alerts\": [\n{}\n  ],\n  \"gate\": {{\"lossless_ok\": {}, \"accounting_ok\": {}, \"overhead_ok\": {}, \"passed\": {}}}\n}}\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        c.storm_epochs.0,
        c.storm_epochs.1,
        c.grow_at,
        c.shrink_at,
        c.fast_capacity,
        c.slow_capacity,
        c.slow_drain_every,
        c.block_on_full,
        fmt_f64(r.time_gyr),
        r.fast_frames.len(),
        r.snapshots.len(),
        kind_counts_json(bus.published()),
        bus.published_total(),
        bus.bytes_encoded(),
        bus.stalls(),
        subscribers.join(",\n"),
        categories.join(", "),
        fmt_f64(r.tap.meter().total_s()),
        fmt_f64(r.tap.meter().mean_fraction()),
        fmt_f64(r.tap.meter().max_fraction()),
        fmt_f64(OVERHEAD_BUDGET_FRACTION),
        alerts.join(",\n"),
        r.lossless_ok(),
        r.accounting_ok(),
        r.overhead_ok(),
        r.passed()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny() -> StreamBenchConfig {
        StreamBenchConfig {
            n: 600,
            ranks: 4,
            steps: 40,
            seed: 7,
            storm_epochs: (11, 16),
            grow_at: 22,
            shrink_at: 33,
            fast_capacity: 64,
            slow_capacity: 4,
            slow_drain_every: 8,
            snapshots: vec![20, 40],
            block_on_full: false,
        }
    }

    #[test]
    fn slow_subscriber_loses_only_droppable_frames() {
        let r = run(tiny());
        let reports = r.tap.bus().reports();
        let slow = &reports[1];
        assert!(slow.lost_total() > 0, "the tiny ring must shed samples");
        assert_eq!(slow.must_deliver_lost(), 0);
        // The storm fired alerts and the churn produced view changes, so
        // the lossless check is exercised, not vacuous.
        let p = r.tap.bus().published();
        assert!(p.get("alert").copied().unwrap_or(0) > 0, "{p:?}");
        assert!(p.get("view-change").copied().unwrap_or(0) >= 2, "{p:?}");
        assert!(r.lossless_ok());
        assert!(r.accounting_ok());
    }

    #[test]
    fn honest_run_passes_the_gate_and_meters_overhead() {
        let r = run(tiny());
        assert!(r.passed());
        assert!(r.tap.meter().max_fraction() > 0.0);
        assert!(r.tap.meter().max_fraction() < OVERHEAD_BUDGET_FRACTION);
        // The fast subscriber saw the full frame set.
        assert!(r.fast_frames.iter().any(|f| f.kind == FrameKind::StepHeader));
        assert!(r.fast_frames.iter().any(|f| f.kind == FrameKind::Alert));
        assert!(r.fast_frames.iter().any(|f| f.kind == FrameKind::ViewChange));
    }

    #[test]
    fn block_on_full_sabotage_fails_the_gate() {
        let r = run(StreamBenchConfig {
            block_on_full: true,
            ..tiny()
        });
        assert!(r.tap.bus().stalls() > 0);
        assert!(!r.overhead_ok(), "stall charges must blow the budget");
        assert!(!r.passed());
        assert!(stream_json(&r).contains("\"passed\": false"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = run(tiny());
        let b = run(tiny());
        assert_eq!(stream_json(&a), stream_json(&b));
        assert_eq!(a.snapshots.len(), b.snapshots.len());
        for ((sa, ha), (sb, hb)) in a.snapshots.iter().zip(&b.snapshots) {
            assert_eq!(sa, sb);
            assert_eq!(ha, hb, "snapshot at step {sa} differs");
        }
        let json = stream_json(&a);
        let v = bonsai_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-stream-v1"));
        assert!(json.contains("\"passed\": true"));
    }
}
