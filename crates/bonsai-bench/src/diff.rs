//! Structural + numeric diff of two same-schema bench artifacts, with
//! ranked human-readable attribution.
//!
//! This is the engine behind the `obs_diff` binary: given two
//! `BENCH_*.json` documents it walks both JSON trees in lockstep and
//! reports every out-of-tolerance difference as a [`Delta`] whose path
//! names the phase × rank × metric it belongs to. Array elements are
//! matched by *identity keys* (`kernel`, `phase`, `term`, `rank`, …) when
//! present, so a reordered or grown array attributes changes to the right
//! row instead of smearing them across indices.

use std::collections::BTreeMap;

use bonsai_obs::json::{fmt_f64, Value};

/// Keys that identify an array element (checked in order; the first ones
/// present form the element's label). These are the dimension columns of
/// every bench schema: a roofline row is `kernel` × `rank`, a residual row
/// is `term`, an alert row is `rule` × `step`, a view change is `epoch`,
/// a flow-ledger row is `link`, a wait-attribution row is `cause`.
const IDENTITY_KEYS: [&str; 15] = [
    "kernel", "phase", "term", "rule", "metric", "family", "name", "id", "rank", "step", "epoch",
    "decision", "link", "cause", "kind",
];

/// Numeric comparison tolerance: `a` and `b` agree when
/// `|a − b| ≤ abs + rel · max(|a|, |b|)`.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Relative term.
    pub rel: f64,
    /// Absolute floor (absorbs denormal noise around zero).
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            rel: 0.05,
            abs: 1e-9,
        }
    }
}

impl Tolerance {
    /// The allowed band for a pair of values.
    fn band(&self, a: f64, b: f64) -> f64 {
        self.abs + self.rel * a.abs().max(b.abs())
    }
}

/// What kind of disagreement a delta records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Both sides numeric, difference outside tolerance.
    Numeric,
    /// Type mismatch, string change, or a key/element present on only one
    /// side.
    Structural,
}

/// One out-of-tolerance difference between the two artifacts.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Dotted path with identity-labelled array segments, e.g.
    /// `roofline[kernel=local,rank=2].seconds`.
    pub path: String,
    /// Rendered baseline value (`∅` when absent).
    pub base: String,
    /// Rendered current value (`∅` when absent).
    pub current: String,
    /// How far outside tolerance: `|a − b| / band` for numeric deltas
    /// (always > 1), `∞` for structural ones. The report ranks by this.
    pub severity: f64,
    /// Numeric or structural.
    pub kind: DeltaKind,
}

impl Delta {
    fn structural(path: &str, base: Option<&Value>, current: Option<&Value>) -> Self {
        Self {
            path: path.to_string(),
            base: base.map_or("∅".into(), render),
            current: current.map_or("∅".into(), render),
            severity: f64::INFINITY,
            kind: DeltaKind::Structural,
        }
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Num(x) => fmt_f64(*x),
        Value::Str(s) => format!("\"{s}\""),
        Value::Arr(a) => format!("[…{} items]", a.len()),
        Value::Obj(m) => format!("{{…{} keys}}", m.len()),
    }
}

/// The identity label of an array element, if it carries any identity keys
/// (e.g. `kernel=local,rank=2`).
fn identity(v: &Value) -> Option<String> {
    let Value::Obj(m) = v else { return None };
    let parts: Vec<String> = IDENTITY_KEYS
        .iter()
        .filter_map(|&k| {
            m.get(k).and_then(|x| match x {
                Value::Str(s) => Some(format!("{k}={s}")),
                // Integer-valued dimensions (rank, step, epoch) label as
                // integers, matching how the artifacts print them.
                Value::Num(n) if n.fract() == 0.0 && n.is_finite() => {
                    Some(format!("{k}={}", *n as i64))
                }
                Value::Num(n) => Some(format!("{k}={}", fmt_f64(*n))),
                _ => None,
            })
        })
        .collect();
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

/// Diff two parsed documents; returns every out-of-tolerance delta
/// (unranked — [`rank`] sorts them for presentation).
pub fn diff_values(base: &Value, current: &Value, tol: Tolerance) -> Vec<Delta> {
    let mut out = Vec::new();
    walk("", base, current, tol, &mut out);
    out
}

fn walk(path: &str, a: &Value, b: &Value, tol: Tolerance, out: &mut Vec<Delta>) {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => {
            let band = tol.band(*x, *y);
            let d = (x - y).abs();
            if d > band && !(x.is_nan() && y.is_nan()) {
                out.push(Delta {
                    path: path.to_string(),
                    base: fmt_f64(*x),
                    current: fmt_f64(*y),
                    severity: if band > 0.0 { d / band } else { f64::INFINITY },
                    kind: DeltaKind::Numeric,
                });
            }
        }
        (Value::Obj(ma), Value::Obj(mb)) => {
            let keys: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
            for k in keys {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match (ma.get(k), mb.get(k)) {
                    (Some(x), Some(y)) => walk(&sub, x, y, tol, out),
                    (x, y) => out.push(Delta::structural(&sub, x, y)),
                }
            }
        }
        (Value::Arr(xs), Value::Arr(ys)) => diff_arrays(path, xs, ys, tol, out),
        (Value::Str(s), Value::Str(t)) if s == t => {}
        (Value::Bool(s), Value::Bool(t)) if s == t => {}
        (Value::Null, Value::Null) => {}
        _ => out.push(Delta::structural(path, Some(a), Some(b))),
    }
}

fn diff_arrays(path: &str, xs: &[Value], ys: &[Value], tol: Tolerance, out: &mut Vec<Delta>) {
    // Identity-keyed matching when every element on both sides is
    // labelled; positional otherwise.
    let lx: Option<Vec<String>> = xs.iter().map(identity).collect();
    let ly: Option<Vec<String>> = ys.iter().map(identity).collect();
    if let (Some(lx), Some(ly)) = (lx, ly) {
        let ma: BTreeMap<&String, &Value> = lx.iter().zip(xs).collect();
        let mb: BTreeMap<&String, &Value> = ly.iter().zip(ys).collect();
        if ma.len() == xs.len() && mb.len() == ys.len() {
            let keys: std::collections::BTreeSet<&&String> = ma.keys().chain(mb.keys()).collect();
            for k in keys {
                let sub = format!("{path}[{k}]");
                match (ma.get(*k), mb.get(*k)) {
                    (Some(x), Some(y)) => walk(&sub, x, y, tol, out),
                    (x, y) => out.push(Delta::structural(&sub, x.copied(), y.copied())),
                }
            }
            return;
        }
    }
    if xs.len() != ys.len() {
        out.push(Delta::structural(
            &format!("{path}.length"),
            Some(&Value::Num(xs.len() as f64)),
            Some(&Value::Num(ys.len() as f64)),
        ));
    }
    for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
        walk(&format!("{path}[{i}]"), x, y, tol, out);
    }
}

/// Rank deltas most-severe first (structural above everything, then by
/// excess ratio, ties broken by path for determinism).
pub fn rank(mut deltas: Vec<Delta>) -> Vec<Delta> {
    deltas.sort_by(|a, b| {
        b.severity
            .partial_cmp(&a.severity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    deltas
}

/// Human-readable ranked report.
pub fn render_report(deltas: &[Delta], tol: Tolerance) -> String {
    let mut s = String::new();
    if deltas.is_empty() {
        s.push_str(&format!(
            "no deltas outside tolerance (rel {}, abs {})\n",
            fmt_f64(tol.rel),
            fmt_f64(tol.abs)
        ));
        return s;
    }
    s.push_str(&format!(
        "{} delta(s) outside tolerance (rel {}, abs {}), most severe first:\n",
        deltas.len(),
        fmt_f64(tol.rel),
        fmt_f64(tol.abs)
    ));
    for d in deltas {
        let sev = if d.severity.is_finite() {
            format!("{:.1}x", d.severity)
        } else {
            "structural".into()
        };
        s.push_str(&format!(
            "  [{sev:>10}] {}: {} -> {}\n",
            d.path, d.base, d.current
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_obs::json::parse;

    fn d(a: &str, b: &str) -> Vec<Delta> {
        rank(diff_values(
            &parse(a).unwrap(),
            &parse(b).unwrap(),
            Tolerance::default(),
        ))
    }

    #[test]
    fn identical_documents_have_no_deltas() {
        let doc = r#"{"schema": "bonsai-step-v1", "x": [1.0, 2.0], "s": "ok"}"#;
        assert!(d(doc, doc).is_empty());
    }

    #[test]
    fn small_numeric_drift_is_within_tolerance() {
        assert!(d(r#"{"x": 100.0}"#, r#"{"x": 104.0}"#).is_empty());
        let out = d(r#"{"x": 100.0}"#, r#"{"x": 120.0}"#);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DeltaKind::Numeric);
        assert!(out[0].severity > 1.0);
        assert_eq!(out[0].path, "x");
    }

    #[test]
    fn identity_keyed_arrays_attribute_by_row_not_index() {
        // Rows swap order and `local` slows down: only the `local` row's
        // seconds should be flagged, under its identity label.
        let base = r#"{"roofline": [
            {"kernel": "local", "rank": 0, "seconds": 1.0},
            {"kernel": "sort", "rank": 0, "seconds": 0.5}]}"#;
        let cur = r#"{"roofline": [
            {"kernel": "sort", "rank": 0, "seconds": 0.5},
            {"kernel": "local", "rank": 0, "seconds": 2.0}]}"#;
        let out = d(base, cur);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "roofline[kernel=local,rank=0].seconds");
    }

    #[test]
    fn missing_rows_and_type_changes_are_structural() {
        let base = r#"{"rows": [{"term": "sort", "s": 1.0}], "v": 1.0}"#;
        let cur = r#"{"rows": [], "v": "one"}"#;
        let out = d(base, cur);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|x| x.kind == DeltaKind::Structural));
        assert!(out.iter().any(|x| x.path == "rows[term=sort]"));
        assert!(out.iter().any(|x| x.path == "v"));
    }

    #[test]
    fn ranking_puts_the_largest_excess_first() {
        let base = r#"{"a": 1.0, "b": 1.0, "c": true}"#;
        let cur = r#"{"a": 1.2, "b": 10.0, "c": false}"#;
        let out = d(base, cur);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].path, "c"); // structural outranks numeric
        assert_eq!(out[1].path, "b"); // 9.0 over a ~0.5 band
        assert_eq!(out[2].path, "a");
        let report = render_report(&out, Tolerance::default());
        assert!(report.contains("3 delta(s)"));
        assert!(report.contains("structural"));
    }

    #[test]
    fn empty_report_names_the_tolerance() {
        let report = render_report(&[], Tolerance::default());
        assert!(report.contains("no deltas"));
        assert!(report.contains("0.05"));
    }
}
