//! Shared loader for the `BENCH_*.json` artifacts.
//!
//! Every bench binary emits a byte-deterministic JSON document whose first
//! field is a `schema` string of the form `bonsai-<kind>-v<N>`. This module
//! is the one place that contract is parsed and enforced: the diff tool,
//! the CI gates and the tests all load artifacts through [`load_artifact`],
//! so a bench that forgets to self-identify (or bumps its schema without
//! bumping the version) fails loudly instead of producing a silently
//! meaningless comparison.

use bonsai_obs::json::{self, Value};

/// A loaded, schema-validated bench artifact.
#[derive(Clone, Debug)]
pub struct BenchArtifact {
    /// The full schema string, e.g. `bonsai-profile-v1`.
    pub schema: String,
    /// The artifact kind, e.g. `profile` (the `<kind>` of
    /// `bonsai-<kind>-v<N>`).
    pub kind: String,
    /// The schema version (the `<N>`).
    pub version: u32,
    /// The parsed document root.
    pub value: Value,
}

/// Split a schema string `bonsai-<kind>-v<N>` into `(kind, version)`.
///
/// The kind may itself contain dashes (`bonsai-weak-scaling-v2` →
/// `("weak-scaling", 2)`); the version is whatever follows the *last*
/// `-v` segment.
pub fn parse_schema(schema: &str) -> Result<(String, u32), String> {
    let rest = schema
        .strip_prefix("bonsai-")
        .ok_or_else(|| format!("schema `{schema}` does not start with `bonsai-`"))?;
    let (kind, ver) = rest
        .rsplit_once("-v")
        .ok_or_else(|| format!("schema `{schema}` has no `-v<N>` version suffix"))?;
    if kind.is_empty() {
        return Err(format!("schema `{schema}` has an empty kind"));
    }
    let version: u32 = ver
        .parse()
        .map_err(|_| format!("schema `{schema}` has a non-numeric version `{ver}`"))?;
    Ok((kind.to_string(), version))
}

/// Parse an artifact document: valid JSON, object root, well-formed
/// top-level `schema` field.
pub fn parse_artifact(text: &str) -> Result<BenchArtifact, String> {
    let value = json::parse(text)?;
    if !matches!(value, Value::Obj(_)) {
        return Err("artifact root is not a JSON object".into());
    }
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("artifact has no top-level `schema` string")?
        .to_string();
    let (kind, version) = parse_schema(&schema)?;
    Ok(BenchArtifact {
        schema,
        kind,
        version,
        value,
    })
}

/// Load and validate an artifact from disk.
pub fn load_artifact(path: &std::path::Path) -> Result<BenchArtifact, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_artifact(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_strings_round_trip() {
        assert_eq!(
            parse_schema("bonsai-profile-v1").unwrap(),
            ("profile".to_string(), 1)
        );
        assert_eq!(
            parse_schema("bonsai-weak-scaling-v12").unwrap(),
            ("weak-scaling".to_string(), 12)
        );
        assert!(parse_schema("fresnel-profile-v1").is_err());
        assert!(parse_schema("bonsai-profile").is_err());
        assert!(parse_schema("bonsai-v1").is_err());
        assert!(parse_schema("bonsai-profile-vx").is_err());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_artifact("[1, 2]").is_err());
        assert!(parse_artifact("{\"x\": 1}").is_err());
        assert!(parse_artifact("{\"schema\": 7}").is_err());
        assert!(parse_artifact("{\"schema\": \"bonsai-step-v1\"").is_err());
        let a = parse_artifact("{\"schema\": \"bonsai-step-v1\", \"x\": 1}").unwrap();
        assert_eq!(a.kind, "step");
        assert_eq!(a.version, 1);
        assert_eq!(a.value.get("x").and_then(Value::as_f64), Some(1.0));
    }

    /// Every checked-in `BENCH_*.json` at the repo root parses and
    /// self-identifies through the shared loader — the contract the diff
    /// tool and the CI gates rely on.
    #[test]
    fn all_checked_in_artifacts_self_identify() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let mut kinds = Vec::new();
        for entry in std::fs::read_dir(&root).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
                continue;
            }
            let a = load_artifact(&path).unwrap_or_else(|e| panic!("{e}"));
            // The file name and the embedded schema agree on the kind.
            let stem = name
                .trim_start_matches("BENCH_")
                .trim_end_matches(".json")
                .to_string();
            assert_eq!(a.kind, stem, "{name}: schema kind mismatch");
            assert!(a.version >= 1);
            kinds.push(a.kind);
        }
        kinds.sort();
        assert_eq!(
            kinds,
            vec![
                "accuracy",
                "flows",
                "longrun",
                "membership",
                "parallel",
                "profile",
                "scaling",
                "step",
                "stream"
            ],
            "expected the nine canonical bench artifacts at the repo root"
        );
    }
}
