//! The long-run monitoring bench: a scaled-down Milky Way production run
//! driven for hundreds of steps with the [`bonsai_sim::LongRunMonitor`]
//! enabled and a seeded mid-run fault storm, exported as a byte-
//! deterministic JSON record plus a self-contained zero-dependency HTML
//! dashboard (inline-SVG sparklines with alert annotations, incident and
//! rollup tables).
//!
//! The storm is scheduled by *epoch* through the deterministic
//! [`FaultPlan`]: every first-attempt message in the window is dropped, so
//! retransmission recovery actions spike, the `recovery-storm` rule opens,
//! the flight recorder freezes an incident window, and once the window
//! passes the rule closes — the full open → freeze → close lifecycle in
//! one reproducible run.

use bonsai_ic::MilkyWayModel;
use bonsai_net::fault::{FaultKind, FaultPlan, Injection};
use bonsai_obs::health::{AlertKind, Severity};
use bonsai_obs::json::fmt_f64;
use bonsai_obs::timeseries::Series;
use bonsai_sim::{Cluster, ClusterConfig, LongRunConfig, LongRunMonitor};
use bonsai_util::units;

/// The long-run bench configuration.
#[derive(Clone, Debug)]
pub struct LongRunBenchConfig {
    /// Total particles of the scaled Milky Way model.
    pub n: usize,
    /// Logical ranks.
    pub ranks: usize,
    /// Steps to drive (the issue floor is 500).
    pub steps: usize,
    /// IC + fault-plan seed.
    pub seed: u64,
    /// Series-store bin bound (small enough that the run downsamples).
    pub max_bins: usize,
    /// `[first, last)` gravity epochs of the injected drop storm.
    pub storm_epochs: (u64, u64),
    /// Step after which one rank is admitted (0 = no grow).
    pub grow_at: usize,
    /// Step after which one rank is retired (0 = no shrink).
    pub shrink_at: usize,
}

impl Default for LongRunBenchConfig {
    fn default() -> Self {
        Self {
            n: 3_000,
            ranks: 4,
            steps: 520,
            seed: 2014,
            max_bins: 160,
            storm_epochs: (261, 281),
            grow_at: 120,
            shrink_at: 380,
        }
    }
}

/// The headline derived metrics charted by the dashboard, in display order.
pub const HEADLINE: [&str; 9] = [
    "bonsai_energy_drift",
    "bonsai_gpu_gflops",
    "bonsai_step_seconds",
    "bonsai_recovery_actions",
    "bonsai_retransmit_bytes",
    "bonsai_degraded_lets",
    "bonsai_flop_residual",
    "bonsai_hidden_comm_fraction",
    "bonsai_particle_imbalance",
];

/// Everything the exporters need from one completed run.
pub struct LongRunResult {
    /// The configuration that produced it.
    pub config: LongRunBenchConfig,
    /// The detached monitor (series, alert log, incidents).
    pub monitor: LongRunMonitor,
    /// Final simulated time in Gyr.
    pub time_gyr: f64,
    /// Final relative energy drift.
    pub energy_drift: f64,
    /// Per-change audit rows from the cluster's membership log (the
    /// scripted grow/shrink churn).
    pub view_changes: Vec<bonsai_net::ViewChange>,
}

/// Drive the run: scaled Milky Way over `ranks` ranks with the monitor
/// enabled and the drop storm injected over `storm_epochs`.
pub fn run(cfg: LongRunBenchConfig) -> LongRunResult {
    let ic = MilkyWayModel::paper().generate(cfg.n, cfg.seed);
    let mut ccfg = ClusterConfig::default();
    ccfg.g = units::G;
    ccfg.eps = 0.1 * (2.0e5_f64 / cfg.n as f64).powf(1.0 / 3.0);
    ccfg.dt = units::myr_to_internal(3.0);
    let mut plan = FaultPlan::new(cfg.seed);
    for epoch in cfg.storm_epochs.0..cfg.storm_epochs.1 {
        plan = plan.with_injection(Injection {
            epoch,
            from: None,
            to: None,
            kind: None,
            fault: FaultKind::Drop,
        });
    }
    let mut cluster = Cluster::with_faults(ic, cfg.ranks, ccfg, plan, None);
    let baseline = cluster.energy_report();
    cluster.enable_longrun(LongRunConfig {
        max_bins: cfg.max_bins,
        ..LongRunConfig::default()
    });
    for step in 0..cfg.steps {
        cluster.step();
        // Scripted elastic churn: one rank in, later one rank out, so the
        // run exercises a view change in each direction mid-flight.
        if cfg.grow_at > 0 && step + 1 == cfg.grow_at {
            cluster.admit_ranks(1);
        }
        if cfg.shrink_at > 0 && step + 1 == cfg.shrink_at {
            cluster.retire_ranks(1);
        }
    }
    let energy_drift = cluster.energy_report().drift_from(&baseline);
    let time_gyr = units::internal_to_gyr(cluster.time());
    let view_changes = cluster.membership_log().changes().to_vec();
    let monitor = cluster.take_longrun().expect("monitor was enabled");
    LongRunResult {
        config: cfg,
        monitor,
        time_gyr,
        energy_drift,
        view_changes,
    }
}

fn series_json(s: &Series) -> String {
    let sum = s.summary().expect("non-empty series");
    let bins: Vec<String> = s
        .bins()
        .iter()
        .map(|b| {
            format!(
                "[{}, {}, {}, {}, {}, {}, {}]",
                b.step_lo,
                b.step_hi,
                b.count,
                fmt_f64(b.min),
                fmt_f64(b.max),
                fmt_f64(b.mean()),
                fmt_f64(b.last)
            )
        })
        .collect();
    format!(
        "{{\"stride\": {}, \"count\": {}, \"summary\": {{\"min\": {}, \"max\": {}, \"mean\": {}, \"last\": {}}}, \"bins\": [{}]}}",
        s.stride(),
        s.count(),
        fmt_f64(sum.min),
        fmt_f64(sum.max),
        fmt_f64(sum.mean()),
        fmt_f64(sum.last),
        bins.join(", ")
    )
}

/// `BENCH_longrun.json`: schema `bonsai-longrun-v1`, byte-deterministic.
pub fn longrun_json(r: &LongRunResult) -> String {
    let c = &r.config;
    let mut series: Vec<String> = Vec::new();
    for name in HEADLINE {
        if let Some(s) = r.monitor.series().series(name) {
            series.push(format!("    \"{name}\": {}", series_json(s)));
        }
    }
    let alerts: Vec<String> = r
        .monitor
        .health()
        .events()
        .iter()
        .map(|e| {
            format!(
                "    {{\"step\": {}, \"rule\": \"{}\", \"metric\": \"{}\", \"severity\": \"{}\", \"kind\": \"{}\", \"value\": {}}}",
                e.step,
                e.rule,
                e.metric,
                e.severity.name(),
                e.kind.name(),
                fmt_f64(e.value)
            )
        })
        .collect();
    let incidents: Vec<String> = r
        .monitor
        .incidents()
        .iter()
        .map(|i| {
            format!(
                "    {{\"id\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"step\": {}, \"window\": [{}, {}], \"spans\": {}, \"instants\": {}, \"flows\": {}}}",
                i.id,
                i.rule,
                i.severity.name(),
                i.step,
                i.window.0,
                i.window.1,
                i.trace.spans().len(),
                i.trace.instants().len(),
                i.trace.flow_points().len()
            )
        })
        .collect();
    let changes: Vec<String> = r
        .view_changes
        .iter()
        .map(|ch| {
            format!(
                "    {{\"epoch\": {}, \"from_view\": {}, \"to_view\": {}, \"from_world\": {}, \"to_world\": {}, \"rounds\": {}, \"migrated_particles\": {}, \"migrated_bytes\": {}}}",
                ch.epoch,
                ch.from_view,
                ch.to_view,
                ch.from_world,
                ch.to_world,
                ch.rounds,
                ch.migrated_particles,
                ch.migrated_bytes
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-longrun-v1\",\n  \"config\": {{\"n\": {}, \"ranks\": {}, \"steps\": {}, \"seed\": {}, \"max_bins\": {}, \"storm_epochs\": [{}, {}], \"grow_at\": {}, \"shrink_at\": {}}},\n  \"final\": {{\"time_gyr\": {}, \"energy_drift\": {}}},\n  \"series\": {{\n{}\n  }},\n  \"alerts\": [\n{}\n  ],\n  \"incidents\": [\n{}\n  ],\n  \"view_changes\": [\n{}\n  ]\n}}\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        c.max_bins,
        c.storm_epochs.0,
        c.storm_epochs.1,
        c.grow_at,
        c.shrink_at,
        fmt_f64(r.time_gyr),
        fmt_f64(r.energy_drift),
        series.join(",\n"),
        alerts.join(",\n"),
        incidents.join(",\n"),
        changes.join(",\n")
    )
}

/// `(open_step, close_step_or_end, severity)` intervals per metric, from
/// the alert log (an alert still open at run end extends to the last step).
fn alert_intervals(r: &LongRunResult, metric: &str) -> Vec<(u64, u64, Severity)> {
    let end = r.config.steps as u64;
    let mut out = Vec::new();
    let mut open: Vec<(String, u64, Severity)> = Vec::new();
    for e in r.monitor.health().events() {
        if e.metric != metric {
            continue;
        }
        match e.kind {
            AlertKind::Open => open.push((e.rule.clone(), e.step, e.severity)),
            AlertKind::Close => {
                if let Some(pos) = open.iter().position(|(rule, _, _)| *rule == e.rule) {
                    let (_, s, sev) = open.remove(pos);
                    out.push((s, e.step, sev));
                }
            }
        }
    }
    for (_, s, sev) in open {
        out.push((s, end, sev));
    }
    out.sort_by_key(|&(s, e, _)| (s, e));
    out
}

fn sev_color(sev: Severity) -> &'static str {
    match sev {
        Severity::Critical => "#dc2626",
        Severity::Warning => "#d97706",
        Severity::Info => "#2563eb",
    }
}

/// `(step, label, color)` vertical annotation marks for membership churn:
/// green for a grow, amber for a shrink.
fn churn_marks(r: &LongRunResult) -> Vec<(u64, String, &'static str)> {
    r.view_changes
        .iter()
        .map(|ch| {
            let (kind, color) = if ch.to_world >= ch.from_world {
                ("grow", "#16a34a")
            } else {
                ("shrink", "#d97706")
            };
            (
                ch.epoch,
                format!(
                    "view {} -> {} ({kind} {} -> {} ranks, {} particles / {} B migrated)",
                    ch.from_view,
                    ch.to_view,
                    ch.from_world,
                    ch.to_world,
                    ch.migrated_particles,
                    ch.migrated_bytes
                ),
                color,
            )
        })
        .collect()
}

/// One inline-SVG sparkline: min–max band + mean polyline over step
/// number, with translucent alert-interval rects, dashed view-change
/// marker lines and native `<title>` tooltips. Exactly one series per
/// chart — the title names it.
fn sparkline(
    name: &str,
    s: &Series,
    alerts: &[(u64, u64, Severity)],
    marks: &[(u64, String, &'static str)],
    steps: u64,
) -> String {
    const W: f64 = 440.0;
    const H: f64 = 110.0;
    const L: f64 = 8.0; // left pad
    const T: f64 = 22.0; // title band
    const B: f64 = 8.0; // bottom pad
    let sum = s.summary().expect("non-empty series");
    let (lo, hi) = (sum.min, sum.max);
    let span = (hi - lo).max(1e-300);
    let x = |step: f64| L + (W - 2.0 * L) * step / steps.max(1) as f64;
    let y = |v: f64| T + (H - T - B) * (1.0 - (v - lo) / span);
    let mid = |b: &bonsai_obs::timeseries::Bin| 0.5 * (b.step_lo as f64 + b.step_hi as f64);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\n\
         <text class=\"t\" x=\"{L}\" y=\"14\">{name}</text>\n\
         <text class=\"a\" x=\"{:.1}\" y=\"14\" text-anchor=\"end\">min {} · mean {} · max {}</text>\n",
        W - L,
        short(sum.min),
        short(sum.mean()),
        short(sum.max)
    );
    // Alert annotation rects under the data marks.
    for &(a, b, sev) in alerts {
        let (xa, xb) = (x(a as f64), x(b as f64));
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{T}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\" opacity=\"0.15\"><title>{} alert open: steps {a}–{b}</title></rect>\n",
            xa,
            (xb - xa).max(1.0),
            H - T - B,
            sev_color(sev),
            sev.name()
        ));
    }
    // View-change markers: one dashed vertical line per membership epoch.
    for (step, label, color) in marks {
        let xm = x(*step as f64);
        svg.push_str(&format!(
            "<line x1=\"{xm:.1}\" y1=\"{T}\" x2=\"{xm:.1}\" y2=\"{:.1}\" stroke=\"{color}\" stroke-width=\"1.5\" stroke-dasharray=\"3 2\"><title>{label}</title></line>\n",
            H - B
        ));
    }
    // min–max band.
    let mut band = String::new();
    for b in s.bins() {
        band.push_str(&format!("{:.1},{:.1} ", x(mid(b)), y(b.max)));
    }
    for b in s.bins().iter().rev() {
        band.push_str(&format!("{:.1},{:.1} ", x(mid(b)), y(b.min)));
    }
    svg.push_str(&format!(
        "<polygon points=\"{}\" fill=\"#2563eb\" opacity=\"0.18\"/>\n",
        band.trim_end()
    ));
    // Mean polyline with a whole-chart tooltip.
    let pts: Vec<String> = s
        .bins()
        .iter()
        .map(|b| format!("{:.1},{:.1}", x(mid(b)), y(b.mean())))
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#2563eb\" stroke-width=\"2\"><title>{name}: {} samples, stride {}</title></polyline>\n",
        pts.join(" "),
        s.count(),
        s.stride()
    ));
    svg.push_str("</svg>\n");
    svg
}

/// Compact deterministic number for chart captions.
fn short(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1e5 || a < 1e-3 {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// `out/longrun_report.html`: fully self-contained (no scripts, no
/// external references), deterministic.
pub fn render_html(r: &LongRunResult) -> String {
    let c = &r.config;
    let steps = c.steps as u64;
    let mut s = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>bonsai long-run report</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:960px;color:#1a1a2e}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}\n\
         table{border-collapse:collapse;margin:0.5rem 0;font-size:13px}\n\
         td,th{border:1px solid #cbd5e1;padding:4px 10px;text-align:right}\n\
         td:first-child,th:first-child{text-align:left}\n\
         th{background:#eef2f7} .t{font:600 13px system-ui;fill:#1a1a2e}\n\
         .a{font:11px system-ui;fill:#556}\n\
         .charts{display:flex;gap:1rem;flex-wrap:wrap}\n\
         .sev{display:inline-block;width:10px;height:10px;border-radius:2px;vertical-align:-1px;margin-right:4px}\n\
         code{background:#eef2f7;padding:0 3px;border-radius:3px}\n</style>\n</head>\n<body>\n\
         <h1>Long-run monitor — sustained Milky Way run</h1>\n",
    );
    s.push_str(&format!(
        "<p>{} particles over {} ranks, {} steps to t = {} Gyr (seed {}). Final relative \
         energy drift {}. Shaded spans mark steps where a health rule was open \
         (<span class=\"sev\" style=\"background:#d97706\"></span>warning, \
         <span class=\"sev\" style=\"background:#dc2626\"></span>critical); dashed vertical \
         lines mark membership view changes (<span class=\"sev\" style=\"background:#16a34a\">\
         </span>grow, <span class=\"sev\" style=\"background:#d97706\"></span>shrink); the band \
         is the per-bin min–max envelope, the line the bin mean.</p>\n",
        c.n,
        c.ranks,
        c.steps,
        short(r.time_gyr),
        c.seed,
        short(r.energy_drift)
    ));
    s.push_str("<div class=\"charts\">\n");
    let marks = churn_marks(r);
    for name in HEADLINE {
        if let Some(ser) = r.monitor.series().series(name) {
            let alerts = alert_intervals(r, name);
            s.push_str(&sparkline(name, ser, &alerts, &marks, steps));
        }
    }
    s.push_str("</div>\n");

    // Membership churn table.
    s.push_str("<h2>Membership</h2>\n");
    if r.view_changes.is_empty() {
        s.push_str("<p>No view changes — the world held its initial size.</p>\n");
    } else {
        s.push_str(
            "<table>\n<tr><th>epoch</th><th>view</th><th>world</th><th>rounds</th>\
             <th>migrated particles</th><th>migrated bytes</th></tr>\n",
        );
        for ch in &r.view_changes {
            s.push_str(&format!(
                "<tr><td>{}</td><td>{} → {}</td><td>{} → {}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                ch.epoch,
                ch.from_view,
                ch.to_view,
                ch.from_world,
                ch.to_world,
                ch.rounds,
                ch.migrated_particles,
                ch.migrated_bytes
            ));
        }
        s.push_str("</table>\n");
    }

    // Incident table.
    s.push_str("<h2>Incidents</h2>\n");
    if r.monitor.incidents().is_empty() {
        s.push_str("<p>No incidents frozen — no alert opened during the run.</p>\n");
    } else {
        s.push_str(
            "<table>\n<tr><th>id</th><th>rule</th><th>severity</th><th>opened at step</th>\
             <th>window (epochs)</th><th>spans</th><th>instants</th><th>flows</th></tr>\n",
        );
        for i in r.monitor.incidents() {
            s.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td><span class=\"sev\" style=\"background:{}\"></span>{}</td><td>{}</td><td>{}–{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                i.id,
                i.rule,
                sev_color(i.severity),
                i.severity.name(),
                i.step,
                i.window.0,
                i.window.1,
                i.trace.spans().len(),
                i.trace.instants().len(),
                i.trace.flow_points().len()
            ));
        }
        s.push_str("</table>\n");
        s.push_str(
            "<p>Incident windows are exported as Chrome trace JSON \
             (<code>out/longrun_incident.json</code>) — open in \
             <code>ui.perfetto.dev</code>.</p>\n",
        );
    }

    // Alert log.
    s.push_str("<h2>Alert log</h2>\n");
    if r.monitor.health().events().is_empty() {
        s.push_str("<p>No alerts opened.</p>\n");
    } else {
        s.push_str(
            "<table>\n<tr><th>step</th><th>event</th><th>rule</th><th>severity</th>\
             <th>metric</th><th>value</th></tr>\n",
        );
        for e in r.monitor.health().events() {
            s.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td><span class=\"sev\" style=\"background:{}\"></span>{}</td><td>{}</td><td>{}</td></tr>\n",
                e.step,
                e.kind.name(),
                e.rule,
                sev_color(e.severity),
                e.severity.name(),
                e.metric,
                short(e.value)
            ));
        }
        s.push_str("</table>\n");
    }

    // Whole-run rollups — the table view of every charted series.
    s.push_str("<h2>Run rollups</h2>\n<table>\n<tr><th>metric</th><th>samples</th><th>stride</th><th>min</th><th>mean</th><th>max</th><th>last</th></tr>\n");
    for name in HEADLINE {
        if let Some(ser) = r.monitor.series().series(name) {
            let sum = ser.summary().expect("non-empty");
            s.push_str(&format!(
                "<tr><td>{name}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                ser.count(),
                ser.stride(),
                short(sum.min),
                short(sum.mean()),
                short(sum.max),
                short(sum.last)
            ));
        }
    }
    s.push_str("</table>\n</body>\n</html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LongRunBenchConfig {
        LongRunBenchConfig {
            n: 600,
            ranks: 4,
            steps: 40,
            seed: 7,
            max_bins: 16,
            storm_epochs: (11, 16),
            // Churn after the storm window so the recovery-storm lifecycle
            // assertions see the same epochs with or without elasticity.
            grow_at: 25,
            shrink_at: 33,
        }
    }

    #[test]
    fn storm_opens_and_closes_a_recovery_alert() {
        let r = run(tiny());
        let events = r.monitor.health().events();
        let opened = events
            .iter()
            .any(|e| e.rule == "recovery-storm" && e.kind == AlertKind::Open);
        let closed = events
            .iter()
            .any(|e| e.rule == "recovery-storm" && e.kind == AlertKind::Close);
        assert!(opened, "storm must open a recovery alert: {events:?}");
        assert!(closed, "storm must close after the window: {events:?}");
        assert!(!r.monitor.incidents().is_empty());
        let inc = &r.monitor.incidents()[0];
        assert!(inc.trace_json().contains("traceEvents"));
        // Every step sampled.
        let ser = r.monitor.series().series("bonsai_recovery_actions").unwrap();
        assert_eq!(ser.count(), 40);
    }

    #[test]
    fn exports_are_deterministic_and_self_contained() {
        let a = run(tiny());
        let b = run(tiny());
        assert_eq!(longrun_json(&a), longrun_json(&b));
        let html = render_html(&a);
        assert_eq!(html, render_html(&b));
        assert!(!html.contains("<script"), "report must be zero-JS");
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(html.contains("bonsai_energy_drift"));
        assert!(html.contains("recovery-storm"));
        // The JSON parses and carries the schema + alert kinds.
        let v = bonsai_obs::json::parse(&longrun_json(&a)).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-longrun-v1"));
        let alerts = v.get("alerts").unwrap().as_arr().unwrap();
        assert!(!alerts.is_empty());
    }

    #[test]
    fn scripted_churn_lands_in_report_and_json() {
        let r = run(tiny());
        // One grow + one shrink, back at the initial world size.
        assert_eq!(r.view_changes.len(), 2, "{:?}", r.view_changes.len());
        assert_eq!(r.view_changes[0].to_world, 5);
        assert_eq!(r.view_changes[1].to_world, 4);
        assert!(r.view_changes[1].migrated_particles > 0);
        let v = bonsai_obs::json::parse(&longrun_json(&r)).expect("valid JSON");
        assert_eq!(v.get("view_changes").unwrap().as_arr().unwrap().len(), 2);
        let html = render_html(&r);
        assert!(html.contains("<h2>Membership</h2>"));
        assert!(html.contains("stroke-dasharray"), "churn marker lines missing");
        assert!(html.contains("grow 4 -&gt; 5 ranks") || html.contains("grow 4 -> 5 ranks"));
    }

    #[test]
    fn downsampling_kicks_in_on_long_series() {
        let r = run(LongRunBenchConfig {
            steps: 80,
            max_bins: 16,
            ..tiny()
        });
        let ser = r.monitor.series().series("bonsai_step_seconds").unwrap();
        assert_eq!(ser.count(), 80);
        assert!(ser.bins().len() <= 16);
        assert!(ser.stride() > 1, "80 steps into 16 bins must downsample");
    }
}
