//! §VI-C — time-to-solution analysis.
//!
//! Reproduces the paper's headline claims: with a 75,000-year time step,
//! simulating 8 Gyr of the 242-billion-particle Milky Way on 18600 GPUs
//! takes about a week; the 106-billion model on 8192 nodes just over six
//! days; the 51-billion production run costs ~4.6 s per step.

use bonsai_bench::{print_comparison, Compared};
use bonsai_sim::ScalingModel;
use bonsai_util::units;

fn main() {
    println!("§VI-C reproduction — time to solution\n");
    let titan = ScalingModel::titan();
    let daint = ScalingModel::piz_daint();

    let steps_8gyr = 8.0e9 / 75_000.0;
    println!(
        "time step 75,000 yr = {:.3e} internal units; 8 Gyr = {:.0} steps (paper: ~106,667)",
        units::paper_time_step(),
        steps_8gyr
    );

    let b242 = titan.predict(18600, 13_000_000);
    let b106 = titan.predict(8192, 13_000_000);
    let b51 = daint.predict(4096, 51_200_000_000 / 4096);

    let rows = vec![
        Compared::new(
            "242G on 18600 GPUs: step time",
            5.5, // paper's expected max with bar formed
            b242.total() * 1.10, // +10% bar-formation penalty (§VI-C)
            "s",
        ),
        Compared::new(
            "242G, 8 Gyr wall-clock",
            7.0,
            titan.time_to_solution_days(18600, 13_000_000, 8.0) * 1.10,
            "d",
        ),
        Compared::new(
            "106G on 8192 GPUs: step time",
            5.1,
            b106.total() * 1.10,
            "s",
        ),
        Compared::new(
            "106G, 8 Gyr wall-clock",
            6.2,
            titan.time_to_solution_days(8192, 13_000_000, 8.0) * 1.10,
            "d",
        ),
        Compared::new(
            "51G production on 4096 Piz Daint GPUs",
            4.6, // measured at T = 3.8 Gyr, bar formed
            b51.total() * 1.10,
            "s",
        ),
    ];
    print_comparison("time-to-solution", &rows);

    println!("\n(the 1.10 factor is the paper's own ~10% interaction-count increase once");
    println!(" the bar and spiral arms have formed, §VI-C)");

    println!("\n51G model, 6 Gyr actually simulated by the paper:");
    let days = daint.time_to_solution_days(4096, 51_200_000_000 / 4096, 6.0) * 1.05;
    println!("  model estimate: {days:.1} days of Piz Daint time");
}
