//! Unified observability artefacts for one distributed step.
//!
//! Runs one step of the cluster simulator on a fixed-seed Plummer sphere,
//! then exports the full observability surface:
//!
//! * `out/trace_step.json` — Chrome trace-event JSON, loadable in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`: one process
//!   per rank with GPU and COMM lanes, spans for every Table II phase,
//!   fault/recovery instants on the COMM track;
//! * `out/folded_step.txt` — folded stacks for flamegraph tooling;
//! * `out/metrics_step.prom` — Prometheus text exposition of the registry;
//! * `BENCH_step.json` (working directory, i.e. the repo root) — the bench
//!   trajectory record: per-phase seconds, Gflops, hidden-comm fraction and
//!   bytes moved.
//!
//! Every output is deterministic: a fixed seed yields byte-identical files
//! run over run, so the artefacts can be diffed across commits.

use bonsai_bench::{arg_usize, out_dir};
use bonsai_ic::plummer_sphere;
use bonsai_obs::json::fmt_f64;
use bonsai_obs::{chrome, folded, prom};
use bonsai_sim::trace::{render_gantt, step_timelines};
use bonsai_sim::{Cluster, ClusterConfig};

fn main() {
    let n = arg_usize("--n", 8_000);
    let p = arg_usize("--ranks", 4);
    let seed = arg_usize("--seed", 42) as u64;

    let mut cluster = Cluster::new(plummer_sphere(n, seed), p, ClusterConfig::default());
    let b = cluster.step();

    // The registry reduction must reproduce the returned breakdown exactly
    // — instrumentation changes observation, not physics or timing.
    let reduced = cluster.breakdown_from_metrics();
    assert_eq!(
        reduced.total(),
        b.total(),
        "registry reduction diverged from the step breakdown"
    );

    let dir = out_dir();
    let trace_json = chrome::chrome_trace_json(cluster.trace());
    std::fs::write(dir.join("trace_step.json"), &trace_json).expect("write trace_step.json");
    std::fs::write(
        dir.join("folded_step.txt"),
        folded::folded_stacks(cluster.trace()),
    )
    .expect("write folded_step.txt");
    std::fs::write(
        dir.join("metrics_step.prom"),
        prom::prometheus_text(cluster.metrics()),
    )
    .expect("write metrics_step.prom");

    let timelines = step_timelines(&cluster);
    let hidden = timelines
        .iter()
        .map(|t| t.hidden_comm_fraction())
        .sum::<f64>()
        / timelines.len().max(1) as f64;
    let m = &cluster.last_measurements;
    let boundary: usize = m.boundary_bytes.iter().sum();
    let lets: usize = m.let_bytes_sent.iter().sum();
    let exchange: usize = m.exchange_bytes.iter().sum();
    let total_bytes = boundary + lets + exchange + m.retransmit_bytes;

    let mut j = String::from("{\n");
    j.push_str("  \"schema\": \"bonsai-step-v1\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"particles\": {n}, \"ranks\": {p}, \"seed\": {seed}}},\n"
    ));
    j.push_str("  \"phase_seconds\": {");
    let pt = b.phase_times();
    let rows: Vec<String> = pt
        .iter()
        .map(|(name, secs)| format!("\"{name}\": {}", fmt_f64(secs)))
        .collect();
    j.push_str(&rows.join(", "));
    j.push_str("},\n");
    j.push_str(&format!(
        "  \"total_seconds\": {},\n",
        fmt_f64(b.total())
    ));
    j.push_str(&format!(
        "  \"gpu_gflops\": {},\n",
        fmt_f64(b.gpu_tflops() * 1e3)
    ));
    j.push_str(&format!(
        "  \"application_gflops\": {},\n",
        fmt_f64(b.application_tflops() * 1e3)
    ));
    j.push_str(&format!(
        "  \"hidden_comm_fraction\": {},\n",
        fmt_f64(hidden)
    ));
    j.push_str(&format!(
        "  \"bytes_moved\": {{\"boundary\": {boundary}, \"let\": {lets}, \"exchange\": {exchange}, \
         \"retransmit\": {}, \"total\": {total_bytes}}}\n",
        m.retransmit_bytes
    ));
    j.push_str("}\n");
    std::fs::write("BENCH_step.json", &j).expect("write BENCH_step.json");

    println!("{}", b.format_column("one step, fixed seed"));
    println!("{}", render_gantt(&timelines, 72));
    println!("hidden-comm fraction (mean over ranks): {hidden:.3}");
    println!(
        "wrote {}, {}, {} and BENCH_step.json",
        dir.join("trace_step.json").display(),
        dir.join("folded_step.txt").display(),
        dir.join("metrics_step.prom").display()
    );
    println!("open the trace at https://ui.perfetto.dev (Open trace file)");
}
