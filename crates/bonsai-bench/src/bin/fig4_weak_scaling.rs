//! Fig. 4 — weak-scaling performance on Piz Daint and Titan.
//!
//! Two parts:
//!
//! 1. **Model at paper scale** — the calibrated machine model sweeps GPU
//!    counts from 1 to 5200 (Piz Daint) and 1 to 18600 (Titan) at 13M
//!    particles/GPU, printing the three curves of Fig. 4 (GPU kernels,
//!    gravity, application, in Tflops) and the efficiency insets.
//! 2. **Measured at feasible scale** — the real cluster simulator runs the
//!    real distributed algorithm at small rank counts and prints the same
//!    quantities from measured interaction counts and byte volumes,
//!    demonstrating the flat weak-scaling *shape* directly.

use bonsai_bench::scaling::{run_sweep, scaling_json, SweepConfig};
use bonsai_bench::{arg_usize, out_dir};
use bonsai_ic::plummer_sphere;
use bonsai_obs::json::fmt_f64;
use bonsai_sim::{Cluster, ClusterConfig, ScalingModel};

/// Print one machine's model curves and return their JSON rows.
fn model_sweep(model: &ScalingModel, counts: &[u32]) -> String {
    println!(
        "\n=== {} — model at 13M particles/GPU ===",
        model.machine.name
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12} {:>8}",
        "GPUs", "GPU-kern TF", "gravity TF", "app TF", "linear TF", "eff %"
    );
    let single = model.predict(1, 13_000_000);
    let base_app = single.application_tflops();
    let mut rows = Vec::new();
    for &p in counts {
        let b = model.predict(p, 13_000_000);
        let flops = b.total_flops();
        let gpu_tf = flops / (b.gravity_local + b.gravity_lets) / 1e12;
        let gravity_tf = flops / (b.gravity_local + b.gravity_lets + b.non_hidden_comm) / 1e12;
        let app_tf = flops / b.total() / 1e12;
        let eff = app_tf / (p as f64 * base_app);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14.1} {:>12.1} {:>8.1}",
            p,
            gpu_tf,
            gravity_tf,
            app_tf,
            p as f64 * base_app,
            100.0 * eff
        );
        rows.push(format!(
            "      {{\"gpus\": {p}, \"gpu_tflops\": {}, \"gravity_tflops\": {}, \
             \"app_tflops\": {}, \"efficiency\": {}}}",
            fmt_f64(gpu_tf),
            fmt_f64(gravity_tf),
            fmt_f64(app_tf),
            fmt_f64(eff)
        ));
    }
    format!("[\n{}\n    ]", rows.join(",\n"))
}

fn main() {
    let daint = ScalingModel::piz_daint();
    let daint_json = model_sweep(&daint, &[1, 4, 16, 64, 256, 1024, 2048, 4096, 5200]);
    println!("paper: Piz Daint parallel efficiency never drops below 95%");

    let titan = ScalingModel::titan();
    let titan_json = model_sweep(&titan, &[1, 4, 16, 64, 256, 1024, 2048, 4096, 8192, 18600]);
    println!("paper: Titan ~90% to 8192 GPUs, 86% at 18600;");
    let b = titan.predict(18600, 13_000_000);
    println!(
        "paper headline: 33.49 Pflops GPU / 24.77 Pflops application; model: {:.2} / {:.2}",
        b.total_flops() / (b.gravity_local + b.gravity_lets) / 1e15,
        b.total_flops() / b.total() / 1e15
    );

    // Measured weak scaling with the real algorithm.
    let n_per = arg_usize("--n-per-rank", 4000);
    let max_ranks = arg_usize("--max-ranks", 8);
    println!("\n=== measured weak scaling (real distributed algorithm, {n_per} particles/rank) ===");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "ranks", "pp/part", "pc/part", "grav loc s", "grav LET s", "total sim s"
    );
    let mut p = 1usize;
    while p <= max_ranks {
        let ic = plummer_sphere(n_per * p, 7);
        let mut cluster = Cluster::new(ic, p, ClusterConfig::default());
        let b = cluster.step();
        println!(
            "{:>6} {:>10.0} {:>10.0} {:>12.4} {:>12.4} {:>14.4}",
            p,
            b.pp_per_particle,
            b.pc_per_particle,
            b.gravity_local,
            b.gravity_lets,
            b.total()
        );
        p *= 2;
    }
    println!("\nshape check: pc/particle grows ~logarithmically with rank count (remote");
    println!("subtrees arrive as LET cells), the same behaviour as Table II's interaction");
    println!("rows; at these tiny per-rank sizes pp also rises because nearby LET leaves");
    println!("ship raw particles — at 13M/rank that contribution is negligible (pp flat).");

    // Machine-readable record: the model curves above plus a measured sweep
    // produced by the same driver (and analysis reductions) as obs_scaling.
    let mut cfg = SweepConfig::default();
    cfg.weak_n_per_rank = n_per;
    cfg.strong_total = n_per * max_ranks;
    cfg.ranks = {
        let mut r = Vec::new();
        let mut p = 1usize;
        while p <= max_ranks {
            r.push(p);
            p *= 2;
        }
        r
    };
    let measured = scaling_json(&run_sweep(&cfg));
    let json = format!(
        "{{\n  \"schema\": \"bonsai-fig4-v1\",\n  \"model\": {{\n    \"piz_daint\": {daint_json},\n    \
         \"titan\": {titan_json}\n  }},\n  \"measured\": {}\n}}\n",
        measured.trim_end()
    );
    let path = out_dir().join("fig4_weak_scaling.json");
    std::fs::write(&path, &json).expect("write fig4_weak_scaling.json");
    println!("\nwrote {}", path.display());
}
