//! Chaos harness — seeded fault sweep over the distributed step.
//!
//! Runs the lock-step cluster under increasing message-fault rates (every
//! message-level kind enabled at once), then a crash drill with checkpoint
//! rollback, and prints a recovery-rate table: how many faults were
//! injected, what the recovery machinery did about them, and whether the
//! physics came out whole. Everything is seeded — rerunning with the same
//! `--seed` reproduces every fault and every recovery action exactly.
//!
//! ```text
//! cargo run --release -p bonsai-bench --bin chaos -- --particles 4000 --ranks 6 --steps 10
//! ```

use bonsai_bench::arg_usize;
use bonsai_ic::plummer_sphere;
use bonsai_net::{FaultKind, FaultLog, FaultPlan, RecoveryAction};
use bonsai_sim::{Cluster, ClusterConfig, RecoveryConfig};

/// Outcome of one chaos run.
struct Outcome {
    label: String,
    log: FaultLog,
    survived: bool,
    conserved: bool,
    finite: bool,
    degraded_lets: usize,
    retransmit_bytes: usize,
}

fn run_once(
    label: String,
    n: usize,
    ranks: usize,
    steps: usize,
    seed: u64,
    plan: FaultPlan,
    recovery: Option<RecoveryConfig>,
) -> Outcome {
    let ic = plummer_sphere(n, seed);
    let result = std::panic::catch_unwind(|| {
        let mut c = Cluster::with_faults(ic, ranks, ClusterConfig::default(), plan, recovery);
        let mut degraded = 0;
        let mut retx = 0;
        for _ in 0..steps {
            c.step();
            degraded += c.last_measurements.degraded_lets;
            retx += c.last_measurements.retransmit_bytes;
        }
        let conserved = c.total_particles() == n;
        let finite = c.accelerations_by_id().values().all(|a| a.is_finite());
        (c.fault_log(), conserved, finite, degraded, retx)
    });
    match result {
        Ok((log, conserved, finite, degraded_lets, retransmit_bytes)) => Outcome {
            label,
            log,
            survived: true,
            conserved,
            finite,
            degraded_lets,
            retransmit_bytes,
        },
        Err(_) => Outcome {
            label,
            log: FaultLog::default(),
            survived: false,
            conserved: false,
            finite: false,
            degraded_lets: 0,
            retransmit_bytes: 0,
        },
    }
}

fn main() {
    let n = arg_usize("--particles", 4000);
    let ranks = arg_usize("--ranks", 6);
    let steps = arg_usize("--steps", 10);
    let seed = arg_usize("--seed", 1994) as u64;

    println!("chaos sweep — {n} particles, {ranks} ranks, {steps} steps, seed {seed}\n");

    let mut outcomes = Vec::new();
    for rate in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let mut plan = FaultPlan::new(seed);
        for kind in FaultKind::MESSAGE_KINDS {
            plan = plan.with_rate(kind, rate);
        }
        let dir = std::env::temp_dir().join(format!("bonsai_chaos_bin_{seed}_{rate}"));
        let _ = std::fs::remove_dir_all(&dir);
        outcomes.push(run_once(
            format!("rate {rate:.2}"),
            n,
            ranks,
            steps,
            seed,
            plan,
            Some(RecoveryConfig { dir, every: 2 }),
        ));
    }

    // Crash drill: kill one rank mid-run and recover from checkpoint.
    let crash_epoch = (steps as u64 / 2).max(2);
    let dir = std::env::temp_dir().join(format!("bonsai_chaos_bin_{seed}_crash"));
    let _ = std::fs::remove_dir_all(&dir);
    outcomes.push(run_once(
        "crash drill".to_string(),
        n,
        ranks,
        steps,
        seed,
        FaultPlan::new(seed)
            .with_rate(FaultKind::Drop, 0.02)
            .with_stall(1 % ranks, crash_epoch)
            .with_crash(ranks - 1, crash_epoch + 2),
        Some(RecoveryConfig { dir, every: 2 }),
    ));

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}  {}",
        "run", "injected", "retx", "discard", "fallbk", "restore", "retx-B", "recovery", "physics"
    );
    for o in &outcomes {
        let injected = o.log.injected.len();
        let retx = o.log.recoveries_of(RecoveryAction::Retransmit);
        let discard = o.log.recoveries_of(RecoveryAction::DiscardCorrupt)
            + o.log.recoveries_of(RecoveryAction::DiscardDuplicate)
            + o.log.recoveries_of(RecoveryAction::DiscardStale);
        let fallback = o.log.recoveries_of(RecoveryAction::BoundaryFallback);
        let restore = o.log.recoveries_of(RecoveryAction::RestoreCheckpoint);
        // A run "recovered" when it survived every injected fault with the
        // physics intact: all particles present, all forces finite.
        let recovered = o.survived && o.conserved && o.finite;
        let physics = if !o.survived {
            "DIED"
        } else if recovered {
            "conserved, finite"
        } else {
            "CORRUPTED"
        };
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}%  {}",
            o.label,
            injected,
            retx,
            discard,
            fallback,
            restore,
            o.retransmit_bytes,
            if recovered { 100 } else { 0 },
            physics
        );
        if o.degraded_lets > 0 {
            println!("{:<12} ({} degraded LET walks)", "", o.degraded_lets);
        }
    }

    if let Some(heavy) = outcomes
        .iter()
        .rev()
        .find(|o| o.survived && o.label.starts_with("rate") && !o.log.injected.is_empty())
    {
        println!("\nper-kind injection counts ({}):", heavy.label);
        for kind in FaultKind::MESSAGE_KINDS {
            println!("  {:<10} {}", kind.to_string(), heavy.log.injected_of(kind));
        }
    }
    println!("\nrerun with the same --seed to reproduce this table exactly.");
}
