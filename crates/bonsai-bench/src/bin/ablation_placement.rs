//! Ablation: SFC-aware rank placement (§VII).
//!
//! The paper proposes placing MPI ranks so that neighbours in particle
//! space sit on physically adjacent nodes (NVLink within a node, few torus
//! hops across nodes). We quantify the win on Titan's Gemini torus: mean
//! hop count of the ~40-neighbour LET exchange under the scheduler's
//! row-major order versus a Hilbert walk of the torus, and the implied
//! change in LET latency cost.

use bonsai_net::{NetworkModel, Placement, PlacementStrategy, TITAN};

fn main() {
    println!("Ablation: rank placement on Titan's 3D torus (Gemini, 25x16x24)\n");
    let net = NetworkModel::new(TITAN);
    println!(
        "{:>7} {:>16} {:>16} {:>10} {:>20}",
        "ranks", "row-major hops", "hilbert hops", "ratio", "LET latency saved"
    );
    for p in [256usize, 1024, 4096, 16384, 18600] {
        let rm = Placement::new(&TITAN.topology, p, PlacementStrategy::RowMajor);
        let hw = Placement::new(&TITAN.topology, p, PlacementStrategy::HilbertWalk);
        let (a, b) = (rm.mean_neighbor_hops(20), hw.mean_neighbor_hops(20));
        // Latency component of 40 LET messages scales with hops.
        let lat_per_hop = TITAN.latency_us * 1e-6 / 3.0;
        let saved = 40.0 * lat_per_hop * (a - b);
        println!(
            "{:>7} {:>16.2} {:>16.2} {:>10.2} {:>17.1} us",
            p,
            a,
            b,
            a / b.max(1e-9),
            saved * 1e6
        );
    }
    println!(
        "\nbaseline uniform-traffic mean hops on this torus: {:.1}",
        TITAN.topology.mean_hops()
    );
    let _ = net;
    println!("\nSFC placement keeps LET partners a couple of hops away instead of");
    println!("O(torus diameter), shrinking the latency share of the non-hidden");
    println!("communication residue — the §VII 'careful placement of MPI ranks' claim.");
}
