//! Ablation: hiding LET communication behind GPU computation.
//!
//! §III-B2 splits each MPI process into communication/driver/compute thread
//! groups precisely so LET traffic streams while the GPU grinds through the
//! local tree. This study compares, at paper scale, the step time with
//! overlap (the paper's design: only the non-hidden residue is paid) versus
//! a bulk-synchronous variant where all LET communication is exposed on the
//! critical path.

use bonsai_net::NetworkModel;
use bonsai_sim::ScalingModel;

fn main() {
    println!("Ablation: communication overlap at 13M particles/GPU (model)\n");
    for model in [ScalingModel::titan(), ScalingModel::piz_daint()] {
        let net = NetworkModel::new(model.machine);
        println!("=== {} ===", model.machine.name);
        println!(
            "{:>7} {:>14} {:>14} {:>14} {:>10}",
            "GPUs", "overlap s", "no-overlap s", "slowdown", "eff loss"
        );
        for p in [64u32, 256, 1024, 4096, 18600] {
            if model.machine.name == "Piz Daint" && p > 5200 {
                continue;
            }
            let b = model.predict(p, 13_000_000);
            let with_overlap = b.total();
            // Exposed variant: the work the paper hides inside the gravity
            // window lands on the critical path instead — the CPU
            // construction of ~40 dedicated LETs over the 13M-particle tree
            // (~1 s on the Xeon, slower on the Opteron; this is what the
            // compute threads of §III-B2 are busy with) plus the wire time
            // of the LET exchange and the boundary allgather.
            let cpu_let_build = 1.0 / model.machine.cpu_let_rate;
            let let_comm = net.let_exchange_time(40.min(p - 1), 2_000_000)
                + net.allgatherv_time(p, 70 * 176);
            let without = with_overlap - b.non_hidden_comm + cpu_let_build + let_comm;
            println!(
                "{:>7} {:>14.2} {:>14.2} {:>13.1}% {:>9.1}%",
                p,
                with_overlap,
                without,
                100.0 * (without / with_overlap - 1.0),
                100.0 * (1.0 - with_overlap / without)
            );
        }
        println!();
    }
    println!("overlap buys back the entire LET-exchange time minus the small");
    println!("non-hidden residue — the mechanism behind >95% weak-scaling efficiency.");
}
