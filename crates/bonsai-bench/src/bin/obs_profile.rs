//! Roofline-profiler bench: a scaled Milky Way run reduced to the roofline
//! placement of every GPU kernel, the signed cost-model residuals against
//! the Table II analytic model, and a folded self/total span profile.
//! Artifacts, byte-deterministic per seed:
//!
//! * `BENCH_profile.json` (repo root) — schema `bonsai-profile-v1`:
//!   per-kernel × per-rank roofline rows (attained Gflop/s, binding
//!   ceiling, attained fraction), per-term residuals and the folded
//!   profile.
//! * `out/profile_report.html` — self-contained zero-dependency report:
//!   log-log roofline scatter (inline SVG), residual table and span
//!   profile.
//!
//! `--sandbag-kernel` multiplies the gravity kernels' seconds by 1.5
//! before the reduction — the CI self-test proving `obs_diff` catches a
//! slowed kernel.

use bonsai_bench::profile::{profile_json, render_html, run, ProfileBenchConfig};
use bonsai_bench::{arg_usize, has_flag, out_dir};

fn main() {
    let d = ProfileBenchConfig::default();
    let cfg = ProfileBenchConfig {
        n: arg_usize("--n", d.n),
        ranks: arg_usize("--ranks", d.ranks),
        steps: arg_usize("--steps", d.steps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        sandbag: if has_flag("--sandbag-kernel") { 1.5 } else { d.sandbag },
    };
    println!(
        "roofline profiler: {} particles over {} ranks, {} steps{}",
        cfg.n,
        cfg.ranks,
        cfg.steps,
        if cfg.sandbag != 1.0 {
            format!(" (gravity sandbagged x{})", cfg.sandbag)
        } else {
            String::new()
        }
    );
    let r = run(cfg);

    println!(
        "  step total {:.4} ms, {} roofline points, telescoping error {:.3} ns",
        r.breakdown.total() * 1e3,
        r.roofline.len(),
        r.telescoping_error_s * 1e9
    );
    for p in &r.roofline {
        println!(
            "  {:<10} rank {}: {:>8.1} Gflop/s, {:>9} bound, {:>5.1}% of ceiling",
            p.kernel,
            p.rank,
            p.attained_gflops(),
            p.binding_ceiling(),
            100.0 * p.attained_fraction()
        );
    }
    let worst = r
        .residuals
        .iter()
        .max_by(|a, b| {
            a.residual_s()
                .abs()
                .partial_cmp(&b.residual_s().abs())
                .unwrap()
        })
        .expect("twelve residual terms");
    println!(
        "  largest residual: {} {:+.4} ms ({:+.1}%)",
        worst.term,
        worst.residual_s() * 1e3,
        100.0 * worst.relative()
    );

    std::fs::write("BENCH_profile.json", profile_json(&r)).expect("write BENCH_profile.json");
    let html_path = out_dir().join("profile_report.html");
    std::fs::write(&html_path, render_html(&r)).expect("write report");
    println!("wrote BENCH_profile.json and {}", html_path.display());
}
