//! Ablation: walk group size (the warp-coherence trade-off).
//!
//! Bonsai walks the tree once per *group* of adjacent particles, sharing a
//! single interaction list across a GPU warp (§III-A). Bigger groups walk
//! the tree less often but their looser bounding boxes force more cell
//! openings and pull the MAC frontier closer — extra interactions for every
//! member. This sweep measures that trade-off with the real walk, charging
//! the device model for both the interactions and the traversal.

use bonsai_bench::{arg_usize, milky_way_snapshot};
use bonsai_gpu::GpuModel;
use bonsai_sfc::Curve;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::walk::{self, WalkParams};

fn main() {
    let n = arg_usize("--n", 40_000);
    println!("Ablation: walk group size ({n}-particle Milky Way snapshot, theta = 0.4)\n");
    let snapshot = milky_way_snapshot(n, 6);
    let gpu = GpuModel::k20x_tuned();
    let warp_rate = 14.0 * 192.0 * 0.732e9 / 32.0;
    let mac_cycles = 20.0;

    println!(
        "{:>7} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "group", "groups", "pp/part", "pc/part", "visits", "K20X time s"
    );
    let mut best = (0usize, f64::INFINITY);
    for group_size in [8usize, 16, 32, 64, 128, 256] {
        let params = TreeParams {
            nleaf: 16,
            curve: Curve::Hilbert,
            group_size,
        };
        let tree = Tree::build(snapshot.clone(), params);
        let (_, stats) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01));
        let (pp, pc) = stats.counts.per_particle(n);
        let t = gpu.gravity_time(stats.counts)
            + stats.nodes_visited as f64 * mac_cycles / warp_rate;
        if t < best.1 {
            best = (group_size, t);
        }
        println!(
            "{:>7} {:>8} {:>12.0} {:>12.0} {:>12} {:>14.5}",
            group_size,
            tree.groups.len(),
            pp,
            pc,
            stats.nodes_visited,
            t
        );
    }
    println!("\nfastest: group ≈ {} — small groups repeat the traversal per warp,", best.0);
    println!("large groups blow up the shared interaction list (looser group MAC).");
    println!("Bonsai's production choice is a warp-to-two-warps worth of particles.");
}
