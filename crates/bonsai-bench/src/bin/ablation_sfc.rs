//! Ablation: Hilbert vs Morton space-filling curve.
//!
//! §III-B chooses the Peano–Hilbert curve because contiguous key ranges
//! have compact boundaries, shrinking the boundary trees and LETs that
//! cross the interconnect. This study quantifies that on real decomposed
//! clusters: curve locality, domain-surface cells, and the actual
//! serialized boundary/LET byte volumes of the cluster simulator under both
//! curves.

use bonsai_bench::arg_usize;
use bonsai_ic::plummer_sphere;
use bonsai_sfc::locality::{mean_step, range_surface_cells};
use bonsai_sfc::{Curve, KeyMap};
use bonsai_sim::{Cluster, ClusterConfig};
use bonsai_tree::build::TreeParams;

fn cluster_bytes(curve: Curve, n: usize, p: usize) -> (usize, usize, usize) {
    let ic = plummer_sphere(n, 11);
    let cfg = ClusterConfig {
        tree: TreeParams {
            curve,
            ..Default::default()
        },
        ..Default::default()
    };
    let c = Cluster::new(ic, p, cfg);
    let m = &c.last_measurements;
    (
        m.boundary_bytes.iter().sum(),
        m.let_bytes_sent.iter().sum(),
        m.let_neighbors.iter().sum(),
    )
}

fn main() {
    let n = arg_usize("--n", 20_000);
    let p = arg_usize("--ranks", 10);
    println!("Ablation: Hilbert vs Morton SFC\n");

    println!("curve locality (mean L1 lattice step between consecutive keys, 5-bit lattice):");
    println!("  Hilbert: {:.3}   (unit steps by construction)", mean_step(Curve::Hilbert, 5, 0, 30_000));
    println!("  Morton:  {:.3}", mean_step(Curve::Morton, 5, 0, 30_000));

    // Domain-surface proxy on uniform points (5 domains: non-power-of-8 so
    // Morton cannot hide behind octant-aligned cuts).
    let mut rng = bonsai_util::rng::Xoshiro256::seed_from(5);
    let pts: Vec<bonsai_util::Vec3> = (0..40_000)
        .map(|_| bonsai_util::Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()))
        .collect();
    let bounds = bonsai_util::Aabb::from_points(&pts);
    let sh: usize = range_surface_cells(&KeyMap::new(&bounds, Curve::Hilbert), &pts, 5)
        .iter()
        .sum();
    let sm: usize = range_surface_cells(&KeyMap::new(&bounds, Curve::Morton), &pts, 5)
        .iter()
        .sum();
    println!("\ndomain-surface cells (40k uniform points, 5 domains):");
    println!("  Hilbert: {sh}   Morton: {sm}   ratio: {:.2}", sm as f64 / sh as f64);

    println!("\nreal cluster measurements ({n} particles, {p} ranks):");
    println!(
        "{:>9} {:>16} {:>16} {:>14}",
        "curve", "boundary bytes", "LET bytes", "LET pairs"
    );
    let (bh, lh, nh) = cluster_bytes(Curve::Hilbert, n, p);
    let (bm, lm, nm) = cluster_bytes(Curve::Morton, n, p);
    println!("{:>9} {:>16} {:>16} {:>14}", "Hilbert", bh, lh, nh);
    println!("{:>9} {:>16} {:>16} {:>14}", "Morton", bm, lm, nm);
    println!(
        "\ncommunication volume ratio (Morton/Hilbert): boundaries {:.2}x, LETs {:.2}x",
        bm as f64 / bh as f64,
        lm as f64 / lh as f64
    );
}
