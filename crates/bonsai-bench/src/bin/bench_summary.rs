//! Consolidated bench summary: one deterministic line per run of the CI
//! line, mapping every `BENCH_*.json` artifact kind at the repo root to a
//! headline metric — the longitudinal hook for tracking bench trajectories
//! across commits (`out/bench_summary.json`).
//!
//! The summary is intentionally shallow: one number per artifact, chosen
//! as the metric a regression in that subsystem would move first. Deeper
//! comparisons stay with `obs_diff`.

use bonsai_bench::artifact::{load_artifact, BenchArtifact};
use bonsai_bench::out_dir;
use bonsai_obs::json::fmt_f64;

/// The headline metric of one artifact kind: `(metric_name, value)`.
fn headline(a: &BenchArtifact) -> Option<(&'static str, f64)> {
    let v = &a.value;
    let num = |path: &[&str]| -> Option<f64> {
        let mut cur = v;
        for k in path {
            cur = cur.get(k)?;
        }
        cur.as_f64()
    };
    match a.kind.as_str() {
        "step" => Some(("gpu_gflops", num(&["gpu_gflops"])?)),
        "longrun" => Some(("final.energy_drift", num(&["final", "energy_drift"])?)),
        "membership" => Some((
            "final.lost_particles",
            num(&["final", "lost_particles"])?,
        )),
        // 1 ⇔ every lane count hashed to the same force bits; a
        // nondeterminism regression moves this before anything else.
        "parallel" => Some(("distinct_digests", num(&["distinct_digests"])?)),
        "profile" => Some(("step_total_s", num(&["step_total_s"])?)),
        "flows" => Some(("wait_total_s", num(&["wait_total_s"])?)),
        "scaling" => {
            // Weak-scaling efficiency at the largest measured rank count.
            let eff = v.get("weak")?.get("efficiency")?.as_arr()?;
            Some(("weak.efficiency.last", eff.last()?.as_f64()?))
        }
        "accuracy" => Some((
            "differential_cases",
            v.get("differential")?.as_arr()?.len() as f64,
        )),
        "stream" => Some((
            "overhead.max_fraction",
            num(&["overhead", "max_fraction"])?,
        )),
        _ => None,
    }
}

fn main() {
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut failures = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(".")
        .expect("read repo root")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .map(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("BENCH_") && n.ends_with(".json")
                })
                .unwrap_or(false)
        })
        .collect();
    entries.sort();
    for path in entries {
        match load_artifact(&path) {
            Ok(a) => match headline(&a) {
                Some((metric, value)) => {
                    println!("  {:<12} {metric} = {}", a.kind, fmt_f64(value));
                    rows.push((
                        a.kind.clone(),
                        format!(
                            "\"{}\": {{\"schema\": \"{}\", \"metric\": \"{metric}\", \"value\": {}}}",
                            a.kind,
                            a.schema,
                            fmt_f64(value)
                        ),
                    ));
                }
                None => {
                    failures += 1;
                    eprintln!("{}: no headline rule for kind `{}`", path.display(), a.kind);
                }
            },
            Err(e) => {
                failures += 1;
                eprintln!("{e}");
            }
        }
    }
    rows.sort();
    let json = format!(
        "{{\"schema\": \"bonsai-bench-summary-v1\", \"artifacts\": {{{}}}}}\n",
        rows.iter()
            .map(|(_, r)| r.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let path = out_dir().join("bench_summary.json");
    std::fs::write(&path, &json).expect("write bench_summary.json");
    println!("wrote {} ({} artifacts)", path.display(), rows.len());
    if failures > 0 {
        eprintln!("{failures} artifact(s) failed to summarize");
        std::process::exit(1);
    }
}

// The headline table lives in the bin (it is presentation, not library
// policy), so its coverage test lives here too.
#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_bench::artifact::parse_artifact;

    #[test]
    fn every_canonical_kind_has_a_headline_rule() {
        for (kind, doc) in [
            ("step", r#"{"schema": "bonsai-step-v1", "gpu_gflops": 5.0}"#.to_string()),
            (
                "longrun",
                r#"{"schema": "bonsai-longrun-v1", "final": {"energy_drift": 0.01}}"#.to_string(),
            ),
            (
                "membership",
                r#"{"schema": "bonsai-membership-v1", "final": {"lost_particles": 0}}"#.to_string(),
            ),
            (
                "parallel",
                r#"{"schema": "bonsai-parallel-v1", "distinct_digests": 1}"#.to_string(),
            ),
            (
                "profile",
                r#"{"schema": "bonsai-profile-v1", "step_total_s": 1.0}"#.to_string(),
            ),
            (
                "flows",
                r#"{"schema": "bonsai-flows-v1", "wait_total_s": 0.5}"#.to_string(),
            ),
            (
                "scaling",
                r#"{"schema": "bonsai-scaling-v1", "weak": {"efficiency": [1.0, 0.8]}}"#.to_string(),
            ),
            (
                "accuracy",
                r#"{"schema": "bonsai-accuracy-v1", "differential": [{"x": 1}]}"#.to_string(),
            ),
            (
                "stream",
                r#"{"schema": "bonsai-stream-v1", "overhead": {"max_fraction": 0.002}}"#.to_string(),
            ),
        ] {
            let a = parse_artifact(&doc).unwrap();
            let (metric, value) = headline(&a)
                .unwrap_or_else(|| panic!("kind {kind} has no headline"));
            assert!(!metric.is_empty());
            assert!(value.is_finite());
        }
    }

    #[test]
    fn unknown_kind_yields_none() {
        let a = parse_artifact(r#"{"schema": "bonsai-mystery-v1"}"#).unwrap();
        assert!(headline(&a).is_none());
    }
}
