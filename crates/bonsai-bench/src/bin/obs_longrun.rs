//! Long-run monitoring bench: a ≥500-step scaled Milky Way run with the
//! health rules, time-series store and flight recorder live, plus a seeded
//! mid-run fault storm so the full alert lifecycle (open → incident freeze
//! → close) executes. Artifacts, all byte-deterministic per seed:
//!
//! * `BENCH_longrun.json` (repo root) — schema `bonsai-longrun-v1`:
//!   downsampled series of every headline metric, the alert log, incident
//!   summaries and the final energy drift.
//! * `out/longrun_report.html` — self-contained zero-dependency dashboard:
//!   inline-SVG sparklines with alert-interval annotations, incident
//!   table, alert log, whole-run rollups.
//! * `out/longrun_incident.json` — Chrome trace of the first incident's
//!   flight-recorder window (open in `ui.perfetto.dev`).
//! * `out/longrun_incident.txt` — the matching structured incident report.

use bonsai_bench::longrun::{run, longrun_json, render_html, LongRunBenchConfig};
use bonsai_bench::{arg_usize, out_dir};

fn main() {
    let d = LongRunBenchConfig::default();
    let cfg = LongRunBenchConfig {
        n: arg_usize("--n", d.n),
        ranks: arg_usize("--ranks", d.ranks),
        steps: arg_usize("--steps", d.steps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        ..d
    };
    println!(
        "long-run monitor: {} particles over {} ranks, {} steps, drop storm in epochs {}..{}",
        cfg.n, cfg.ranks, cfg.steps, cfg.storm_epochs.0, cfg.storm_epochs.1
    );
    let r = run(cfg);

    println!(
        "  t = {:.3} Gyr, energy drift {:.2e}, {} alert events, {} incidents",
        r.time_gyr,
        r.energy_drift,
        r.monitor.health().events().len(),
        r.monitor.incidents().len()
    );
    print!("{}", r.monitor.health().render_log());

    std::fs::write("BENCH_longrun.json", longrun_json(&r)).expect("write BENCH_longrun.json");
    let html_path = out_dir().join("longrun_report.html");
    std::fs::write(&html_path, render_html(&r)).expect("write report");
    let mut wrote = format!("wrote BENCH_longrun.json and {}", html_path.display());
    if let Some(inc) = r.monitor.incidents().first() {
        let trace_path = out_dir().join("longrun_incident.json");
        let report_path = out_dir().join("longrun_incident.txt");
        std::fs::write(&trace_path, inc.trace_json()).expect("write incident trace");
        std::fs::write(&report_path, inc.report()).expect("write incident report");
        wrote.push_str(&format!(
            ", {} and {}",
            trace_path.display(),
            report_path.display()
        ));
    }
    println!("{wrote}");
}
