//! Fig. 1 — performance of the gravitational force kernel.
//!
//! Reproduces the five bars: tree-code on C2075 (Fermi kernel), K20X
//! running the unmodified Fermi kernel ("original"), K20X with the
//! `__shfl`-tuned kernel, plus the direct N-body kernel on both devices.
//!
//! The interaction mix driving the tree-code bars is **measured**, not
//! assumed: a real Barnes–Hut walk at θ = 0.4 over a scaled Milky Way
//! snapshot produces the p-p/p-c counts, which the device models convert to
//! achieved Gflops.

use bonsai_bench::{arg_usize, milky_way_snapshot, print_comparison, Compared};
use bonsai_gpu::kernel::paper_mix;
use bonsai_gpu::{KernelModel, KernelVariant, C2075, K20X};
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::InteractionCounts;

fn main() {
    let n = arg_usize("--n", 100_000);
    println!("Fig. 1 reproduction — force kernel performance");
    println!("workload: {n}-particle Milky Way snapshot, theta = 0.4, NLEAF = 16\n");

    // Measure the real interaction mix.
    let snapshot = milky_way_snapshot(n, 1);
    let tree = Tree::build(snapshot, TreeParams::default());
    let (_, stats) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.001));
    let measured = stats.counts;
    let (pp, pc) = measured.per_particle(n);
    println!("measured interaction mix: {pp:.0} p-p and {pc:.0} p-c per particle");
    println!("(paper production mix at 13M/GPU: ~1716 p-p, ~6765 p-c)\n");

    let tree_gflops = |device, variant| -> f64 {
        KernelModel::new(device, variant).achieved_gflops(measured)
    };
    // The paper's bars used its production mix; report both.
    let paper_mix_counts = paper_mix(1_000_000);
    let tree_gflops_paper_mix =
        |device, variant| -> f64 { KernelModel::new(device, variant).achieved_gflops(paper_mix_counts) };
    let direct = |device| -> f64 {
        KernelModel::new(device, KernelVariant::Direct)
            .achieved_gflops(InteractionCounts { pp: 1_000_000, pc: 0 })
    };

    let rows = vec![
        Compared::new(
            "tree-code C2075 (Fermi kernel)",
            460.0,
            tree_gflops_paper_mix(C2075, KernelVariant::TreeFermi),
            "GF",
        ),
        Compared::new(
            "tree-code K20X/original",
            829.0,
            tree_gflops_paper_mix(K20X, KernelVariant::TreeKeplerOriginal),
            "GF",
        ),
        Compared::new(
            "tree-code K20X/tuned (__shfl)",
            1768.0,
            tree_gflops_paper_mix(K20X, KernelVariant::TreeKeplerTuned),
            "GF",
        ),
        Compared::new("direct N-body C2075", 638.0, direct(C2075), "GF"),
        Compared::new("direct N-body K20X", 1746.0, direct(K20X), "GF"),
    ];
    print_comparison("Fig. 1 bars (paper production mix)", &rows);

    println!("\nSame kernels at the *measured* local mix ({n} particles):");
    for (label, device, variant) in [
        ("tree C2075", C2075, KernelVariant::TreeFermi),
        ("tree K20X/original", K20X, KernelVariant::TreeKeplerOriginal),
        ("tree K20X/tuned", K20X, KernelVariant::TreeKeplerTuned),
    ] {
        println!("  {label:<22} {:>8.0} Gflops", tree_gflops(device, variant));
    }

    // Shape claims from the caption.
    let tuned = tree_gflops_paper_mix(K20X, KernelVariant::TreeKeplerTuned);
    let orig = tree_gflops_paper_mix(K20X, KernelVariant::TreeKeplerOriginal);
    let fermi = tree_gflops_paper_mix(C2075, KernelVariant::TreeFermi);
    println!("\ncaption checks: tuned/original = {:.2}x (paper: 2x),", tuned / orig);
    println!("                tuned/C2075    = {:.2}x (paper: 4x)", tuned / fermi);
}
