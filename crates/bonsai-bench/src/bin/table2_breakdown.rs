//! Table II — time breakdown for Titan and Piz Daint.
//!
//! Regenerates every column of the paper's Table II from the calibrated
//! model (weak scaling at 13M particles/GPU, strong scaling at 6.5M), and
//! prints the paper's reported values next to ours with deviations.

use bonsai_bench::{print_comparison, Compared};
use bonsai_sim::ScalingModel;

struct PaperColumn {
    machine: &'static str,
    gpus: u32,
    n_per: u64,
    sort: f64,
    domain: f64,
    tree: f64,
    props: f64,
    grav_local: f64,
    grav_lets: f64,
    non_hidden: f64,
    other: f64,
    total: f64,
    pp: f64,
    pc: f64,
    gpu_tflops: f64,
    app_tflops: f64,
}

const PAPER: &[PaperColumn] = &[
    PaperColumn { machine: "single", gpus: 1, n_per: 13_000_000, sort: 0.10, domain: 0.0, tree: 0.11, props: 0.03, grav_local: 2.45, grav_lets: 0.0, non_hidden: 0.0, other: 0.10, total: 2.79, pp: 1745.0, pc: 4529.0, gpu_tflops: 1.77, app_tflops: 1.55 },
    PaperColumn { machine: "Titan", gpus: 1024, n_per: 13_000_000, sort: 0.10, domain: 0.20, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 1.78, non_hidden: 0.09, other: 0.27, total: 4.02, pp: 1715.0, pc: 6287.0, gpu_tflops: 1844.6, app_tflops: 1484.6 },
    PaperColumn { machine: "Titan", gpus: 2048, n_per: 13_000_000, sort: 0.10, domain: 0.20, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 1.89, non_hidden: 0.10, other: 0.28, total: 4.15, pp: 1716.0, pc: 6527.0, gpu_tflops: 3693.7, app_tflops: 2971.8 },
    PaperColumn { machine: "Titan", gpus: 4096, n_per: 13_000_000, sort: 0.10, domain: 0.20, tree: 0.10, props: 0.036, grav_local: 1.45, grav_lets: 2.00, non_hidden: 0.14, other: 0.40, total: 4.41, pp: 1718.0, pc: 6765.0, gpu_tflops: 7396.8, app_tflops: 5784.9 },
    PaperColumn { machine: "Titan", gpus: 18600, n_per: 13_000_000, sort: 0.13, domain: 0.30, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 2.09, non_hidden: 0.22, other: 0.45, total: 4.77, pp: 1716.0, pc: 6920.0, gpu_tflops: 33490.0, app_tflops: 24773.0 },
    PaperColumn { machine: "Titan", gpus: 8192, n_per: 6_500_000, sort: 0.06, domain: 0.10, tree: 0.05, props: 0.016, grav_local: 0.68, grav_lets: 1.13, non_hidden: 0.25, other: 0.31, total: 2.65, pp: 1716.0, pc: 7096.0, gpu_tflops: 14714.0, app_tflops: 10051.0 },
    PaperColumn { machine: "Piz Daint", gpus: 1024, n_per: 13_000_000, sort: 0.10, domain: 0.10, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 1.79, non_hidden: 0.09, other: 0.22, total: 3.84, pp: 1716.0, pc: 6290.0, gpu_tflops: 1844.7, app_tflops: 1551.9 },
    PaperColumn { machine: "Piz Daint", gpus: 2048, n_per: 13_000_000, sort: 0.10, domain: 0.10, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 1.89, non_hidden: 0.06, other: 0.21, total: 3.94, pp: 1716.0, pc: 6515.0, gpu_tflops: 3693.9, app_tflops: 3129.9 },
    PaperColumn { machine: "Piz Daint", gpus: 4096, n_per: 13_000_000, sort: 0.10, domain: 0.10, tree: 0.10, props: 0.03, grav_local: 1.45, grav_lets: 2.02, non_hidden: 0.07, other: 0.28, total: 4.15, pp: 1718.0, pc: 6810.0, gpu_tflops: 7396.9, app_tflops: 6180.7 },
    PaperColumn { machine: "Piz Daint", gpus: 4096, n_per: 6_500_000, sort: 0.05, domain: 0.07, tree: 0.05, props: 0.016, grav_local: 0.68, grav_lets: 1.01, non_hidden: 0.07, other: 0.15, total: 2.10, pp: 1714.0, pc: 6616.0, gpu_tflops: 7383.5, app_tflops: 5947.9 },
];

fn main() {
    println!("Table II reproduction — per-step time breakdown\n");
    for col in PAPER {
        let model = if col.machine == "Piz Daint" {
            ScalingModel::piz_daint()
        } else {
            ScalingModel::titan()
        };
        let b = model.predict(col.gpus, col.n_per);
        let label = format!(
            "{} — {} GPUs × {:.1}M",
            col.machine,
            col.gpus,
            col.n_per as f64 / 1e6
        );
        let rows = vec![
            Compared::new("Sorting SFC", col.sort, b.sort, "s"),
            Compared::new("Domain Update", col.domain, b.domain_update, "s"),
            Compared::new("Tree-construction", col.tree, b.tree_construction, "s"),
            Compared::new("Tree-properties", col.props, b.tree_properties, "s"),
            Compared::new("Compute gravity Local-tree", col.grav_local, b.gravity_local, "s"),
            Compared::new("Compute gravity LETs", col.grav_lets, b.gravity_lets, "s"),
            Compared::new("Non-hidden LET comm", col.non_hidden, b.non_hidden_comm, "s"),
            Compared::new("Unbalance + Other", col.other, b.other(), "s"),
            Compared::new("Total", col.total, b.total(), "s"),
            Compared::new("Particle-Particle /particle", col.pp, b.pp_per_particle, ""),
            Compared::new("Particle-Cell /particle", col.pc, b.pc_per_particle, ""),
            Compared::new("GPU performance", col.gpu_tflops, b.gpu_tflops(), "TF"),
            Compared::new("Application performance", col.app_tflops, b.application_tflops(), "TF"),
        ];
        print_comparison(&label, &rows);
    }
    println!("\nNote: model constants are calibrated against four anchor points of this");
    println!("table (see bonsai-sim::model docs); the remaining columns are predictions.");
}
