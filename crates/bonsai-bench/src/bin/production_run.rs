//! §VI-C in miniature: the 51-billion-particle production run, scaled down
//! and executed end to end on the distributed simulator.
//!
//! The paper's production configuration — the Milky Way model decomposed
//! over GPU ranks, evolved with per-step re-decomposition, boundary/LET
//! exchange, snapshots "for the dual purpose of restarting and detailed
//! analysis", and on-the-fly analysis — all running for real, with the
//! Table II style breakdown averaged over the run and a restart check at
//! the end.

use bonsai_analysis::bar::BarAnalysis;
use bonsai_bench::{arg_usize, out_dir};
use bonsai_ic::MilkyWayModel;
use bonsai_obs::health::Severity;
use bonsai_sim::checkpoint::{restore_cluster, write_checkpoint};
use bonsai_sim::{Cluster, ClusterConfig, LongRunConfig};
use bonsai_util::units;

fn main() {
    let n = arg_usize("--n", 24_000);
    let ranks = arg_usize("--ranks", 8);
    let steps = arg_usize("--steps", 40);
    println!("production run in miniature: {n} particles over {ranks} ranks, {steps} steps");

    let mw = MilkyWayModel::paper();
    let (nb, nd, _) = mw.component_counts(n);
    // Paper trick: every rank could generate its own slice on the fly; here
    // the IC is generated once (slice-determinism is covered by tests).
    let ic = mw.generate(n, 2014);

    let mut cfg = ClusterConfig::default();
    cfg.g = units::G;
    cfg.eps = 0.1 * (2.0e5_f64 / n as f64).powf(1.0 / 3.0);
    cfg.dt = units::myr_to_internal(3.0);
    let mut cluster = Cluster::new(ic, ranks, cfg.clone());
    // The rule engine replaces the old ad-hoc energy-drift print: the same
    // default rules the long-run bench evaluates, live inside every step.
    cluster.enable_longrun(LongRunConfig::default());

    let mut avg = bonsai_sim::StepBreakdown::default();
    let stellar = (0u64, (nb + nd) as u64);
    for s in 1..=steps {
        let b = cluster.step();
        // accumulate the averaged breakdown
        avg.sort += b.sort;
        avg.domain_update += b.domain_update;
        avg.tree_construction += b.tree_construction;
        avg.tree_properties += b.tree_properties;
        avg.gravity_local += b.gravity_local;
        avg.gravity_lets += b.gravity_lets;
        avg.non_hidden_comm += b.non_hidden_comm;
        avg.integration += b.integration;
        avg.load_balance += b.load_balance;
        avg.orchestration += b.orchestration;
        avg.unbalance += b.unbalance;
        avg.pp_per_particle += b.pp_per_particle;
        avg.pc_per_particle += b.pc_per_particle;
        avg.gpus = b.gpus;
        avg.particles_per_gpu = b.particles_per_gpu;
        if s % 10 == 0 {
            // on-the-fly analysis, as the production run did
            let snap = cluster.gather();
            let bar = BarAnalysis::measure(&snap, 4.0, Some(stellar));
            println!(
                "  step {s:>4}  t = {:.3} Gyr  A2 = {:.3}  imbalance = {:.3}  migrated = {} B",
                units::internal_to_gyr(cluster.time()),
                bar.a2,
                cluster.last_measurements.imbalance,
                cluster.last_measurements.exchange_bytes.iter().sum::<usize>()
            );
        }
    }
    let inv = 1.0 / steps as f64;
    avg.sort *= inv;
    avg.domain_update *= inv;
    avg.tree_construction *= inv;
    avg.tree_properties *= inv;
    avg.gravity_local *= inv;
    avg.gravity_lets *= inv;
    avg.non_hidden_comm *= inv;
    avg.integration *= inv;
    avg.load_balance *= inv;
    avg.orchestration *= inv;
    avg.unbalance *= inv;
    avg.pp_per_particle *= inv;
    avg.pc_per_particle *= inv;
    let e1 = cluster.energy_report();
    let lr = cluster.take_longrun().expect("long-run monitor was enabled");
    let drift = lr
        .series()
        .series("bonsai_energy_drift")
        .and_then(|s| s.last())
        .unwrap_or(0.0);
    println!(
        "\nhealth monitor: {} rules over {steps} steps — drift {:.2e} (T/|W| = {:.3})",
        lr.health().rules().len(),
        drift,
        e1.virial_ratio()
    );
    print!("{}", lr.health().render_log());
    println!("\naveraged per-step breakdown (simulated {} timings):", cfg.machine.name);
    print!("{}", avg.format_column("production miniature"));

    // Snapshot + restart check, as the production run relies on.
    let dir = out_dir().join("production_ckpt");
    write_checkpoint(&cluster, &dir).expect("checkpoint");
    let restored = restore_cluster(&dir, ranks, cfg).expect("restore");
    assert_eq!(restored.total_particles(), n);
    println!("\ncheckpoint written to {} and verified restorable", dir.display());
    println!("paper context: 51G particles, 4096 Piz Daint GPUs, 4.6 s/step at T = 3.8 Gyr");

    if lr.health().opened_count(Severity::Critical) > 0 {
        eprintln!("FAIL: a critical health alert opened during the run");
        std::process::exit(1);
    }
}
