//! Streaming-telemetry bench: a seeded faulty Milky Way run watched live
//! through the in-run telemetry bus by a fast and a deliberately slow
//! subscriber, with mid-run dashboard snapshots. Artifacts, all
//! byte-deterministic per seed:
//!
//! * `BENCH_stream.json` (repo root) — schema `bonsai-stream-v1`: bus
//!   publish/byte counts, per-subscriber drop/lag accounting, the
//!   self-metered observability-overhead breakdown, and the gate verdict.
//! * `out/stream_snapshot_NNNN.html` — the in-run dashboard frozen at each
//!   configured step (zero-dependency, rendered purely from the frames the
//!   fast subscriber received).
//! * `out/stream_report.html` — the final snapshot.
//!
//! Exits nonzero when the gate fails: a lost must-deliver frame, an
//! unbalanced subscriber ledger, or an observability-overhead fraction
//! over the 3% budget. `--block-on-full` is the CI sabotage self-test —
//! the bus stalls the hot path instead of dropping, and the overhead gate
//! must catch it.

use bonsai_bench::stream::{run, stream_json, StreamBenchConfig};
use bonsai_bench::{arg_usize, has_flag, out_dir};

fn main() {
    let d = StreamBenchConfig::default();
    let cfg = StreamBenchConfig {
        n: arg_usize("--n", d.n),
        ranks: arg_usize("--ranks", d.ranks),
        steps: arg_usize("--steps", d.steps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        block_on_full: has_flag("--block-on-full"),
        ..d
    };
    println!(
        "stream bench: {} particles over {} ranks, {} steps, storm in epochs {}..{}{}",
        cfg.n,
        cfg.ranks,
        cfg.steps,
        cfg.storm_epochs.0,
        cfg.storm_epochs.1,
        if cfg.block_on_full {
            " [SABOTAGE: bus blocks on full rings]"
        } else {
            ""
        }
    );
    let r = run(cfg);

    let bus = r.tap.bus();
    println!(
        "  published {} frames ({} B encoded), {} producer stalls",
        bus.published_total(),
        bus.bytes_encoded(),
        bus.stalls()
    );
    for s in bus.reports() {
        println!(
            "  {:<5} delivered {} dropped {} evicted {} overflow {} max-lag {} must-deliver-lost {}",
            s.name,
            s.delivered,
            s.dropped.values().sum::<u64>(),
            s.evicted.values().sum::<u64>(),
            s.overflow,
            s.max_lag,
            s.must_deliver_lost()
        );
    }
    println!(
        "  overhead: mean {:.4}% max {:.4}% of modelled step time (budget {:.0}%)",
        100.0 * r.tap.meter().mean_fraction(),
        100.0 * r.tap.meter().max_fraction(),
        100.0 * bonsai_obs::overhead::OVERHEAD_BUDGET_FRACTION
    );

    std::fs::write("BENCH_stream.json", stream_json(&r)).expect("write BENCH_stream.json");
    let mut wrote = vec!["BENCH_stream.json".to_string()];
    for (step, html) in &r.snapshots {
        let p = out_dir().join(format!("stream_snapshot_{step:04}.html"));
        std::fs::write(&p, html).expect("write snapshot");
        wrote.push(p.display().to_string());
    }
    if let Some((_, html)) = r.snapshots.last() {
        let p = out_dir().join("stream_report.html");
        std::fs::write(&p, html).expect("write stream_report.html");
        wrote.push(p.display().to_string());
    }
    println!("wrote {}", wrote.join(", "));

    if !r.passed() {
        eprintln!(
            "STREAM GATE FAILED: lossless_ok={} accounting_ok={} overhead_ok={}",
            r.lossless_ok(),
            r.accounting_ok(),
            r.overhead_ok()
        );
        std::process::exit(1);
    }
    println!("stream gate passed");
}
