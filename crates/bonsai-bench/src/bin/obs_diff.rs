//! `obs_diff` — the bench-regression explainer: load two same-schema
//! `BENCH_*.json` artifacts and print a ranked, human-readable attribution
//! of every out-of-tolerance delta to the phase × rank × metric it belongs
//! to.
//!
//! ```text
//! obs_diff <base.json> <current.json> [--tol-rel X] [--tol-abs Y]
//! obs_diff --against baselines/profile.json [--tol-rel X] [--tol-abs Y]
//! ```
//!
//! `--against <base>` resolves the current artifact from the baseline's
//! own schema kind: a `bonsai-profile-v1` baseline compares against
//! `BENCH_profile.json` in the working directory.
//!
//! Exit codes: `0` no deltas, `1` deltas found, `2` unusable input
//! (missing file, malformed artifact, schema mismatch).

use std::path::PathBuf;
use std::process::ExitCode;

use bonsai_bench::artifact::{load_artifact, BenchArtifact};
use bonsai_bench::diff::{diff_values, rank, render_report, Tolerance};
use bonsai_bench::{arg_f64, arg_str};

fn load_or_exit(path: &PathBuf) -> Result<BenchArtifact, ExitCode> {
    load_artifact(path).map_err(|e| {
        eprintln!("obs_diff: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let tol = Tolerance {
        rel: arg_f64("--tol-rel", Tolerance::default().rel),
        abs: arg_f64("--tol-abs", Tolerance::default().abs),
    };
    // Positional args: everything that is not a --flag or a flag's value.
    let mut positional = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += if args[i] == "--against" || args[i].starts_with("--tol-") { 2 } else { 1 };
        } else {
            positional.push(PathBuf::from(&args[i]));
            i += 1;
        }
    }
    let (base_path, cur_path) = if let Some(baseline) = arg_str("--against") {
        let base_path = PathBuf::from(baseline);
        let base = match load_or_exit(&base_path) {
            Ok(a) => a,
            Err(code) => return code,
        };
        (base_path, PathBuf::from(format!("BENCH_{}.json", base.kind)))
    } else if positional.len() == 2 {
        (positional[0].clone(), positional[1].clone())
    } else {
        eprintln!(
            "usage: obs_diff <base.json> <current.json> [--tol-rel X] [--tol-abs Y]\n\
             \x20      obs_diff --against <baseline.json> [--tol-rel X] [--tol-abs Y]"
        );
        return ExitCode::from(2);
    };

    let base = match load_or_exit(&base_path) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let cur = match load_or_exit(&cur_path) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if base.schema != cur.schema {
        eprintln!(
            "obs_diff: schema mismatch: {} is {}, {} is {}",
            base_path.display(),
            base.schema,
            cur_path.display(),
            cur.schema
        );
        return ExitCode::from(2);
    }

    println!(
        "comparing {} ({}) -> {}",
        base_path.display(),
        base.schema,
        cur_path.display()
    );
    let deltas = rank(diff_values(&base.value, &cur.value, tol));
    print!("{}", render_report(&deltas, tol));
    if deltas.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
