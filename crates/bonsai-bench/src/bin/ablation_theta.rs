//! Ablation: opening angle θ.
//!
//! §IV: the paper chooses θ = 0.4 (instead of the common 0.7) to resolve
//! spiral arms, accepting a cost growth ∝ θ⁻³ (citing Makino 1991). This
//! study runs real walks over a Milky Way snapshot across θ and reports
//! interaction counts, simulated K20X kernel time, and the fitted cost
//! exponent, together with force accuracy against direct summation.

use bonsai_bench::{arg_usize, milky_way_snapshot};
use bonsai_gpu::GpuModel;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::walk::{self, WalkParams};

fn main() {
    let n = arg_usize("--n", 60_000);
    println!("Ablation: opening angle θ (workload: {n}-particle Milky Way snapshot)\n");
    let snapshot = milky_way_snapshot(n, 3);
    let tree = Tree::build(snapshot, TreeParams::default());
    let gpu = GpuModel::k20x_tuned();
    let g = bonsai_util::units::G;
    let (reference, _) = direct_self_forces(&tree.particles, 0.01, g);

    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "theta", "pp/part", "pc/part", "Gflop total", "K20X time s", "rms acc err"
    );
    let thetas = [0.8, 0.7, 0.6, 0.5, 0.4, 0.3];
    let mut flops = Vec::new();
    for &theta in &thetas {
        let params = WalkParams { theta, eps: 0.01, g, use_quadrupole: true };
        let (forces, stats) = walk::self_gravity(&tree, &params);
        let (pp, pc) = stats.counts.per_particle(n);
        let err = forces.rms_rel_acc_error(&reference);
        flops.push(stats.counts.flops() as f64);
        println!(
            "{:>6.2} {:>12.0} {:>12.0} {:>14.3} {:>14.5} {:>12.2e}",
            theta,
            pp,
            pc,
            stats.counts.flops() as f64 / 1e9,
            gpu.gravity_time(stats.counts),
            err
        );
    }

    // Fit cost ∝ θ^(-k) between the extremes.
    let k = (flops.last().unwrap() / flops.first().unwrap()).ln()
        / (thetas[0] / thetas[thetas.len() - 1]).ln();
    println!("\nfitted cost exponent at N = {n}: flops ∝ θ^-{k:.2}");
    println!("θ = 0.7 → 0.4 cost ratio: {:.2}x  (θ⁻³ asymptote predicts {:.2}x)",
        flops[4] / flops[1],
        (0.7f64 / 0.4).powi(3)
    );
    println!("\nThe paper's O(θ⁻³) (Makino 1991) is the large-N, cell-dominated asymptote;");
    println!("at small N the NLEAF-sized p-p floor flattens the exponent. Re-run with a");
    println!("larger --n to watch the exponent steepen toward -3, and note the error");
    println!("column: accuracy improves ~10x going from θ = 0.7 to the paper's 0.4,");
    println!("which is why the paper pays the extra cost for spiral-arm fidelity (§IV).");
}
