//! Ablation: quadrupole corrections (the 65-flop p-c kernel).
//!
//! §VI-A charges 65 flops per particle-cell interaction because Bonsai
//! evaluates quadrupole corrections (Eq. 1–2). A cheaper monopole-only cell
//! costs ~23 flops — so why pay 2.8×? Because matching the quadrupole
//! kernel's *accuracy* with monopole cells requires opening far more cells
//! (smaller effective θ), which costs more than the fancier kernel. This
//! study measures both sides of that trade on a real Milky Way snapshot.

use bonsai_bench::{arg_usize, milky_way_snapshot};
use bonsai_gpu::GpuModel;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::walk::{self, WalkParams};

fn main() {
    let n = arg_usize("--n", 30_000);
    println!("Ablation: quadrupole vs monopole cells ({n}-particle Milky Way snapshot)\n");
    let tree = Tree::build(milky_way_snapshot(n, 8), TreeParams::default());
    let g = bonsai_util::units::G;
    let gpu = GpuModel::k20x_tuned();
    let (reference, _) = direct_self_forces(&tree.particles, 0.01, g);

    println!(
        "{:>6} {:>12} {:>14} {:>14} | {:>12} {:>14} {:>14}",
        "theta", "quad err", "quad Gflop", "quad time s", "mono err", "mono Gflop", "mono time s"
    );
    let mut quad_at_04 = (0.0, 0.0);
    let mut mono_rows: Vec<(f64, f64, f64)> = Vec::new(); // (theta, err, time)
    for &theta in &[0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15] {
        let params = WalkParams { theta, eps: 0.01, g, use_quadrupole: true };
        let (fq, sq) = walk::self_gravity(&tree, &params);
        let (fm, sm) = walk::self_gravity(&tree, &params.monopole_only());
        let eq = fq.rms_rel_acc_error(&reference);
        let em = fm.rms_rel_acc_error(&reference);
        // Monopole cells cost the p-p rate (23 flops, no quadrupole terms).
        let mono_counts = bonsai_tree::InteractionCounts {
            pp: sm.counts.pp + sm.counts.pc, // pc evaluated at pp cost
            pc: 0,
        };
        let tq = gpu.gravity_time(sq.counts);
        let tm = gpu.gravity_time(mono_counts);
        if (theta - 0.4).abs() < 1e-9 {
            quad_at_04 = (eq, tq);
        }
        mono_rows.push((theta, em, tm));
        println!(
            "{:>6.2} {:>12.2e} {:>14.3} {:>14.5} | {:>12.2e} {:>14.3} {:>14.5}",
            theta,
            eq,
            sq.counts.flops() as f64 / 1e9,
            tq,
            em,
            mono_counts.flops() as f64 / 1e9,
            tm
        );
    }

    // Find the monopole θ that matches the quadrupole accuracy at θ=0.4.
    let (target_err, quad_time) = quad_at_04;
    let matching = mono_rows.iter().find(|&&(_, e, _)| e <= target_err);
    println!("\nquadrupole kernel at the production θ = 0.4: rms {target_err:.2e}, {quad_time:.5} s");
    match matching {
        Some(&(theta, err, time)) => {
            println!(
                "monopole needs θ ≤ {theta} (rms {err:.2e}) to match: {time:.5} s → {:.2}x slower",
                time / quad_time
            );
        }
        None => {
            println!("monopole never reaches that accuracy in the swept θ range —");
            let last = mono_rows.last().unwrap();
            println!(
                "at θ = {} it is still {:.1}x less accurate while already {:.2}x slower",
                last.0,
                last.1 / target_err,
                last.2 / quad_time
            );
        }
    }
    println!("\nconclusion: the 65-flop quadrupole kernel wins at equal accuracy —");
    println!("the flops are cheap on the GPU, the extra cell openings are not (§VI-A).");
}
