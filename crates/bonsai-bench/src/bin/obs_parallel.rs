//! Thread-sweep observability bench: parallel speedup and bit-determinism
//! of the hot pipeline (tree build → group walk → direct summation) under
//! the `bonsai-par` work-stealing pool. Artifacts:
//!
//! * `BENCH_parallel.json` (repo root) — schema `bonsai-parallel-v1`,
//!   byte-deterministic: per-lane force/tree digests, interaction counts
//!   and the determinism + worker-census verdicts.
//! * `out/parallel_timings.json` — wall-clock speedup curve and
//!   efficiency per lane count (machine-dependent, never byte-compared).
//!
//! `--pin-one-thread` builds every pool with a single lane regardless of
//! the requested width — the CI self-test proving the structural
//! `workers_ok` gate fires (exit 1).

use bonsai_bench::parallel::{parallel_json, run, timings_json, ParallelBenchConfig};
use bonsai_bench::{arg_usize, has_flag, out_dir};

fn main() {
    let d = ParallelBenchConfig::default();
    let cfg = ParallelBenchConfig {
        n: arg_usize("--n", d.n),
        reps: arg_usize("--reps", d.reps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        threads: d.threads,
        pin_one_thread: has_flag("--pin-one-thread"),
    };
    println!(
        "thread sweep: {} particles, lanes {:?}, best of {} reps{}",
        cfg.n,
        cfg.threads,
        cfg.reps,
        if cfg.pin_one_thread {
            " (SABOTAGE: pools pinned to one lane)"
        } else {
            ""
        }
    );
    let r = run(cfg);

    for p in &r.points {
        println!(
            "  t={:<2} workers={:<2} wall {:>8.4} ms  digest {:016x}  pp {} pc {}",
            p.threads,
            p.workers,
            p.wall_s * 1e3,
            p.digest,
            p.pp,
            p.pc
        );
    }
    println!(
        "  deterministic: {} ({} distinct digest{}), workers_ok: {}, speedup {:.2}x (need {:.2}x on {} core{}): {}",
        r.deterministic,
        r.distinct_digests,
        if r.distinct_digests == 1 { "" } else { "s" },
        r.workers_ok,
        r.measured_speedup,
        r.required_speedup,
        r.available_parallelism,
        if r.available_parallelism == 1 { "" } else { "s" },
        if r.speedup_ok { "ok" } else { "FAIL" }
    );

    std::fs::write("BENCH_parallel.json", parallel_json(&r)).expect("write BENCH_parallel.json");
    let timings_path = out_dir().join("parallel_timings.json");
    std::fs::write(&timings_path, timings_json(&r)).expect("write timings");
    println!("wrote BENCH_parallel.json and {}", timings_path.display());

    if !r.passed() {
        eprintln!("parallel gate failed");
        std::process::exit(1);
    }
}
