//! Ablation: serial vs two-level parallel sampling (§III-B1).
//!
//! "As the number of processes increases … the domain decomposition becomes
//! a serial bottleneck in the code." The paper parallelizes the sampling
//! method over `px × py` DD-processes. This study sweeps the rank count and
//! reports the largest gather any single DD-process performs under both
//! methods, plus the resulting partition quality on identical inputs.

use bonsai_domain::sampling::{parallel_cuts, partition_imbalance, serial_cuts};
use bonsai_sim::cluster::factor_ranks;
use bonsai_util::rng::Xoshiro256;

fn synthetic_keys(ranks: usize, per_rank: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..ranks)
        .map(|_| {
            let center = rng.next_u64() >> 1;
            let spread = 1u64 << 56;
            let mut ks: Vec<u64> = (0..per_rank)
                .map(|_| {
                    let off = (rng.uniform() * spread as f64) as u64;
                    center.saturating_sub(spread / 2).saturating_add(off) & (bonsai_sfc::KEY_END - 1)
                })
                .collect();
            ks.sort_unstable();
            ks
        })
        .collect()
}

fn main() {
    println!("Ablation: serial vs parallel sampling for domain decomposition\n");
    println!(
        "{:>7} {:>9} {:>18} {:>18} {:>11} {:>11}",
        "ranks", "px*py", "serial DD gather", "parallel DD gather", "ser imb", "par imb"
    );
    let samples = 64usize;
    for p in [16usize, 64, 256, 1024, 4096] {
        let per_rank = 500;
        let data = synthetic_keys(p, per_rank, p as u64);
        let (ranges_s, st_s) = serial_cuts(&data, p, samples);
        let (px, py) = factor_ranks(p);
        let (ranges_p, st_p) = parallel_cuts(&data, px, py, 8, samples);
        println!(
            "{:>7} {:>5}x{:<3} {:>18} {:>18} {:>11.3} {:>11.3}",
            p,
            px,
            py,
            st_s.max_dd_gather,
            st_p.max_dd_gather,
            partition_imbalance(&data, &ranges_s),
            partition_imbalance(&data, &ranges_p)
        );
    }
    println!("\nthe serial gather grows linearly with p (the bottleneck);");
    println!("the two-level gather grows ~p/px ≈ √p while partition quality is preserved.");
}
