//! Message-flow bench: a seeded faulty step ladder whose flow ledger and
//! trace are reduced to the causal message-flow artifacts. Byte-deterministic
//! per seed:
//!
//! * `BENCH_flows.json` (repo root) — schema `bonsai-flows-v1`:
//!   conservation totals, critical-path wait attribution by cause, the
//!   per-directed-link ledger (bytes, attempts, retransmit ratio, delivery
//!   latency percentiles) and per-step digests.
//! * `out/flows_report.html` — self-contained zero-dependency report: link
//!   matrix, wait-attribution table, latency sparklines.
//!
//! `--mask-retransmits` rewrites every flow to a clean first-attempt
//! delivery before the reduction — the CI self-test proving `obs_diff`
//! catches a doctored ledger.

use bonsai_bench::flows::{flows_json, render_html, run, FlowsBenchConfig};
use bonsai_bench::{arg_usize, has_flag, out_dir};

fn main() {
    let d = FlowsBenchConfig::default();
    let cfg = FlowsBenchConfig {
        n: arg_usize("--n", d.n),
        ranks: arg_usize("--ranks", d.ranks),
        steps: arg_usize("--steps", d.steps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        mask_retransmits: has_flag("--mask-retransmits"),
    };
    println!(
        "message-flow tracer: {} particles over {} ranks, {} faulty steps{}",
        cfg.n,
        cfg.ranks,
        cfg.steps,
        if cfg.mask_retransmits {
            " (retransmits masked)"
        } else {
            ""
        }
    );
    let r = run(cfg);

    let k = &r.conservation;
    println!(
        "  conservation: {} sealed = {} delivered + {} fallback + {} dead (+{} pending) — {}",
        k.sealed,
        k.delivered,
        k.fallback,
        k.dead,
        k.pending,
        if k.holds() { "holds" } else { "VIOLATED" }
    );
    println!(
        "  waits: {:.4} ms on the critical path, {:.2}% unattributed",
        r.wait_total_s() * 1e3,
        100.0 * r.unattributed_fraction()
    );
    for (cause, secs) in &r.wait_by_cause {
        println!("    {cause:<16} {:.4} ms", secs * 1e3);
    }
    for l in &r.links {
        println!(
            "  {:<6} {:>4} flows, {:>7} B, retx ratio {:.2}, p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            l.label(),
            l.flows,
            l.bytes,
            l.retransmit_ratio(),
            l.latency_p50 * 1e3,
            l.latency_p99 * 1e3,
            l.latency_max * 1e3
        );
    }

    std::fs::write("BENCH_flows.json", flows_json(&r)).expect("write BENCH_flows.json");
    let html_path = out_dir().join("flows_report.html");
    std::fs::write(&html_path, render_html(&r)).expect("write report");
    println!("wrote BENCH_flows.json and {}", html_path.display());
}
