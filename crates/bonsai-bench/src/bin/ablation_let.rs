//! Ablation: LET method vs particle export; boundary reuse.
//!
//! §III-B: "The LET method requires the least amount of communication."
//! Alternatives ship raw particles to remote ranks (compute-and-return) or
//! request subtrees on demand. This study measures, on a real decomposed
//! cluster, the bytes a rank would send under each strategy, and how many
//! pairs get away with reusing the broadcast boundary tree (zero extra
//! bytes) — the paper's headline communication saving.

use bonsai_bench::{arg_usize, milky_way_snapshot};
use bonsai_domain::exchange::PARTICLE_WIRE_SIZE;
use bonsai_sim::{Cluster, ClusterConfig};

fn main() {
    let n = arg_usize("--n", 24_000);
    println!("Ablation: LET vs particle export ({n}-particle Milky Way model)\n");
    println!("(the MW model spans ~200 kpc of halo, so domains are genuinely far apart,");
    println!(" as on the production machine)\n");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>12}",
        "ranks", "export bytes", "LET bytes", "boundary bytes", "LET pairs"
    );
    for p in [4usize, 8, 16, 24] {
        let ic = milky_way_snapshot(n, 13);
        let mut cfg = ClusterConfig::default();
        cfg.eps = 0.05;
        cfg.g = bonsai_util::units::G;
        let c = Cluster::new(ic, p, cfg);
        let m = &c.last_measurements;
        // Particle-export strategy: every rank ships its *whole* particle
        // set to every rank that interacts with it (here: all others —
        // gravity is all-to-all).
        let export: usize = (0..p).map(|_| (n / p) * PARTICLE_WIRE_SIZE * (p - 1)).sum();
        let lets: usize = m.let_bytes_sent.iter().sum();
        let boundaries: usize = m.boundary_bytes.iter().sum::<usize>() * (p - 1); // allgather cost
        let pairs: usize = m.let_neighbors.iter().sum();
        println!(
            "{:>6} {:>16} {:>16} {:>16} {:>9}/{:<3}",
            p,
            export,
            lets,
            boundaries,
            pairs,
            p * (p - 1)
        );
    }
    println!("\nEven at laptop scale the LET undercuts naive export and boundary-only");
    println!("pairs appear as ranks separate. The asymmetry explodes with scale: export");
    println!("ships volume, Θ(N/p) per pair to all p−1 ranks, while a LET ships surface,");
    println!("Θ((N/p)^⅔), to ~40 neighbours plus one broadcast boundary.");
    println!("\nProduction scale (13M particles/rank, p = 18600):");
    let export_prod = 13.0e6 * PARTICLE_WIRE_SIZE as f64 * 18599.0;
    let let_prod = 40.0 * 2.0e6 + 18600.0 * 12_320.0; // dedicated LETs + boundary allgather
    println!("  naive export : {:.1} TB per rank per step", export_prod / 1e12);
    println!("  LET method   : {:.1} GB per rank per step  ({:.0}x less)",
        let_prod / 1e9, export_prod / let_prod);
    println!("  (§III-B2: only ~40 of 18600 ranks need dedicated LETs)");
}
