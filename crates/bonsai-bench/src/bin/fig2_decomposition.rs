//! Fig. 2 — Peano–Hilbert space-filling-curve domain decomposition.
//!
//! Regenerates the paper's illustration: a point set decomposed into five
//! domains by cutting the PH curve, with the boundary tree-cells ("gray
//! squares") of each domain. Output: `out/fig2_decomposition.ppm` plus an
//! ASCII rendering and the per-domain covering-cell statistics.

use bonsai_analysis::ppm;
use bonsai_bench::{arg_usize, out_dir};
use bonsai_sfc::range::{find_owner, ranges_from_cuts};
use bonsai_sfc::{Curve, KeyMap};
use bonsai_tree::Particles;
use bonsai_util::rng::Xoshiro256;
use bonsai_util::{Aabb, Vec3};

fn main() {
    let n = arg_usize("--n", 4000);
    let domains_wanted = arg_usize("--domains", 5);
    println!("Fig. 2 reproduction — PH-SFC domain decomposition into {domains_wanted} domains\n");

    // A thin 2D slab of clustered points (the figure is 2D).
    let mut rng = Xoshiro256::seed_from(2);
    let mut particles = Particles::new();
    for i in 0..n {
        // mixture of three gaussian blobs, mimicking clustered matter
        let c = match i % 3 {
            0 => Vec3::new(0.3, 0.3, 0.0),
            1 => Vec3::new(0.7, 0.6, 0.0),
            _ => Vec3::new(0.4, 0.8, 0.0),
        };
        let p = c + Vec3::new(rng.normal_scaled(0.0, 0.12), rng.normal_scaled(0.0, 0.12), 0.0);
        let p = Vec3::new(p.x.clamp(0.01, 0.99), p.y.clamp(0.01, 0.99), 0.5);
        particles.push(p, Vec3::zero(), 1.0, i as u64);
    }

    let keymap = KeyMap::new(&Aabb::new(Vec3::zero(), Vec3::splat(1.0)), Curve::Hilbert);
    let mut keys: Vec<u64> = particles.pos.iter().map(|&p| keymap.key_of(p)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let cuts: Vec<u64> = (1..domains_wanted).map(|i| sorted[i * n / domains_wanted]).collect();
    let domains = ranges_from_cuts(&cuts);

    // Rasterize ownership on a grid; overlay the covering cells.
    let grid = 256usize;
    let mut image = vec![0.0f64; grid * grid];
    for (gy, row) in image.chunks_mut(grid).enumerate() {
        for (gx, px) in row.iter_mut().enumerate() {
            let p = Vec3::new(
                (gx as f64 + 0.5) / grid as f64,
                (gy as f64 + 0.5) / grid as f64,
                0.5,
            );
            let owner = find_owner(&domains, keymap.key_of(p));
            *px = (owner as f64 + 0.6) / (domains_wanted as f64 + 1.0);
        }
    }
    let path = out_dir().join("fig2_decomposition.ppm");
    ppm::write_heatmap(&path, &image, grid).expect("write ppm");
    println!("wrote {}", path.display());

    println!("\nASCII rendering (domains as brightness bands):");
    print!("{}", ppm::ascii_art(&image, grid, 64));

    println!("\nper-domain covering cells (the paper's gray boundary squares):");
    for (d, r) in domains.iter().enumerate() {
        let cells = r.covering_cells();
        let count = keys.iter().filter(|&&k| r.contains(k)).count();
        let min_level = cells.iter().map(|&(_, l)| l).min().unwrap_or(0);
        let max_level = cells.iter().map(|&(_, l)| l).max().unwrap_or(0);
        println!(
            "  domain {d}: {count:>6} particles, {:>4} covering cells, levels {min_level}..{max_level}",
            cells.len()
        );
    }
    keys.clear();
    println!("\nEach domain is a contiguous key range, hence a union of octree branches —");
    println!("the property (§III-B1) that lets boundaries double as LET structures.");
}
