//! Table I — hardware used for the parallel simulations.
//!
//! Prints the machine descriptions the models are built from, side by side
//! with the paper's table.

use bonsai_gpu::{C2075, K20X};
use bonsai_net::{PIZ_DAINT, TITAN};

fn main() {
    println!("TABLE I. HARDWARE USED FOR OUR PARALLEL SIMULATIONS");
    println!("(CUDA 5.5, GCC 4.8.2, Cray MPICH 6.2 in the paper; simulated here)\n");
    println!("{:<26} {:>14} {:>14}", "Setup", "Piz Daint", "Titan");
    let rows: Vec<(&str, String, String)> = vec![
        ("GPU model", "K20X".into(), "K20X".into()),
        ("GPU/node", "1".into(), "1".into()),
        (
            "Total GPUs",
            PIZ_DAINT.total_nodes.to_string(),
            TITAN.total_nodes.to_string(),
        ),
        (
            "GPUs used",
            PIZ_DAINT.nodes_used.to_string(),
            TITAN.nodes_used.to_string(),
        ),
        (
            "GPU RAM (ECC enabled)",
            format!("{:.1} GB", K20X.mem_gb),
            format!("{:.1} GB", K20X.mem_gb),
        ),
        ("CPU model", PIZ_DAINT.cpu.into(), TITAN.cpu.into()),
        ("CPU/node", "1".into(), "1".into()),
        (
            "CPU cores used",
            (PIZ_DAINT.nodes_used * PIZ_DAINT.cpu_cores).to_string(),
            (TITAN.nodes_used * TITAN.cpu_cores).to_string(),
        ),
        (
            "Node RAM",
            format!("{} GB", PIZ_DAINT.node_ram_gb),
            format!("{} GB", TITAN.node_ram_gb),
        ),
        (
            "Network",
            "Aries/dragonfly".into(),
            "Gemini/3D Torus".into(),
        ),
    ];
    for (k, a, b) in rows {
        println!("{k:<26} {a:>14} {b:>14}");
    }

    println!("\nDerived model quantities:");
    println!(
        "  K20X peak SP: {:.2} Tflops   (paper quotes 3.95 Tflops/node)",
        K20X.peak_sp_gflops() / 1000.0
    );
    println!(
        "  C2075 peak SP: {:.2} Tflops  (Fig. 1 comparison device)",
        C2075.peak_sp_gflops() / 1000.0
    );
    println!(
        "  18600 × K20X theoretical peak: {:.1} Pflops (paper: 73.2)",
        18600.0 * K20X.peak_sp_gflops() / 1e6
    );
    println!(
        "  Max particles per K20X (5.4 GB): {:.1}M (paper: up to 20M)",
        K20X.max_particles() as f64 / 1e6
    );
}
