//! Scaling sweep + regression gate over the cross-rank analysis layer.
//!
//! Runs the weak and strong rank-count ladders of
//! [`bonsai_bench::scaling`], then writes:
//!
//! * `BENCH_scaling.json` (repo root) — byte-deterministic sweep record:
//!   per-rung wall time, critical-path decomposition, imbalance residuals
//!   and parallel efficiencies;
//! * `out/scaling_report.html` — self-contained zero-dependency dashboard
//!   with the Fig. 4-style efficiency curves and imbalance tables.
//!
//! With `--check <baseline.json>` (default `baselines/scaling.json`) the
//! fresh run is compared against the checked-in baseline with per-metric
//! tolerance bands; any violation is printed and the process exits 1, so
//! CI can hold the perf line. `--slowdown <factor>` injects a synthetic
//! wall-time multiplier on every rung above the smallest — it exists to
//! demonstrate (and test) the gate's failure mode.

use bonsai_bench::scaling::{check_scaling, render_html, run_sweep, scaling_json, SweepConfig};
use bonsai_bench::{arg_usize, out_dir};

fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "baselines/scaling.json".to_string())
    });

    let mut cfg = SweepConfig::default();
    cfg.seed = arg_usize("--seed", cfg.seed as usize) as u64;
    cfg.weak_n_per_rank = arg_usize("--n-per-rank", cfg.weak_n_per_rank);
    cfg.strong_total = arg_usize("--strong-total", cfg.strong_total);
    cfg.slowdown = arg_f64("--slowdown", 1.0);

    let report = run_sweep(&cfg);
    let json = scaling_json(&report);
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    let html_path = out_dir().join("scaling_report.html");
    std::fs::write(&html_path, render_html(&report)).expect("write scaling_report.html");

    println!("scaling sweep (seed {}, ranks {:?})", cfg.seed, cfg.ranks);
    println!("{:>6} {:>10} {:>12} {:>10} {:>10}", "ranks", "N/rank", "wall s", "weak e", "strong e");
    for (i, pt) in report.weak.iter().enumerate() {
        println!(
            "{:>6} {:>10} {:>12.4} {:>10.3} {:>10.3}",
            pt.p, pt.n_per_rank, pt.wall, report.weak_eff[i], report.strong_eff[i]
        );
    }
    println!("wrote BENCH_scaling.json and {}", html_path.display());

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        };
        match check_scaling(&baseline, &json) {
            Ok(viol) if viol.is_empty() => {
                println!("regression gate: PASS vs {baseline_path}");
            }
            Ok(viol) => {
                eprintln!("regression gate: FAIL vs {baseline_path} ({} violations)", viol.len());
                for v in &viol {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("regression gate: cannot compare: {e}");
                std::process::exit(2);
            }
        }
    }
}
