//! Ablation: leaf capacity NLEAF.
//!
//! §I (citing the Bonsai paper [9]): octants are split until fewer than 16
//! particles remain. Small leaves push work into expensive cell interactions
//! and deepen the tree; large leaves degrade the walk toward O(N²) p-p work.
//! This study sweeps NLEAF on a Milky Way snapshot and reports the p-p/p-c
//! trade-off, tree size, and simulated K20X kernel time — showing why 16 is
//! a sensible optimum for a warp-based kernel.

use bonsai_bench::{arg_usize, milky_way_snapshot};
use bonsai_gpu::GpuModel;
use bonsai_sfc::Curve;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::walk::{self, WalkParams};

fn main() {
    let n = arg_usize("--n", 60_000);
    println!("Ablation: leaf capacity NLEAF ({n}-particle Milky Way snapshot, theta = 0.4)\n");
    let snapshot = milky_way_snapshot(n, 4);
    let gpu = GpuModel::k20x_tuned();

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "NLEAF", "nodes", "pp/part", "pc/part", "visits", "Gflop total", "K20X time s"
    );
    // Traversal charge: every node a group visits costs one warp-level MAC
    // evaluation + stack op, ~20 cycles on the SMX warp scheduler. This is
    // the cost flop counting ignores and the reason tiny leaves lose on a
    // real GPU despite their lower flop totals.
    let warp_rate = 14.0 * 192.0 * 0.732e9 / 32.0; // warp-instruction slots/s
    let mac_cycles = 20.0;
    let mut best = (0usize, f64::INFINITY);
    for nleaf in [2usize, 4, 8, 16, 32, 64, 128] {
        let params = TreeParams {
            nleaf,
            curve: Curve::Hilbert,
            group_size: 2 * nleaf,
        };
        let tree = Tree::build(snapshot.clone(), params);
        let (_, stats) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01));
        let (pp, pc) = stats.counts.per_particle(n);
        let t = gpu.gravity_time(stats.counts)
            + stats.nodes_visited as f64 * mac_cycles / warp_rate;
        if t < best.1 {
            best = (nleaf, t);
        }
        println!(
            "{:>6} {:>10} {:>12.0} {:>12.0} {:>12} {:>14.3} {:>14.5}",
            nleaf,
            tree.nodes.len(),
            pp,
            pc,
            stats.nodes_visited,
            stats.counts.flops() as f64 / 1e9,
            t
        );
    }
    println!("\nfastest on the K20X model (incl. traversal): NLEAF = {} (paper uses 16)", best.0);
    println!("small NLEAF → cell-dominated work + traversal overhead explodes;");
    println!("large NLEAF → O(N²)-like p-p work; the warp width (32) sets the sweet spot.");
}
