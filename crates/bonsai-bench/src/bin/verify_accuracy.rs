//! Force-accuracy conformance run + regression gate.
//!
//! Runs `bonsai-verify`'s full conformance suite — the differential
//! tree-vs-direct oracle over five IC families × θ ∈ {0.2, 0.4, 0.5,
//! 0.75} × {quadrupole, monopole}, then the distributed equivalence
//! ladder at R ∈ {1, 2, 4, 8} (plus one fault-injected rung) — and
//! writes the byte-deterministic `BENCH_accuracy.json` (repo root,
//! schema `bonsai-accuracy-v1`).
//!
//! With `--check <baseline.json>` (default `baselines/accuracy.json`)
//! the fresh run is gated three ways: absolute θ-dependent tolerance
//! bands, the Fig. 2 error orderings, and numeric drift against the
//! committed baseline. Violations are printed and the process exits 1;
//! a missing or unparseable baseline exits 2.
//!
//! `--inflate-theta <factor>` makes the walk use `factor × θ` while the
//! bands stay keyed to the nominal θ — a deliberately loosened MAC that
//! exists to demonstrate (and let CI prove) the gate's failure mode.

use bonsai_bench::arg_usize;
use bonsai_verify::{accuracy_json, check_accuracy, run, RunConfig};

fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "baselines/accuracy.json".to_string())
    });

    let mut cfg = RunConfig::default();
    cfg.n = arg_usize("--n", cfg.n);
    cfg.seed = arg_usize("--seed", cfg.seed as usize) as u64;
    cfg.dist_n = arg_usize("--dist-n", cfg.dist_n);
    cfg.theta_inflation = arg_f64("--inflate-theta", 1.0);

    let report = run(&cfg);
    let json = accuracy_json(&report);
    std::fs::write("BENCH_accuracy.json", &json).expect("write BENCH_accuracy.json");

    println!(
        "accuracy conformance (n {}, seed {}, dist_n {}, θ-inflation {})",
        cfg.n, cfg.seed, cfg.dist_n, cfg.theta_inflation
    );
    println!(
        "{:>16} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "family", "theta", "kernel", "median", "p95", "max"
    );
    for row in &report.differential {
        println!(
            "{:>16} {:>6} {:>12} {:>12.3e} {:>12.3e} {:>12.3e}",
            row.family.name(),
            row.theta,
            if row.quadrupole { "quadrupole" } else { "monopole" },
            row.pcts.median,
            row.pcts.p95,
            row.pcts.max
        );
    }
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "ranks", "faulty", "median", "p95", "max", "forced_cuts", "degraded"
    );
    for row in &report.distributed {
        println!(
            "{:>6} {:>7} {:>12.3e} {:>12.3e} {:>12.3e} {:>12} {:>9}",
            row.report.ranks,
            row.faulty,
            row.report.diff.median,
            row.report.diff.p95,
            row.report.diff.max,
            row.report.forced_cuts,
            row.report.degraded_lets
        );
    }
    println!("wrote BENCH_accuracy.json");

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        };
        match check_accuracy(&baseline, &json) {
            Ok(viol) if viol.is_empty() => {
                println!("accuracy gate: PASS vs {baseline_path}");
            }
            Ok(viol) => {
                eprintln!("accuracy gate: FAIL vs {baseline_path} ({} violations)", viol.len());
                for v in &viol {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("accuracy gate: cannot compare: {e}");
                std::process::exit(2);
            }
        }
    }
}
