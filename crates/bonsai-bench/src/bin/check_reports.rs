//! Structural smoke-check over every emitted HTML report: each
//! `out/*_report.html` the bench suite promises must exist, be fully
//! self-contained (no scripts, stylesheets, images, or external
//! references), and contain its required section markers. Complements the
//! CI byte-compares, which prove stability but not shape.
//!
//! Exits nonzero listing every violation.

use bonsai_bench::report::{check_report, REPORTS};
use bonsai_bench::OUT_DIR;

fn main() {
    let mut failures = 0usize;
    for spec in &REPORTS {
        let path = std::path::Path::new(OUT_DIR).join(spec.file);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let violations = check_report(spec, &text);
                if violations.is_empty() {
                    println!("ok   {} ({} markers)", path.display(), spec.markers.len());
                } else {
                    failures += violations.len();
                    for v in violations {
                        eprintln!("FAIL {}: {v}", path.display());
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {}: unreadable ({e})", path.display());
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} report violation(s)");
        std::process::exit(1);
    }
    println!("all {} reports structurally sound", REPORTS.len());
}
