//! Fig. 3 — the Milky Way simulation: bar formation, spiral structure and
//! the solar-neighbourhood velocity distribution.
//!
//! The paper evolves 51 billion particles for 6 Gyr on 4096 GPUs; this
//! reproduction evolves a scaled model (default 60k particles, `--n` /
//! `--steps` to change; EXPERIMENTS.md records a 200k × 2 Gyr run) and
//! emits:
//!
//! * `out/fig3_density_t*.ppm` — face-on stellar surface density at three
//!   epochs (the top row of Fig. 3);
//! * `out/fig3_velocity.csv` — the (v_r, v_φ − v_rot) histogram of disk
//!   stars in the 7–9 kpc "solar" annulus (bottom-left panel; the paper
//!   uses a 500 pc sphere, which needs ≳10⁶ disk particles to populate);
//! * `out/fig3_bar_strength.csv` — A₂(t) and bar phase: the quantitative
//!   bar-formation record and pattern speed.
//!
//! Scaled-run caveats (documented in EXPERIMENTS.md): softening follows the
//! interparticle spacing (ε ∝ N^(-1/3), anchored at 0.1 kpc for 2×10⁵
//! particles), and with 10⁴–10⁵ particles the m = 2 instability is seeded
//! by shot noise, so the bar forms *earlier* than in the 51G run — the
//! paper itself notes the formation time grows with N (§IV).

use bonsai_analysis::bar::{pattern_speed, BarAnalysis};
use bonsai_analysis::ppm;
use bonsai_analysis::velocity::cylindrical_velocity;
use bonsai_analysis::SurfaceDensityMap;
use bonsai_bench::{arg_usize, out_dir};
use bonsai_core::{Simulation, SimulationConfig};
use bonsai_ic::MilkyWayModel;
use bonsai_util::stats::Histogram2d;
use bonsai_util::units;

fn main() {
    let n = arg_usize("--n", 60_000);
    let steps = arg_usize("--steps", 700);
    let mw = MilkyWayModel::paper();
    let (nb, nd, _) = mw.component_counts(n);
    let stellar_ids = (0u64, (nb + nd) as u64); // bulge + disk
    println!("Fig. 3 reproduction — Milky Way with {n} particles ({nb} bulge, {nd} disk)");

    // Softening tracks the interparticle spacing: 0.1 kpc at 2e5 particles,
    // ∝ N^(-1/3) (the paper's 1 pc corresponds to its 51G resolution).
    let eps = 0.1 * (2.0e5 / n as f64).powf(1.0 / 3.0);
    let dt = units::myr_to_internal(3.0);
    println!(
        "theta = 0.4, eps = {eps:.3} kpc, dt = 3 Myr, {steps} steps (~{:.2} Gyr)\n",
        units::internal_to_gyr(dt * steps as f64)
    );

    let ic = mw.generate(n, 42);
    let mut sim = Simulation::new(ic, SimulationConfig::galactic(eps, dt));
    let e0 = sim.energy_report();

    let mut bar_series: Vec<(f64, f64)> = Vec::new(); // (time, phase)
    let mut a2_rows: Vec<Vec<f64>> = Vec::new();
    let snap_steps = [steps / 3, 2 * steps / 3, steps];
    let mut snap_idx = 0usize;

    for s in 1..=steps {
        sim.step();
        if s % 10 == 0 || s == steps {
            let bar = BarAnalysis::measure(sim.particles(), 4.0, Some(stellar_ids));
            let t_gyr = units::internal_to_gyr(sim.time());
            bar_series.push((sim.time(), bar.phase));
            a2_rows.push(vec![t_gyr, bar.a2, bar.phase]);
            if s % 100 == 0 {
                println!("  step {s:>5}  t = {t_gyr:.2} Gyr  A2 = {:.3}", bar.a2);
            }
        }
        if snap_idx < snap_steps.len() && s == snap_steps[snap_idx] {
            let t_gyr = units::internal_to_gyr(sim.time());
            let map = SurfaceDensityMap::compute(sim.particles(), 15.0, 256, Some(stellar_ids));
            let img = map.log_brightness(3.0);
            let path = out_dir().join(format!("fig3_density_t{snap_idx}.ppm"));
            ppm::write_heatmap(&path, &img, 256).expect("write density map");
            println!("  wrote {} (t = {t_gyr:.2} Gyr)", path.display());
            snap_idx += 1;
        }
    }

    // Energy audit of the full run (collisional relaxation at low N makes a
    // ~1% drift per Gyr expected; the paper's 51G run suppresses it by mass
    // resolution).
    let e1 = sim.energy_report();
    println!("\nenergy drift over the run: {:.2e}", e1.drift_from(&e0));

    // Bar diagnostics.
    let final_bar = BarAnalysis::measure(sim.particles(), 4.0, Some(stellar_ids));
    let early_a2 = a2_rows.first().map(|r| r[1]).unwrap_or(0.0);
    println!("bar strength A2: {early_a2:.3} (early) -> {:.3} (final)", final_bar.a2);
    let late = &bar_series[bar_series.len().saturating_sub(12)..];
    if late.len() >= 2 && final_bar.a2 > 0.05 {
        // Internal time unit is kpc/(km/s), so Ω_b is already km/s/kpc.
        let omega = pattern_speed(late);
        println!("bar pattern speed: {omega:.1} km/s/kpc (MW estimates: 35-55)");
    }
    ppm::write_csv(out_dir().join("fig3_bar_strength.csv"), "t_gyr,a2,phase", &a2_rows)
        .expect("write A2 series");

    // Velocity structure of disk stars in the solar annulus (7-9 kpc).
    let p = sim.particles();
    let mut hist = Histogram2d::new(-80.0, 80.0, 40, -80.0, 80.0, 40);
    let mut selected = 0usize;
    let mut vphi_sum = 0.0;
    let mut sel: Vec<usize> = Vec::new();
    for i in 0..p.len() {
        if p.id[i] < stellar_ids.0 || p.id[i] >= stellar_ids.1 {
            continue;
        }
        let r = p.pos[i].cyl_radius();
        if (7.0..9.0).contains(&r) && p.pos[i].z.abs() < 1.0 {
            let (_, vphi) = cylindrical_velocity(p.pos[i], p.vel[i]);
            vphi_sum += vphi;
            sel.push(i);
        }
    }
    let v_rot = if sel.is_empty() { 0.0 } else { vphi_sum / sel.len() as f64 };
    for &i in &sel {
        let (vr, vphi) = cylindrical_velocity(p.pos[i], p.vel[i]);
        hist.add(vr, vphi - v_rot);
        selected += 1;
    }
    println!(
        "\nsolar annulus (7-9 kpc): {selected} disk stars, mean v_phi = {v_rot:.0} km/s"
    );
    let (nx, ny) = hist.shape();
    let mut rows = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            rows.push(vec![
                -80.0 + 160.0 * (ix as f64 + 0.5) / nx as f64,
                -80.0 + 160.0 * (iy as f64 + 0.5) / ny as f64,
                hist.get(ix, iy) as f64,
            ]);
        }
    }
    ppm::write_csv(out_dir().join("fig3_velocity.csv"), "v_r,dv_phi,count", &rows)
        .expect("write velocity histogram");
    println!("wrote out/fig3_velocity.csv and out/fig3_bar_strength.csv");

    // Moving groups (the clumps/streams of the paper's bottom-left panel).
    let groups = bonsai_analysis::velocity::moving_group_count(&hist, 4.0, 3);
    println!("detected velocity-plane moving groups: {groups} (≥3-cell clumps at 4σ)");

    // Spiral structure: dominant m mode and pitch angle of the outer disk.
    let spec = bonsai_analysis::spiral::mode_spectrum(p, 12.0, 24, 6, Some(stellar_ids));
    let m_dom = spec.dominant_mode(4.0, 11.0);
    let a_dom = spec.mean_amplitude(m_dom, 4.0, 11.0);
    println!("dominant non-axisymmetric mode in 4-11 kpc: m = {m_dom} (amplitude {a_dom:.3})");
    if let Some(pitch) = bonsai_analysis::spiral::pitch_angle(&spec, m_dom, 4.0, 11.0) {
        println!("log-spiral pitch angle of the m = {m_dom} pattern: {pitch:.1} deg");
    }

    println!("\npaper comparison (shape, not scale):");
    println!("  - m=2 bar + spiral structure develops; A2 grows               [Fig. 3 top row]");
    println!("  - disk velocity plane shows anisotropic substructure          [Fig. 3 bottom-left]");
    println!("  - 51G production run: 4096 GPUs, 6 Gyr, ~4.6 s/step           [§VI-C]");
}
