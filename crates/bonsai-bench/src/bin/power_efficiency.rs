//! §II — power efficiency: why the paper moved to GPU supercomputers.
//!
//! Reproduces the Green500-style comparison ("K computer offers 830
//! Mflops/watt compared to 2.1 (2.7) Gflops/watt for Titan (Piz Daint)")
//! and derives the *application-level* energy efficiency of the record run
//! from the node power model and the modelled step breakdown.

use bonsai_bench::{print_comparison, Compared};
use bonsai_gpu::power::{K20X_NODE, K_COMPUTER, PIZ_DAINT_EFF, TITAN_EFF};
use bonsai_sim::ScalingModel;

fn main() {
    println!("§II reproduction — energy efficiency\n");
    println!("machine peak efficiencies (Green500 numbers quoted by the paper):");
    for m in [K_COMPUTER, TITAN_EFF, PIZ_DAINT_EFF] {
        println!("  {:<12} {:>6.2} Gflops/W", m.name, m.peak_gflops_per_watt);
    }
    println!(
        "  GPU machines win by {:.1}-{:.1}x per watt — the paper's §II argument.\n",
        TITAN_EFF.peak_gflops_per_watt / K_COMPUTER.peak_gflops_per_watt,
        PIZ_DAINT_EFF.peak_gflops_per_watt / K_COMPUTER.peak_gflops_per_watt
    );

    // Application-level energy efficiency of the record run.
    let titan = ScalingModel::titan();
    let b = titan.predict(18600, 13_000_000);
    let per_node_gflops = b.total_flops() / b.total() / 18600.0 / 1e9;
    let duty = (b.gravity_local + b.gravity_lets) / b.total();
    let node_w = K20X_NODE.node_watts(duty);
    let eff = K20X_NODE.gflops_per_watt(per_node_gflops, duty);
    println!("record run (242G particles, 18600 GPUs):");
    println!("  per-node application rate: {per_node_gflops:.0} Gflops");
    println!("  GPU duty cycle: {:.0}% of the {:.2} s step", 100.0 * duty, b.total());
    println!("  mean node power: {node_w:.0} W  →  machine draw ≈ {:.1} MW", node_w * 18600.0 / 1e6);
    println!("  application efficiency: {eff:.2} Gflops/W (single precision)\n");

    // Ishiyama et al. comparison from §II: 4.45 Pflops on 82944 K-computer
    // nodes (~12.7 MW machine) vs our 24.77 Pflops at ~6.8 MW.
    let rows = vec![
        Compared::new(
            "K computer trillion-body run (Pflops)",
            4.45,
            4.45,
            "PF",
        ),
        Compared::new(
            "Bonsai application performance (Pflops)",
            24.77,
            b.total_flops() / b.total() / 1e15,
            "PF",
        ),
    ];
    print_comparison("sustained performance context (§II)", &rows);
    println!("\n(the K-computer row is quoted, not simulated — shown for the §II contrast:");
    println!(" ~5.6x the sustained flops at roughly half the machine power)");
}
