//! Elastic-membership bench and gate: a scaled Milky Way run with scripted
//! grow/shrink churn over a faulty fabric, gated on particle conservation,
//! energy drift and force-field equivalence against the serial oracle.
//! Writes the byte-deterministic `BENCH_membership.json` (schema
//! `bonsai-membership-v1`) at the repo root and exits nonzero when the
//! gate fails.
//!
//! `--drop-migrants` flips the cluster's sabotage hook (migrants drained
//! but never shipped): the run must then lose particles and exit 1 — CI
//! uses it to prove the gate actually bites.

use bonsai_bench::arg_usize;
use bonsai_bench::membership::{membership_json, run, MembershipBenchConfig};

fn main() {
    let d = MembershipBenchConfig::default();
    let cfg = MembershipBenchConfig {
        n: arg_usize("--n", d.n),
        ranks: arg_usize("--ranks", d.ranks),
        steps: arg_usize("--steps", d.steps),
        seed: arg_usize("--seed", d.seed as usize) as u64,
        churn_every: arg_usize("--churn-every", d.churn_every),
        drop_migrants: std::env::args().any(|a| a == "--drop-migrants"),
        ..d
    };
    println!(
        "elastic membership: {} particles, {} ranks, {} steps, view change every {} steps{}",
        cfg.n,
        cfg.ranks,
        cfg.steps,
        cfg.churn_every,
        if cfg.drop_migrants {
            " [SABOTAGE: dropping migrants]"
        } else {
            ""
        }
    );
    let r = run(cfg);

    println!(
        "  t = {:.3} Gyr over {} final ranks; {} view changes, {} autoscale decisions",
        r.time_gyr,
        r.ranks_final,
        r.view_changes.len(),
        r.decisions.len()
    );
    for ch in &r.view_changes {
        println!(
            "    epoch {}: view {} -> {} ({} -> {} ranks, {} rounds, {} migrants / {} B)",
            ch.epoch,
            ch.from_view,
            ch.to_view,
            ch.from_world,
            ch.to_world,
            ch.rounds,
            ch.migrated_particles,
            ch.migrated_bytes
        );
    }
    println!(
        "  gate: lost {} particles, ids intact {}, energy drift {:.2e} (ok {}), equivalence {}",
        r.lost_particles,
        r.ids_intact,
        r.energy_drift,
        r.drift_ok,
        match &r.equivalence {
            Some(d) => format!(
                "median {:.2e} p95 {:.2e} max {:.2e} (ok {})",
                d.median, d.p95, d.max, r.equivalence_ok
            ),
            None => "skipped (population broken)".to_string(),
        }
    );

    std::fs::write("BENCH_membership.json", membership_json(&r))
        .expect("write BENCH_membership.json");
    println!("wrote BENCH_membership.json");
    if !r.passed() {
        println!("MEMBERSHIP GATE FAILED");
        std::process::exit(1);
    }
    println!("membership gate passed");
}
