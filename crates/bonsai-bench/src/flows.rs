//! The message-flow bench: a seeded faulty Milky Way step ladder whose
//! flow ledger is reduced to (a) conservation totals (every sealed envelope
//! delivered, recovered by fallback, or dead — nothing pending), (b) a
//! per-directed-link ledger (traffic, retransmit ratio, delivery-latency
//! percentiles), (c) the critical-path wait attribution by causal class,
//! and (d) per-step exposed-communication intervals tied to their causal
//! flows. Exported as the byte-deterministic `BENCH_flows.json` (schema
//! `bonsai-flows-v1`) plus a zero-dependency `out/flows_report.html` with
//! the link matrix, the wait-attribution table and per-link latency
//! sparklines.
//!
//! The gate is self-testing: [`FlowsBenchConfig::mask_retransmits`]
//! rewrites every flow summary to a clean single-attempt delivery before
//! the reduction — a masked run *must* diff against the honest baseline,
//! which is how CI proves the flow gate has teeth.

use bonsai_net::fault::{FaultKind, FaultPlan};
use bonsai_net::flow::FlowConservation;
use bonsai_obs::json::fmt_f64;
use bonsai_obs::{
    critical_path, exposed_comm, link_ledger, ArgValue, FlowSummary, LinkStats, WaitCause,
};
use bonsai_sim::{Cluster, ClusterConfig};
use bonsai_util::units;

use crate::milky_way_snapshot;

/// The flows bench configuration.
#[derive(Clone, Debug)]
pub struct FlowsBenchConfig {
    /// Total particles of the scaled Milky Way model.
    pub n: usize,
    /// Logical ranks.
    pub ranks: usize,
    /// Steps to drive under the fault plan.
    pub steps: usize,
    /// IC + fault-plan seed.
    pub seed: u64,
    /// Sabotage hook: rewrite every flow to a clean first-attempt delivery
    /// before the reduction. The CI self-test sets this to prove the diff
    /// gate catches a masked ledger.
    pub mask_retransmits: bool,
}

impl Default for FlowsBenchConfig {
    fn default() -> Self {
        Self {
            n: 4_000,
            ranks: 4,
            steps: 8,
            seed: 2014,
            mask_retransmits: false,
        }
    }
}

/// The seeded fault plan the bench drives: every message-level fault kind
/// at a rate high enough that retransmissions are common, plus two LET
/// stalls that force the fabric fallback path. No crashes — the ladder
/// must complete without rollback so the artifact stays byte-stable.
pub fn bench_fault_plan(seed: u64, steps: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(seed)
        .with_rate(FaultKind::Drop, 0.08)
        .with_rate(FaultKind::Corrupt, 0.05)
        .with_rate(FaultKind::Duplicate, 0.04)
        .with_rate(FaultKind::Delay, 0.04)
        .with_rate(FaultKind::Reorder, 0.04)
        .with_rate(FaultKind::Truncate, 0.03);
    // Stall the dedicated-LET sends of two ranks mid-ladder: the stalled
    // boundaries exhaust their retry budget and resolve by fallback.
    if steps >= 3 {
        plan = plan.with_stall(1, 3);
    }
    if steps >= 6 {
        plan = plan.with_stall(2, 6);
    }
    plan
}

/// Per-step flow digest (one artifact row per driven step).
#[derive(Clone, Debug)]
pub struct StepFlows {
    /// The step (= protocol epoch) the row describes.
    pub step: u64,
    /// Flows sealed in the step.
    pub flows: usize,
    /// Retransmitted attempts beyond each flow's first.
    pub retransmits: u64,
    /// Flows resolved by the fabric fallback.
    pub fallbacks: usize,
    /// Exposed-communication intervals found in the step.
    pub exposed_intervals: usize,
    /// Total exposed-communication seconds in the step.
    pub exposed_s: f64,
    /// Critical-path wait seconds in the step.
    pub wait_s: f64,
}

/// Everything the exporters need from one completed flows run.
pub struct FlowsResult {
    /// The configuration that produced it.
    pub config: FlowsBenchConfig,
    /// Every flow summary of the run (post-mask when sabotaged).
    pub flows: Vec<FlowSummary>,
    /// Per-directed-link ledger.
    pub links: Vec<LinkStats>,
    /// Whole-run conservation totals from the cluster's own ledger.
    pub conservation: FlowConservation,
    /// Critical-path wait seconds per causal class, summed over steps.
    pub wait_by_cause: Vec<(String, f64)>,
    /// Exposed-communication seconds per causal class, summed over steps.
    pub exposed_by_cause: Vec<(String, f64)>,
    /// Per-step digests.
    pub steps: Vec<StepFlows>,
}

impl FlowsResult {
    /// Total critical-path wait seconds.
    pub fn wait_total_s(&self) -> f64 {
        self.wait_by_cause.iter().map(|(_, s)| s).sum()
    }

    /// Fraction of critical-path wait seconds with no identified cause
    /// (the acceptance bar is < 5%).
    pub fn unattributed_fraction(&self) -> f64 {
        let total = self.wait_total_s();
        if total <= 0.0 {
            return 0.0;
        }
        // Fold from +0.0: an empty sum must not leak a −0.0 into the
        // byte-deterministic artifact.
        self.wait_by_cause
            .iter()
            .filter(|(c, _)| c == WaitCause::Unattributed.name())
            .fold(0.0, |a, (_, s)| a + s)
            / total
    }
}

/// Drive the faulty ladder and reduce its ledger + trace.
pub fn run(cfg: FlowsBenchConfig) -> FlowsResult {
    let ic = milky_way_snapshot(cfg.n, cfg.seed);
    let mut ccfg = ClusterConfig::default();
    ccfg.g = units::G;
    ccfg.eps = 0.1 * (2.0e5_f64 / cfg.n as f64).powf(1.0 / 3.0);
    ccfg.dt = units::myr_to_internal(3.0);
    let plan = bench_fault_plan(cfg.seed, cfg.steps);
    let mut cluster = Cluster::with_faults(ic, cfg.ranks, ccfg, plan, None);

    let mut flows: Vec<FlowSummary> = Vec::new();
    for _ in 0..cfg.steps {
        cluster.step();
        flows.extend(cluster.last_flow_summaries().iter().cloned());
    }
    if cfg.mask_retransmits {
        // The sabotage hook: pretend every flow was a clean first-attempt
        // delivery. The link ledger and the step rows collapse, which the
        // diff gate must flag against the honest baseline.
        for f in &mut flows {
            f.attempts = 1;
            f.faults.clear();
        }
    }

    let mut step_ids: Vec<u64> = flows.iter().map(|f| f.step).collect();
    step_ids.sort_unstable();
    step_ids.dedup();

    let mut wait_by_cause: std::collections::BTreeMap<String, f64> = Default::default();
    let mut exposed_by_cause: std::collections::BTreeMap<String, f64> = Default::default();
    let mut steps = Vec::new();
    for &step in &step_ids {
        let step_flows: Vec<FlowSummary> =
            flows.iter().filter(|f| f.step == step).cloned().collect();
        let exposed = exposed_comm(cluster.trace(), step, &step_flows);
        for x in &exposed {
            *exposed_by_cause.entry(x.cause.name().to_string()).or_insert(0.0) += x.seconds();
        }
        // Wait seconds of the step: the explicit barrier fills the cluster
        // records per non-straggler rank (each carries the causal class of
        // the straggler's flow set) plus any synthetic waits the critical
        // path had to invent to cover the wall time.
        let mut wait_s = 0.0;
        for span in cluster
            .trace()
            .spans()
            .iter()
            .filter(|s| s.step == step && s.name == "wait")
        {
            let cause = span
                .args
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"cause", ArgValue::Str(c)) => Some(c.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| WaitCause::Unattributed.name().to_string());
            let secs = (span.end - span.start).max(0.0);
            wait_s += secs;
            *wait_by_cause.entry(cause).or_insert(0.0) += secs;
        }
        if let Some(cp) = critical_path(cluster.trace(), step) {
            for (cause, secs) in cp.wait_seconds_by_cause() {
                wait_s += secs;
                *wait_by_cause.entry(cause).or_insert(0.0) += secs;
            }
        }
        steps.push(StepFlows {
            step,
            flows: step_flows.len(),
            retransmits: step_flows
                .iter()
                .map(|f| f.attempts.saturating_sub(1) as u64)
                .sum(),
            fallbacks: step_flows.iter().filter(|f| f.fell_back()).count(),
            exposed_intervals: exposed.len(),
            exposed_s: exposed.iter().map(|x| x.seconds()).sum(),
            wait_s,
        });
    }

    FlowsResult {
        links: link_ledger(&flows),
        conservation: cluster.flow_conservation(),
        wait_by_cause: wait_by_cause.into_iter().collect(),
        exposed_by_cause: exposed_by_cause.into_iter().collect(),
        steps,
        flows,
        config: cfg,
    }
}

/// Render a row list as a JSON array (`[]` when empty, one row per line
/// otherwise).
fn json_rows(rows: &[String]) -> String {
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", rows.join(",\n"))
    }
}

/// `BENCH_flows.json`: schema `bonsai-flows-v1`, byte-deterministic per
/// seed.
pub fn flows_json(r: &FlowsResult) -> String {
    let c = &r.config;
    let total_wait = r.wait_total_s();
    let waits: Vec<String> = r
        .wait_by_cause
        .iter()
        .map(|(cause, secs)| {
            format!(
                "    {{\"cause\": \"{}\", \"seconds\": {}, \"share\": {}}}",
                cause,
                fmt_f64(*secs),
                fmt_f64(if total_wait > 0.0 { secs / total_wait } else { 0.0 })
            )
        })
        .collect();
    let exposed: Vec<String> = r
        .exposed_by_cause
        .iter()
        .map(|(cause, secs)| {
            format!(
                "    {{\"cause\": \"{}\", \"seconds\": {}}}",
                cause,
                fmt_f64(*secs)
            )
        })
        .collect();
    let links: Vec<String> = r
        .links
        .iter()
        .map(|l| {
            format!(
                "    {{\"link\": \"{}\", \"from\": {}, \"to\": {}, \"flows\": {}, \"bytes\": {}, \"attempts\": {}, \"retransmits\": {}, \"retransmit_ratio\": {}, \"delivered\": {}, \"fallback\": {}, \"dead\": {}, \"latency_p50\": {}, \"latency_p90\": {}, \"latency_p99\": {}, \"latency_max\": {}}}",
                l.label(),
                l.from,
                l.to,
                l.flows,
                l.bytes,
                l.attempts,
                l.retransmits,
                fmt_f64(l.retransmit_ratio()),
                l.delivered,
                l.fallback,
                l.dead,
                fmt_f64(l.latency_p50),
                fmt_f64(l.latency_p90),
                fmt_f64(l.latency_p99),
                fmt_f64(l.latency_max)
            )
        })
        .collect();
    let steps: Vec<String> = r
        .steps
        .iter()
        .map(|s| {
            format!(
                "    {{\"step\": {}, \"flows\": {}, \"retransmits\": {}, \"fallbacks\": {}, \"exposed_intervals\": {}, \"exposed_s\": {}, \"wait_s\": {}}}",
                s.step,
                s.flows,
                s.retransmits,
                s.fallbacks,
                s.exposed_intervals,
                fmt_f64(s.exposed_s),
                fmt_f64(s.wait_s)
            )
        })
        .collect();
    let k = &r.conservation;
    format!(
        "{{\n  \"schema\": \"bonsai-flows-v1\",\n  \"config\": {{\"n\": {}, \"ranks\": {}, \"steps\": {}, \"seed\": {}, \"mask_retransmits\": {}}},\n  \"conservation\": {{\"sealed\": {}, \"delivered\": {}, \"fallback\": {}, \"dead\": {}, \"pending\": {}, \"holds\": {}}},\n  \"wait_total_s\": {},\n  \"unattributed_fraction\": {},\n  \"wait_attribution\": {},\n  \"exposed\": {},\n  \"links\": {},\n  \"steps\": {}\n}}\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        c.mask_retransmits,
        k.sealed,
        k.delivered,
        k.fallback,
        k.dead,
        k.pending,
        k.holds(),
        fmt_f64(total_wait),
        fmt_f64(r.unattributed_fraction()),
        json_rows(&waits),
        json_rows(&exposed),
        json_rows(&links),
        json_rows(&steps)
    )
}

/// Cell shade for the link matrix: white (clean) → red (high retransmit
/// ratio).
fn ratio_color(ratio: f64) -> String {
    let t = (ratio * 2.5).clamp(0.0, 1.0);
    let g = (255.0 - t * 140.0) as u8;
    format!("#ff{g:02x}{g:02x}")
}

/// A tiny inline-SVG sparkline of a link's delivery-latency percentiles
/// (p50, p90, p99, max) as bars scaled against the run-wide worst latency.
fn latency_sparkline(l: &LinkStats, lat_max: f64) -> String {
    const W: f64 = 64.0;
    const H: f64 = 18.0;
    if lat_max <= 0.0 || l.delivered == 0 {
        return String::from("<span style=\"color:#a1a1aa\">—</span>");
    }
    let bars = [l.latency_p50, l.latency_p90, l.latency_p99, l.latency_max];
    let mut s = format!("<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\"><title>p50 {:.2} ms · p90 {:.2} ms · p99 {:.2} ms · max {:.2} ms</title>", l.latency_p50 * 1e3, l.latency_p90 * 1e3, l.latency_p99 * 1e3, l.latency_max * 1e3);
    for (i, v) in bars.iter().enumerate() {
        let h = (v / lat_max * (H - 2.0)).max(1.0);
        s.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"13\" height=\"{:.1}\" fill=\"#2563eb\" fill-opacity=\"{}\"/>",
            2.0 + i as f64 * 16.0,
            H - h,
            h,
            0.4 + 0.2 * i as f64
        ));
    }
    s.push_str("</svg>");
    s
}

/// `out/flows_report.html`: self-contained, zero JavaScript.
pub fn render_html(r: &FlowsResult) -> String {
    let c = &r.config;
    let mut s = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>bonsai message-flow report</title>\n<style>\n\
         body { font: 14px/1.5 system-ui, sans-serif; color: #18181b; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }\n\
         table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }\n\
         th, td { border: 1px solid #d4d4d8; padding: 0.25rem 0.6rem; text-align: right; }\n\
         th { background: #f4f4f5; } td.l, th.l { text-align: left; }\n\
         .ok { color: #16a34a; } .bad { color: #dc2626; }\n\
         </style>\n</head>\n<body>\n",
    );
    let k = &r.conservation;
    s.push_str(&format!(
        "<h1>Message-flow trace</h1>\n<p>{} particles × {} ranks × {} steps under the seeded \
         fault ladder (seed {}){}.</p>\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        if c.mask_retransmits {
            " — <strong>retransmits masked (sabotage run)</strong>"
        } else {
            ""
        }
    ));
    s.push_str(&format!(
        "<h2>Conservation</h2>\n<p class=\"{}\">{} sealed = {} delivered + {} fallback + {} dead \
         (+ {} pending) — {}</p>\n",
        if k.holds() { "ok" } else { "bad" },
        k.sealed,
        k.delivered,
        k.fallback,
        k.dead,
        k.pending,
        if k.holds() { "holds" } else { "VIOLATED" }
    ));

    // Wait attribution.
    let total_wait = r.wait_total_s();
    s.push_str(&format!(
        "<h2>Critical-path wait attribution</h2>\n\
         <p>{:.4} ms of critical-path waits, {:.2}% unattributed.</p>\n\
         <table>\n<tr><th class=\"l\">cause</th><th>seconds</th><th>share</th></tr>\n",
        total_wait * 1e3,
        100.0 * r.unattributed_fraction()
    ));
    for (cause, secs) in &r.wait_by_cause {
        s.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{:.6}</td><td>{:.1}%</td></tr>\n",
            cause,
            secs,
            if total_wait > 0.0 { 100.0 * secs / total_wait } else { 0.0 }
        ));
    }
    s.push_str("</table>\n");
    if !r.exposed_by_cause.is_empty() {
        s.push_str(
            "<h3>Exposed communication by cause</h3>\n\
             <table>\n<tr><th class=\"l\">cause</th><th>seconds</th></tr>\n",
        );
        for (cause, secs) in &r.exposed_by_cause {
            s.push_str(&format!(
                "<tr><td class=\"l\">{cause}</td><td>{secs:.6}</td></tr>\n"
            ));
        }
        s.push_str("</table>\n");
    }

    // Per-link matrix: rows = sender, columns = receiver.
    s.push_str(
        "<h2>Link matrix</h2>\n<p>Cells show flows sealed / retransmit ratio; shading tracks \
         the retransmit ratio.</p>\n<table>\n<tr><th class=\"l\">from \\ to</th>",
    );
    for to in 0..c.ranks {
        s.push_str(&format!("<th>{to}</th>"));
    }
    s.push_str("</tr>\n");
    for from in 0..c.ranks {
        s.push_str(&format!("<tr><th class=\"l\">{from}</th>"));
        for to in 0..c.ranks {
            match r.links.iter().find(|l| l.from == from && l.to == to) {
                Some(l) => s.push_str(&format!(
                    "<td style=\"background:{}\">{} / {:.2}</td>",
                    ratio_color(l.retransmit_ratio()),
                    l.flows,
                    l.retransmit_ratio()
                )),
                None => s.push_str("<td style=\"color:#a1a1aa\">·</td>"),
            }
        }
        s.push_str("</tr>\n");
    }
    s.push_str("</table>\n");

    // Full link ledger with latency sparklines.
    let lat_max = r.links.iter().map(|l| l.latency_max).fold(0.0_f64, f64::max);
    s.push_str(
        "<h2>Link ledger</h2>\n<table>\n<tr><th class=\"l\">link</th><th>flows</th>\
         <th>bytes</th><th>attempts</th><th>retx</th><th>delivered</th><th>fallback</th>\
         <th>dead</th><th>p50 ms</th><th>p90 ms</th><th>p99 ms</th><th>max ms</th><th class=\"l\">latency</th></tr>\n",
    );
    for l in &r.links {
        s.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td>\
             <td>{:.3}</td><td class=\"l\">{}</td></tr>\n",
            l.label(),
            l.flows,
            l.bytes,
            l.attempts,
            l.retransmits,
            l.delivered,
            l.fallback,
            l.dead,
            l.latency_p50 * 1e3,
            l.latency_p90 * 1e3,
            l.latency_p99 * 1e3,
            l.latency_max * 1e3,
            latency_sparkline(l, lat_max)
        ));
    }
    s.push_str("</table>\n");

    // Per-step digest.
    s.push_str(
        "<h2>Per-step digest</h2>\n<table>\n<tr><th>step</th><th>flows</th><th>retx</th>\
         <th>fallbacks</th><th>exposed intervals</th><th>exposed ms</th><th>wait ms</th></tr>\n",
    );
    for st in &r.steps {
        s.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td></tr>\n",
            st.step,
            st.flows,
            st.retransmits,
            st.fallbacks,
            st.exposed_intervals,
            st.exposed_s * 1e3,
            st.wait_s * 1e3
        ));
    }
    s.push_str("</table>\n</body>\n</html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlowsBenchConfig {
        FlowsBenchConfig {
            n: 1_200,
            ranks: 3,
            steps: 4,
            seed: 7,
            mask_retransmits: false,
        }
    }

    #[test]
    fn exports_are_deterministic_and_self_contained() {
        let a = run(tiny());
        let b = run(tiny());
        assert_eq!(flows_json(&a), flows_json(&b), "JSON not byte-stable");
        assert_eq!(render_html(&a), render_html(&b), "HTML not byte-stable");
        let html = render_html(&a);
        assert!(!html.contains("<script"), "report must be zero-JS");
        assert!(html.contains("<svg"));
        assert!(html.contains("Critical-path wait attribution"));
        assert!(html.contains("Link matrix"));
    }

    #[test]
    fn json_parses_and_the_ledger_conserves_flows() {
        let r = run(tiny());
        let v = bonsai_obs::json::parse(&flows_json(&r)).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-flows-v1"));
        assert!(
            matches!(
                v.get("conservation").unwrap().get("holds").unwrap(),
                bonsai_obs::json::Value::Bool(true)
            ),
            "every sealed flow must resolve: {:?}",
            r.conservation
        );
        // Under the bench fault ladder retransmissions are guaranteed.
        let retx: f64 = v
            .get("links")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|l| l.get("retransmits").unwrap().as_f64().unwrap())
            .sum();
        assert!(retx > 0.0, "fault ladder produced no retransmissions");
        // Every critical-path wait second lands in a named cause bucket.
        let frac = v.get("unattributed_fraction").unwrap().as_f64().unwrap();
        assert!(frac < 0.05, "unattributed fraction {frac} ≥ 5%");
        assert!(!v.get("wait_attribution").unwrap().as_arr().unwrap().is_empty());
        assert!(!v.get("steps").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn masking_retransmits_is_caught_by_the_artifact() {
        let honest = run(tiny());
        let masked = run(FlowsBenchConfig {
            mask_retransmits: true,
            ..tiny()
        });
        assert_ne!(flows_json(&honest), flows_json(&masked));
        let total_retx = |r: &FlowsResult| -> u64 { r.links.iter().map(|l| l.retransmits).sum() };
        assert!(total_retx(&honest) > 0);
        assert_eq!(total_retx(&masked), 0, "mask must hide every retransmit");
    }
}
