//! Scaling-sweep driver and regression gate (`obs_scaling`).
//!
//! Runs the real distributed algorithm at a ladder of rank counts — weak
//! (fixed particles/rank) and strong (fixed total particles) — and reduces
//! each step's span store through `bonsai-obs::analysis`: wall time,
//! critical path, per-phase imbalance, flop-balance residuals and parallel
//! efficiency. The result serializes to a byte-deterministic
//! `BENCH_scaling.json` and a self-contained zero-dependency HTML dashboard
//! with the Fig. 4-style efficiency curves.
//!
//! The JSON doubles as a perf contract: [`check_scaling`] compares a fresh
//! run against a checked-in baseline with per-metric tolerance bands
//! (exact for configuration, absolute for efficiencies and fractions,
//! relative for seconds), so CI fails when scaling regresses rather than
//! when a cosmetic field moves.

use bonsai_ic::plummer_sphere;
use bonsai_obs::analysis::{critical_path, flop_balance, phase_stats, step_wall_time};
use bonsai_obs::json::{fmt_f64, Value};
use bonsai_sim::trace::step_timelines;
use bonsai_sim::{Cluster, ClusterConfig};
use std::collections::BTreeMap;

/// Sweep configuration. The defaults are the checked-in baseline's shape:
/// small enough for CI, large enough that every rank count exercises the
/// full distributed pipeline (LET exchange, balancing, barrier waits).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// RNG seed for the initial conditions.
    pub seed: u64,
    /// Rank counts of both ladders.
    pub ranks: Vec<usize>,
    /// Weak sweep: particles per rank at every rung.
    pub weak_n_per_rank: usize,
    /// Strong sweep: total particles split across ranks.
    pub strong_total: usize,
    /// Synthetic wall-time multiplier applied to every rung except the
    /// smallest (1.0 = honest run). Exists so the regression gate's
    /// failure mode can be demonstrated in tests.
    pub slowdown: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            ranks: vec![1, 2, 4, 8],
            weak_n_per_rank: 2000,
            strong_total: 16_000,
            slowdown: 1.0,
        }
    }
}

/// One measured rung of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Rank count.
    pub p: usize,
    /// Particles per rank at this rung.
    pub n_per_rank: usize,
    /// Measured step wall-time (max span end − min span start), seconds.
    pub wall: f64,
    /// Critical-path seconds per phase (waits under `"wait"`).
    pub critical_phases: BTreeMap<String, f64>,
    /// Critical-path seconds doing work.
    pub work_seconds: f64,
    /// Critical-path seconds waiting on other ranks.
    pub wait_seconds: f64,
    /// Sum of critical-path node durations over wall time (1.0 by
    /// construction; the acceptance invariant).
    pub coverage: f64,
    /// Per-phase max/mean across ranks.
    pub phase_max_over_mean: BTreeMap<String, f64>,
    /// max/mean walk-flop residual from gravity-span annotations.
    pub flop_residual: f64,
    /// max/mean flop share the balancer *would* leave after re-cutting with
    /// `bonsai-domain::load::weighted_cuts` (the cross-check target).
    pub rebalance_residual: f64,
    /// Rank that set the step time (straggler attribution).
    pub worst_rank: u32,
    /// Mean hidden-communication fraction across ranks.
    pub hidden_comm: f64,
}

/// A full weak + strong sweep with derived efficiencies.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Configuration the sweep ran with.
    pub config: SweepConfig,
    /// Weak-scaling rungs.
    pub weak: Vec<SweepPoint>,
    /// Weak parallel efficiency per rung (T(p₀)/T(p)).
    pub weak_eff: Vec<f64>,
    /// Strong-scaling rungs.
    pub strong: Vec<SweepPoint>,
    /// Strong parallel efficiency per rung (p₀·T(p₀)/(p·T(p))).
    pub strong_eff: Vec<f64>,
}

/// Measure one rung: build a fresh cluster, run one step, reduce its span
/// store through the analysis layer.
fn measure_point(p: usize, n_per_rank: usize, seed: u64) -> SweepPoint {
    let mut cluster = Cluster::new(
        plummer_sphere(n_per_rank * p, seed),
        p,
        ClusterConfig::default(),
    );
    cluster.step();
    let store = cluster.trace();
    let step = store.last_step().expect("step recorded spans");
    let wall = step_wall_time(store, step).expect("step has wall time");
    let cp = critical_path(store, step).expect("critical path");
    let coverage = cp.total() / wall;

    let stats = phase_stats(store, step);
    let mut phase_max_over_mean = BTreeMap::new();
    for s in &stats {
        phase_max_over_mean.insert(s.phase.clone(), s.max_over_mean());
    }
    // The straggler is whoever owns the terminal work of the critical path.
    let worst_rank = cp.nodes.iter().rev().find(|n| !n.wait).map_or(0, |n| n.rank);
    let fb = flop_balance(store, step);
    let timelines = step_timelines(&cluster);
    let hidden = timelines
        .iter()
        .map(|t| t.hidden_comm_fraction())
        .sum::<f64>()
        / timelines.len().max(1) as f64;

    SweepPoint {
        p,
        n_per_rank,
        wall,
        critical_phases: cp.phase_seconds(),
        work_seconds: cp.work_seconds(),
        wait_seconds: cp.wait_seconds(),
        coverage,
        phase_max_over_mean,
        flop_residual: fb.as_ref().map_or(1.0, |f| f.residual),
        rebalance_residual: cluster.rebalance_residual(),
        worst_rank,
        hidden_comm: hidden,
    }
}

/// Run the weak and strong ladders of `cfg` and derive efficiencies.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let min_p = cfg.ranks.iter().copied().min().unwrap_or(1);
    let run = |points: Vec<(usize, usize)>| -> Vec<SweepPoint> {
        points
            .into_iter()
            .map(|(p, n)| {
                let mut pt = measure_point(p, n, cfg.seed);
                if p != min_p && cfg.slowdown != 1.0 {
                    pt.wall *= cfg.slowdown;
                }
                pt
            })
            .collect()
    };
    let weak = run(cfg.ranks.iter().map(|&p| (p, cfg.weak_n_per_rank)).collect());
    let strong = run(
        cfg.ranks
            .iter()
            .map(|&p| (p, (cfg.strong_total / p).max(1)))
            .collect(),
    );
    let eff = |pts: &[SweepPoint], strongly: bool| -> Vec<f64> {
        let points: Vec<bonsai_obs::ScalingPoint> = pts
            .iter()
            .map(|pt| bonsai_obs::ScalingPoint {
                p: pt.p as u32,
                n_per_rank: pt.n_per_rank as u64,
                wall: pt.wall,
            })
            .collect();
        if strongly {
            bonsai_obs::strong_efficiency(&points)
        } else {
            bonsai_obs::weak_efficiency(&points)
        }
    };
    let weak_eff = eff(&weak, false);
    let strong_eff = eff(&strong, true);
    SweepReport {
        config: cfg.clone(),
        weak,
        weak_eff,
        strong,
        strong_eff,
    }
}

fn json_map(m: &BTreeMap<String, f64>) -> String {
    let rows: Vec<String> = m
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", fmt_f64(*v)))
        .collect();
    format!("{{{}}}", rows.join(", "))
}

fn json_point(pt: &SweepPoint) -> String {
    format!(
        "    {{\n      \"p\": {}, \"n_per_rank\": {},\n      \"wall_seconds\": {},\n      \
         \"critical\": {{\"coverage\": {}, \"work_seconds\": {}, \"wait_seconds\": {}, \
         \"phase_seconds\": {}}},\n      \"imbalance\": {{\"flop_residual\": {}, \
         \"rebalance_residual\": {}, \"worst_rank\": {}, \"phase_max_over_mean\": {}}},\n      \
         \"hidden_comm_fraction\": {}\n    }}",
        pt.p,
        pt.n_per_rank,
        fmt_f64(pt.wall),
        fmt_f64(pt.coverage),
        fmt_f64(pt.work_seconds),
        fmt_f64(pt.wait_seconds),
        json_map(&pt.critical_phases),
        fmt_f64(pt.flop_residual),
        fmt_f64(pt.rebalance_residual),
        pt.worst_rank,
        json_map(&pt.phase_max_over_mean),
        fmt_f64(pt.hidden_comm)
    )
}

/// Serialize a report to the byte-deterministic `BENCH_scaling.json` form.
pub fn scaling_json(r: &SweepReport) -> String {
    let eff = |v: &[f64]| -> String {
        let rows: Vec<String> = v.iter().map(|e| fmt_f64(*e)).collect();
        format!("[{}]", rows.join(", "))
    };
    let pts = |pts: &[SweepPoint]| -> String {
        let rows: Vec<String> = pts.iter().map(json_point).collect();
        format!("[\n{}\n  ]", rows.join(",\n"))
    };
    let ranks: Vec<String> = r.config.ranks.iter().map(|p| p.to_string()).collect();
    format!(
        "{{\n  \"schema\": \"bonsai-scaling-v1\",\n  \"config\": {{\"seed\": {}, \"ranks\": [{}], \
         \"weak_n_per_rank\": {}, \"strong_total\": {}}},\n  \"weak\": {{\n    \"points\": {},\n    \
         \"efficiency\": {}\n  }},\n  \"strong\": {{\n    \"points\": {},\n    \"efficiency\": {}\n  }}\n}}\n",
        r.config.seed,
        ranks.join(", "),
        r.config.weak_n_per_rank,
        r.config.strong_total,
        pts(&r.weak),
        eff(&r.weak_eff),
        pts(&r.strong),
        eff(&r.strong_eff)
    )
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// Tolerance band for one metric path.
enum Tol {
    /// Must match to the last bit (configuration, counts).
    Exact,
    /// |cur − base| ≤ bound (efficiencies, fractions — already normalized).
    Abs(f64),
    /// |cur − base| ≤ bound·max(|base|, floor) (seconds, residuals).
    Rel(f64),
}

/// Per-metric tolerance bands, keyed on the leaf's key name. Rationale:
/// efficiencies and fractions are already normalized to [0, 1]-ish scales,
/// so an absolute band (2 points of efficiency) reads directly as "how much
/// regression we accept"; raw seconds scale with the sweep size, so they
/// get a relative band; configuration and attribution must match exactly or
/// the comparison is meaningless.
fn tolerance(key: &str) -> Tol {
    if key == "p" || key == "n_per_rank" || key == "seed" || key == "ranks"
        || key == "weak_n_per_rank" || key == "strong_total"
    {
        Tol::Exact
    } else if key == "efficiency" || key == "hidden_comm_fraction" || key == "coverage" {
        Tol::Abs(0.02)
    } else if key.ends_with("residual") {
        Tol::Rel(0.05)
    } else {
        // Seconds-valued leaves (wall, work, wait, per-phase maps).
        Tol::Rel(0.05)
    }
}

/// Attribution fields: reported, but not gated (a tie between equal ranks
/// may break differently without being a regression).
fn skip_key(key: &str) -> bool {
    key == "worst_rank" || key == "schema"
}

fn compare(path: &str, key: &str, base: &Value, cur: &Value, out: &mut Vec<String>) {
    if skip_key(key) {
        return;
    }
    match (base, cur) {
        (Value::Obj(b), Value::Obj(c)) => {
            for (k, bv) in b {
                match c.get(k) {
                    Some(cv) => compare(&format!("{path}.{k}"), k, bv, cv, out),
                    None => out.push(format!("{path}.{k}: missing from current run")),
                }
            }
            for k in c.keys() {
                if !b.contains_key(k) {
                    out.push(format!("{path}.{k}: not in baseline (regenerate it)"));
                }
            }
        }
        (Value::Arr(b), Value::Arr(c)) => {
            if b.len() != c.len() {
                out.push(format!(
                    "{path}: length {} in baseline vs {} current",
                    b.len(),
                    c.len()
                ));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                compare(&format!("{path}[{i}]"), key, bv, cv, out);
            }
        }
        (Value::Num(b), Value::Num(c)) => {
            let ok = match tolerance(key) {
                Tol::Exact => b == c,
                Tol::Abs(t) => (b - c).abs() <= t,
                Tol::Rel(t) => (b - c).abs() <= t * b.abs().max(1e-9),
            };
            if !ok {
                out.push(format!("{path}: baseline {b} vs current {c} out of tolerance"));
            }
        }
        (Value::Str(b), Value::Str(c)) if b == c => {}
        (b, c) if b == c => {}
        _ => out.push(format!("{path}: baseline {base:?} vs current {cur:?} differ in kind")),
    }
}

/// Compare a fresh `BENCH_scaling.json` against the checked-in baseline.
/// Returns the list of tolerance violations (empty = gate passes).
pub fn check_scaling(baseline: &str, current: &str) -> Result<Vec<String>, String> {
    let b = bonsai_obs::json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let c = bonsai_obs::json::parse(current).map_err(|e| format!("current: {e}"))?;
    let mut out = Vec::new();
    compare("$", "", &b, &c, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// HTML dashboard
// ---------------------------------------------------------------------------

/// Map an efficiency curve to an SVG polyline over a fixed viewport.
fn polyline(points: &[(f64, f64)], x0: f64, y0: f64, w: f64, h: f64) -> String {
    let coords: Vec<String> = points
        .iter()
        .map(|&(fx, fy)| {
            format!(
                "{:.1},{:.1}",
                x0 + fx * w,
                y0 + (1.0 - fy.clamp(0.0, 1.3) / 1.3) * h
            )
        })
        .collect();
    coords.join(" ")
}

fn efficiency_chart(title: &str, ranks: &[usize], curves: &[(&str, &str, &[f64])]) -> String {
    // Viewport: 420×260, plot area 360×200 at (50, 20). X is log2(p),
    // normalized; Y is efficiency on [0, 1.3].
    let (x0, y0, w, h) = (50.0, 20.0, 360.0, 200.0);
    let lx = |p: usize| (p.max(1) as f64).log2();
    let span = (lx(*ranks.last().unwrap_or(&1)) - lx(ranks[0])).max(1e-9);
    let fx = |p: usize| (lx(p) - lx(ranks[0])) / span;
    let mut s = format!(
        "<svg viewBox=\"0 0 420 260\" width=\"420\" height=\"260\" role=\"img\" \
         aria-label=\"{title}\">\n<text x=\"210\" y=\"14\" text-anchor=\"middle\" \
         class=\"t\">{title}</text>\n"
    );
    // Gridlines + y labels at 0, 0.25, 0.5, 0.75, 1.0.
    for i in 0..=4 {
        let e = i as f64 * 0.25;
        let y = y0 + (1.0 - e / 1.3) * h;
        s.push_str(&format!(
            "<line x1=\"{x0}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" class=\"g\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" class=\"a\">{e:.2}</text>\n",
            x0 + w,
            x0 - 6.0,
            y + 4.0
        ));
    }
    // Ideal-efficiency line.
    let y1 = y0 + (1.0 - 1.0 / 1.3) * h;
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{y1:.1}\" x2=\"{:.1}\" y2=\"{y1:.1}\" class=\"ideal\"/>\n",
        x0 + w
    ));
    // X labels.
    for &p in ranks {
        let x = x0 + fx(p) * w;
        s.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"a\">{p}</text>\n",
            y0 + h + 16.0
        ));
    }
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"a\">ranks</text>\n",
        x0 + w / 2.0,
        y0 + h + 32.0
    ));
    for (name, color, eff) in curves {
        let pts: Vec<(f64, f64)> = ranks.iter().zip(eff.iter()).map(|(&p, &e)| (fx(p), e)).collect();
        s.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            polyline(&pts, x0, y0, w, h)
        ));
        for (i, &(px, py)) in pts.iter().enumerate() {
            s.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"><title>{name} p={} \
                 e={:.3}</title></circle>\n",
                x0 + px * w,
                y0 + (1.0 - py.clamp(0.0, 1.3) / 1.3) * h,
                ranks[i],
                eff[i]
            ));
        }
    }
    s.push_str("</svg>\n");
    s
}

fn point_table(title: &str, pts: &[SweepPoint]) -> String {
    let mut s = format!(
        "<h2>{title}</h2>\n<table>\n<tr><th>ranks</th><th>N/rank</th><th>wall s</th>\
         <th>critical work s</th><th>critical wait s</th><th>worst rank</th>\
         <th>flop residual</th><th>rebalance residual</th><th>hidden comm</th></tr>\n"
    );
    for pt in pts {
        s.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td><td>{:.4}</td><td>{}</td>\
             <td>{:.3}</td><td>{:.3}</td><td>{:.3}</td></tr>\n",
            pt.p,
            pt.n_per_rank,
            pt.wall,
            pt.work_seconds,
            pt.wait_seconds,
            pt.worst_rank,
            pt.flop_residual,
            pt.rebalance_residual,
            pt.hidden_comm
        ));
    }
    s.push_str("</table>\n");
    // Per-phase imbalance for the largest rung (where stragglers bite).
    if let Some(last) = pts.last() {
        s.push_str(&format!(
            "<h3>per-phase imbalance at {} ranks (max/mean over ranks)</h3>\n<table>\n\
             <tr><th>phase</th><th>max/mean</th><th>critical-path s</th></tr>\n",
            last.p
        ));
        for (phase, imb) in &last.phase_max_over_mean {
            s.push_str(&format!(
                "<tr><td>{phase}</td><td>{imb:.3}</td><td>{:.5}</td></tr>\n",
                last.critical_phases.get(phase).copied().unwrap_or(0.0)
            ));
        }
        s.push_str("</table>\n");
    }
    s
}

/// Render the self-contained HTML dashboard (no external assets, no JS).
pub fn render_html(r: &SweepReport) -> String {
    let mut s = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>bonsai scaling report</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:960px;color:#1a1a2e}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem} h3{font-size:1rem}\n\
         table{border-collapse:collapse;margin:0.5rem 0}\n\
         td,th{border:1px solid #cbd5e1;padding:4px 10px;text-align:right}\n\
         th{background:#eef2f7} .t{font:600 13px system-ui;fill:#1a1a2e}\n\
         .a{font:11px system-ui;fill:#556} .g{stroke:#e2e8f0}\n\
         .ideal{stroke:#94a3b8;stroke-dasharray:4 3}\n\
         .charts{display:flex;gap:1rem;flex-wrap:wrap}\n\
         .legend span{display:inline-block;margin-right:1.2rem}\n\
         .swatch{display:inline-block;width:12px;height:12px;border-radius:2px;\
         vertical-align:-1px;margin-right:4px}\n</style>\n</head>\n<body>\n\
         <h1>Scaling sweep — parallel efficiency &amp; cross-rank imbalance</h1>\n",
    );
    s.push_str(&format!(
        "<p>seed {}, ranks {:?}, weak {} particles/rank, strong {} total. Efficiency is \
         measured from step wall-times reduced out of the span store (Fig. 4 methodology); \
         the dashed line is ideal.</p>\n",
        r.config.seed, r.config.ranks, r.config.weak_n_per_rank, r.config.strong_total
    ));
    s.push_str("<div class=\"charts\">\n");
    s.push_str(&efficiency_chart(
        "Weak scaling efficiency T(p0)/T(p)",
        &r.config.ranks,
        &[("weak", "#2563eb", &r.weak_eff)],
    ));
    s.push_str(&efficiency_chart(
        "Strong scaling efficiency p0·T(p0)/(p·T(p))",
        &r.config.ranks,
        &[("strong", "#dc2626", &r.strong_eff)],
    ));
    s.push_str("</div>\n<p class=\"legend\"><span><span class=\"swatch\" style=\"background:#2563eb\"></span>weak</span><span><span class=\"swatch\" style=\"background:#dc2626\"></span>strong</span></p>\n");
    s.push_str(&point_table("Weak sweep (fixed particles per rank)", &r.weak));
    s.push_str(&point_table("Strong sweep (fixed total particles)", &r.strong));
    s.push_str(
        "<p>Critical-path coverage (node durations over measured wall time) is 1.000 by \
         construction on every rung; see <code>BENCH_scaling.json</code> for the full \
         per-phase decomposition and tolerance-gated fields.</p>\n</body>\n</html>\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            seed: 11,
            ranks: vec![1, 2],
            weak_n_per_rank: 600,
            strong_total: 1200,
            slowdown: 1.0,
        }
    }

    #[test]
    fn sweep_is_deterministic_and_covers_wall() {
        let a = run_sweep(&tiny_cfg());
        let b = run_sweep(&tiny_cfg());
        assert_eq!(scaling_json(&a), scaling_json(&b), "sweep must be byte-deterministic");
        for pt in a.weak.iter().chain(&a.strong) {
            assert!(
                (pt.coverage - 1.0).abs() < 0.01,
                "critical path must cover wall time within 1%, got {}",
                pt.coverage
            );
            assert!(pt.wall > 0.0 && pt.work_seconds > 0.0);
        }
        assert_eq!(a.weak_eff.len(), 2);
        assert!((a.weak_eff[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_parses_and_round_trips_fields() {
        let r = run_sweep(&tiny_cfg());
        let j = scaling_json(&r);
        let v = bonsai_obs::json::parse(&j).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-scaling-v1"));
        let weak = v.get("weak").unwrap();
        assert_eq!(weak.get("points").unwrap().as_arr().unwrap().len(), 2);
        let e = weak.get("efficiency").unwrap().as_arr().unwrap();
        assert_eq!(e[0].as_f64(), Some(r.weak_eff[0]));
    }

    #[test]
    fn check_passes_against_itself_and_fails_on_slowdown() {
        let r = run_sweep(&tiny_cfg());
        let j = scaling_json(&r);
        assert!(check_scaling(&j, &j).unwrap().is_empty());

        let mut slow_cfg = tiny_cfg();
        slow_cfg.slowdown = 1.5;
        let slow = scaling_json(&run_sweep(&slow_cfg));
        let viol = check_scaling(&j, &slow).unwrap();
        assert!(!viol.is_empty(), "50% slowdown must trip the gate");
        assert!(
            viol.iter().any(|v| v.contains("wall_seconds") || v.contains("efficiency")),
            "violations should name the regressed metrics: {viol:?}"
        );
    }

    #[test]
    fn check_flags_structure_drift() {
        let r = run_sweep(&tiny_cfg());
        let j = scaling_json(&r);
        let pruned = j.replace("\"hidden_comm_fraction\": ", "\"renamed_fraction\": ");
        let viol = check_scaling(&j, &pruned).unwrap();
        assert!(viol.iter().any(|v| v.contains("missing from current")));
        assert!(check_scaling("not json", &j).is_err());
    }

    #[test]
    fn html_is_self_contained() {
        let r = run_sweep(&tiny_cfg());
        let html = render_html(&r);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        // Zero external references: no scripts, no links, no imports.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert_eq!(render_html(&r), html, "render must be deterministic");
    }
}
