//! The roofline-profiler bench: a scaled Milky Way run whose trace is
//! reduced to (a) a per-kernel × per-rank roofline placement against the
//! device model's compute and bandwidth ceilings, (b) a signed per-term
//! residual fit of the measured step against the Table II analytic model,
//! and (c) a folded self/total span profile. Exported as the
//! byte-deterministic `BENCH_profile.json` (schema `bonsai-profile-v1`)
//! plus a zero-dependency `out/profile_report.html` with the roofline
//! scatter and the residual tables.
//!
//! The gate is self-testing: [`ProfileBenchConfig::sandbag`] multiplies
//! the gravity kernels' seconds before the reduction, so a sandbagged run
//! *must* diff against the honest baseline — CI runs it once to prove
//! `obs_diff` has teeth.

use bonsai_obs::json::fmt_f64;
use bonsai_obs::{
    folded_profile, roofline, telescoping_error, ProfileRow, RooflinePoint, TermResidual,
};
use bonsai_sim::profile::cost_model_attribution;
use bonsai_sim::{Cluster, ClusterConfig, ScalingModel, StepBreakdown};
use bonsai_util::units;

use crate::milky_way_snapshot;

/// The profile bench configuration.
#[derive(Clone, Debug)]
pub struct ProfileBenchConfig {
    /// Total particles of the scaled Milky Way model.
    pub n: usize,
    /// Logical ranks.
    pub ranks: usize,
    /// Steps to drive (the profile folds over all of them; the residual
    /// fit uses the last step's breakdown).
    pub steps: usize,
    /// IC seed.
    pub seed: u64,
    /// Gravity-kernel slowdown factor (1.0 = honest run). The CI
    /// self-test sets 1.5 to prove the diff gate fires.
    pub sandbag: f64,
}

impl Default for ProfileBenchConfig {
    fn default() -> Self {
        Self {
            n: 6_000,
            ranks: 4,
            steps: 6,
            seed: 2014,
            sandbag: 1.0,
        }
    }
}

/// Everything the exporters need from one completed profiling run.
pub struct ProfileResult {
    /// The configuration that produced it.
    pub config: ProfileBenchConfig,
    /// Per-kernel × per-rank roofline placements.
    pub roofline: Vec<RooflinePoint>,
    /// Signed measured-vs-model residuals, Table II order.
    pub residuals: Vec<TermResidual>,
    /// Folded self/total profile over rank × lane × span name.
    pub profile: Vec<ProfileRow>,
    /// Worst |Σ durations − lane extent| over (rank, step) GPU groups.
    pub telescoping_error_s: f64,
    /// The last step's measured breakdown (post-sandbag).
    pub breakdown: StepBreakdown,
}

/// Drive the run and reduce its trace.
pub fn run(cfg: ProfileBenchConfig) -> ProfileResult {
    let ic = milky_way_snapshot(cfg.n, cfg.seed);
    let mut ccfg = ClusterConfig::default();
    ccfg.g = units::G;
    ccfg.eps = 0.1 * (2.0e5_f64 / cfg.n as f64).powf(1.0 / 3.0);
    ccfg.dt = units::myr_to_internal(3.0);
    let mut cluster = Cluster::new(ic, cfg.ranks, ccfg.clone());
    let mut last = StepBreakdown::default();
    for _ in 0..cfg.steps {
        last = cluster.step();
    }

    // The sandbag hook: gravity kernels report `sandbag`× their modelled
    // seconds, both on the roofline (attained drops below the ceiling)
    // and in the measured breakdown (the gravity residuals go positive).
    let mut points = roofline(cluster.trace());
    for p in &mut points {
        if p.kernel == "local" || p.kernel == "lets" {
            p.seconds *= cfg.sandbag;
        }
    }
    last.gravity_local *= cfg.sandbag;
    last.gravity_lets *= cfg.sandbag;

    let model = ScalingModel::new(ccfg.machine);
    ProfileResult {
        roofline: points,
        residuals: cost_model_attribution(&last, &model),
        profile: folded_profile(cluster.trace()),
        telescoping_error_s: telescoping_error(cluster.trace()),
        breakdown: last,
        config: cfg,
    }
}

/// `BENCH_profile.json`: schema `bonsai-profile-v1`, byte-deterministic
/// per seed.
pub fn profile_json(r: &ProfileResult) -> String {
    let c = &r.config;
    let roofline: Vec<String> = r
        .roofline
        .iter()
        .map(|p| {
            format!(
                "    {{\"kernel\": \"{}\", \"rank\": {}, \"count\": {}, \"seconds\": {}, \"flops\": {}, \"bytes\": {}, \"occupancy\": {}, \"intensity\": {}, \"attained_gflops\": {}, \"compute_ceiling_gflops\": {}, \"bandwidth_ceiling_gflops\": {}, \"binding_ceiling\": \"{}\", \"attained_fraction\": {}}}",
                p.kernel,
                p.rank,
                p.count,
                fmt_f64(p.seconds),
                fmt_f64(p.flops),
                fmt_f64(p.bytes),
                fmt_f64(p.occupancy),
                fmt_f64(p.intensity()),
                fmt_f64(p.attained_gflops()),
                fmt_f64(p.compute_ceiling_gflops),
                fmt_f64(p.bandwidth_ceiling_gflops()),
                p.binding_ceiling(),
                fmt_f64(p.attained_fraction())
            )
        })
        .collect();
    let residuals: Vec<String> = r
        .residuals
        .iter()
        .map(|t| {
            format!(
                "    {{\"term\": \"{}\", \"measured_s\": {}, \"modelled_s\": {}, \"residual_s\": {}, \"relative\": {}}}",
                t.term,
                fmt_f64(t.measured_s),
                fmt_f64(t.modelled_s),
                fmt_f64(t.residual_s()),
                fmt_f64(t.relative())
            )
        })
        .collect();
    let profile: Vec<String> = r
        .profile
        .iter()
        .map(|row| {
            format!(
                "    {{\"rank\": {}, \"lane\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_s\": {}, \"self_s\": {}}}",
                row.rank,
                row.lane.name(),
                row.name,
                row.count,
                fmt_f64(row.total_s),
                fmt_f64(row.self_s)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-profile-v1\",\n  \"config\": {{\"n\": {}, \"ranks\": {}, \"steps\": {}, \"seed\": {}, \"sandbag\": {}}},\n  \"telescoping_error_s\": {},\n  \"step_total_s\": {},\n  \"roofline\": [\n{}\n  ],\n  \"residuals\": [\n{}\n  ],\n  \"profile\": [\n{}\n  ]\n}}\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        fmt_f64(c.sandbag),
        fmt_f64(r.telescoping_error_s),
        fmt_f64(r.breakdown.total()),
        roofline.join(",\n"),
        residuals.join(",\n"),
        profile.join(",\n")
    )
}

/// Colors of the two binding regimes (shared with the report legend).
fn regime_color(binding: &str) -> &'static str {
    if binding == "compute" {
        "#dc2626"
    } else {
        "#2563eb"
    }
}

/// The log-log roofline scatter as inline SVG: the device roof (bandwidth
/// diagonal meeting the compute ceiling) plus one point per kernel × rank,
/// colored by its binding regime.
fn roofline_svg(points: &[RooflinePoint]) -> String {
    const W: f64 = 560.0;
    const H: f64 = 360.0;
    const L: f64 = 56.0;
    const R: f64 = 16.0;
    const T: f64 = 18.0;
    const B: f64 = 40.0;
    let finite: Vec<&RooflinePoint> = points
        .iter()
        .filter(|p| p.intensity().is_finite() && p.attained_gflops() > 0.0)
        .collect();
    if finite.is_empty() {
        return String::from("<p>no finite roofline points</p>");
    }
    let roof = finite
        .iter()
        .map(|p| p.compute_ceiling_gflops)
        .fold(0.0_f64, f64::max);
    let bw = finite
        .iter()
        .map(|p| p.bandwidth_gbs)
        .fold(0.0_f64, f64::max);
    // Log bounds padded half a decade around the data and the ridge.
    let ridge = roof / bw;
    let xs: Vec<f64> = finite.iter().map(|p| p.intensity().log10()).collect();
    let ys: Vec<f64> = finite.iter().map(|p| p.attained_gflops().log10()).collect();
    let xmin = xs.iter().cloned().fold(ridge.log10(), f64::min) - 0.5;
    let xmax = xs.iter().cloned().fold(ridge.log10(), f64::max) + 0.5;
    let ymax = roof.log10() + 0.3;
    let ymin = ys.iter().cloned().fold(ymax - 3.0, f64::min) - 0.3;
    let px = |lx: f64| L + (lx - xmin) / (xmax - xmin) * (W - L - R);
    let py = |ly: f64| T + (ymax - ly) / (ymax - ymin) * (H - T - B);
    let mut s = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\n\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#ffffff\" stroke=\"#d4d4d8\"/>\n"
    );
    // Decade gridlines + labels.
    let mut d = xmin.ceil() as i64;
    while (d as f64) <= xmax {
        let x = px(d as f64);
        s.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{T}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#f1f1f4\"/>\n\
             <text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\" fill=\"#52525b\">1e{d}</text>\n",
            H - B,
            H - B + 16.0
        ));
        d += 1;
    }
    let mut d = ymin.ceil() as i64;
    while (d as f64) <= ymax {
        let y = py(d as f64);
        s.push_str(&format!(
            "<line x1=\"{L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#f1f1f4\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\" fill=\"#52525b\">1e{d}</text>\n",
            W - R,
            L - 6.0,
            y + 4.0
        ));
        d += 1;
    }
    // The roof: bandwidth diagonal up to the ridge, compute ceiling after.
    let ridge_lx = ridge.log10();
    let bw_y0 = (bw * 10f64.powf(xmin)).log10();
    s.push_str(&format!(
        "<polyline points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" fill=\"none\" stroke=\"#18181b\" stroke-width=\"1.5\"/>\n",
        px(xmin),
        py(bw_y0),
        px(ridge_lx),
        py(roof.log10()),
        px(xmax),
        py(roof.log10())
    ));
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#18181b\">{:.0} Gflop/s roof · {:.0} GB/s</text>\n",
        px(ridge_lx) + 8.0,
        py(roof.log10()) - 6.0,
        roof,
        bw
    ));
    // Points.
    for p in &finite {
        s.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{}\" fill-opacity=\"0.8\"><title>{} rank {}: {:.1} Gflop/s @ {:.2} flop/B ({} bound, {:.0}% of ceiling)</title></circle>\n",
            px(p.intensity().log10()),
            py(p.attained_gflops().log10()),
            regime_color(p.binding_ceiling()),
            p.kernel,
            p.rank,
            p.attained_gflops(),
            p.intensity(),
            p.binding_ceiling(),
            100.0 * p.attained_fraction()
        ));
    }
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#52525b\" text-anchor=\"middle\">arithmetic intensity (flop/byte)</text>\n",
        L + (W - L - R) / 2.0,
        H - 6.0
    ));
    s.push_str("</svg>\n");
    s
}

/// `out/profile_report.html`: self-contained, zero JavaScript.
pub fn render_html(r: &ProfileResult) -> String {
    let c = &r.config;
    let mut s = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>bonsai profile report</title>\n<style>\n\
         body { font: 14px/1.5 system-ui, sans-serif; color: #18181b; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }\n\
         table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }\n\
         th, td { border: 1px solid #d4d4d8; padding: 0.25rem 0.6rem; text-align: right; }\n\
         th { background: #f4f4f5; } td.l, th.l { text-align: left; }\n\
         .pos { color: #dc2626; } .neg { color: #16a34a; }\n\
         .chip { display: inline-block; width: 0.7em; height: 0.7em; border-radius: 50%; margin-right: 0.3em; }\n\
         </style>\n</head>\n<body>\n",
    );
    s.push_str(&format!(
        "<h1>Roofline profile</h1>\n<p>{} particles × {} ranks × {} steps (seed {}), \
         step total {:.4} ms, telescoping error {:.3} ns{}</p>\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        r.breakdown.total() * 1e3,
        r.telescoping_error_s * 1e9,
        if c.sandbag != 1.0 {
            format!(", <strong>sandbag ×{}</strong>", fmt_f64(c.sandbag))
        } else {
            String::new()
        }
    ));
    s.push_str("<h2>Roofline</h2>\n");
    s.push_str(&format!(
        "<p><span class=\"chip\" style=\"background:{}\"></span>compute-bound \
         <span class=\"chip\" style=\"background:{}\"></span>bandwidth-bound</p>\n",
        regime_color("compute"),
        regime_color("bandwidth")
    ));
    s.push_str(&roofline_svg(&r.roofline));
    s.push_str(
        "<table>\n<tr><th class=\"l\">kernel</th><th>rank</th><th>calls</th><th>seconds</th>\
         <th>attained Gflop/s</th><th class=\"l\">binding ceiling</th><th>ceiling Gflop/s</th>\
         <th>of ceiling</th></tr>\n",
    );
    for p in &r.roofline {
        s.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{:.3e}</td><td>{:.1}</td>\
             <td class=\"l\"><span class=\"chip\" style=\"background:{}\"></span>{}</td>\
             <td>{:.1}</td><td>{:.1}%</td></tr>\n",
            p.kernel,
            p.rank,
            p.count,
            p.seconds,
            p.attained_gflops(),
            regime_color(p.binding_ceiling()),
            p.binding_ceiling(),
            p.binding_ceiling_gflops(),
            100.0 * p.attained_fraction()
        ));
    }
    s.push_str("</table>\n");
    s.push_str(
        "<h2>Cost-model attribution</h2>\n\
         <p>Signed residual per Table II term: measured − modelled at the same \
         (ranks, particles/GPU) point. Positive (red) = slower than the calibrated model.</p>\n\
         <table>\n<tr><th class=\"l\">term</th><th>measured ms</th><th>modelled ms</th>\
         <th>residual ms</th><th>relative</th></tr>\n",
    );
    for t in &r.residuals {
        let cls = if t.residual_s() > 0.0 { "pos" } else { "neg" };
        s.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{:.4}</td><td>{:.4}</td>\
             <td class=\"{}\">{:+.4}</td><td class=\"{}\">{:+.1}%</td></tr>\n",
            t.term,
            t.measured_s * 1e3,
            t.modelled_s * 1e3,
            cls,
            t.residual_s() * 1e3,
            cls,
            100.0 * t.relative()
        ));
    }
    s.push_str("</table>\n");
    s.push_str(
        "<h2>Folded span profile</h2>\n\
         <table>\n<tr><th>rank</th><th class=\"l\">lane</th><th class=\"l\">span</th>\
         <th>calls</th><th>total ms</th><th>self ms</th></tr>\n",
    );
    for row in &r.profile {
        s.push_str(&format!(
            "<tr><td>{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td>\
             <td>{}</td><td>{:.4}</td><td>{:.4}</td></tr>\n",
            row.rank,
            row.lane.name(),
            row.name,
            row.count,
            row.total_s * 1e3,
            row.self_s * 1e3
        ));
    }
    s.push_str("</table>\n</body>\n</html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileBenchConfig {
        ProfileBenchConfig {
            n: 1_200,
            ranks: 3,
            steps: 3,
            seed: 7,
            sandbag: 1.0,
        }
    }

    #[test]
    fn exports_are_deterministic_and_self_contained() {
        let a = run(tiny());
        let b = run(tiny());
        assert_eq!(profile_json(&a), profile_json(&b), "JSON not byte-stable");
        assert_eq!(render_html(&a), render_html(&b), "HTML not byte-stable");
        let html = render_html(&a);
        assert!(!html.contains("<script"), "report must be zero-JS");
        assert!(html.contains("<svg"));
        assert!(html.contains("Cost-model attribution"));
    }

    #[test]
    fn json_parses_and_satisfies_the_roofline_invariants() {
        let r = run(tiny());
        let v = bonsai_obs::json::parse(&profile_json(&r)).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-profile-v1"));
        let points = v.get("roofline").unwrap().as_arr().unwrap();
        assert!(!points.is_empty());
        for p in points {
            let attained = p.get("attained_gflops").unwrap().as_f64().unwrap();
            let binding = p.get("binding_ceiling").unwrap().as_str().unwrap();
            assert!(binding == "compute" || binding == "bandwidth");
            let ceiling = match binding {
                "compute" => p.get("compute_ceiling_gflops").unwrap().as_f64().unwrap(),
                _ => p.get("bandwidth_ceiling_gflops").unwrap().as_f64().unwrap(),
            };
            assert!(
                attained <= ceiling * (1.0 + 1e-9),
                "attained {attained} above {binding} ceiling {ceiling}"
            );
            let frac = p.get("attained_fraction").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&frac));
        }
        // The GPU lanes telescope: per-kernel seconds sum to the span
        // extent within float noise.
        let tel = v.get("telescoping_error_s").unwrap().as_f64().unwrap();
        assert!(tel < 1e-9, "telescoping error {tel}");
        // All twelve Table II terms are attributed.
        assert_eq!(v.get("residuals").unwrap().as_arr().unwrap().len(), 12);
    }

    #[test]
    fn sandbagging_shows_up_as_a_positive_gravity_residual() {
        let honest = run(tiny());
        let slow = run(ProfileBenchConfig {
            sandbag: 1.5,
            ..tiny()
        });
        assert_ne!(profile_json(&honest), profile_json(&slow));
        let by_name = |r: &ProfileResult, n: &str| -> f64 {
            r.residuals
                .iter()
                .find(|t| t.term == n)
                .unwrap()
                .residual_s()
        };
        assert!(
            by_name(&slow, "gravity_local") > by_name(&honest, "gravity_local"),
            "sandbag must push the gravity_local residual up"
        );
        // And the sandbagged kernels fall further below their ceiling.
        let frac = |r: &ProfileResult| -> f64 {
            r.roofline
                .iter()
                .filter(|p| p.kernel == "local")
                .map(RooflinePoint::attained_fraction)
                .fold(0.0, f64::max)
        };
        assert!(frac(&slow) < frac(&honest));
    }
}
