//! The elastic-membership bench: a scaled Milky Way run with scripted
//! grow/shrink churn riding on a seeded message-fault plan, gated on the
//! three invariants a view change must preserve — the particle population
//! (exact id multiset), the energy budget, and force-field equivalence
//! against the serial oracle at the final positions. Exported as the
//! byte-deterministic `BENCH_membership.json` (schema
//! `bonsai-membership-v1`).
//!
//! The gate is self-testing: [`MembershipBenchConfig::drop_migrants`]
//! flips the cluster's sabotage hook so every migration silently discards
//! its outbound particles. A run under sabotage *must* fail the
//! conservation check — CI runs it once to prove the gate has teeth.

use bonsai_ic::MilkyWayModel;
use bonsai_net::fault::{FaultKind, FaultPlan};
use bonsai_net::RecoveryAction;
use bonsai_obs::json::fmt_f64;
use bonsai_sim::{
    AutoscaleConfig, Cluster, ClusterConfig, LongRunConfig, RecoveryConfig, ScaleDecision,
};
use bonsai_util::units;
use bonsai_verify::{acceleration_diff, equivalence_band, serial_reference, ErrorPercentiles};

/// The membership bench configuration.
#[derive(Clone, Debug)]
pub struct MembershipBenchConfig {
    /// Total particles of the scaled Milky Way model.
    pub n: usize,
    /// Initial logical ranks.
    pub ranks: usize,
    /// Steps to drive.
    pub steps: usize,
    /// IC + fault-plan seed.
    pub seed: u64,
    /// A scripted view change fires after every `churn_every`-th step.
    pub churn_every: usize,
    /// Background drop/duplicate/corrupt rate on every message kind.
    pub fault_rate: f64,
    /// Sabotage hook: discard every migrated particle (the gate self-test).
    pub drop_migrants: bool,
}

impl Default for MembershipBenchConfig {
    fn default() -> Self {
        Self {
            n: 2_000,
            ranks: 4,
            steps: 24,
            seed: 2014,
            churn_every: 4,
            fault_rate: 0.02,
            drop_migrants: false,
        }
    }
}

/// The scripted churn cycle: net-zero over a full period so the run's
/// world size stays bounded regardless of step count.
const CHURN: [(bool, usize); 4] = [(true, 2), (false, 1), (true, 1), (false, 2)];

/// Everything the exporter and the gate need from one completed run.
pub struct MembershipResult {
    /// The configuration that produced it.
    pub config: MembershipBenchConfig,
    /// Final simulated time in Gyr.
    pub time_gyr: f64,
    /// Final relative energy drift.
    pub energy_drift: f64,
    /// Final world size.
    pub ranks_final: usize,
    /// Particles lost (0 unless sabotaged).
    pub lost_particles: usize,
    /// Whether the surviving ids are exactly the initial multiset.
    pub ids_intact: bool,
    /// Per-change audit rows from the cluster's membership log.
    pub view_changes: Vec<bonsai_net::ViewChange>,
    /// Autoscale decisions the policy ordered (step, decision).
    pub decisions: Vec<(u64, ScaleDecision)>,
    /// View-change recovery actions in the fault log.
    pub view_change_recoveries: usize,
    /// Force-field difference vs the serial oracle at the final positions
    /// (`None` when particles were lost — the diff would be meaningless).
    pub equivalence: Option<ErrorPercentiles>,
    /// Whether the equivalence diff sits inside the distributed band.
    pub equivalence_ok: bool,
    /// Whether the energy drift stayed inside the gate band.
    pub drift_ok: bool,
}

impl MembershipResult {
    /// The gate verdict: conservation AND energy AND equivalence.
    pub fn passed(&self) -> bool {
        self.lost_particles == 0 && self.ids_intact && self.drift_ok && self.equivalence_ok
    }
}

/// Drive the run: scripted churn every `churn_every` steps over a faulty
/// fabric, then evaluate the gate invariants on the final state.
pub fn run(cfg: MembershipBenchConfig) -> MembershipResult {
    let ic = MilkyWayModel::paper().generate(cfg.n, cfg.seed);
    let mut ccfg = ClusterConfig::default();
    ccfg.g = units::G;
    ccfg.eps = 0.1 * (2.0e5_f64 / cfg.n as f64).powf(1.0 / 3.0);
    ccfg.dt = units::myr_to_internal(3.0);
    let mut plan = FaultPlan::new(cfg.seed);
    for kind in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Corrupt] {
        plan = plan.with_rate(kind, cfg.fault_rate);
    }
    let dir = std::env::temp_dir().join(format!("bonsai_membership_bench_{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = Cluster::with_faults(
        ic,
        cfg.ranks,
        ccfg.clone(),
        plan,
        Some(RecoveryConfig {
            dir,
            every: cfg.churn_every as u64,
        }),
    );
    cluster.set_drop_migrants(cfg.drop_migrants);
    let baseline = cluster.energy_report();
    cluster.enable_longrun(LongRunConfig::default());
    // The policy is live (its decisions land in the JSON) but its idle
    // shrink is disabled so the scripted churn stays the only planned
    // driver of world-size change — the run must be reproducible from the
    // config alone.
    cluster.enable_autoscale(AutoscaleConfig {
        idle_particles_per_rank: 0.0,
        ..AutoscaleConfig::default()
    });

    let mut cycle = 0usize;
    for step in 0..cfg.steps {
        cluster.step();
        if cfg.churn_every > 0 && (step + 1) % cfg.churn_every == 0 {
            let (grow, k) = CHURN[cycle % CHURN.len()];
            cycle += 1;
            if grow {
                cluster.admit_ranks(k);
            } else if cluster.rank_count() > k {
                cluster.retire_ranks(k);
            }
        }
    }

    let energy_drift = cluster.energy_report().drift_from(&baseline);
    let lost_particles = cfg.n.saturating_sub(cluster.total_particles());
    let ids_intact = {
        let mut ids = cluster.gather().id;
        ids.sort_unstable();
        ids == (0..cfg.n as u64).collect::<Vec<u64>>()
    };
    let (equivalence, equivalence_ok) = if lost_particles == 0 && ids_intact {
        let reference = serial_reference(&cluster.gather(), &ccfg);
        let diff = acceleration_diff(&cluster.accelerations_by_id(), &reference);
        let ok = equivalence_band(ccfg.theta, cluster.rank_count())
            .violation(&diff)
            .is_none();
        (Some(diff), ok)
    } else {
        (None, false)
    };
    MembershipResult {
        time_gyr: units::internal_to_gyr(cluster.time()),
        energy_drift,
        ranks_final: cluster.rank_count(),
        lost_particles,
        ids_intact,
        view_changes: cluster.membership_log().changes().to_vec(),
        decisions: cluster
            .autoscale()
            .map(|p| p.decisions().to_vec())
            .unwrap_or_default(),
        view_change_recoveries: cluster
            .fault_log()
            .recoveries_of(RecoveryAction::ViewChange),
        equivalence,
        equivalence_ok,
        drift_ok: energy_drift.abs() < 0.05,
        config: cfg,
    }
}

/// `BENCH_membership.json`: schema `bonsai-membership-v1`, byte-
/// deterministic per seed.
pub fn membership_json(r: &MembershipResult) -> String {
    let c = &r.config;
    let changes: Vec<String> = r
        .view_changes
        .iter()
        .map(|ch| {
            format!(
                "    {{\"epoch\": {}, \"from_view\": {}, \"to_view\": {}, \"from_world\": {}, \"to_world\": {}, \"rounds\": {}, \"migrated_particles\": {}, \"migrated_bytes\": {}}}",
                ch.epoch,
                ch.from_view,
                ch.to_view,
                ch.from_world,
                ch.to_world,
                ch.rounds,
                ch.migrated_particles,
                ch.migrated_bytes
            )
        })
        .collect();
    let decisions: Vec<String> = r
        .decisions
        .iter()
        .map(|(step, d)| format!("    {{\"step\": {step}, \"decision\": \"{d}\"}}"))
        .collect();
    let equivalence = match &r.equivalence {
        Some(d) => format!(
            "{{\"median\": {}, \"p95\": {}, \"max\": {}}}",
            fmt_f64(d.median),
            fmt_f64(d.p95),
            fmt_f64(d.max)
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"bonsai-membership-v1\",\n  \"config\": {{\"n\": {}, \"ranks\": {}, \"steps\": {}, \"seed\": {}, \"churn_every\": {}, \"fault_rate\": {}, \"drop_migrants\": {}}},\n  \"final\": {{\"time_gyr\": {}, \"energy_drift\": {}, \"ranks\": {}, \"lost_particles\": {}, \"ids_intact\": {}}},\n  \"view_changes\": [\n{}\n  ],\n  \"autoscale_decisions\": [\n{}\n  ],\n  \"view_change_recoveries\": {},\n  \"equivalence\": {},\n  \"gate\": {{\"conserved\": {}, \"drift_ok\": {}, \"equivalence_ok\": {}, \"passed\": {}}}\n}}\n",
        c.n,
        c.ranks,
        c.steps,
        c.seed,
        c.churn_every,
        fmt_f64(c.fault_rate),
        c.drop_migrants,
        fmt_f64(r.time_gyr),
        fmt_f64(r.energy_drift),
        r.ranks_final,
        r.lost_particles,
        r.ids_intact,
        changes.join(",\n"),
        decisions.join(",\n"),
        r.view_change_recoveries,
        equivalence,
        r.lost_particles == 0 && r.ids_intact,
        r.drift_ok,
        r.equivalence_ok,
        r.passed()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MembershipBenchConfig {
        MembershipBenchConfig {
            n: 800,
            ranks: 3,
            steps: 12,
            seed: 11,
            churn_every: 3,
            fault_rate: 0.02,
            drop_migrants: false,
        }
    }

    #[test]
    fn clean_run_passes_the_gate_and_churns() {
        let r = run(tiny());
        assert!(r.passed(), "gate failed: drift {}, eq {:?}", r.energy_drift, r.equivalence);
        assert_eq!(r.lost_particles, 0);
        assert!(r.view_changes.len() >= 3, "churn script barely ran: {:?}", r.view_changes.len());
        assert!(r.view_change_recoveries >= r.view_changes.len());
        // The final world honours the net-zero churn cycle's bounds
        // (start 3, script peaks at 5).
        assert!(r.ranks_final >= 3 && r.ranks_final <= 5, "world {}", r.ranks_final);
    }

    #[test]
    fn sabotaged_run_fails_conservation() {
        let r = run(MembershipBenchConfig {
            drop_migrants: true,
            ..tiny()
        });
        assert!(r.lost_particles > 0, "sabotage lost nothing — the gate is vacuous");
        assert!(!r.passed(), "gate passed a run that lost particles");
        assert!(r.equivalence.is_none());
    }

    #[test]
    fn json_is_byte_deterministic_and_parses() {
        let a = membership_json(&run(tiny()));
        let b = membership_json(&run(tiny()));
        assert_eq!(a, b, "same seed produced different BENCH_membership.json");
        let v = bonsai_obs::json::parse(&a).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bonsai-membership-v1"));
        let gate = v.get("gate").unwrap();
        assert_eq!(
            gate.get("passed").unwrap(),
            &bonsai_obs::json::Value::Bool(true)
        );
        assert!(!v.get("view_changes").unwrap().as_arr().unwrap().is_empty());
    }
}
