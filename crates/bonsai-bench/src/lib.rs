//! # bonsai-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! SC'14 paper. Each target is a standalone binary:
//!
//! | target | paper artefact |
//! |---|---|
//! | `table1_hardware` | Table I — machine descriptions |
//! | `fig1_force_kernel` | Fig. 1 — force-kernel Gflops bars |
//! | `fig2_decomposition` | Fig. 2 — PH-SFC domain decomposition image |
//! | `fig3_galaxy` | Fig. 3 — Milky Way surface density + velocity structure |
//! | `fig4_weak_scaling` | Fig. 4 — weak scaling on Piz Daint and Titan |
//! | `table2_breakdown` | Table II — per-phase time breakdown |
//! | `time_to_solution` | §VI-C — days to 8 Gyr at full scale |
//! | `ablation_*` | design-choice studies listed in DESIGN.md |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the hot CPU kernels:
//! force kernels, tree construction and SFC key generation.
//!
//! This library hosts the shared workload builders and the paper-vs-measured
//! report formatting used by all targets.

#![deny(missing_docs)]

pub mod artifact;
pub mod diff;
pub mod flows;
pub mod longrun;
pub mod membership;
pub mod parallel;
pub mod profile;
pub mod report;
pub mod scaling;
pub mod stream;
pub mod stream_dash;

use bonsai_ic::MilkyWayModel;
use bonsai_tree::Particles;

/// Default output directory for generated artifacts (PPM/CSV).
pub const OUT_DIR: &str = "out";

/// Ensure the artifact directory exists and return its path.
pub fn out_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from(OUT_DIR);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// A scaled Milky Way snapshot: the standard workload of the performance
/// figures (the paper uses its MW model for all measurements, §VI-B).
pub fn milky_way_snapshot(n: usize, seed: u64) -> Particles {
    MilkyWayModel::paper().generate(n, seed)
}

/// Parse `--flag value` style integer arguments with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Parse `--flag value` style float arguments with a default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Parse a `--flag value` string argument.
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Whether a bare `--flag` is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One line of a paper-vs-reproduction comparison.
pub struct Compared {
    /// What is being compared.
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our value.
    pub ours: f64,
    /// Unit suffix.
    pub unit: &'static str,
}

impl Compared {
    /// Build a row.
    pub fn new(label: impl Into<String>, paper: f64, ours: f64, unit: &'static str) -> Self {
        Self {
            label: label.into(),
            paper,
            ours,
            unit,
        }
    }

    /// Relative deviation from the paper value.
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.ours - self.paper) / self.paper
        }
    }
}

/// Print a formatted paper-vs-ours table.
pub fn print_comparison(title: &str, rows: &[Compared]) {
    println!("\n── {title} ──");
    println!("{:<42} {:>12} {:>12} {:>8}", "quantity", "paper", "ours", "dev");
    for r in rows {
        println!(
            "{:<42} {:>9.3} {:<2} {:>9.3} {:<2} {:>7.1}%",
            r.label,
            r.paper,
            r.unit,
            r.ours,
            r.unit,
            100.0 * r.deviation()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_requested_size() {
        let p = milky_way_snapshot(1000, 1);
        assert_eq!(p.len(), 1000);
        p.validate().unwrap();
    }

    #[test]
    fn comparison_math() {
        let c = Compared::new("x", 2.0, 2.2, "s");
        assert!((c.deviation() - 0.1).abs() < 1e-12);
        let z = Compared::new("x", 0.0, 1.0, "s");
        assert_eq!(z.deviation(), 0.0);
    }

    #[test]
    fn out_dir_created() {
        let d = out_dir();
        assert!(d.exists());
    }
}
