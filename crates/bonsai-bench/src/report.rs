//! Structural checks for the zero-dependency HTML reports.
//!
//! Every bench bin writes an `out/*_report.html` dashboard whose contract
//! is: fully self-contained (no scripts, stylesheets, images, or external
//! references — the file must render offline from a plain `file://` open)
//! and carrying its required sections. CI byte-compares the reports across
//! double runs, but a byte-compare only proves *stability*, not *shape*:
//! a report that deterministically renders empty passes it. The
//! [`check_html`] rules plus the per-report [`REPORTS`] markers close that
//! gap, and the `check_reports` bin runs them as a gate.

/// One report's contract: file name under `out/` and the section markers
/// it must contain.
pub struct ReportSpec {
    /// File name under `out/`.
    pub file: &'static str,
    /// Substrings the report must contain.
    pub markers: &'static [&'static str],
}

/// Every report the bench suite emits, with its required section markers.
pub const REPORTS: [ReportSpec; 5] = [
    ReportSpec {
        file: "longrun_report.html",
        markers: &[
            "<h2>Membership</h2>",
            "<h2>Incidents</h2>",
            "<h2>Alert log</h2>",
            "<h2>Run rollups</h2>",
            "bonsai_energy_drift",
        ],
    },
    ReportSpec {
        file: "profile_report.html",
        markers: &[
            "<h2>Roofline</h2>",
            "<h2>Cost-model attribution</h2>",
            "<h2>Folded span profile</h2>",
        ],
    },
    ReportSpec {
        file: "flows_report.html",
        markers: &[
            "<h2>Conservation</h2>",
            "<h2>Critical-path wait attribution</h2>",
            "<h2>Link matrix</h2>",
            "<h2>Link ledger</h2>",
            "<h2>Per-step digest</h2>",
        ],
    },
    ReportSpec {
        file: "scaling_report.html",
        markers: &[
            "<h2>Weak sweep (fixed particles per rank)</h2>",
            "<h2>Strong sweep (fixed total particles)</h2>",
        ],
    },
    ReportSpec {
        file: "stream_report.html",
        markers: &[
            "<h2>Live gauges</h2>",
            "<h2>Subscribers</h2>",
            "<h2>Observability overhead</h2>",
            "<h2>Alerts</h2>",
        ],
    },
];

/// Check one report's structure. Returns every violated rule (empty =
/// clean): the document must start with an HTML5 doctype, close its
/// `<html>`, and contain no scripts, external stylesheets, images, or
/// schemeful URLs.
pub fn check_html(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !text.starts_with("<!DOCTYPE html>") {
        violations.push("missing <!DOCTYPE html> prologue".to_string());
    }
    if !text.contains("</html>") {
        violations.push("unclosed document (no </html>)".to_string());
    }
    for (needle, rule) in [
        ("<script", "embedded script"),
        ("<link", "external stylesheet reference"),
        ("<img", "image reference"),
        ("<iframe", "embedded frame"),
        ("http://", "external http reference"),
        ("https://", "external https reference"),
    ] {
        if text.contains(needle) {
            violations.push(format!("{rule} (`{needle}`)"));
        }
    }
    violations
}

/// Check one report against its spec: structure plus required markers.
pub fn check_report(spec: &ReportSpec, text: &str) -> Vec<String> {
    let mut violations = check_html(text);
    for marker in spec.markers {
        if !text.contains(marker) {
            violations.push(format!("missing required section marker `{marker}`"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "<!DOCTYPE html>\n<html><body><h2>X</h2></body></html>\n";

    #[test]
    fn clean_document_passes() {
        assert!(check_html(GOOD).is_empty());
    }

    #[test]
    fn structural_violations_are_reported() {
        assert!(!check_html("<html></html>").is_empty(), "no doctype");
        assert!(!check_html("<!DOCTYPE html><html>").is_empty(), "unclosed");
        for bad in [
            "<script>alert(1)</script>",
            "<link rel=\"stylesheet\" href=\"x.css\">",
            "<img src=\"x.png\">",
            "<iframe></iframe>",
            "see http://example.com",
            "see https://example.com",
        ] {
            let doc = format!("<!DOCTYPE html>\n<html>{bad}</html>");
            assert!(!check_html(&doc).is_empty(), "{bad} must be rejected");
        }
    }

    #[test]
    fn missing_markers_are_reported() {
        let spec = ReportSpec {
            file: "x.html",
            markers: &["<h2>X</h2>", "<h2>Y</h2>"],
        };
        let v = check_report(&spec, GOOD);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("<h2>Y</h2>"));
    }

    #[test]
    fn specs_cover_every_emitted_report() {
        let files: Vec<&str> = REPORTS.iter().map(|r| r.file).collect();
        for f in [
            "longrun_report.html",
            "profile_report.html",
            "flows_report.html",
            "scaling_report.html",
            "stream_report.html",
        ] {
            assert!(files.contains(&f), "{f} missing from REPORTS");
        }
    }
}
