//! Thread-sweep bench: the observable proof that `bonsai-par` delivers
//! real parallelism *and* bit-determinism at the same time.
//!
//! The sweep runs the hot pipeline (tree build → group walk → direct
//! summation) on a Milky Way snapshot under dedicated pools of 1, 2, 4 and
//! 8 lanes, hashing every force buffer and every multipole. Two artifacts
//! come out of one run, split by determinism class:
//!
//! * `BENCH_parallel.json` — schema `bonsai-parallel-v1`, **byte-
//!   deterministic** on every machine and at every thread count: per-lane
//!   force/tree digests, interaction counts and the three gate verdicts.
//!   Wall-clock numbers are deliberately excluded so the artifact can sit
//!   under the CI double-run `cmp` gate.
//! * `out/parallel_timings.json` — the wall-clock speedup curve and
//!   efficiency per lane count. Machine-dependent, never byte-compared.
//!
//! The `speedup_ok` verdict scales its threshold by the machine's
//! available parallelism: on a ≥4-core host the issue's "≥ 2× at 4
//! threads" gate applies literally; on a 1-core CI container the pool
//! cannot beat the inline path, so the gate degrades to "no pathological
//! slowdown" instead of producing a vacuous failure.

use crate::milky_way_snapshot;
use bonsai_obs::json::fmt_f64;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::{Forces, Particles};
use rayon::ThreadPool;
use std::time::Instant;

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct ParallelBenchConfig {
    /// Particle count of the Milky Way snapshot.
    pub n: usize,
    /// Timed repetitions per lane count (best-of wall-clock is kept).
    pub reps: usize,
    /// IC seed.
    pub seed: u64,
    /// Lane counts to sweep.
    pub threads: Vec<usize>,
    /// Sabotage: build every pool with one lane regardless of the
    /// requested width. The structural `workers_ok` gate must then fail —
    /// this is the CI self-test proving the gate can fire.
    pub pin_one_thread: bool,
}

impl Default for ParallelBenchConfig {
    fn default() -> Self {
        Self {
            n: 4096,
            reps: 3,
            seed: 2014,
            threads: vec![1, 2, 4, 8],
            pin_one_thread: false,
        }
    }
}

/// One lane count's outcome, split into deterministic fields (digests,
/// counts, worker census) and the machine-dependent wall-clock.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Requested lane count.
    pub threads: usize,
    /// Worker threads the pool actually spawned (lanes − 1 when honest).
    pub workers: usize,
    /// FNV-1a digest over walk forces, direct forces and tree multipoles.
    pub digest: u64,
    /// Particle-particle interactions of the walk.
    pub pp: u64,
    /// Particle-cell interactions of the walk.
    pub pc: u64,
    /// Traversal stack pops of the walk.
    pub nodes_visited: u64,
    /// Best-of-`reps` wall-clock for the full pipeline (seconds).
    pub wall_s: f64,
}

/// The sweep outcome plus the three gate verdicts.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// One point per requested lane count, in sweep order.
    pub points: Vec<SweepPoint>,
    /// `std::thread::available_parallelism()` at run time.
    pub available_parallelism: usize,
    /// Number of distinct digests across the sweep (1 ⇔ deterministic).
    pub distinct_digests: usize,
    /// Every lane count produced the 1-lane bit pattern and stats.
    pub deterministic: bool,
    /// Every pool spawned exactly `threads − 1` workers.
    pub workers_ok: bool,
    /// Wall-clock speedup at the widest measured lane count cleared the
    /// machine-scaled threshold.
    pub speedup_ok: bool,
    /// The threshold `speedup_ok` was judged against.
    pub required_speedup: f64,
    /// Measured speedup of the widest lane count over 1 lane.
    pub measured_speedup: f64,
    /// The configuration that produced this result.
    pub config: ParallelBenchConfig,
}

impl ParallelResult {
    /// All three gates green.
    pub fn passed(&self) -> bool {
        self.deterministic && self.workers_ok && self.speedup_ok
    }
}

/// FNV-1a over a stream of u64 words.
fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn force_words(f: &Forces) -> impl Iterator<Item = u64> + '_ {
    f.acc
        .iter()
        .zip(&f.pot)
        .flat_map(|(a, &p)| [a.x.to_bits(), a.y.to_bits(), a.z.to_bits(), p.to_bits()])
}

struct PipelineOutcome {
    digest: u64,
    pp: u64,
    pc: u64,
    nodes_visited: u64,
}

/// The timed hot pipeline: build, walk, direct — exactly the three paths
/// the pool was wired through.
fn pipeline(ic: &Particles) -> PipelineOutcome {
    let tree = Tree::build(ic.clone(), TreeParams::default());
    let (walk_forces, stats) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01));
    let (direct_forces, _) = direct_self_forces(&tree.particles, 0.01, 1.0);
    let tree_words = tree.nodes.iter().flat_map(|n| {
        [
            n.com.x.to_bits(),
            n.com.y.to_bits(),
            n.com.z.to_bits(),
            n.mass.to_bits(),
        ]
        .into_iter()
        .chain(n.quad.m.iter().map(|q| q.to_bits()))
    });
    let digest = fnv1a(
        force_words(&walk_forces)
            .chain(force_words(&direct_forces))
            .chain(tree_words),
    );
    PipelineOutcome {
        digest,
        pp: stats.counts.pp,
        pc: stats.counts.pc,
        nodes_visited: stats.nodes_visited,
    }
}

/// Run the sweep.
pub fn run(cfg: ParallelBenchConfig) -> ParallelResult {
    assert!(!cfg.threads.is_empty(), "sweep needs at least one lane count");
    let ic = milky_way_snapshot(cfg.n, cfg.seed);
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut points = Vec::with_capacity(cfg.threads.len());
    for &t in &cfg.threads {
        let lanes = if cfg.pin_one_thread { 1 } else { t };
        let pool = ThreadPool::new(lanes);
        let workers = pool.workers();
        let mut best = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..cfg.reps.max(1) {
            let t0 = Instant::now();
            let o = pool.install(|| pipeline(&ic));
            best = best.min(t0.elapsed().as_secs_f64());
            outcome = Some(o);
        }
        let o = outcome.expect("at least one rep");
        points.push(SweepPoint {
            threads: t,
            workers,
            digest: o.digest,
            pp: o.pp,
            pc: o.pc,
            nodes_visited: o.nodes_visited,
            wall_s: best,
        });
    }

    let base = &points[0];
    let mut digests: Vec<u64> = points.iter().map(|p| p.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    let deterministic = digests.len() == 1
        && points
            .iter()
            .all(|p| (p.pp, p.pc, p.nodes_visited) == (base.pp, base.pc, base.nodes_visited));
    let workers_ok = points.iter().all(|p| p.workers == p.threads - 1);

    // Speedup gate at the widest lane count, threshold scaled to the
    // machine: ≥ 0.5 × min(threads, cores) — the issue's 2× at 4 threads
    // on a ≥4-core host, "don't be slower than inline" on a 1-core one.
    let widest = points.iter().max_by_key(|p| p.threads).expect("non-empty");
    let measured_speedup = if widest.wall_s > 0.0 {
        base.wall_s / widest.wall_s
    } else {
        0.0
    };
    let required_speedup = 0.5 * widest.threads.min(avail) as f64;
    let speedup_ok = measured_speedup >= required_speedup;

    ParallelResult {
        distinct_digests: digests.len(),
        points,
        available_parallelism: avail,
        deterministic,
        workers_ok,
        speedup_ok,
        required_speedup,
        measured_speedup,
        config: cfg,
    }
}

/// `BENCH_parallel.json`: schema `bonsai-parallel-v1`. Deterministic
/// content only — no wall-clock fields — so the document is byte-identical
/// across runs, machines and thread counts.
pub fn parallel_json(r: &ParallelResult) -> String {
    let c = &r.config;
    let threads: Vec<String> = c.threads.iter().map(|t| t.to_string()).collect();
    let sweep: Vec<String> = r
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"workers\": {}, \"force_digest\": \"{:016x}\", \"pp\": {}, \"pc\": {}, \"nodes_visited\": {}}}",
                p.threads, p.workers, p.digest, p.pp, p.pc, p.nodes_visited
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-parallel-v1\",\n  \"config\": {{\"n\": {}, \"reps\": {}, \"seed\": {}, \"threads\": [{}], \"pin_one_thread\": {}}},\n  \"sweep\": [\n{}\n  ],\n  \"distinct_digests\": {},\n  \"gate\": {{\"deterministic\": {}, \"workers_ok\": {}, \"passed\": {}}}\n}}\n",
        c.n,
        c.reps,
        c.seed,
        threads.join(", "),
        c.pin_one_thread,
        sweep.join(",\n"),
        r.distinct_digests,
        r.deterministic,
        r.workers_ok,
        r.deterministic && r.workers_ok
    )
}

/// `out/parallel_timings.json`: the machine-dependent half — wall-clock
/// curve, speedup, efficiency and the scaled speedup gate. Never
/// byte-compared by CI.
pub fn timings_json(r: &ParallelResult) -> String {
    let base_wall = r.points[0].wall_s;
    let rows: Vec<String> = r
        .points
        .iter()
        .map(|p| {
            let speedup = if p.wall_s > 0.0 { base_wall / p.wall_s } else { 0.0 };
            format!(
                "    {{\"threads\": {}, \"wall_s\": {}, \"speedup\": {}, \"efficiency\": {}}}",
                p.threads,
                fmt_f64(p.wall_s),
                fmt_f64(speedup),
                fmt_f64(speedup / p.threads as f64)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bonsai-parallel-timings-v1\",\n  \"available_parallelism\": {},\n  \"curve\": [\n{}\n  ],\n  \"speedup\": {{\"measured\": {}, \"required\": {}, \"ok\": {}}}\n}}\n",
        r.available_parallelism,
        rows.join(",\n"),
        fmt_f64(r.measured_speedup),
        fmt_f64(r.required_speedup),
        r.speedup_ok
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::parse_artifact;

    fn tiny() -> ParallelBenchConfig {
        ParallelBenchConfig {
            n: 400,
            reps: 1,
            seed: 7,
            threads: vec![1, 2, 4],
            pin_one_thread: false,
        }
    }

    #[test]
    fn sweep_is_deterministic_and_fully_staffed() {
        let r = run(tiny());
        assert!(r.deterministic, "digests diverged: {:#?}", r.points);
        assert!(r.workers_ok);
        assert_eq!(r.distinct_digests, 1);
        for (p, &t) in r.points.iter().zip(&[1usize, 2, 4]) {
            assert_eq!(p.threads, t);
            assert_eq!(p.workers, t - 1);
            assert!(p.pp > 0 && p.pc > 0);
        }
    }

    #[test]
    fn artifact_is_byte_identical_across_runs() {
        let a = parallel_json(&run(tiny()));
        let b = parallel_json(&run(tiny()));
        assert_eq!(a, b, "BENCH_parallel.json must be byte-deterministic");
        let art = parse_artifact(&a).unwrap();
        assert_eq!(art.kind, "parallel");
        assert_eq!(art.version, 1);
    }

    #[test]
    fn pin_one_thread_sabotage_trips_the_workers_gate() {
        let cfg = ParallelBenchConfig {
            pin_one_thread: true,
            ..tiny()
        };
        let r = run(cfg);
        assert!(!r.workers_ok, "sabotaged pools must fail the census");
        assert!(!r.passed());
        // The physics stays right even when sabotaged — only width is lost.
        assert!(r.deterministic);
    }

    #[test]
    fn timings_json_parses_and_reports_the_curve() {
        let r = run(tiny());
        let t = timings_json(&r);
        let v = bonsai_obs::json::parse(&t).unwrap();
        let curve = v.get("curve").unwrap().as_arr().unwrap();
        assert_eq!(curve.len(), 3);
        assert!(v.get("speedup").unwrap().get("required").unwrap().as_f64().unwrap() > 0.0);
    }
}
