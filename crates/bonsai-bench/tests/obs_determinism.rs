//! End-to-end determinism of the observability exports: two clusters built
//! from the same seed must yield byte-identical trace and metrics artefacts
//! (the property `obs_trace` relies on for diffable bench trajectories).

use bonsai_ic::plummer_sphere;
use bonsai_obs::{chrome, folded, prom};
use bonsai_sim::{Cluster, ClusterConfig};

fn one_run(seed: u64) -> (String, String, String) {
    let mut c = Cluster::new(plummer_sphere(3000, seed), 3, ClusterConfig::default());
    c.step();
    (
        chrome::chrome_trace_json(c.trace()),
        folded::folded_stacks(c.trace()),
        prom::prometheus_text(c.metrics()),
    )
}

#[test]
fn step_exports_byte_identical_for_fixed_seed() {
    let a = one_run(7);
    let b = one_run(7);
    assert_eq!(a.0, b.0, "chrome trace differs between identical runs");
    assert_eq!(a.1, b.1, "folded stacks differ between identical runs");
    assert_eq!(a.2, b.2, "prometheus text differs between identical runs");
    // Sanity: the artefacts are non-trivial.
    assert!(a.0.contains("\"GPU\"") && a.0.contains("\"COMM\""));
    assert!(a.1.lines().count() > 10);
    assert!(a.2.contains("bonsai_walk_pp_total"));
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = one_run(7);
    let b = one_run(8);
    assert_ne!(a.0, b.0, "trace insensitive to the workload seed");
}
