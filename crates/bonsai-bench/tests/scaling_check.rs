//! End-to-end gate tests for the `obs_scaling` binary: artefact
//! byte-determinism, self-check against a fresh baseline, and the
//! demonstrated failure mode (synthetic slowdown ⇒ nonzero exit).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bonsai-obs-scaling-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(dir: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obs_scaling"))
        .current_dir(dir)
        .args(["--n-per-rank", "500", "--strong-total", "4000"])
        .args(extra)
        .output()
        .expect("spawn obs_scaling")
}

#[test]
fn artefacts_are_byte_identical_across_runs() {
    let dir = workdir("determinism");
    assert!(run(&dir, &[]).status.success());
    let json1 = std::fs::read(dir.join("BENCH_scaling.json")).unwrap();
    let html1 = std::fs::read(dir.join("out/scaling_report.html")).unwrap();
    assert!(run(&dir, &[]).status.success());
    let json2 = std::fs::read(dir.join("BENCH_scaling.json")).unwrap();
    let html2 = std::fs::read(dir.join("out/scaling_report.html")).unwrap();
    assert_eq!(json1, json2, "BENCH_scaling.json must be byte-identical");
    assert_eq!(html1, html2, "scaling_report.html must be byte-identical");
    assert!(!html1.is_empty() && html1.starts_with(b"<!DOCTYPE html>"));
}

#[test]
fn check_passes_on_fresh_baseline_and_fails_under_slowdown() {
    let dir = workdir("gate");
    assert!(run(&dir, &[]).status.success());
    // Promote the fresh run to a baseline, then self-check: must pass.
    std::fs::create_dir_all(dir.join("baselines")).unwrap();
    std::fs::copy(
        dir.join("BENCH_scaling.json"),
        dir.join("baselines/scaling.json"),
    )
    .unwrap();
    let ok = run(&dir, &["--check"]);
    assert!(
        ok.status.success(),
        "self-check must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Inject a 50% synthetic slowdown: the gate must exit nonzero and name
    // the regressed metrics.
    let bad = run(&dir, &["--check", "--slowdown", "1.5"]);
    assert!(!bad.status.success(), "slowdown must trip the gate");
    assert_eq!(bad.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("wall_seconds") || stderr.contains("efficiency"),
        "gate must report which metric regressed: {stderr}"
    );
}

#[test]
fn check_with_missing_baseline_exits_2() {
    let dir = workdir("missing");
    let out = run(&dir, &["--check", "no/such/baseline.json"]);
    assert_eq!(out.status.code(), Some(2));
}
