//! Criterion benchmarks of SFC key generation — the "Sorting SFC" stage.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bonsai_sfc::{hilbert, morton, Curve, KeyMap};
use bonsai_util::rng::Xoshiro256;
use bonsai_util::{Aabb, Vec3};

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("sfc_encode");
    let coords: Vec<[u32; 3]> = {
        let mut rng = Xoshiro256::seed_from(1);
        (0..4096)
            .map(|_| {
                [
                    (rng.next_u64() & 0x1F_FFFF) as u32,
                    (rng.next_u64() & 0x1F_FFFF) as u32,
                    (rng.next_u64() & 0x1F_FFFF) as u32,
                ]
            })
            .collect()
    };
    g.throughput(Throughput::Elements(coords.len() as u64));
    g.bench_function("morton_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &c in &coords {
                acc ^= morton::encode(black_box(c));
            }
            black_box(acc)
        })
    });
    g.bench_function("hilbert_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &c in &coords {
                acc ^= hilbert::encode(black_box(c));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_keymap_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_sort");
    g.sample_size(10);
    let n = 100_000;
    let mut rng = Xoshiro256::seed_from(2);
    let pts: Vec<Vec3> = (0..n)
        .map(|_| Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()))
        .collect();
    let bounds = Aabb::from_points(&pts);
    for curve in [Curve::Morton, Curve::Hilbert] {
        let map = KeyMap::new(&bounds, curve);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("keys_and_sort_{curve:?}_100k"), |b| {
            b.iter(|| {
                let mut keys = map.keys_of(black_box(&pts));
                keys.sort_unstable();
                black_box(keys)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_keymap_sort);
criterion_main!(benches);
