//! Criterion benchmarks of tree construction and the multipole pass —
//! the stages behind Table II's "Tree-construction"/"Tree-properties" rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bonsai_domain::boundary_tree;
use bonsai_domain::letbuild::build_let;
use bonsai_ic::plummer_sphere;
use bonsai_sfc::KeyRange;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_util::{Aabb, Vec3};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    g.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let ic = plummer_sphere(n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("hilbert", n), &n, |b, _| {
            b.iter(|| black_box(Tree::build(ic.clone(), TreeParams::default())))
        });
    }
    g.finish();
}

fn bench_let_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("let");
    g.sample_size(20);
    let n = 50_000;
    let ic = plummer_sphere(n, 8);
    let tree = Tree::build(ic, TreeParams::default());
    let near = vec![Aabb::cube(Vec3::new(1.5, 0.0, 0.0), 0.5)];
    let far = vec![Aabb::cube(Vec3::splat(40.0), 0.5)];
    g.bench_function("build_let_near_50k", |b| {
        b.iter(|| black_box(build_let(&tree, &near, 0.4)))
    });
    g.bench_function("build_let_far_50k", |b| {
        b.iter(|| black_box(build_let(&tree, &far, 0.4)))
    });
    g.bench_function("boundary_tree_50k", |b| {
        let r = KeyRange::everything();
        b.iter(|| black_box(boundary_tree(&tree, &r)))
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_let_extraction);
criterion_main!(benches);
