//! Criterion micro-benchmarks of the force kernels and the tree walk —
//! the CPU-side ground truth behind the Fig. 1 device-model numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bonsai_ic::plummer_sphere;
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::direct::direct_self_forces;
use bonsai_tree::kernels::{p_c, p_p};
use bonsai_tree::walk::{self, WalkParams};
use bonsai_util::{Sym3, Vec3};

fn bench_pp_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(1024));
    let sources: Vec<(Vec3, f64)> = (0..1024)
        .map(|i| {
            let f = i as f64;
            (Vec3::new(f.sin(), f.cos(), (f * 0.7).sin()) * 3.0, 1.0 + 0.001 * f)
        })
        .collect();
    g.bench_function("pp_1024_interactions", |b| {
        b.iter(|| {
            let tgt = Vec3::new(0.1, 0.2, 0.3);
            let mut acc = Vec3::zero();
            let mut pot = 0.0;
            for &(s, m) in &sources {
                let (dp, da) = p_p(black_box(tgt), s, m, 1e-4);
                pot += dp;
                acc += da;
            }
            black_box((pot, acc))
        })
    });
    g.bench_function("pp_1024_batched", |b| {
        let (sx, sy, sz): (Vec<f64>, Vec<f64>, Vec<f64>) = {
            let pos: Vec<Vec3> = sources.iter().map(|&(p, _)| p).collect();
            bonsai_tree::kernels::split_soa(&pos)
        };
        let masses: Vec<f64> = sources.iter().map(|&(_, m)| m).collect();
        b.iter(|| {
            let tgt = Vec3::new(0.1, 0.2, 0.3);
            black_box(bonsai_tree::kernels::p_p_batch(
                black_box(tgt),
                &sx,
                &sy,
                &sz,
                &masses,
                1e-4,
            ))
        })
    });
    g.bench_function("pc_1024_interactions", |b| {
        let q = Sym3::outer(Vec3::new(0.1, 0.2, -0.1), 2.0);
        b.iter(|| {
            let tgt = Vec3::new(0.1, 0.2, 0.3);
            let mut acc = Vec3::zero();
            let mut pot = 0.0;
            for &(s, m) in &sources {
                let (dp, da) = p_c(black_box(tgt), s, m, &q, 1e-4);
                pot += dp;
                acc += da;
            }
            black_box((pot, acc))
        })
    });
    g.finish();
}

fn bench_tree_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("walk");
    g.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let ic = plummer_sphere(n, 5);
        let tree = Tree::build(ic, TreeParams::default());
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("self_gravity_theta0.4", n), &n, |b, _| {
            b.iter(|| black_box(walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01))))
        });
    }
    g.finish();
}

fn bench_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct");
    g.sample_size(10);
    let n = 2_000usize;
    let ic = plummer_sphere(n, 6);
    g.throughput(Throughput::Elements((n * n) as u64));
    g.bench_function("direct_2000", |b| {
        b.iter(|| black_box(direct_self_forces(&ic, 0.01, 1.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_pp_kernel, bench_tree_walk, bench_direct);
criterion_main!(benches);
