//! Criterion benchmarks of the distributed machinery: decomposition,
//! exchange planning, and the full cluster step at small rank counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bonsai_domain::sampling::{parallel_cuts, serial_cuts};
use bonsai_ic::plummer_sphere;
use bonsai_sim::{Cluster, ClusterConfig};
use bonsai_util::rng::Xoshiro256;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    let ranks = 64usize;
    let per_rank = 2000usize;
    let mut rng = Xoshiro256::seed_from(1);
    let data: Vec<Vec<u64>> = (0..ranks)
        .map(|_| {
            let mut ks: Vec<u64> = (0..per_rank).map(|_| rng.next_u64() >> 1).collect();
            ks.sort_unstable();
            ks
        })
        .collect();
    g.throughput(Throughput::Elements((ranks * per_rank) as u64));
    g.bench_function("serial_64ranks", |b| {
        b.iter(|| black_box(serial_cuts(&data, ranks, 64)))
    });
    g.bench_function("parallel_8x8", |b| {
        b.iter(|| black_box(parallel_cuts(&data, 8, 8, 16, 64)))
    });
    g.finish();
}

fn bench_cluster_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_step");
    g.sample_size(10);
    for &p in &[2usize, 4, 8] {
        let ic = plummer_sphere(2000 * p, 3);
        let mut cluster = Cluster::new(ic, p, ClusterConfig::default());
        g.throughput(Throughput::Elements((2000 * p) as u64));
        g.bench_with_input(BenchmarkId::new("full_step", p), &p, |b, _| {
            b.iter(|| black_box(cluster.step()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_cluster_step);
criterion_main!(benches);
