//! The typed metrics registry: counters, gauges and log-scale histograms
//! addressed by Prometheus-style `name{label="value"}` keys.
//!
//! Ordering is deterministic (a `BTreeMap` over the rendered key), so the
//! text exposition and any reduction over the registry are byte-stable for
//! identical inputs — the property the bench trajectory relies on.

use std::collections::{BTreeMap, BTreeSet};

/// A fully-qualified metric key: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`bonsai_phase_seconds`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut ls: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        ls.sort();
        Self {
            name: name.to_string(),
            labels: ls,
        }
    }

    /// Render as `name{k="v",…}` (bare `name` without labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// A histogram with logarithmic (power-of-two) buckets, for quantities that
/// span orders of magnitude: interaction counts, byte volumes, latencies.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Count per power-of-two bucket: key `k` holds samples in
    /// `[2^k, 2^(k+1))`. Non-positive samples land in the `i32::MIN` bucket.
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        let b = if x > 0.0 {
            x.log2().floor() as i32
        } else {
            i32::MIN
        };
        *self.buckets.entry(b).or_insert(0) += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` for empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` for empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) by geometric interpolation
    /// inside the target power-of-two bucket, clamped to the observed
    /// `[min, max]` range. `None` for an empty histogram; exact for a
    /// single-sample histogram.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            return Some(self.min);
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut seen = 0u64;
        for (&b, &c) in &self.buckets {
            let next = seen + c;
            if target <= next as f64 {
                let frac = ((target - seen as f64) / c as f64).clamp(0.0, 1.0);
                let v = if b == i32::MIN {
                    self.min
                } else {
                    let lo = (2f64).powi(b);
                    let hi = (2f64).powi(b + 1);
                    // geometric interpolation within the bucket
                    lo * (hi / lo).powf(frac)
                };
                return Some(v.clamp(self.min, self.max));
            }
            seen = next;
        }
        Some(self.max)
    }

    /// The exported quantile ladder: `(q, value)` for each of
    /// [`EXPORT_QUANTILES`] (p50, p90, p99). Empty for an empty histogram.
    /// Values are non-decreasing in `q` and bracketed by `[min, max]`.
    pub fn export_quantiles(&self) -> Vec<(f64, f64)> {
        EXPORT_QUANTILES
            .iter()
            .filter_map(|&q| self.percentile(q).map(|v| (q, v)))
            .collect()
    }

    /// `(bucket_upper_bound, cumulative_count)` pairs for text exposition.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0;
        for (&b, &c) in &self.buckets {
            cum += c;
            let le = if b == i32::MIN {
                0.0
            } else {
                (2f64).powi(b + 1)
            };
            out.push((le, cum));
        }
        out
    }
}

/// Quantiles every histogram exports (text exposition, bench ledgers):
/// the median, the bulk tail, and the p99 stragglers that dominate a
/// bulk-synchronous step.
pub const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// The registry: every metric of a run, deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, LogHistogram>,
    /// Gauge *names* declared step-scoped: the whole family is dropped by
    /// [`MetricsRegistry::reset_step`] so a label set written on step N
    /// (e.g. a phase that only ran that step) can never leak into step
    /// N+1's sample of the family.
    step_scoped: BTreeSet<String>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to a monotonic counter.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self.counters.entry(MetricKey::new(name, labels)).or_insert(0) += v;
    }

    /// Set a point-in-time gauge.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Set a *step-scoped* gauge: like [`MetricsRegistry::gauge_set`], but
    /// the metric name is also registered for [`MetricsRegistry::reset_step`].
    pub fn step_gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.step_scoped.insert(name.to_string());
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Drop every gauge belonging to a step-scoped family. Call at the top
    /// of each step, before the step's gauges are written: label sets that
    /// existed only on the previous step disappear instead of going stale.
    /// Counters, histograms and plain gauges are untouched.
    pub fn reset_step(&mut self) {
        let scoped = std::mem::take(&mut self.step_scoped);
        self.gauges.retain(|k, _| !scoped.contains(&k.name));
        self.step_scoped = scoped;
    }

    /// Gauge names currently declared step-scoped, in order.
    pub fn step_scoped_names(&self) -> Vec<&str> {
        self.step_scoped.iter().map(String::as_str).collect()
    }

    /// Record one histogram observation.
    pub fn histogram_observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .observe(v);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value (`None` when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Histogram (`None` when absent).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogHistogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &LogHistogram)> {
        self.histograms.iter()
    }

    /// Gauges whose name is `name`, as `(labels, value)` in key order
    /// (reductions over one metric family, e.g. per-phase seconds).
    pub fn gauge_family<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a [(String, String)], f64)> + 'a {
        self.gauges
            .iter()
            .filter(move |(k, _)| k.name == name)
            .map(|(k, &v)| (k.labels.as_slice(), v))
    }

    /// Sum of every counter named `name`, across label sets.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Drop every metric (per-step gauges are rewritten each step).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.step_scoped.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.counter_add("bytes", &[("kind", "let")], 10);
        r.counter_add("bytes", &[("kind", "let")], 5);
        r.counter_add("bytes", &[("kind", "boundary")], 7);
        assert_eq!(r.counter("bytes", &[("kind", "let")]), 15);
        assert_eq!(r.counter("bytes", &[("kind", "missing")]), 0);
        assert_eq!(r.counter_family_total("bytes"), 22);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("g", &[("b", "2"), ("a", "1")], 3.0);
        assert_eq!(r.gauge("g", &[("a", "1"), ("b", "2")]), Some(3.0));
        let key = MetricKey::new("g", &[("b", "2"), ("a", "1")]);
        assert_eq!(key.render(), "g{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn step_scoped_gauges_cannot_leak_across_steps() {
        // Two dissimilar steps: step 1 runs phases {sort, local, let}; step
        // 2 runs only {local}. Without reset_step, the stale sort/let
        // gauges from step 1 would still be present — and a time-series
        // sample of the family would silently re-record step 1's values.
        let mut r = MetricsRegistry::new();
        r.counter_add("bonsai_steps_total", &[], 1);
        r.gauge_set("bonsai_run_seed", &[], 2014.0); // run-scoped: survives

        // step 1
        r.reset_step();
        r.step_gauge_set("bonsai_step_phase_seconds", &[("phase", "sort")], 0.1);
        r.step_gauge_set("bonsai_step_phase_seconds", &[("phase", "local")], 0.7);
        r.step_gauge_set("bonsai_step_phase_seconds", &[("phase", "let")], 0.2);
        assert_eq!(r.gauge_family("bonsai_step_phase_seconds").count(), 3);

        // step 2: only `local` runs
        r.reset_step();
        r.step_gauge_set("bonsai_step_phase_seconds", &[("phase", "local")], 0.9);
        let fam: Vec<_> = r.gauge_family("bonsai_step_phase_seconds").collect();
        assert_eq!(fam.len(), 1, "stale phase gauges leaked: {fam:?}");
        assert_eq!(fam[0].1, 0.9);
        assert_eq!(
            r.gauge("bonsai_step_phase_seconds", &[("phase", "sort")]),
            None
        );
        // Run-scoped metrics are untouched.
        assert_eq!(r.gauge("bonsai_run_seed", &[]), Some(2014.0));
        assert_eq!(r.counter("bonsai_steps_total", &[]), 1);
        assert_eq!(r.step_scoped_names(), vec!["bonsai_step_phase_seconds"]);
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5).unwrap();
        assert!((300.0..800.0).contains(&p50), "p50 {p50}");
        let p100 = h.percentile(1.0).unwrap();
        assert!(p100 <= 1000.0 + 1e-9);
        assert!(h.percentile(0.0).unwrap() >= 1.0);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);

        let mut one = LogHistogram::new();
        one.observe(42.0);
        assert_eq!(one.percentile(0.0), Some(42.0));
        assert_eq!(one.percentile(0.5), Some(42.0));
        assert_eq!(one.percentile(1.0), Some(42.0));
        assert_eq!(one.min(), Some(42.0));
        assert_eq!(one.max(), Some(42.0));

        let mut z = LogHistogram::new();
        z.observe(0.0);
        z.observe(-3.0);
        assert_eq!(z.count(), 2);
        assert!(z.percentile(0.5).is_some());
    }

    #[test]
    fn percentile_is_monotonic_in_q() {
        // Log-spaced samples across many buckets plus heavy duplication:
        // percentile(q) must never decrease as q grows, q outside [0,1]
        // must clamp, and the extremes must bracket the observed range.
        let mut h = LogHistogram::new();
        for i in 0..200 {
            h.observe((1.07f64).powi(i)); // ~1 .. ~7e5 across buckets
        }
        for _ in 0..50 {
            h.observe(64.0); // a spike inside one bucket
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.percentile(q).unwrap();
            assert!(
                v >= prev - 1e-12,
                "percentile must be monotonic: p({q}) = {v} < {prev}"
            );
            assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
            prev = v;
        }
        // Out-of-range q clamps to the extremes rather than panicking.
        assert_eq!(h.percentile(-0.5), h.percentile(0.0));
        assert_eq!(h.percentile(7.0), h.percentile(1.0));
    }

    #[test]
    fn export_quantile_ladder_is_ordered() {
        let mut h = LogHistogram::new();
        for i in 1..=500 {
            h.observe(i as f64);
        }
        let ladder = h.export_quantiles();
        assert_eq!(ladder.len(), 3);
        assert_eq!(
            ladder.iter().map(|&(q, _)| q).collect::<Vec<_>>(),
            EXPORT_QUANTILES.to_vec()
        );
        let (p50, p90, p99) = (ladder[0].1, ladder[1].1, ladder[2].1);
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= h.max().unwrap(), "p99 {p99} above max");
        assert!(LogHistogram::new().export_quantiles().is_empty());
    }

    #[test]
    fn cumulative_buckets_are_monotonic() {
        let mut h = LogHistogram::new();
        for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
            h.observe(x);
        }
        let cb = h.cumulative_buckets();
        assert_eq!(cb.last().unwrap().1, 5);
        for w in cb.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
