//! # bonsai-obs
//!
//! The unified observability layer of the workspace: one event model and one
//! metrics registry that every subsystem reports through, with
//! zero-dependency machine-readable exporters.
//!
//! The paper's entire performance argument is a measurement story — Table
//! II's per-phase decomposition, Fig. 4's scaling curves, and the §III-B2
//! claim that LET communication hides under GPU compute. This crate gives
//! those measurements a first-class home instead of ad-hoc structs scattered
//! across the stack:
//!
//! * [`span`] — hierarchical spans and instant events keyed by
//!   rank × step × phase, collected in a [`TraceStore`]. Each rank is a
//!   track with GPU, COMM and CPU lanes; spans carry typed arguments
//!   (modelled occupancy, flops, byte volumes).
//! * [`metrics`] — a typed [`MetricsRegistry`]: monotonic counters,
//!   point-in-time gauges and log-scale histograms, addressed by
//!   Prometheus-style `name{label="value"}` keys with deterministic
//!   ordering.
//! * [`timeseries`] — bounded per-metric run histories: step-aligned bins
//!   with min/max/mean rollups that downsample by doubling the bin width,
//!   so a 10k-step run costs the same memory as a 100-step run.
//! * [`health`] — declarative alert rules (threshold / relative-drift /
//!   windowed-trend, with severities and open/close hysteresis) over the
//!   per-step metric stream, logging a byte-deterministic incident log.
//! * [`flight`] — a ring-buffer flight recorder keeping the last K steps of
//!   full-fidelity spans; on alert firing it freezes the window into a
//!   Perfetto-loadable incident trace plus a structured report.
//! * [`stream`] — the in-run telemetry bus: versioned frames (step header,
//!   phase sample, gauges, flow digest, alerts, view changes) pushed through
//!   bounded per-subscriber rings with an explicit backpressure policy
//!   (lossy-tail for samples, must-deliver for alerts) and exact drop/lag
//!   accounting.
//! * [`overhead`] — observability self-metering: op counts priced by a
//!   modelled cost model reduce to a per-step overhead fraction, budgeted
//!   by a health rule (≤ 3% of modelled step time).
//! * [`chrome`] — Chrome trace-event JSON export, loadable in Perfetto or
//!   `chrome://tracing` (one process per rank, one thread per lane).
//! * [`folded`] — folded-stacks text for flamegraph tooling.
//! * [`prom`] — Prometheus text-exposition snapshot of the registry.
//! * [`json`] — the minimal JSON writer the exporters share, plus a tiny
//!   parser used to round-trip-validate exports in tests.
//!
//! Everything is deterministic: identical inputs produce byte-identical
//! exports, which is what lets the bench trajectory (`BENCH_*.json`) and
//! the trace artefacts be diffed across commits.
//!
//! ```
//! use bonsai_obs::{Lane, TraceStore, MetricsRegistry, chrome};
//!
//! let mut t = TraceStore::new();
//! let s = t.span(0, 1, Lane::Gpu, "gravity", 0.0, 2.45);
//! t.arg_f64(s, "occupancy", 0.94);
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("bonsai_bytes_total", &[("kind", "let")], 4096);
//! let json = chrome::chrome_trace_json(&t);
//! assert!(json.contains("\"gravity\""));
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod flight;
pub mod folded;
pub mod health;
pub mod json;
pub mod metrics;
pub mod overhead;
pub mod profile;
pub mod prom;
pub mod span;
pub mod stream;
pub mod timeseries;

pub use analysis::{
    classify, conservation, critical_path, exposed_comm, flop_balance, link_ledger, phase_stats,
    step_wall_time, strong_efficiency, weak_efficiency, ConservationReport, CriticalPath,
    ExposedComm, FlopBalance, FlowSummary, LinkStats, PathNode, PhaseStats, ScalingPoint,
    WaitCause, UNATTRIBUTED,
};
pub use flight::{FlightRecorder, Incident};
pub use health::{
    default_rules, AlertEvent, AlertKind, Condition, HealthMonitor, Rule, Severity,
};
pub use metrics::{LogHistogram, MetricsRegistry, EXPORT_QUANTILES};
pub use overhead::{
    overhead_rule, ObsCostModel, OverheadMeter, OverheadSample, OVERHEAD_BUDGET_FRACTION,
    OVERHEAD_GAUGE,
};
pub use profile::{
    folded_profile, roofline, telescoping_error, ProfileRow, RooflinePoint, TermResidual,
};
pub use span::{
    interval_union, overlap_with_union, ArgValue, FlowPhase, FlowPoint, Instant, Lane, Span,
    SpanId, TraceStore,
};
pub use stream::{
    FrameKind, FrameValue, SubscriberConfig, SubscriberReport, TelemetryBus, TelemetryFrame,
    FRAME_VERSION,
};
pub use timeseries::{Bin, Series, SeriesConfig, SeriesStore};
