//! Imbalance and straggler metrics across ranks.
//!
//! §III-B1 balances *flops*, not particles: a step is only as fast as its
//! slowest rank, so the interesting statistics are max-over-ranks relative
//! to the mean (how much wall time imbalance costs) and to the median (how
//! pathological the single straggler is), with the worst rank named so the
//! regression report can say *who* was slow, not just that someone was.

use std::collections::BTreeMap;

use crate::span::{ArgValue, TraceStore};

/// Per-phase cross-rank statistics for one step.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase name.
    pub phase: String,
    /// Per-rank total seconds, max across ranks.
    pub max: f64,
    /// Mean across ranks (ranks without the phase count as 0).
    pub mean: f64,
    /// Median across ranks.
    pub median: f64,
    /// Rank holding the maximum (lowest such rank on ties).
    pub worst_rank: u32,
}

impl PhaseStats {
    /// Imbalance as max/mean (1.0 = perfectly balanced).
    pub fn max_over_mean(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }

    /// Straggler factor as max/median.
    pub fn max_over_median(&self) -> f64 {
        if self.median > 0.0 {
            self.max / self.median
        } else {
            1.0
        }
    }
}

/// Flop-balance residual recomputed from gravity-span `flops` annotations.
#[derive(Clone, Debug)]
pub struct FlopBalance {
    /// Per-rank walk flops (ascending rank order).
    pub per_rank: Vec<u64>,
    /// max/mean residual (1.0 = the balancer's target).
    pub residual: f64,
    /// Rank holding the maximum.
    pub worst_rank: u32,
}

/// Measured wall time of `step`: max span end − min span start (`None`
/// when the store holds no spans for it).
pub fn step_wall_time(store: &TraceStore, step: u64) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in store.spans().iter().filter(|s| s.step == step) {
        lo = lo.min(s.start);
        hi = hi.max(s.end);
    }
    (hi > lo).then_some(hi - lo)
}

/// Per-phase cross-rank statistics for `step`, one entry per phase name in
/// deterministic (lexicographic) order. A rank's time in a phase is the sum
/// of its spans with that name; ranks missing the phase contribute 0.
pub fn phase_stats(store: &TraceStore, step: u64) -> Vec<PhaseStats> {
    let ranks = store.ranks();
    if ranks.is_empty() {
        return Vec::new();
    }
    let idx: BTreeMap<u32, usize> = ranks.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut per_phase: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for s in store.spans().iter().filter(|s| s.step == step) {
        per_phase
            .entry(s.name.clone())
            .or_insert_with(|| vec![0.0; ranks.len()])[idx[&s.rank]] += s.end - s.start;
    }
    per_phase
        .into_iter()
        .map(|(phase, durs)| {
            let mut worst = 0usize;
            for (i, &d) in durs.iter().enumerate() {
                if d > durs[worst] {
                    worst = i;
                }
            }
            let mean = durs.iter().sum::<f64>() / durs.len() as f64;
            let mut sorted = durs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = if sorted.len() % 2 == 1 {
                sorted[sorted.len() / 2]
            } else {
                0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
            };
            PhaseStats {
                phase,
                max: durs[worst],
                mean,
                median,
                worst_rank: ranks[worst],
            }
        })
        .collect()
}

/// Recompute the flop balance of `step` from the `flops` annotations the
/// device model attaches to gravity spans. Returns `None` when no span of
/// the step carries a `flops` argument.
pub fn flop_balance(store: &TraceStore, step: u64) -> Option<FlopBalance> {
    let ranks = store.ranks();
    let idx: BTreeMap<u32, usize> = ranks.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut per_rank = vec![0u64; ranks.len()];
    let mut any = false;
    for s in store.spans().iter().filter(|s| s.step == step) {
        for (k, v) in &s.args {
            if *k == "flops" {
                if let ArgValue::U64(f) = v {
                    per_rank[idx[&s.rank]] += f;
                    any = true;
                }
            }
        }
    }
    if !any {
        return None;
    }
    let mut worst = 0usize;
    for (i, &f) in per_rank.iter().enumerate() {
        if f > per_rank[worst] {
            worst = i;
        }
    }
    let mean = per_rank.iter().sum::<u64>() as f64 / per_rank.len() as f64;
    let residual = if mean > 0.0 {
        per_rank[worst] as f64 / mean
    } else {
        1.0
    };
    Some(FlopBalance {
        residual,
        worst_rank: ranks[worst],
        per_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, TraceStore};

    fn skewed_store() -> TraceStore {
        let mut t = TraceStore::new();
        // Four ranks; rank 2 is a 2× straggler in "local".
        for r in 0..4u32 {
            let d = if r == 2 { 2.0 } else { 1.0 };
            let id = t.span(r, 1, Lane::Gpu, "local", 0.0, d);
            t.arg_u64(id, "flops", if r == 2 { 200 } else { 100 });
            t.span(r, 1, Lane::Gpu, "sort", d, d + 0.5);
        }
        t
    }

    #[test]
    fn phase_stats_name_the_straggler() {
        let stats = phase_stats(&skewed_store(), 1);
        assert_eq!(stats.len(), 2); // lexicographic: local, sort
        let local = &stats[0];
        assert_eq!(local.phase, "local");
        assert_eq!(local.worst_rank, 2);
        assert!((local.max - 2.0).abs() < 1e-12);
        assert!((local.mean - 1.25).abs() < 1e-12);
        assert!((local.median - 1.0).abs() < 1e-12);
        assert!((local.max_over_mean() - 1.6).abs() < 1e-12);
        assert!((local.max_over_median() - 2.0).abs() < 1e-12);
        // Sort is balanced.
        assert!((stats[1].max_over_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flop_balance_reads_span_annotations() {
        let fb = flop_balance(&skewed_store(), 1).unwrap();
        assert_eq!(fb.per_rank, vec![100, 100, 200, 100]);
        assert_eq!(fb.worst_rank, 2);
        assert!((fb.residual - 1.6).abs() < 1e-12);
    }

    #[test]
    fn flop_balance_none_without_annotations() {
        let mut t = TraceStore::new();
        t.span(0, 1, Lane::Gpu, "sort", 0.0, 1.0);
        assert!(flop_balance(&t, 1).is_none());
    }

    #[test]
    fn wall_time_spans_min_to_max() {
        let t = skewed_store();
        assert!((step_wall_time(&t, 1).unwrap() - 2.5).abs() < 1e-12);
        assert!(step_wall_time(&t, 9).is_none());
    }

    #[test]
    fn empty_store_yields_no_stats() {
        assert!(phase_stats(&TraceStore::new(), 1).is_empty());
    }
}
