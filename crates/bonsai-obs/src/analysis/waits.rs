//! Wait attribution: tie critical-path waits and exposed-communication
//! intervals back to the message flows that caused them.
//!
//! The flow ledger (kept by the network layer) knows *what happened to every
//! sealed envelope* — delivered on attempt k, recovered by fallback, killed
//! by a crash — and the trace knows *where the time went*. This module joins
//! the two: each wait or exposed-comm interval is matched against the flows
//! whose modeled lifetime overlaps it, and classified into a small causal
//! taxonomy:
//!
//! | cause            | meaning                                              |
//! |------------------|------------------------------------------------------|
//! | `fallback`       | a causal flow was abandoned to the fabric fallback   |
//! | `stall`          | a causal flow was stalled in the fabric              |
//! | `retransmission` | a causal flow needed ≥ 2 attempts                    |
//! | `late-sender`    | flows arrived clean; the sender was simply late      |
//! | `unattributed`   | no causal flow could be identified                   |
//!
//! The priority order (fallback > stall > retransmission > late-sender)
//! mirrors severity: a fallback costs a whole collective reroute, a stall a
//! full timeout, a retransmission one RTO, a late sender only imbalance.
//!
//! The module is deliberately neutral — it speaks [`FlowSummary`], a plain
//! value type the simulation layer fills from its ledger, so `bonsai-obs`
//! keeps its single dependency on `bonsai-util`.

use crate::span::{Lane, TraceStore};
use std::collections::BTreeMap;

/// Causal classification of a wait or exposed-comm interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitCause {
    /// A causal flow was recovered by the fabric fallback path.
    Fallback,
    /// A causal flow was stalled inside the fabric.
    Stall,
    /// A causal flow needed more than one attempt.
    Retransmission,
    /// Flows arrived clean on the first attempt; the sender was late.
    LateSender,
    /// No causal flow could be identified for the interval.
    Unattributed,
}

impl WaitCause {
    /// Stable label used in trace args, reports, and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            WaitCause::Fallback => "fallback",
            WaitCause::Stall => "stall",
            WaitCause::Retransmission => "retransmission",
            WaitCause::LateSender => "late-sender",
            WaitCause::Unattributed => "unattributed",
        }
    }
}

/// Crate-neutral summary of one flow's ledger record, with modeled times.
///
/// The simulation layer converts its ledger records into these (pricing the
/// modeled send/resolve instants with its network model); analysis here
/// never needs the ledger itself.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSummary {
    /// Flow id (unique per run, dense from 1).
    pub id: u64,
    /// Step the flow was sealed in.
    pub step: u64,
    /// Protocol epoch the flow belongs to.
    pub epoch: u64,
    /// Sender rank.
    pub from: usize,
    /// Receiver rank.
    pub to: usize,
    /// Message kind label (e.g. `"Let"`, `"View"`).
    pub kind: String,
    /// Payload bytes of the sealed envelope.
    pub bytes: usize,
    /// Send attempts (1 = original only; ≥ 2 means retransmitted).
    pub attempts: u32,
    /// Fault labels injected into this flow, in injection order.
    pub faults: Vec<String>,
    /// Terminal outcome label: `"delivered"`, `"fallback"`, `"dead"`, or
    /// `"pending"`.
    pub outcome: String,
    /// Modeled instant the first attempt left the sender.
    pub send_at: f64,
    /// Modeled instant the flow resolved (delivery or fallback); `None`
    /// while pending or dead.
    pub resolve_at: Option<f64>,
}

impl FlowSummary {
    /// Did the flow need more than one attempt?
    pub fn retransmitted(&self) -> bool {
        self.attempts > 1
    }

    /// Was a stall injected into the flow?
    pub fn stalled(&self) -> bool {
        self.faults.iter().any(|f| f == "stall")
    }

    /// Was the flow recovered by the fabric fallback path?
    pub fn fell_back(&self) -> bool {
        self.outcome == "fallback"
    }

    /// Did the flow deliver?
    pub fn delivered(&self) -> bool {
        self.outcome == "delivered"
    }

    /// Modeled seal→delivery latency (delivered flows only).
    pub fn latency(&self) -> Option<f64> {
        if self.delivered() {
            self.resolve_at.map(|r| (r - self.send_at).max(0.0))
        } else {
            None
        }
    }

    /// `"from->to"` link label.
    pub fn link(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// Classify a causal flow set into the dominant [`WaitCause`].
///
/// Priority: fallback > stall > retransmission > late-sender. An empty set
/// means the interval had no identifiable flow — [`WaitCause::Unattributed`].
pub fn classify<'a, I>(flows: I) -> WaitCause
where
    I: IntoIterator<Item = &'a FlowSummary>,
{
    let mut seen = false;
    let mut cause = WaitCause::LateSender;
    for f in flows {
        seen = true;
        let c = if f.fell_back() {
            WaitCause::Fallback
        } else if f.stalled() {
            WaitCause::Stall
        } else if f.retransmitted() {
            WaitCause::Retransmission
        } else {
            WaitCause::LateSender
        };
        // WaitCause derives Ord in severity order (Fallback first).
        if c < cause {
            cause = c;
        }
    }
    if seen {
        cause
    } else {
        WaitCause::Unattributed
    }
}

/// Per-link ledger: traffic, reliability, and delivery-latency percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkStats {
    /// Sender rank.
    pub from: usize,
    /// Receiver rank.
    pub to: usize,
    /// Flows sealed on the link.
    pub flows: usize,
    /// Total payload bytes sealed on the link.
    pub bytes: u64,
    /// Total send attempts (originals + retransmissions).
    pub attempts: u64,
    /// Retransmitted attempts (attempts beyond each flow's first).
    pub retransmits: u64,
    /// Flows that delivered.
    pub delivered: usize,
    /// Flows recovered by fallback.
    pub fallback: usize,
    /// Flows killed by a crash.
    pub dead: usize,
    /// Median modeled delivery latency (delivered flows; 0 if none).
    pub latency_p50: f64,
    /// 90th-percentile modeled delivery latency.
    pub latency_p90: f64,
    /// 99th-percentile modeled delivery latency — the tail a few
    /// retransmitted or stalled flows drag out while p50/p90 look clean.
    pub latency_p99: f64,
    /// Worst modeled delivery latency.
    pub latency_max: f64,
}

impl LinkStats {
    /// Retransmitted fraction of all attempts on the link.
    pub fn retransmit_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.attempts as f64
        }
    }

    /// `"from->to"` link label.
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 if empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregate flows into a per-link ledger, sorted by `(from, to)`.
pub fn link_ledger(flows: &[FlowSummary]) -> Vec<LinkStats> {
    let mut by_link: BTreeMap<(usize, usize), Vec<&FlowSummary>> = BTreeMap::new();
    for f in flows {
        by_link.entry((f.from, f.to)).or_default().push(f);
    }
    by_link
        .into_iter()
        .map(|((from, to), fs)| {
            let mut lat: Vec<f64> = fs.iter().filter_map(|f| f.latency()).collect();
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            LinkStats {
                from,
                to,
                flows: fs.len(),
                bytes: fs.iter().map(|f| f.bytes as u64).sum(),
                attempts: fs.iter().map(|f| f.attempts as u64).sum(),
                retransmits: fs
                    .iter()
                    .map(|f| f.attempts.saturating_sub(1) as u64)
                    .sum(),
                delivered: fs.iter().filter(|f| f.delivered()).count(),
                fallback: fs.iter().filter(|f| f.fell_back()).count(),
                dead: fs.iter().filter(|f| f.outcome == "dead").count(),
                latency_p50: percentile(&lat, 0.5),
                latency_p90: percentile(&lat, 0.9),
                latency_p99: percentile(&lat, 0.99),
                latency_max: lat.last().copied().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Outcome bookkeeping over a flow set: every sealed flow must end up in
/// exactly one terminal bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Flows sealed.
    pub sealed: usize,
    /// Flows that delivered.
    pub delivered: usize,
    /// Flows recovered by fallback.
    pub fallback: usize,
    /// Flows killed by a crash.
    pub dead: usize,
    /// Flows still pending (a violation in any completed run).
    pub pending: usize,
}

impl ConservationReport {
    /// Conservation: sealed = delivered + fallback + dead, nothing pending.
    pub fn holds(&self) -> bool {
        self.pending == 0 && self.delivered + self.fallback + self.dead == self.sealed
    }
}

/// Count flow outcomes into a [`ConservationReport`].
pub fn conservation(flows: &[FlowSummary]) -> ConservationReport {
    let mut r = ConservationReport {
        sealed: flows.len(),
        ..Default::default()
    };
    for f in flows {
        match f.outcome.as_str() {
            "delivered" => r.delivered += 1,
            "fallback" => r.fallback += 1,
            "dead" => r.dead += 1,
            _ => r.pending += 1,
        }
    }
    r
}

/// One exposed-communication interval: COMM-lane time on a rank not hidden
/// behind GPU work, with its causal flow set and classified cause.
#[derive(Clone, Debug, PartialEq)]
pub struct ExposedComm {
    /// Rank the interval belongs to.
    pub rank: usize,
    /// Interval start (trace seconds).
    pub start: f64,
    /// Interval end (trace seconds).
    pub end: f64,
    /// Dominant cause classified from `flows`.
    pub cause: WaitCause,
    /// Ids of the flows whose modeled lifetime overlaps the interval and
    /// touches this rank.
    pub flows: Vec<u64>,
}

impl ExposedComm {
    /// Interval length in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Subtract the union of `cover` from `[start, end)`, returning the exposed
/// sub-intervals in order.
fn subtract(start: f64, end: f64, cover: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut cursor = start;
    for &(cs, ce) in cover {
        if ce <= cursor {
            continue;
        }
        if cs >= end {
            break;
        }
        if cs > cursor {
            out.push((cursor, cs.min(end)));
        }
        cursor = cursor.max(ce);
        if cursor >= end {
            break;
        }
    }
    if cursor < end {
        out.push((cursor, end));
    }
    out
}

/// Find each rank's exposed-communication intervals in `step` and attribute
/// them to their causal flows.
///
/// A COMM-lane span interval is *exposed* where no GPU-lane span of the same
/// rank and step covers it. Each exposed interval is matched against the
/// flows touching the rank whose modeled `[send_at, resolve_at]` window
/// overlaps it, and classified with [`classify`]. Results are sorted by
/// `(rank, start)`.
pub fn exposed_comm(store: &TraceStore, step: u64, flows: &[FlowSummary]) -> Vec<ExposedComm> {
    let mut ranks: Vec<u32> = store
        .spans()
        .iter()
        .filter(|s| s.step == step && s.lane == Lane::Comm)
        .map(|s| s.rank)
        .collect();
    ranks.sort_unstable();
    ranks.dedup();

    let mut out = Vec::new();
    for rank in ranks {
        let mut gpu: Vec<(f64, f64)> = store
            .spans()
            .iter()
            .filter(|s| s.step == step && s.rank == rank && s.lane == Lane::Gpu)
            .map(|s| (s.start, s.end))
            .collect();
        gpu.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Merge overlapping GPU intervals so subtraction sees a clean union.
        let mut cover: Vec<(f64, f64)> = Vec::new();
        for (s, e) in gpu {
            match cover.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => cover.push((s, e)),
            }
        }
        let mut comm: Vec<(f64, f64)> = store
            .spans()
            .iter()
            .filter(|s| s.step == step && s.rank == rank && s.lane == Lane::Comm)
            .map(|s| (s.start, s.end))
            .collect();
        comm.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (cs, ce) in comm {
            for (xs, xe) in subtract(cs, ce, &cover) {
                if xe - xs <= 0.0 {
                    continue;
                }
                let causal: Vec<&FlowSummary> = flows
                    .iter()
                    .filter(|f| {
                        (f.from == rank as usize || f.to == rank as usize) && {
                            let fe = f.resolve_at.unwrap_or(f.send_at);
                            f.send_at < xe && fe > xs
                        }
                    })
                    .collect();
                out.push(ExposedComm {
                    rank: rank as usize,
                    start: xs,
                    end: xe,
                    cause: classify(causal.iter().copied()),
                    flows: causal.iter().map(|f| f.id).collect(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Lane;

    fn flow(id: u64, from: usize, to: usize, attempts: u32, outcome: &str) -> FlowSummary {
        FlowSummary {
            id,
            step: 1,
            epoch: 1,
            from,
            to,
            kind: "Let".into(),
            bytes: 1024,
            attempts,
            faults: Vec::new(),
            outcome: outcome.into(),
            send_at: 0.1,
            resolve_at: if outcome == "delivered" || outcome == "fallback" {
                Some(0.1 + 0.05 * attempts as f64)
            } else {
                None
            },
        }
    }

    #[test]
    fn classification_follows_severity_priority() {
        let clean = flow(1, 0, 1, 1, "delivered");
        let retx = flow(2, 0, 1, 3, "delivered");
        let mut stalled = flow(3, 0, 1, 2, "delivered");
        stalled.faults.push("stall".into());
        let fell = flow(4, 0, 1, 4, "fallback");

        assert_eq!(classify([].iter().copied()), WaitCause::Unattributed);
        assert_eq!(classify([&clean].iter().copied()), WaitCause::LateSender);
        assert_eq!(
            classify([&clean, &retx].iter().copied()),
            WaitCause::Retransmission
        );
        assert_eq!(
            classify([&clean, &retx, &stalled].iter().copied()),
            WaitCause::Stall
        );
        assert_eq!(
            classify([&clean, &retx, &stalled, &fell].iter().copied()),
            WaitCause::Fallback
        );
        assert_eq!(WaitCause::Fallback.name(), "fallback");
        assert_eq!(WaitCause::Unattributed.name(), "unattributed");
    }

    #[test]
    fn link_ledger_aggregates_per_directed_link() {
        let flows = vec![
            flow(1, 0, 1, 1, "delivered"),
            flow(2, 0, 1, 3, "delivered"),
            flow(3, 1, 0, 1, "fallback"),
            flow(4, 0, 1, 2, "dead"),
        ];
        let links = link_ledger(&flows);
        assert_eq!(links.len(), 2);
        let l01 = &links[0];
        assert_eq!((l01.from, l01.to), (0, 1));
        assert_eq!(l01.flows, 3);
        assert_eq!(l01.bytes, 3 * 1024);
        assert_eq!(l01.attempts, 6);
        assert_eq!(l01.retransmits, 3);
        assert_eq!(l01.delivered, 2);
        assert_eq!(l01.dead, 1);
        assert!((l01.retransmit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(l01.label(), "0->1");
        // Latencies of the two delivered flows: 0.05 and 0.15; nearest-rank
        // p50 over two samples rounds up to the later one.
        assert!((l01.latency_p50 - 0.15).abs() < 1e-12);
        assert!((l01.latency_p99 - 0.15).abs() < 1e-12);
        assert!((l01.latency_max - 0.15).abs() < 1e-12);
        let l10 = &links[1];
        assert_eq!((l10.from, l10.to), (1, 0));
        assert_eq!(l10.fallback, 1);
        assert_eq!(l10.latency_max, 0.0); // fallback has no delivery latency
    }

    #[test]
    fn latency_percentiles_are_monotone() {
        // 100 delivered flows with distinct latencies on one link: the
        // percentile ladder must be ordered and p99 must sit in the tail.
        let flows: Vec<FlowSummary> = (1..=100)
            .map(|i| {
                let mut f = flow(i, 0, 1, 1, "delivered");
                f.send_at = 0.0;
                f.resolve_at = Some(i as f64 * 1e-3);
                f
            })
            .collect();
        let links = link_ledger(&flows);
        assert_eq!(links.len(), 1);
        let l = &links[0];
        assert!(l.latency_p50 <= l.latency_p90);
        assert!(l.latency_p90 <= l.latency_p99);
        assert!(l.latency_p99 <= l.latency_max);
        assert!((l.latency_p99 - 0.099).abs() < 1e-12);
        assert!((l.latency_max - 0.100).abs() < 1e-12);
    }

    #[test]
    fn conservation_balances_terminal_outcomes() {
        let flows = vec![
            flow(1, 0, 1, 1, "delivered"),
            flow(2, 1, 0, 2, "fallback"),
            flow(3, 0, 1, 1, "dead"),
        ];
        let r = conservation(&flows);
        assert_eq!(
            r,
            ConservationReport {
                sealed: 3,
                delivered: 1,
                fallback: 1,
                dead: 1,
                pending: 0
            }
        );
        assert!(r.holds());
        let mut with_pending = flows;
        with_pending.push(flow(4, 0, 1, 1, "pending"));
        assert!(!conservation(&with_pending).holds());
    }

    #[test]
    fn exposed_comm_subtracts_gpu_cover_and_attributes_flows() {
        let mut t = TraceStore::new();
        // Rank 0: GPU covers [0, 0.4); COMM runs [0.2, 1.0) → exposed [0.4, 1.0).
        t.span(0, 1, Lane::Gpu, "local", 0.0, 0.4);
        t.span(0, 1, Lane::Comm, "let-comm", 0.2, 1.0);
        // Rank 1: no GPU overlap at all → whole comm span exposed.
        t.span(1, 1, Lane::Comm, "let-comm", 0.0, 0.5);

        let mut f = flow(7, 1, 0, 3, "delivered");
        f.send_at = 0.5;
        f.resolve_at = Some(0.9);
        let flows = vec![f];

        let exposed = exposed_comm(&t, 1, &flows);
        assert_eq!(exposed.len(), 2);
        let r0 = &exposed[0];
        assert_eq!(r0.rank, 0);
        assert!((r0.start - 0.4).abs() < 1e-12 && (r0.end - 1.0).abs() < 1e-12);
        assert_eq!(r0.cause, WaitCause::Retransmission);
        assert_eq!(r0.flows, vec![7]);
        assert!((r0.seconds() - 0.6).abs() < 1e-12);
        // Rank 1's exposed window [0, 0.5) only grazes the flow's send — it
        // still overlaps (send_at 0.5 is not < 0.5), so no attribution.
        let r1 = &exposed[1];
        assert_eq!(r1.rank, 1);
        assert_eq!(r1.cause, WaitCause::Unattributed);
        assert!(r1.flows.is_empty());
    }

    #[test]
    fn interval_subtraction_handles_partial_and_full_cover() {
        assert_eq!(subtract(0.0, 1.0, &[]), vec![(0.0, 1.0)]);
        assert_eq!(subtract(0.0, 1.0, &[(0.0, 1.0)]), Vec::<(f64, f64)>::new());
        assert_eq!(
            subtract(0.0, 1.0, &[(0.2, 0.4), (0.6, 0.8)]),
            vec![(0.0, 0.2), (0.4, 0.6), (0.8, 1.0)]
        );
        assert_eq!(subtract(0.0, 1.0, &[(-1.0, 0.5)]), vec![(0.5, 1.0)]);
    }
}
