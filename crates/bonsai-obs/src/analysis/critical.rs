//! Critical-path extraction over the per-step phase DAG spanning all ranks.
//!
//! The step wall-time is set by one chain of work: some rank's sort feeds
//! its tree build, gravity waits on the LET exchange, the closing barrier
//! waits on the straggler. This module recovers that chain from the span
//! store alone — no scheduler metadata — using interval reasoning: walking
//! backward from the span that ends last, the predecessor of a span is the
//! latest-ending span that finished by the time it started (on any rank:
//! a cross-rank dependency shows up as the predecessor living on another
//! rank). Where no span abuts, the gap itself is the dependency — a
//! cross-rank wait — and becomes a synthetic node, so the node durations
//! always sum *exactly* to the measured wall-time.

use std::collections::BTreeMap;

use crate::span::{ArgValue, Lane, Span, TraceStore};

/// Tolerance when deciding whether two spans abut on the simulated clock.
const EPS: f64 = 1e-12;

/// Cause label for wait nodes no recorded barrier span explains.
pub const UNATTRIBUTED: &str = "unattributed";

/// One link of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathNode {
    /// Rank the time was spent on (for waits: the rank that sat idle).
    pub rank: u32,
    /// Lane the span ran on (waits are charged to the CPU lane).
    pub lane: Lane,
    /// Phase name; synthetic waits are named `"wait"`.
    pub phase: String,
    /// Start, seconds on the global simulated clock.
    pub start: f64,
    /// End, seconds on the global simulated clock.
    pub end: f64,
    /// True for synthetic cross-rank wait (slack) nodes.
    pub wait: bool,
    /// Causal attribution. Work nodes carry the empty string; wait nodes
    /// carry the wait-attribution taxonomy label (`"late-sender"`,
    /// `"retransmission"`, `"stall"`, `"fallback"`) harvested from the
    /// `cause` arg of the producer's overlapping explicit `"wait"` span,
    /// or [`UNATTRIBUTED`] when no recorded barrier explains the gap.
    pub cause: String,
}

impl PathNode {
    /// Node duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The critical path of one step: a gapless chronological chain of nodes
/// covering `[start, start + wall]`.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Step the path was extracted for.
    pub step: u64,
    /// Clock time the step started (min span start).
    pub start: f64,
    /// Measured step wall-time (max span end − min span start).
    pub wall: f64,
    /// Chain of nodes, chronological; durations sum to `wall`.
    pub nodes: Vec<PathNode>,
}

impl CriticalPath {
    /// Sum of node durations — equals [`CriticalPath::wall`] by
    /// construction (the acceptance invariant; tested to 1e-9 relative).
    /// (Sums fold from +0.0: `Iterator::sum` yields −0.0 on empty input,
    /// which would leak a sign bit into byte-deterministic exports.)
    pub fn total(&self) -> f64 {
        self.nodes.iter().map(PathNode::duration).fold(0.0, |a, d| a + d)
    }

    /// Critical seconds spent doing work (non-wait nodes).
    pub fn work_seconds(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| !n.wait)
            .map(PathNode::duration)
            .fold(0.0, |a, d| a + d)
    }

    /// Critical seconds spent waiting on other ranks (slack on the path).
    pub fn wait_seconds(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.wait)
            .map(PathNode::duration)
            .fold(0.0, |a, d| a + d)
    }

    /// Critical wait seconds broken down by attributed cause
    /// (deterministically ordered; unexplained time lands under
    /// [`UNATTRIBUTED`]). Values sum to [`CriticalPath::wait_seconds`].
    pub fn wait_seconds_by_cause(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for n in self.nodes.iter().filter(|n| n.wait) {
            let cause = if n.cause.is_empty() {
                UNATTRIBUTED.to_string()
            } else {
                n.cause.clone()
            };
            *out.entry(cause).or_insert(0.0) += n.duration();
        }
        out
    }

    /// Critical-path seconds per phase name (waits under `"wait"`),
    /// deterministically ordered.
    pub fn phase_seconds(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.phase.clone()).or_insert(0.0) += n.duration();
        }
        out
    }

    /// Slack immediately preceding each phase on the path: the wait time a
    /// phase spent blocked on another rank before it could start. Keys are
    /// the phase names that waits feed into.
    pub fn slack_before(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for w in self.nodes.windows(2) {
            if w[0].wait && !w[1].wait {
                *out.entry(w[1].phase.clone()).or_insert(0.0) += w[0].duration();
            }
        }
        out
    }
}

/// Candidate ordering for the backward walk: latest end wins; ties prefer
/// staying on the same rank (a serial chain), then the lowest rank and the
/// latest start for determinism.
fn better(cand: &Span, best: &Span, on_rank: u32) -> bool {
    if (cand.end - best.end).abs() > EPS {
        return cand.end > best.end;
    }
    let (c_same, b_same) = (cand.rank == on_rank, best.rank == on_rank);
    if c_same != b_same {
        return c_same;
    }
    if cand.rank != best.rank {
        return cand.rank < best.rank;
    }
    cand.start > best.start
}

/// Extract the critical path of `step`, or `None` when the store holds no
/// spans for it.
///
/// Explicitly recorded `"wait"` spans (barrier fills) are ignored as work
/// candidates — the walk re-derives waiting as the gaps between real work,
/// which also catches waits the producer never recorded.
pub fn critical_path(store: &TraceStore, step: u64) -> Option<CriticalPath> {
    let spans: Vec<&Span> = store
        .spans()
        .iter()
        .filter(|s| s.step == step && s.end > s.start + EPS && s.name != "wait")
        .collect();
    let first = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let last = spans.iter().map(|s| s.end).fold(f64::NEG_INFINITY, f64::max);
    if spans.is_empty() {
        return None;
    }

    // Terminal node: the span that ends last (lowest rank on ties).
    let mut cur = *spans.iter().fold(None::<&&Span>, |acc, s| match acc {
        Some(b) if !better(s, b, b.rank) => acc,
        _ => Some(s),
    })?;

    let mut rev: Vec<PathNode> = Vec::new();
    rev.push(PathNode {
        rank: cur.rank,
        lane: cur.lane,
        phase: cur.name.clone(),
        start: cur.start,
        end: cur.end,
        wait: false,
        cause: String::new(),
    });
    // Backward walk to the step start.
    while cur.start > first + EPS {
        let pred = spans
            .iter()
            .filter(|s| s.end <= cur.start + EPS && !std::ptr::eq(**s, cur))
            .fold(None::<&&Span>, |acc, s| match acc {
                Some(b) if !better(s, b, cur.rank) => acc,
                _ => Some(s),
            });
        let Some(&pred) = pred else {
            // Nothing finished before us: the head of the chain started
            // mid-step (should not happen with per-rank chains from base);
            // close the cover with a leading wait.
            rev.push(PathNode {
                rank: cur.rank,
                lane: Lane::Cpu,
                phase: "wait".into(),
                start: first,
                end: cur.start,
                wait: true,
                cause: String::new(),
            });
            break;
        };
        if cur.start - pred.end > EPS {
            // Gap: the chain's next span idled between pred's finish and its
            // own start — a cross-rank wait charged to the waiting rank.
            rev.push(PathNode {
                rank: cur.rank,
                lane: Lane::Cpu,
                phase: "wait".into(),
                start: pred.end,
                end: cur.start,
                wait: true,
                cause: String::new(),
            });
        }
        rev.push(PathNode {
            rank: pred.rank,
            lane: pred.lane,
            phase: pred.name.clone(),
            start: pred.start,
            end: pred.end,
            wait: false,
            cause: String::new(),
        });
        cur = pred;
    }
    rev.reverse();
    // Clamp the cover so durations telescope to exactly `last - first` even
    // when spans overlap (concurrent lanes): each node is charged only the
    // time past its predecessor's end.
    let mut nodes = Vec::with_capacity(rev.len());
    let mut clock = first;
    for mut n in rev {
        if n.end <= clock + EPS {
            continue; // fully shadowed by earlier critical work
        }
        n.start = n.start.max(clock);
        clock = n.end;
        nodes.push(n);
    }
    // Attribute wait nodes: the producer records explicit `"wait"` barrier
    // spans carrying a `cause` arg (from the flow-ledger wait attribution);
    // each synthetic wait adopts the cause of the same-rank explicit wait
    // span it overlaps most.
    let explicit: Vec<&Span> = store
        .spans()
        .iter()
        .filter(|s| s.step == step && s.name == "wait")
        .collect();
    for n in nodes.iter_mut().filter(|n| n.wait) {
        let mut best = 0.0;
        let mut cause = UNATTRIBUTED.to_string();
        for s in explicit.iter().filter(|s| s.rank == n.rank) {
            let overlap = (n.end.min(s.end) - n.start.max(s.start)).max(0.0);
            if overlap > best + EPS {
                if let Some(c) = s.args.iter().find_map(|(k, v)| match (k, v) {
                    (&"cause", ArgValue::Str(c)) => Some(c.clone()),
                    _ => None,
                }) {
                    best = overlap;
                    cause = c;
                }
            }
        }
        n.cause = cause;
    }
    Some(CriticalPath {
        step,
        start: first,
        wall: last - first,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, TraceStore};

    /// Two ranks: rank 1 is the straggler through "local"; its "lets" chain
    /// sets the wall time; rank 0's early finish is off-path.
    fn two_rank_store() -> TraceStore {
        let mut t = TraceStore::new();
        for (r, d) in [(0u32, 1.0), (1u32, 2.0)] {
            t.span(r, 1, Lane::Gpu, "sort", 0.0, 0.5);
            t.span(r, 1, Lane::Gpu, "local", 0.5, 0.5 + d);
        }
        t.span(0, 1, Lane::Gpu, "lets", 1.5, 2.0);
        t.span(1, 1, Lane::Gpu, "lets", 2.5, 3.5);
        t
    }

    #[test]
    fn path_covers_wall_time_exactly() {
        let t = two_rank_store();
        let cp = critical_path(&t, 1).unwrap();
        assert_eq!(cp.step, 1);
        assert!((cp.wall - 3.5).abs() < 1e-12);
        assert!((cp.total() - cp.wall).abs() < 1e-9 * cp.wall.max(1.0));
        // Chain is gapless and chronological.
        for w in cp.nodes.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12, "gap in path");
        }
        assert!((cp.nodes[0].start - cp.start).abs() < 1e-12);
    }

    #[test]
    fn straggler_rank_owns_the_path() {
        let t = two_rank_store();
        let cp = critical_path(&t, 1).unwrap();
        // Terminal work is rank 1's "lets"; the whole chain stays on rank 1.
        let names: Vec<&str> = cp.nodes.iter().map(|n| n.phase.as_str()).collect();
        assert_eq!(names, ["sort", "local", "lets"]);
        assert!(cp.nodes.iter().all(|n| n.rank == 1));
        assert_eq!(cp.wait_seconds(), 0.0);
        assert!((cp.work_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn cross_rank_gap_becomes_wait_node() {
        let mut t = TraceStore::new();
        // Rank 0 finishes its work at 1.0; rank 1's consumer starts at 1.4:
        // the 0.4 s between is a cross-rank wait on rank 1.
        t.span(0, 3, Lane::Gpu, "local", 0.0, 1.0);
        t.span(1, 3, Lane::Gpu, "lets", 1.4, 2.0);
        let cp = critical_path(&t, 3).unwrap();
        let names: Vec<&str> = cp.nodes.iter().map(|n| n.phase.as_str()).collect();
        assert_eq!(names, ["local", "wait", "lets"]);
        assert_eq!(cp.nodes[1].rank, 1, "wait charged to the waiting rank");
        assert!((cp.wait_seconds() - 0.4).abs() < 1e-12);
        assert!((cp.total() - cp.wall).abs() < 1e-12);
        // And the slack is attributed to the phase it blocked.
        let slack = cp.slack_before();
        assert!((slack["lets"] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn overlapping_lanes_are_clamped_not_double_counted() {
        let mut t = TraceStore::new();
        // Comm overlaps the first half of the consumer: path must charge
        // the consumer only its unshadowed tail.
        t.span(0, 1, Lane::Comm, "let-comm", 0.0, 1.0);
        t.span(0, 1, Lane::Gpu, "lets", 0.5, 1.5);
        let cp = critical_path(&t, 1).unwrap();
        assert!((cp.wall - 1.5).abs() < 1e-12);
        assert!((cp.total() - cp.wall).abs() < 1e-12);
    }

    #[test]
    fn explicit_wait_spans_are_not_work() {
        let mut t = TraceStore::new();
        t.span(0, 1, Lane::Gpu, "local", 0.0, 2.0);
        t.span(1, 1, Lane::Gpu, "local", 0.0, 1.0);
        t.span(1, 1, Lane::Cpu, "wait", 1.0, 2.0); // barrier fill
        let cp = critical_path(&t, 1).unwrap();
        // The path is rank 0's straggling local, not rank 1's wait.
        assert_eq!(cp.nodes.len(), 1);
        assert_eq!(cp.nodes[0].rank, 0);
        assert!(!cp.nodes[0].wait);
    }

    #[test]
    fn empty_step_yields_none() {
        let t = TraceStore::new();
        assert!(critical_path(&t, 7).is_none());
    }

    #[test]
    fn wait_nodes_adopt_explicit_span_causes() {
        let mut t = TraceStore::new();
        t.span(0, 3, Lane::Gpu, "local", 0.0, 1.0);
        t.span(1, 3, Lane::Gpu, "lets", 1.4, 2.0);
        // The producer recorded rank 1's barrier fill with an attribution.
        let w = t.span(1, 3, Lane::Cpu, "wait", 1.0, 1.4);
        t.arg_str(w, "cause", "retransmission");
        let cp = critical_path(&t, 3).unwrap();
        let wait = cp.nodes.iter().find(|n| n.wait).unwrap();
        assert_eq!(wait.cause, "retransmission");
        assert!(cp.nodes.iter().filter(|n| !n.wait).all(|n| n.cause.is_empty()));
        let by_cause = cp.wait_seconds_by_cause();
        assert!((by_cause["retransmission"] - 0.4).abs() < 1e-12);
        let sum: f64 = by_cause.values().sum();
        assert!((sum - cp.wait_seconds()).abs() < 1e-12);
    }

    #[test]
    fn unexplained_waits_are_unattributed() {
        let mut t = TraceStore::new();
        t.span(0, 3, Lane::Gpu, "local", 0.0, 1.0);
        t.span(1, 3, Lane::Gpu, "lets", 1.4, 2.0);
        let cp = critical_path(&t, 3).unwrap();
        let wait = cp.nodes.iter().find(|n| n.wait).unwrap();
        assert_eq!(wait.cause, UNATTRIBUTED);
        assert!(cp.wait_seconds_by_cause().contains_key(UNATTRIBUTED));
    }

    #[test]
    fn phase_seconds_partition_the_wall() {
        let t = two_rank_store();
        let cp = critical_path(&t, 1).unwrap();
        let sum: f64 = cp.phase_seconds().values().sum();
        assert!((sum - cp.wall).abs() < 1e-9);
    }
}
