//! Cross-rank analysis over the span store.
//!
//! The paper's headline claims are *cross-rank*: Table II's breakdown is a
//! max-over-ranks story, Fig. 4's >95% weak-scaling efficiency is a ratio of
//! step wall-times, and the flop balancer's job is to keep 18600 GPUs
//! finishing together. A single rank's timeline cannot explain any of them.
//! This module family turns the [`TraceStore`](crate::TraceStore) into those
//! answers:
//!
//! * [`critical`] — extract the critical path of a step: the chain of spans
//!   (plus cross-rank waits) whose durations sum exactly to the measured
//!   step wall-time, with per-phase attribution and slack.
//! * [`imbalance`] — per-phase max/mean and max/median across ranks, named
//!   worst-rank attribution, and the flop-balance residual recomputed from
//!   gravity-span `flops` annotations.
//! * [`efficiency`] — weak- and strong-scaling parallel efficiency from a
//!   series of measured step wall-times.
//! * [`waits`] — attribute critical-path waits and exposed-communication
//!   intervals to their causal message flows (late sender, retransmission,
//!   stall, fabric fallback), with a per-link reliability ledger and a flow
//!   conservation check.

pub mod critical;
pub mod efficiency;
pub mod imbalance;
pub mod waits;

pub use critical::{critical_path, CriticalPath, PathNode, UNATTRIBUTED};
pub use efficiency::{strong_efficiency, weak_efficiency, ScalingPoint};
pub use imbalance::{flop_balance, phase_stats, step_wall_time, FlopBalance, PhaseStats};
pub use waits::{
    classify, conservation, exposed_comm, link_ledger, ConservationReport, ExposedComm,
    FlowSummary, LinkStats, WaitCause,
};
