//! Parallel efficiency from a series of measured step wall-times (Fig. 4).
//!
//! Weak scaling holds the per-rank problem size fixed: ideal is constant
//! wall time, so `e(p) = T(p₀)/T(p)`. Strong scaling holds the *total*
//! problem fixed: ideal is inverse-linear wall time, so
//! `e(p) = p₀·T(p₀) / (p·T(p))`. Both are normalized to the smallest rank
//! count in the series rather than literally p = 1, matching how the paper
//! plots Fig. 4 from its smallest measured configuration.

/// One sweep configuration and its measured step wall-time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Rank (GPU) count.
    pub p: u32,
    /// Particles per rank.
    pub n_per_rank: u64,
    /// Measured step wall-time, seconds.
    pub wall: f64,
}

/// Weak-scaling efficiency per point, normalized to the smallest-`p` point.
/// Empty input gives an empty result; zero wall times give 0.
pub fn weak_efficiency(points: &[ScalingPoint]) -> Vec<f64> {
    let Some(base) = points.iter().min_by_key(|pt| pt.p) else {
        return Vec::new();
    };
    points
        .iter()
        .map(|pt| {
            if pt.wall > 0.0 {
                base.wall / pt.wall
            } else {
                0.0
            }
        })
        .collect()
}

/// Strong-scaling efficiency per point, normalized to the smallest-`p`
/// point: `p₀·T(p₀) / (p·T(p))`.
pub fn strong_efficiency(points: &[ScalingPoint]) -> Vec<f64> {
    let Some(base) = points.iter().min_by_key(|pt| pt.p) else {
        return Vec::new();
    };
    let ideal = base.p as f64 * base.wall;
    points
        .iter()
        .map(|pt| {
            let denom = pt.p as f64 * pt.wall;
            if denom > 0.0 {
                ideal / denom
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_efficiency_is_ratio_of_wall_times() {
        let pts = [
            ScalingPoint { p: 2, n_per_rank: 1000, wall: 1.0 },
            ScalingPoint { p: 8, n_per_rank: 1000, wall: 1.25 },
        ];
        let e = weak_efficiency(&pts);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn strong_efficiency_accounts_for_rank_count() {
        // Perfect strong scaling: wall halves when p doubles.
        let pts = [
            ScalingPoint { p: 2, n_per_rank: 4000, wall: 2.0 },
            ScalingPoint { p: 4, n_per_rank: 2000, wall: 1.0 },
            ScalingPoint { p: 8, n_per_rank: 1000, wall: 0.75 },
        ];
        let e = strong_efficiency(&pts);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
        assert!((e[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn base_is_smallest_p_regardless_of_order() {
        let pts = [
            ScalingPoint { p: 8, n_per_rank: 1000, wall: 2.0 },
            ScalingPoint { p: 2, n_per_rank: 1000, wall: 1.0 },
        ];
        let e = weak_efficiency(&pts);
        assert!((e[0] - 0.5).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(weak_efficiency(&[]).is_empty());
        assert!(strong_efficiency(&[]).is_empty());
        let z = [ScalingPoint { p: 1, n_per_rank: 1, wall: 0.0 }];
        assert_eq!(weak_efficiency(&z), vec![0.0]);
    }
}
