//! Chrome trace-event JSON export.
//!
//! Produces the [Trace Event Format] consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: one *process* per
//! rank, one *thread* per lane (GPU / COMM / CPU), complete (`"X"`) events
//! for spans, instant (`"i"`) events for faults, and flow (`"s"`/`"t"`/
//! `"f"`) events for cross-rank message arrows (Perfetto joins points that
//! share an id into an arrow binding to the enclosing spans). Timestamps
//! are microseconds with fixed 3-decimal precision, so identical stores
//! export byte-identically.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{escape, fmt_f64};
use crate::span::{ArgValue, FlowPhase, Lane, TraceStore};

/// Seconds → trace microseconds, fixed precision.
fn ts(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| {
            let val = match v {
                ArgValue::F64(x) => fmt_f64(*x),
                ArgValue::U64(x) => x.to_string(),
                ArgValue::Str(s) => escape(s),
            };
            format!("{}:{}", escape(k), val)
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Export `store` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(store: &TraceStore) -> String {
    // (pid, tid, ts-string, event-json); sorted for deterministic output
    // and monotonic timestamps per track.
    let mut events: Vec<(u32, u32, f64, u8, String)> = Vec::new();

    // Metadata: process per rank, thread per lane used by that rank.
    for rank in store.ranks() {
        events.push((
            rank,
            0,
            -1.0,
            0,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{rank},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                escape(&format!("rank {rank}"))
            ),
        ));
        let mut lanes: Vec<Lane> = store
            .spans()
            .iter()
            .filter(|s| s.rank == rank)
            .map(|s| s.lane)
            .chain(
                store
                    .instants()
                    .iter()
                    .filter(|e| e.rank == rank)
                    .map(|e| e.lane),
            )
            .chain(
                store
                    .flow_points()
                    .iter()
                    .filter(|f| f.rank == rank)
                    .map(|f| f.lane),
            )
            .collect();
        lanes.sort();
        lanes.dedup();
        for lane in lanes {
            events.push((
                rank,
                lane.tid(),
                -1.0,
                1,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{rank},\"tid\":{},\
                     \"args\":{{\"name\":{}}}}}",
                    lane.tid(),
                    escape(lane.name())
                ),
            ));
        }
    }

    for s in store.spans() {
        let dur = (s.end - s.start).max(0.0);
        let mut ev = format!(
            "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
            escape(&s.name),
            escape(&format!("step{}", s.step)),
            s.rank,
            s.lane.tid(),
            ts(s.start),
            ts(dur),
        );
        if !s.args.is_empty() {
            ev.push_str(&format!(",\"args\":{}", args_json(&s.args)));
        }
        ev.push('}');
        events.push((s.rank, s.lane.tid(), s.start, 2, ev));
    }

    for e in store.instants() {
        let mut ev = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{},\"cat\":{},\"pid\":{},\"tid\":{},\"ts\":{}",
            escape(&e.name),
            escape(&format!("step{}", e.step)),
            e.rank,
            e.lane.tid(),
            ts(e.at),
        );
        if !e.args.is_empty() {
            ev.push_str(&format!(",\"args\":{}", args_json(&e.args)));
        }
        ev.push('}');
        events.push((e.rank, e.lane.tid(), e.at, 3, ev));
    }

    for f in store.flow_points() {
        let ph = match f.phase {
            FlowPhase::Start => "s",
            FlowPhase::Step => "t",
            FlowPhase::Finish => "f",
        };
        // `"bp":"e"` binds each end to the span *enclosing* the point (the
        // COMM-lane exchange span) rather than the next slice to start.
        let ev = format!(
            "{{\"ph\":\"{ph}\",\"id\":{},\"bp\":\"e\",\"name\":{},\"cat\":{},\
             \"pid\":{},\"tid\":{},\"ts\":{}}}",
            f.id,
            escape(&f.name),
            escape(&format!("step{}", f.step)),
            f.rank,
            f.lane.tid(),
            ts(f.at),
        );
        events.push((f.rank, f.lane.tid(), f.at, 4, ev));
    }

    events.sort_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(a.2.partial_cmp(&b.2).unwrap())
            .then(a.3.cmp(&b.3))
            .then(a.4.cmp(&b.4))
    });

    let body: Vec<String> = events.into_iter().map(|(_, _, _, _, e)| e).collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        body.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::Lane;

    fn sample() -> TraceStore {
        let mut t = TraceStore::new();
        let g = t.span(0, 1, Lane::Gpu, "local", 0.0, 1.45);
        t.arg_f64(g, "gflops", 1770.0);
        t.arg_u64(g, "pp", 1716);
        t.span(0, 1, Lane::Comm, "let-comm", 0.2, 0.9);
        t.span(1, 1, Lane::Gpu, "local", 0.0, 1.3);
        t.instant(0, 1, Lane::Comm, "fault:drop", 0.25);
        t.flow_point(41, 0, 1, Lane::Comm, "flow:Let", 0.3, FlowPhase::Start);
        t.flow_point(41, 1, 1, Lane::Comm, "flow:Let", 0.6, FlowPhase::Finish);
        t
    }

    #[test]
    fn export_is_valid_json_with_tracks() {
        let doc = chrome_trace_json(&sample());
        let v = json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name + 4 thread_name + 3 spans + 1 instant + 2 flow ends
        assert_eq!(evs.len(), 12);
        let phases: Vec<&str> = evs
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"X") && phases.contains(&"i") && phases.contains(&"M"));
        assert!(phases.contains(&"s") && phases.contains(&"f"));
        // Both ends of the arrow share the flow id and sit on COMM lanes.
        let ends: Vec<_> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").and_then(|p| p.as_str()),
                    Some("s") | Some("t") | Some("f")
                )
            })
            .collect();
        assert_eq!(ends.len(), 2);
        for e in &ends {
            assert_eq!(e.get("id").unwrap().as_f64(), Some(41.0));
            assert_eq!(e.get("tid").unwrap().as_f64(), Some(1.0));
            assert_eq!(e.get("bp").unwrap().as_str(), Some("e"));
        }
    }

    #[test]
    fn deterministic_export() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = chrome_trace_json(&sample());
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let local = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("local"))
            .unwrap();
        assert_eq!(local.get("dur").unwrap().as_f64(), Some(1.45e6));
    }
}
