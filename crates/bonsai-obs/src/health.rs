//! Declarative health rules over the per-step metric stream.
//!
//! A sustained production run lives or dies on catching energy drift,
//! load-imbalance creep and comm-exposure regressions *while the run is in
//! flight*. A [`Rule`] names a metric, a [`Condition`] (threshold, relative
//! drift against the first observed value, or windowed trend), a
//! [`Severity`], and a time hysteresis: the alert opens only after
//! `for_steps` consecutive breaches and closes only after `clear_steps`
//! consecutive clean steps, so a single noisy sample neither pages nor
//! flaps. Every open/close lands in an append-only [`AlertEvent`] log whose
//! rendering is byte-deterministic — the incident log can be diffed across
//! runs like every other artefact of this workspace.
//!
//! The engine is pure state-machine arithmetic over `(step, metric, value)`
//! observations; feeding it is the caller's job (the cluster evaluates it
//! inside its step, benches feed synthetic streams in tests).

use crate::json::fmt_f64;
use std::collections::VecDeque;

/// How loudly an open alert should be treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a line in the log.
    Info,
    /// Needs a look before the run ends.
    Warning,
    /// The run is wasting allocation; stop or intervene.
    Critical,
}

impl Severity {
    /// Stable lowercase name (used by exports).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// The breach predicate of a rule.
#[derive(Clone, Debug)]
pub enum Condition {
    /// Breach while `value > limit`.
    Above(f64),
    /// Breach while `value < limit`.
    Below(f64),
    /// Breach while `|value − first| > limit · max(|first|, 1e-12)`, where
    /// `first` is the rule's first observed value (relative drift against
    /// the run's own baseline).
    DriftAbove(f64),
    /// Windowed trend: keep the last `window` values; once full, breach
    /// while `mean(newer half) − mean(older half)` exceeds
    /// `rise · max(|mean(older half)|, 1e-12)` (relative creep detector).
    TrendAbove {
        /// Samples in the comparison window (≥ 2).
        window: usize,
        /// Relative rise between the window's halves that breaches.
        rise: f64,
    },
}

impl Condition {
    fn describe(&self) -> String {
        match self {
            Condition::Above(l) => format!("above {}", fmt_f64(*l)),
            Condition::Below(l) => format!("below {}", fmt_f64(*l)),
            Condition::DriftAbove(l) => format!("drifted more than {} from baseline", fmt_f64(*l)),
            Condition::TrendAbove { window, rise } => {
                format!("rising more than {} over {window} steps", fmt_f64(*rise))
            }
        }
    }
}

/// One declarative health rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Stable rule name (`energy-drift`, `recovery-storm`).
    pub name: String,
    /// Metric the rule watches (rendered registry key).
    pub metric: String,
    /// Breach predicate.
    pub condition: Condition,
    /// Severity while open.
    pub severity: Severity,
    /// Consecutive breaching steps before the alert opens (≥ 1).
    pub for_steps: u32,
    /// Consecutive clean steps before an open alert closes (≥ 1).
    pub clear_steps: u32,
}

impl Rule {
    /// Build a rule (clamps the hysteresis counts to ≥ 1).
    pub fn new(
        name: &str,
        metric: &str,
        condition: Condition,
        severity: Severity,
        for_steps: u32,
        clear_steps: u32,
    ) -> Self {
        Self {
            name: name.to_string(),
            metric: metric.to_string(),
            condition,
            severity,
            for_steps: for_steps.max(1),
            clear_steps: clear_steps.max(1),
        }
    }
}

/// The default rule set of a long production run: the five failure modes
/// the paper's §VI-C run had to watch. Thresholds are deliberately loose —
/// they flag pathology, not noise.
pub fn default_rules() -> Vec<Rule> {
    vec![
        // Energy drift: the conservation monitor. Warning at 0.1%, critical
        // at 1% relative drift from the run's initial energy.
        Rule::new(
            "energy-drift",
            "bonsai_energy_drift",
            Condition::Above(1.0e-3),
            Severity::Warning,
            3,
            3,
        ),
        Rule::new(
            "energy-runaway",
            "bonsai_energy_drift",
            Condition::Above(1.0e-2),
            Severity::Critical,
            2,
            2,
        ),
        // Flop-balance residual: the §III-B1 balancer is lagging when the
        // measured max/mean walk-flop share stays above 1.6.
        Rule::new(
            "flop-imbalance",
            "bonsai_flop_residual",
            Condition::Above(1.6),
            Severity::Warning,
            5,
            5,
        ),
        // Hidden-comm fraction: §III-B2's overlap story fails when most of
        // the LET exchange is exposed.
        Rule::new(
            "comm-exposed",
            "bonsai_hidden_comm_fraction",
            Condition::Below(0.10),
            Severity::Warning,
            5,
            5,
        ),
        // Achieved-Gflops floor and sag: a collapse to (near) zero is
        // critical; a sustained 40% sag from the run's own opening rate is
        // a warning.
        Rule::new(
            "gflops-floor",
            "bonsai_gpu_gflops",
            Condition::Below(1.0),
            Severity::Critical,
            3,
            3,
        ),
        Rule::new(
            "gflops-sag",
            "bonsai_gpu_gflops",
            Condition::DriftAbove(0.4),
            Severity::Warning,
            5,
            5,
        ),
        // Step-time creep: the windowed-trend detector over the simulated
        // step seconds.
        Rule::new(
            "step-time-creep",
            "bonsai_step_seconds",
            Condition::TrendAbove {
                window: 50,
                rise: 0.25,
            },
            Severity::Warning,
            1,
            10,
        ),
        // Fault-recovery storm: more than 10 recovery actions per step,
        // sustained, means the fabric (or a rank) is sick.
        Rule::new(
            "recovery-storm",
            "bonsai_recovery_actions",
            Condition::Above(10.0),
            Severity::Warning,
            2,
            2,
        ),
    ]
}

/// Did an alert open or close?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// The rule breached through its hysteresis and is now open.
    Open,
    /// The open rule stayed clean through its hysteresis and closed.
    Close,
}

impl AlertKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Open => "open",
            AlertKind::Close => "close",
        }
    }
}

/// One entry of the incident log.
#[derive(Clone, Debug)]
pub struct AlertEvent {
    /// Step the transition happened on.
    pub step: u64,
    /// Rule name.
    pub rule: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Rule severity.
    pub severity: Severity,
    /// Open or close.
    pub kind: AlertKind,
    /// Metric value at the transition.
    pub value: f64,
    /// Human-readable, deterministic description.
    pub detail: String,
}

impl AlertEvent {
    /// One-line deterministic rendering (the incident-log line format).
    pub fn render(&self) -> String {
        format!(
            "step {:>6}  {:<5}  {:<18} [{}]  {} = {}  ({})",
            self.step,
            self.kind.name().to_uppercase(),
            self.rule,
            self.severity.name(),
            self.metric,
            fmt_f64(self.value),
            self.detail
        )
    }
}

/// Per-rule evaluation state.
#[derive(Clone, Debug, Default)]
struct RuleState {
    baseline: Option<f64>,
    window: VecDeque<f64>,
    breach_run: u32,
    clear_run: u32,
    open: bool,
    opened_at: Option<u64>,
}

/// The rule engine: evaluates every rule against the metric stream and
/// keeps the append-only alert log.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
    events: Vec<AlertEvent>,
}

impl HealthMonitor {
    /// Engine over the given rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        Self {
            rules,
            states,
            events: Vec::new(),
        }
    }

    /// The rules being evaluated.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Feed one `(step, metric, value)` observation to every rule watching
    /// `metric`. Returns the events (opens/closes) this observation fired;
    /// they are also appended to [`HealthMonitor::events`].
    pub fn observe(&mut self, step: u64, metric: &str, value: f64) -> Vec<AlertEvent> {
        let mut fired = Vec::new();
        for (rule, st) in self.rules.iter().zip(&mut self.states) {
            if rule.metric != metric {
                continue;
            }
            let breach = evaluate(&rule.condition, value, st);
            if st.open {
                if breach {
                    st.clear_run = 0;
                } else {
                    st.clear_run += 1;
                    if st.clear_run >= rule.clear_steps {
                        st.open = false;
                        st.clear_run = 0;
                        st.breach_run = 0;
                        let opened = st.opened_at.take();
                        let ev = AlertEvent {
                            step,
                            rule: rule.name.clone(),
                            metric: rule.metric.clone(),
                            severity: rule.severity,
                            kind: AlertKind::Close,
                            value,
                            detail: match opened {
                                Some(o) => format!(
                                    "clean for {} steps; was open since step {o}",
                                    rule.clear_steps
                                ),
                                None => format!("clean for {} steps", rule.clear_steps),
                            },
                        };
                        fired.push(ev.clone());
                        self.events.push(ev);
                    }
                }
            } else if breach {
                st.breach_run += 1;
                if st.breach_run >= rule.for_steps {
                    st.open = true;
                    st.breach_run = 0;
                    st.clear_run = 0;
                    st.opened_at = Some(step);
                    let ev = AlertEvent {
                        step,
                        rule: rule.name.clone(),
                        metric: rule.metric.clone(),
                        severity: rule.severity,
                        kind: AlertKind::Open,
                        value,
                        detail: format!("{} for {} consecutive steps", rule.condition.describe(), rule.for_steps),
                    };
                    fired.push(ev.clone());
                    self.events.push(ev);
                }
            } else {
                st.breach_run = 0;
            }
        }
        fired
    }

    /// The full append-only alert log.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Names of the rules currently open, in rule order.
    pub fn open_rules(&self) -> Vec<&Rule> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.open)
            .map(|(r, _)| r)
            .collect()
    }

    /// The worst severity that ever opened (`None` = the run stayed clean).
    pub fn worst_opened(&self) -> Option<Severity> {
        self.events
            .iter()
            .filter(|e| e.kind == AlertKind::Open)
            .map(|e| e.severity)
            .max()
    }

    /// Number of opens at `severity` over the whole run.
    pub fn opened_count(&self, severity: Severity) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == AlertKind::Open && e.severity == severity)
            .count()
    }

    /// Byte-deterministic incident log: one line per open/close in order,
    /// or an explicit all-clear line.
    pub fn render_log(&self) -> String {
        if self.events.is_empty() {
            return "no alerts opened\n".to_string();
        }
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.render());
            s.push('\n');
        }
        s
    }
}

/// Evaluate `cond` for one new `value`, updating the per-rule `state`
/// (baseline capture, trend window).
fn evaluate(cond: &Condition, value: f64, st: &mut RuleState) -> bool {
    match cond {
        Condition::Above(l) => value > *l,
        Condition::Below(l) => value < *l,
        Condition::DriftAbove(l) => {
            let base = *st.baseline.get_or_insert(value);
            (value - base).abs() > *l * base.abs().max(1e-12)
        }
        Condition::TrendAbove { window, rise } => {
            let w = (*window).max(2);
            st.window.push_back(value);
            while st.window.len() > w {
                st.window.pop_front();
            }
            if st.window.len() < w {
                return false;
            }
            let half = w / 2;
            let older: f64 = st.window.iter().take(half).sum::<f64>() / half as f64;
            let newer: f64 =
                st.window.iter().skip(w - half).sum::<f64>() / half as f64;
            newer - older > *rise * older.abs().max(1e-12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn above_rule(for_steps: u32, clear_steps: u32) -> Vec<Rule> {
        vec![Rule::new(
            "hot",
            "m",
            Condition::Above(1.0),
            Severity::Warning,
            for_steps,
            clear_steps,
        )]
    }

    #[test]
    fn hysteresis_filters_single_step_noise() {
        let mut h = HealthMonitor::new(above_rule(3, 2));
        // One-step spike: never opens.
        for (step, v) in [(1, 0.0), (2, 5.0), (3, 0.0), (4, 0.0)] {
            assert!(h.observe(step, "m", v).is_empty());
        }
        // Three consecutive breaches open exactly once.
        assert!(h.observe(5, "m", 2.0).is_empty());
        assert!(h.observe(6, "m", 2.0).is_empty());
        let fired = h.observe(7, "m", 2.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Open);
        assert_eq!(fired[0].step, 7);
        // Still breaching: no duplicate open.
        assert!(h.observe(8, "m", 3.0).is_empty());
        assert_eq!(h.open_rules().len(), 1);
        // One clean step is not enough to close...
        assert!(h.observe(9, "m", 0.5).is_empty());
        // ...a breach resets the clear run...
        assert!(h.observe(10, "m", 2.0).is_empty());
        assert!(h.observe(11, "m", 0.5).is_empty());
        // ...two consecutive clean steps close.
        let fired = h.observe(12, "m", 0.5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Close);
        assert!(h.open_rules().is_empty());
        assert_eq!(h.worst_opened(), Some(Severity::Warning));
    }

    #[test]
    fn drift_rule_uses_first_value_as_baseline() {
        let mut h = HealthMonitor::new(vec![Rule::new(
            "sag",
            "g",
            Condition::DriftAbove(0.5),
            Severity::Warning,
            1,
            1,
        )]);
        assert!(h.observe(1, "g", 100.0).is_empty()); // baseline = 100
        assert!(h.observe(2, "g", 80.0).is_empty()); // 20% drift: clean
        let fired = h.observe(3, "g", 40.0); // 60% drift: open
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Open);
        let fired = h.observe(4, "g", 90.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Close);
    }

    #[test]
    fn trend_rule_needs_a_full_window() {
        let mut h = HealthMonitor::new(vec![Rule::new(
            "creep",
            "t",
            Condition::TrendAbove {
                window: 4,
                rise: 0.5,
            },
            Severity::Info,
            1,
            1,
        )]);
        // Rising stream, but the window isn't full yet.
        assert!(h.observe(1, "t", 1.0).is_empty());
        assert!(h.observe(2, "t", 1.0).is_empty());
        assert!(h.observe(3, "t", 2.0).is_empty());
        // Window [1,1,2,2]: newer mean 2.0 vs older 1.0 → +100% > 50%.
        let fired = h.observe(4, "t", 2.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Open);
        // Flattening stream closes it: window [1,2,2,2] → newer mean 2.0 vs
        // older 1.5 = +33% < 50%, and clear_steps = 1 closes at once.
        let fired = h.observe(5, "t", 2.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Close);
        assert!(h.open_rules().is_empty());
    }

    #[test]
    fn unrelated_metrics_do_not_advance_rules() {
        let mut h = HealthMonitor::new(above_rule(1, 1));
        assert!(h.observe(1, "other", 99.0).is_empty());
        assert!(h.events().is_empty());
    }

    #[test]
    fn log_renders_deterministically() {
        let run = || {
            let mut h = HealthMonitor::new(above_rule(2, 1));
            for (s, v) in [(1, 2.0), (2, 2.0), (3, 0.0), (4, 0.0)] {
                h.observe(s, "m", v);
            }
            h.render_log()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("OPEN") && a.contains("CLOSE"));
        let empty = HealthMonitor::new(above_rule(1, 1));
        assert_eq!(empty.render_log(), "no alerts opened\n");
    }

    #[test]
    fn default_rules_cover_the_documented_failure_modes() {
        let rules = default_rules();
        for metric in [
            "bonsai_energy_drift",
            "bonsai_flop_residual",
            "bonsai_hidden_comm_fraction",
            "bonsai_gpu_gflops",
            "bonsai_recovery_actions",
        ] {
            assert!(
                rules.iter().any(|r| r.metric == metric),
                "no default rule for {metric}"
            );
        }
        assert!(rules.iter().any(|r| r.severity == Severity::Critical));
    }
}
