//! Folded-stacks export for flamegraph tooling.
//!
//! One line per unique stack, `frame1;frame2;… <value>`, where the value is
//! the span's *self time* in integer microseconds (time not covered by its
//! child spans). The root frames are `rank N` and the lane name, so a
//! flamegraph groups by track, then lane, then phase hierarchy — pipe the
//! output straight into `flamegraph.pl` or speedscope.

use crate::span::{SpanId, TraceStore};
use std::collections::BTreeMap;

/// Render `store` as folded-stacks text.
pub fn folded_stacks(store: &TraceStore) -> String {
    let spans = store.spans();
    // Children (by index) of each span, for self-time subtraction.
    let mut child_time = vec![0.0f64; spans.len()];
    for s in spans {
        if let Some(SpanId(p)) = s.parent {
            child_time[p] += s.end - s.start;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let mut frames = vec![s.name.clone()];
        let mut cur = s.parent;
        while let Some(SpanId(p)) = cur {
            frames.push(spans[p].name.clone());
            cur = spans[p].parent;
        }
        frames.push(s.lane.name().to_string());
        frames.push(format!("rank {}", s.rank));
        frames.reverse();
        let self_us = ((s.end - s.start - child_time[i]).max(0.0) * 1e6).round() as u64;
        if self_us > 0 {
            *folded.entry(frames.join(";")).or_insert(0) += self_us;
        }
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Lane;

    #[test]
    fn self_time_subtracts_children() {
        let mut t = TraceStore::new();
        let g = t.span(0, 1, Lane::Gpu, "gravity", 0.0, 2.0);
        t.child_span(g, "local", 0.0, 1.5);
        let s = folded_stacks(&t);
        assert!(s.contains("rank 0;GPU;gravity 500000\n"), "{s}");
        assert!(s.contains("rank 0;GPU;gravity;local 1500000\n"), "{s}");
    }

    #[test]
    fn aggregates_across_steps() {
        let mut t = TraceStore::new();
        t.span(0, 1, Lane::Gpu, "sort", 0.0, 0.1);
        t.span(0, 2, Lane::Gpu, "sort", 1.0, 1.1);
        let s = folded_stacks(&t);
        // two 0.1 s sorts fold into one 200000 µs line
        assert_eq!(s, "rank 0;GPU;sort 200000\n");
    }
}
