//! Bounded, deterministic per-metric time series for long-run monitoring.
//!
//! A multi-thousand-step production run cannot keep every per-step sample of
//! every metric at full fidelity, but the longitudinal questions — is the
//! energy drifting, is the balancer creeping, did the Gflops floor sag —
//! need the whole run, not a recent window. A [`Series`] therefore stores
//! *step-aligned bins*: each bin covers a contiguous step range and keeps
//! min / max / sum / count / last, and whenever the bin count would exceed
//! the configured bound the bin width doubles and adjacent bins merge. A
//! 10k-step run costs the same memory as a 100-step run; only resolution
//! (never coverage) is lost, and the downsampling is a pure function of the
//! sample sequence, so identical runs produce identical stores —
//! byte-deterministic dashboards.
//!
//! [`SeriesStore`] is the per-run collection, keyed by rendered metric name
//! and fed each epoch from the metrics registry's per-step gauges.

use std::collections::BTreeMap;

/// Bounds of a [`SeriesStore`].
#[derive(Clone, Copy, Debug)]
pub struct SeriesConfig {
    /// Maximum bins per series; when exceeded, bin width doubles and
    /// adjacent bins merge (capacity halves). Clamped to ≥ 8.
    pub max_bins: usize,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        Self { max_bins: 512 }
    }
}

/// One downsampled bucket: the rollup of every sample whose step fell in
/// `[step_lo, step_hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bin {
    /// First step covered.
    pub step_lo: u64,
    /// Last step covered.
    pub step_hi: u64,
    /// Samples merged into this bin.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of samples (for the mean).
    pub sum: f64,
    /// Most recent sample.
    pub last: f64,
}

impl Bin {
    fn seed(step: u64, v: f64) -> Self {
        Self {
            step_lo: step,
            step_hi: step,
            count: 1,
            min: v,
            max: v,
            sum: v,
            last: v,
        }
    }

    fn absorb_sample(&mut self, step: u64, v: f64) {
        self.step_hi = self.step_hi.max(step);
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.last = v;
    }

    fn absorb_bin(&mut self, other: &Bin) {
        self.step_lo = self.step_lo.min(other.step_lo);
        self.step_hi = self.step_hi.max(other.step_hi);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.last = other.last;
    }

    /// Mean sample of the bin.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One metric's bounded history: step-aligned bins plus a whole-run rollup
/// that never loses precision to downsampling.
#[derive(Clone, Debug)]
pub struct Series {
    max_bins: usize,
    /// Steps per bin (power of two; 1 = full fidelity).
    stride: u64,
    bins: Vec<Bin>,
    /// Whole-run rollup (exact regardless of stride).
    summary: Option<Bin>,
}

impl Series {
    fn new(max_bins: usize) -> Self {
        Self {
            max_bins: max_bins.max(8),
            stride: 1,
            bins: Vec::new(),
            summary: None,
        }
    }

    /// Record one `(step, value)` sample. Steps must be non-decreasing
    /// (samples for the same step merge into the same bin).
    pub fn record(&mut self, step: u64, v: f64) {
        match &mut self.summary {
            Some(s) => s.absorb_sample(step, v),
            None => self.summary = Some(Bin::seed(step, v)),
        }
        let bucket = step / self.stride;
        match self.bins.last_mut() {
            Some(b) if b.step_lo / self.stride == bucket => b.absorb_sample(step, v),
            _ => self.bins.push(Bin::seed(step, v)),
        }
        while self.bins.len() > self.max_bins {
            self.stride *= 2;
            let mut merged: Vec<Bin> = Vec::with_capacity(self.bins.len() / 2 + 1);
            for b in &self.bins {
                let bucket = b.step_lo / self.stride;
                match merged.last_mut() {
                    Some(m) if m.step_lo / self.stride == bucket => m.absorb_bin(b),
                    _ => merged.push(*b),
                }
            }
            self.bins = merged;
        }
    }

    /// Current steps-per-bin (1 until the first downsample).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The downsampled bins, in step order.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Whole-run rollup: exact min/max/mean/last over every sample ever
    /// recorded (`None` for an empty series).
    pub fn summary(&self) -> Option<&Bin> {
        self.summary.as_ref()
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.map_or(0, |s| s.count)
    }

    /// Most recent sample (`None` for an empty series).
    pub fn last(&self) -> Option<f64> {
        self.summary.map(|s| s.last)
    }
}

/// Per-run collection of series, keyed by rendered metric name.
#[derive(Clone, Debug, Default)]
pub struct SeriesStore {
    cfg: SeriesConfig,
    map: BTreeMap<String, Series>,
}

impl SeriesStore {
    /// Empty store with the given bounds.
    pub fn new(cfg: SeriesConfig) -> Self {
        Self {
            cfg,
            map: BTreeMap::new(),
        }
    }

    /// Record one sample of `name` at `step`.
    pub fn record(&mut self, name: &str, step: u64, v: f64) {
        self.map
            .entry(name.to_string())
            .or_insert_with(|| Series::new(self.cfg.max_bins))
            .record(step, v);
    }

    /// One series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.map.get(name)
    }

    /// All series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Metric names in order.
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fidelity_below_the_bound() {
        let mut s = Series::new(16);
        for step in 0..16 {
            s.record(step, step as f64);
        }
        assert_eq!(s.stride(), 1);
        assert_eq!(s.bins().len(), 16);
        assert_eq!(s.bins()[3].min, 3.0);
        assert_eq!(s.summary().unwrap().count, 16);
    }

    #[test]
    fn downsampling_is_lossless_on_rollups() {
        // 10_000 steps into 64 bins: stride grows, but min/max/sum/count
        // over the bins must still equal the exact whole-run rollup.
        let mut s = Series::new(64);
        let f = |i: u64| ((i * 37) % 101) as f64 - 50.0;
        for step in 0..10_000 {
            s.record(step, f(step));
        }
        assert!(s.bins().len() <= 64, "bound violated: {}", s.bins().len());
        assert!(s.stride() >= 10_000 / 64);
        let (mut count, mut sum) = (0u64, 0.0f64);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for b in s.bins() {
            count += b.count;
            sum += b.sum;
            min = min.min(b.min);
            max = max.max(b.max);
        }
        let exact = s.summary().unwrap();
        assert_eq!(count, exact.count);
        assert_eq!(count, 10_000);
        assert!((sum - exact.sum).abs() < 1e-9 * exact.sum.abs().max(1.0));
        assert_eq!(min, exact.min);
        assert_eq!(max, exact.max);
        // Bins are disjoint, ordered, and cover the run.
        for w in s.bins().windows(2) {
            assert!(w[0].step_hi < w[1].step_lo);
        }
        assert_eq!(s.bins()[0].step_lo, 0);
        assert_eq!(s.bins().last().unwrap().step_hi, 9_999);
    }

    #[test]
    fn downsampling_is_deterministic() {
        let run = || {
            let mut s = Series::new(32);
            for step in 0..5_000 {
                s.record(step, (step as f64 * 0.01).sin());
            }
            format!("{:?}", s.bins())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn store_routes_by_name() {
        let mut st = SeriesStore::new(SeriesConfig { max_bins: 8 });
        st.record("a", 0, 1.0);
        st.record("b", 0, 2.0);
        st.record("a", 1, 3.0);
        assert_eq!(st.len(), 2);
        assert_eq!(st.series("a").unwrap().count(), 2);
        assert_eq!(st.series("a").unwrap().last(), Some(3.0));
        assert_eq!(st.names(), vec!["a", "b"]);
        assert!(st.series("missing").is_none());
    }

    #[test]
    fn same_step_samples_share_a_bin() {
        let mut s = Series::new(8);
        s.record(5, 1.0);
        s.record(5, 3.0);
        assert_eq!(s.bins().len(), 1);
        assert_eq!(s.bins()[0].count, 2);
        assert_eq!(s.bins()[0].max, 3.0);
        assert!((s.bins()[0].mean() - 2.0).abs() < 1e-15);
    }
}
