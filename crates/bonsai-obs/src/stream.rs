//! The in-run telemetry bus: incremental, versioned frames pushed through
//! bounded single-producer ring buffers to subscribers, with an explicit
//! backpressure policy and exact per-subscriber drop/lag accounting.
//!
//! Every other exporter in this crate is post-hoc — artifacts are reduced
//! and written after the run ends. The paper's runs were watched *live* on
//! 18600 GPUs without perturbing the compute–communication overlap
//! (§V–VI), and ROADMAP item 2 (a multi-tenant service streaming progress
//! to clients) needs the same property: a producer that never blocks on a
//! slow consumer and an honest ledger of what each consumer missed.
//!
//! The backpressure contract, per frame kind:
//!
//! | kind | policy on a full ring |
//! |---|---|
//! | `step-header`, `phase-sample`, `gauges`, `flow-digest` | **lossy tail drop** — the new frame is discarded for that subscriber and counted |
//! | `alert`, `view-change` | **must deliver** — the oldest *droppable* frame in the ring is evicted (counted); if none, the ring overflows its capacity (counted) |
//!
//! The producer therefore never waits: a slow subscriber loses samples, and
//! only samples. [`TelemetryBus::set_block_on_full`] flips the sabotage
//! mode the CI gate must catch — a bus that *stalls the producer* instead
//! of dropping (each stall is counted so the overhead meter can charge it).
//!
//! Frames encode byte-deterministically ([`TelemetryFrame::encode`]): all
//! field maps are `BTreeMap`-ordered and floats render through
//! [`fmt_f64`], so a fixed-seed run streams byte-identical lines.

use crate::json::{escape, fmt_f64};
use std::collections::{BTreeMap, VecDeque};

/// Telemetry frame schema version (the `"v"` field of every encoded frame).
pub const FRAME_VERSION: u32 = 1;

/// The kind of a telemetry frame; determines its backpressure policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FrameKind {
    /// Once per step: step/epoch ids, world size, particle count, clock.
    StepHeader,
    /// Once per step: the Table II per-phase seconds of the step.
    PhaseSample,
    /// Once per step: the configured key gauges of the step.
    Gauges,
    /// Once per step: the flow-conservation digest of the run so far.
    FlowDigest,
    /// A health-rule transition (open/close). Must deliver.
    Alert,
    /// A completed membership view change. Must deliver.
    ViewChange,
}

impl FrameKind {
    /// Every kind, in declaration order (stable for accounting tables).
    pub const ALL: [FrameKind; 6] = [
        FrameKind::StepHeader,
        FrameKind::PhaseSample,
        FrameKind::Gauges,
        FrameKind::FlowDigest,
        FrameKind::Alert,
        FrameKind::ViewChange,
    ];

    /// Stable kebab-case name (the `"kind"` field of the encoding).
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::StepHeader => "step-header",
            FrameKind::PhaseSample => "phase-sample",
            FrameKind::Gauges => "gauges",
            FrameKind::FlowDigest => "flow-digest",
            FrameKind::Alert => "alert",
            FrameKind::ViewChange => "view-change",
        }
    }

    /// Whether backpressure may drop this kind (lossy-tail policy). Alerts
    /// and view changes must always reach every subscriber.
    pub fn droppable(self) -> bool {
        !matches!(self, FrameKind::Alert | FrameKind::ViewChange)
    }
}

/// A typed frame field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameValue {
    /// A float (rendered via [`fmt_f64`]).
    F64(f64),
    /// An unsigned integer (rendered bare).
    U64(u64),
    /// A string (JSON-escaped).
    Str(String),
}

impl FrameValue {
    fn encode(&self) -> String {
        match self {
            FrameValue::F64(x) => fmt_f64(*x),
            FrameValue::U64(x) => x.to_string(),
            FrameValue::Str(s) => escape(s),
        }
    }
}

/// One versioned telemetry frame: a sequence-numbered, step-stamped record
/// with a deterministic field map.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryFrame {
    /// Bus-wide publish sequence number (1-based, gapless at the producer).
    pub seq: u64,
    /// Simulation step the frame describes.
    pub step: u64,
    /// Frame kind (fixes the backpressure policy).
    pub kind: FrameKind,
    /// Modelled-clock timestamp (seconds) the frame was published at.
    pub at: f64,
    /// Frame payload, deterministically ordered.
    pub fields: BTreeMap<String, FrameValue>,
}

impl TelemetryFrame {
    /// Byte-deterministic single-line JSON encoding:
    /// `{"v":1,"seq":…,"step":…,"kind":"…","at":…,"data":{…}}`.
    pub fn encode(&self) -> String {
        let data: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", escape(k), v.encode()))
            .collect();
        format!(
            "{{\"v\":{FRAME_VERSION},\"seq\":{},\"step\":{},\"kind\":\"{}\",\"at\":{},\"data\":{{{}}}}}",
            self.seq,
            self.step,
            self.kind.name(),
            fmt_f64(self.at),
            data.join(",")
        )
    }

    /// A field's float value, accepting integer fields (`None` otherwise).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(FrameValue::F64(x)) => Some(*x),
            Some(FrameValue::U64(x)) => Some(*x as f64),
            _ => None,
        }
    }

    /// A field's string value (`None` otherwise).
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(FrameValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// One subscriber's static configuration.
#[derive(Clone, Debug)]
pub struct SubscriberConfig {
    /// Stable subscriber name (appears in the accounting report).
    pub name: String,
    /// Ring capacity in frames (clamped to ≥ 1). Must-deliver frames may
    /// exceed it transiently (counted as overflow).
    pub capacity: usize,
}

impl SubscriberConfig {
    /// Build a config.
    pub fn new(name: &str, capacity: usize) -> Self {
        Self {
            name: name.to_string(),
            capacity: capacity.max(1),
        }
    }
}

/// Per-subscriber live state: the bounded ring plus the drop/lag ledger.
#[derive(Clone, Debug)]
struct Subscriber {
    cfg: SubscriberConfig,
    ring: VecDeque<TelemetryFrame>,
    delivered: u64,
    /// Lossy-tail drops by kind name (the new frame was discarded).
    dropped: BTreeMap<&'static str, u64>,
    /// Droppable frames evicted from the ring to admit a must-deliver one.
    evicted: BTreeMap<&'static str, u64>,
    /// Must-deliver frames admitted past capacity (ring had nothing
    /// droppable left to evict).
    overflow: u64,
    /// Highest sequence number consumed via poll.
    consumed_seq: u64,
    /// Worst observed lag (newest published seq − last consumed seq).
    max_lag: u64,
}

impl Subscriber {
    fn new(cfg: SubscriberConfig) -> Self {
        Self {
            cfg,
            ring: VecDeque::new(),
            delivered: 0,
            dropped: BTreeMap::new(),
            evicted: BTreeMap::new(),
            overflow: 0,
            consumed_seq: 0,
            max_lag: 0,
        }
    }

    fn dropped_total(&self) -> u64 {
        self.dropped.values().sum::<u64>() + self.evicted.values().sum::<u64>()
    }
}

/// The frozen accounting view of one subscriber (export surface).
#[derive(Clone, Debug)]
pub struct SubscriberReport {
    /// Subscriber name.
    pub name: String,
    /// Configured ring capacity.
    pub capacity: usize,
    /// Frames delivered through [`TelemetryBus::poll`].
    pub delivered: u64,
    /// Lossy-tail drops by kind name.
    pub dropped: BTreeMap<&'static str, u64>,
    /// Evictions (droppable frames displaced by must-deliver ones) by kind.
    pub evicted: BTreeMap<&'static str, u64>,
    /// Must-deliver frames admitted past capacity.
    pub overflow: u64,
    /// Frames still buffered in the ring.
    pub in_ring: usize,
    /// Worst observed lag over the run.
    pub max_lag: u64,
    /// Lag right now (newest published seq − last consumed seq).
    pub lag: u64,
}

impl SubscriberReport {
    /// Frames of *must-deliver* kinds this subscriber lost (must be 0 under
    /// the honest policy; only the `block_on_full` sabotage can raise it).
    pub fn must_deliver_lost(&self) -> u64 {
        let lost = |m: &BTreeMap<&'static str, u64>| {
            FrameKind::ALL
                .iter()
                .filter(|k| !k.droppable())
                .map(|k| m.get(k.name()).copied().unwrap_or(0))
                .sum::<u64>()
        };
        lost(&self.dropped) + lost(&self.evicted)
    }

    /// Total frames lost (dropped + evicted) across kinds.
    pub fn lost_total(&self) -> u64 {
        self.dropped.values().sum::<u64>() + self.evicted.values().sum::<u64>()
    }
}

/// The single-producer telemetry bus: one bounded ring per subscriber.
#[derive(Clone, Debug, Default)]
pub struct TelemetryBus {
    next_seq: u64,
    subs: Vec<Subscriber>,
    /// Frames published, by kind name.
    published: BTreeMap<&'static str, u64>,
    /// Total encoded frame bytes (each frame is encoded exactly once).
    bytes_encoded: u64,
    /// Sabotage mode: stall the producer instead of dropping.
    block_on_full: bool,
    /// Producer stalls taken in `block_on_full` mode.
    stalls: u64,
}

impl TelemetryBus {
    /// An empty bus (no subscribers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a subscriber; returns its index (poll handle).
    pub fn add_subscriber(&mut self, cfg: SubscriberConfig) -> usize {
        self.subs.push(Subscriber::new(cfg));
        self.subs.len() - 1
    }

    /// Flip the sabotage mode: on a full ring the producer *stalls* (each
    /// stall is counted, and the frame is then force-admitted by evicting
    /// the ring's oldest frame regardless of kind). Never set in honest
    /// runs — this is the failure mode the CI overhead gate must catch.
    pub fn set_block_on_full(&mut self, yes: bool) {
        self.block_on_full = yes;
    }

    /// Whether the sabotage mode is active.
    pub fn block_on_full(&self) -> bool {
        self.block_on_full
    }

    /// Publish one frame to every subscriber. Returns the encoded byte
    /// length of the frame (the overhead meter's encoding charge); the
    /// frame is encoded exactly once regardless of subscriber count.
    pub fn publish(
        &mut self,
        step: u64,
        kind: FrameKind,
        at: f64,
        fields: impl IntoIterator<Item = (String, FrameValue)>,
    ) -> usize {
        self.next_seq += 1;
        let frame = TelemetryFrame {
            seq: self.next_seq,
            step,
            kind,
            at,
            fields: fields.into_iter().collect(),
        };
        let bytes = frame.encode().len();
        self.bytes_encoded += bytes as u64;
        *self.published.entry(kind.name()).or_insert(0) += 1;
        for sub in &mut self.subs {
            let lag = frame.seq - sub.consumed_seq;
            sub.max_lag = sub.max_lag.max(lag);
            if sub.ring.len() < sub.cfg.capacity {
                sub.ring.push_back(frame.clone());
                continue;
            }
            if self.block_on_full {
                // Sabotage: the producer waits for the consumer. The stall
                // is counted (and priced by the overhead meter); the oldest
                // frame then gives way so the run can finish.
                self.stalls += 1;
                if let Some(old) = sub.ring.pop_front() {
                    *sub.evicted.entry(old.kind.name()).or_insert(0) += 1;
                }
                sub.ring.push_back(frame.clone());
            } else if kind.droppable() {
                // Lossy tail: the new sample is the one discarded.
                *sub.dropped.entry(kind.name()).or_insert(0) += 1;
            } else if let Some(pos) = sub.ring.iter().position(|f| f.kind.droppable()) {
                // Must deliver: the oldest droppable frame gives way.
                let old = sub.ring.remove(pos).expect("position was valid");
                *sub.evicted.entry(old.kind.name()).or_insert(0) += 1;
                sub.ring.push_back(frame.clone());
            } else {
                // Ring full of must-deliver frames: overflow past capacity
                // rather than lose one.
                sub.overflow += 1;
                sub.ring.push_back(frame.clone());
            }
        }
        bytes
    }

    /// Drain up to `max` frames from subscriber `idx`'s ring, oldest first.
    pub fn poll(&mut self, idx: usize, max: usize) -> Vec<TelemetryFrame> {
        let sub = &mut self.subs[idx];
        let n = max.min(sub.ring.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let f = sub.ring.pop_front().expect("ring length checked");
            sub.consumed_seq = sub.consumed_seq.max(f.seq);
            sub.delivered += 1;
            out.push(f);
        }
        out
    }

    /// Subscriber `idx`'s current lag: newest published seq minus the last
    /// sequence it consumed.
    pub fn lag(&self, idx: usize) -> u64 {
        self.next_seq - self.subs[idx].consumed_seq.min(self.next_seq)
    }

    /// Number of attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.len()
    }

    /// Total frames published (across kinds).
    pub fn published_total(&self) -> u64 {
        self.published.values().sum()
    }

    /// Frames published by kind name, deterministically ordered.
    pub fn published(&self) -> &BTreeMap<&'static str, u64> {
        &self.published
    }

    /// Total encoded frame bytes.
    pub fn bytes_encoded(&self) -> u64 {
        self.bytes_encoded
    }

    /// Producer stalls taken (nonzero only under `block_on_full`).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The frozen accounting view of every subscriber, in attach order.
    /// The exact conservation identity per subscriber:
    /// `published == delivered + dropped + evicted + in_ring`
    /// (overflow frames are in `delivered`/`in_ring` — overflow counts
    /// capacity violations, not losses).
    pub fn reports(&self) -> Vec<SubscriberReport> {
        self.subs
            .iter()
            .map(|s| SubscriberReport {
                name: s.cfg.name.clone(),
                capacity: s.cfg.capacity,
                delivered: s.delivered,
                dropped: s.dropped.clone(),
                evicted: s.evicted.clone(),
                overflow: s.overflow,
                in_ring: s.ring.len(),
                max_lag: s.max_lag,
                lag: self.next_seq - s.consumed_seq.min(self.next_seq),
            })
            .collect()
    }

    /// Check the per-subscriber conservation identity; returns the name of
    /// the first subscriber whose ledger does not balance.
    pub fn accounting_violation(&self) -> Option<String> {
        let total = self.published_total();
        for s in &self.subs {
            let accounted = s.delivered + s.dropped_total() + s.ring.len() as u64;
            if accounted != total {
                return Some(format!(
                    "{}: published {total} != delivered {} + lost {} + in-ring {}",
                    s.cfg.name,
                    s.delivered,
                    s.dropped_total(),
                    s.ring.len()
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(k: &str, v: f64) -> (String, FrameValue) {
        (k.to_string(), FrameValue::F64(v))
    }

    #[test]
    fn frames_encode_deterministically_and_versioned() {
        let mk = || {
            let mut f = TelemetryFrame {
                seq: 3,
                step: 7,
                kind: FrameKind::Gauges,
                at: 1.25,
                fields: BTreeMap::new(),
            };
            f.fields.insert("b".into(), FrameValue::F64(2.5));
            f.fields.insert("a".into(), FrameValue::U64(9));
            f.fields.insert("s".into(), FrameValue::Str("x\"y".into()));
            f
        };
        let a = mk().encode();
        assert_eq!(a, mk().encode());
        assert_eq!(
            a,
            "{\"v\":1,\"seq\":3,\"step\":7,\"kind\":\"gauges\",\"at\":1.25,\
             \"data\":{\"a\":9,\"b\":2.5,\"s\":\"x\\\"y\"}}"
        );
        // The encoding is valid JSON and round-trips the fields.
        let v = crate::json::parse(&a).unwrap();
        assert_eq!(v.get("v").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("data").unwrap().get("a").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn fast_subscriber_sees_everything_in_order() {
        let mut bus = TelemetryBus::new();
        let s = bus.add_subscriber(SubscriberConfig::new("fast", 16));
        for step in 1..=5u64 {
            bus.publish(step, FrameKind::StepHeader, step as f64, [field("t", 0.1)]);
        }
        let got = bus.poll(s, usize::MAX);
        assert_eq!(got.len(), 5);
        let seqs: Vec<u64> = got.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(bus.lag(s), 0);
        assert!(bus.accounting_violation().is_none());
    }

    #[test]
    fn slow_subscriber_loses_only_droppable_frames() {
        let mut bus = TelemetryBus::new();
        let s = bus.add_subscriber(SubscriberConfig::new("slow", 2));
        // Fill the ring, then keep publishing samples and two must-deliver
        // frames; never poll until the end.
        for step in 1..=6u64 {
            bus.publish(step, FrameKind::Gauges, 0.0, [field("g", 1.0)]);
        }
        bus.publish(7, FrameKind::Alert, 0.0, [field("v", 9.0)]);
        bus.publish(8, FrameKind::ViewChange, 0.0, [field("w", 5.0)]);
        let got = bus.poll(s, usize::MAX);
        // Ring of 2: both must-deliver frames survive (evicting the two
        // buffered gauges), every later gauge was tail-dropped.
        let kinds: Vec<FrameKind> = got.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec![FrameKind::Alert, FrameKind::ViewChange]);
        let r = &bus.reports()[0];
        assert_eq!(r.must_deliver_lost(), 0);
        assert_eq!(r.dropped.get("gauges"), Some(&4));
        assert_eq!(r.evicted.get("gauges"), Some(&2));
        assert_eq!(r.overflow, 0);
        assert!(bus.accounting_violation().is_none());
    }

    #[test]
    fn must_deliver_overflows_rather_than_drops() {
        let mut bus = TelemetryBus::new();
        let s = bus.add_subscriber(SubscriberConfig::new("tiny", 1));
        for step in 1..=3u64 {
            bus.publish(step, FrameKind::Alert, 0.0, [field("v", 1.0)]);
        }
        let r = &bus.reports()[0];
        assert_eq!(r.must_deliver_lost(), 0);
        assert_eq!(r.overflow, 2, "two alerts admitted past capacity 1");
        assert_eq!(bus.poll(s, usize::MAX).len(), 3);
        assert!(bus.accounting_violation().is_none());
    }

    #[test]
    fn lag_tracks_the_unconsumed_backlog() {
        let mut bus = TelemetryBus::new();
        let s = bus.add_subscriber(SubscriberConfig::new("lagger", 4));
        for step in 1..=4u64 {
            bus.publish(step, FrameKind::StepHeader, 0.0, [field("t", 1.0)]);
        }
        assert_eq!(bus.lag(s), 4);
        bus.poll(s, 2);
        assert_eq!(bus.lag(s), 2);
        bus.poll(s, usize::MAX);
        assert_eq!(bus.lag(s), 0);
        assert_eq!(bus.reports()[0].max_lag, 4);
    }

    #[test]
    fn block_on_full_stalls_the_producer() {
        let mut bus = TelemetryBus::new();
        bus.add_subscriber(SubscriberConfig::new("victim", 1));
        bus.set_block_on_full(true);
        for step in 1..=5u64 {
            bus.publish(step, FrameKind::Gauges, 0.0, [field("g", 1.0)]);
        }
        assert_eq!(bus.stalls(), 4, "every publish past the first stalls");
        assert!(bus.accounting_violation().is_none());
    }

    #[test]
    fn publish_counts_bytes_once_regardless_of_subscribers() {
        let mut a = TelemetryBus::new();
        a.add_subscriber(SubscriberConfig::new("one", 4));
        let mut b = TelemetryBus::new();
        b.add_subscriber(SubscriberConfig::new("one", 4));
        b.add_subscriber(SubscriberConfig::new("two", 4));
        let ba = a.publish(1, FrameKind::Gauges, 0.5, [field("g", 2.0)]);
        let bb = b.publish(1, FrameKind::Gauges, 0.5, [field("g", 2.0)]);
        assert_eq!(ba, bb);
        assert_eq!(a.bytes_encoded(), b.bytes_encoded());
    }
}
