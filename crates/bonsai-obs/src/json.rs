//! Minimal, dependency-free JSON support shared by the exporters.
//!
//! The writer half is a handful of deterministic formatting helpers (string
//! escaping, shortest-round-trip floats, fixed-precision timestamps); the
//! reader half is a tiny recursive-descent parser used to round-trip-validate
//! exported traces in tests and in the `obs_trace` bench. Neither aims to be
//! a general JSON library — just enough for trace-event files and bench
//! snapshots, with zero external crates (the workspace builds offline).

use std::collections::BTreeMap;

/// Escape a string for inclusion in a JSON document (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic float rendering: shortest representation that round-trips
/// (Rust's `{:?}` for `f64`), with non-finite values mapped to `null` —
/// JSON has no NaN/Infinity.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (keys sorted by `BTreeMap`).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Number value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset of the problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|x| x as char), self.i)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    s.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        txt.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{txt}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_round_trips() {
        for x in [0.0, 1.5, -2.45, 1e-12, 13.0e6, f64::MAX] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn parse_round_trip() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"nested": "x\ny"}, "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_unicode() {
        let v = parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café é"));
    }
}
