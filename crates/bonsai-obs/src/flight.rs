//! Ring-buffer flight recorder: last-K-steps of full-fidelity spans, frozen
//! into an exportable incident window when an alert fires.
//!
//! A multi-thousand-step run cannot keep its whole trace, and the
//! interesting steps are precisely the ones *around* an alert — the storm
//! of retransmissions before a recovery alert, the balancer wobble before a
//! flop-residual alert. The [`FlightRecorder`] therefore copies each step's
//! spans and instants out of the live [`TraceStore`] into a bounded ring;
//! [`FlightRecorder::freeze`] snapshots the ring into an [`Incident`] — a
//! self-contained [`TraceStore`] of the window (Perfetto-loadable via the
//! chrome exporter) plus a deterministic structured report.

use crate::chrome::chrome_trace_json;
use crate::health::AlertEvent;
use crate::json::fmt_f64;
use crate::span::{FlowPoint, Instant, Span, SpanId, TraceStore};
use std::collections::VecDeque;

/// One recorded step: its spans (parents remapped to window-local ids),
/// instants, and flow points.
#[derive(Clone, Debug)]
struct StepFrame {
    step: u64,
    spans: Vec<Span>,
    instants: Vec<Instant>,
    flows: Vec<FlowPoint>,
}

/// Bounded ring of the last K steps of full-fidelity trace data.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    window: usize,
    frames: VecDeque<StepFrame>,
}

impl FlightRecorder {
    /// Recorder keeping the last `window` steps (clamped to ≥ 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            frames: VecDeque::new(),
        }
    }

    /// Steps the ring holds at most.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Steps currently held, oldest first.
    pub fn steps(&self) -> Vec<u64> {
        self.frames.iter().map(|f| f.step).collect()
    }

    /// Copy `step`'s spans and instants out of `trace` into the ring,
    /// evicting the oldest frame when full. Span parents are remapped to
    /// frame-local indices; a parent outside the step becomes `None`.
    pub fn record_step(&mut self, trace: &TraceStore, step: u64) {
        let mut remap: Vec<Option<usize>> = vec![None; trace.spans().len()];
        let mut spans: Vec<Span> = Vec::new();
        for (i, s) in trace.spans().iter().enumerate() {
            if s.step == step {
                remap[i] = Some(spans.len());
                spans.push(s.clone());
            }
        }
        for s in &mut spans {
            s.parent = s.parent.and_then(|p| remap[p.0]).map(SpanId);
        }
        let instants: Vec<Instant> = trace
            .instants()
            .iter()
            .filter(|i| i.step == step)
            .cloned()
            .collect();
        let flows: Vec<FlowPoint> = trace
            .flow_points()
            .iter()
            .filter(|f| f.step == step)
            .cloned()
            .collect();
        self.frames.push_back(StepFrame {
            step,
            spans,
            instants,
            flows,
        });
        while self.frames.len() > self.window {
            self.frames.pop_front();
        }
    }

    /// Materialise the current ring as one self-contained [`TraceStore`]
    /// (frames concatenated oldest-first, parents re-offset).
    pub fn window_trace(&self) -> TraceStore {
        let mut spans: Vec<Span> = Vec::new();
        let mut instants: Vec<Instant> = Vec::new();
        let mut flows: Vec<FlowPoint> = Vec::new();
        for f in &self.frames {
            let base = spans.len();
            for s in &f.spans {
                let mut s = s.clone();
                s.parent = s.parent.map(|p| SpanId(p.0 + base));
                spans.push(s);
            }
            instants.extend(f.instants.iter().cloned());
            flows.extend(f.flows.iter().cloned());
        }
        TraceStore::from_parts(spans, instants, flows)
    }

    /// Freeze the ring into an [`Incident`] for the alert that fired at
    /// `step`. The recorder keeps running afterwards; the incident owns an
    /// independent copy of the window.
    pub fn freeze(&self, id: usize, trigger: &AlertEvent) -> Incident {
        let trace = self.window_trace();
        let steps = self.steps();
        let window = (
            steps.first().copied().unwrap_or(trigger.step),
            steps.last().copied().unwrap_or(trigger.step),
        );
        Incident {
            id,
            rule: trigger.rule.clone(),
            metric: trigger.metric.clone(),
            severity: trigger.severity,
            value: trigger.value,
            step: trigger.step,
            window,
            trace,
        }
    }
}

/// A frozen incident: the alert that fired plus the flight-recorder window
/// around it.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Incident number within the run (0-based, in firing order).
    pub id: usize,
    /// Rule that fired.
    pub rule: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Severity of the alert.
    pub severity: crate::health::Severity,
    /// Metric value at the trigger.
    pub value: f64,
    /// Step the alert opened on.
    pub step: u64,
    /// `(first, last)` step covered by the frozen window.
    pub window: (u64, u64),
    /// Full-fidelity spans and instants of the window.
    pub trace: TraceStore,
}

impl Incident {
    /// Chrome-trace JSON of the incident window (Perfetto-loadable).
    pub fn trace_json(&self) -> String {
        chrome_trace_json(&self.trace)
    }

    /// Deterministic structured incident report (plain text).
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("incident {}\n", self.id));
        s.push_str(&format!("rule:     {}\n", self.rule));
        s.push_str(&format!("severity: {}\n", self.severity.name()));
        s.push_str(&format!("metric:   {} = {}\n", self.metric, fmt_f64(self.value)));
        s.push_str(&format!("step:     {}\n", self.step));
        s.push_str(&format!(
            "window:   steps {}..={} ({} spans, {} instants, {} flow points)\n",
            self.window.0,
            self.window.1,
            self.trace.spans().len(),
            self.trace.instants().len(),
            self.trace.flow_points().len()
        ));
        s.push_str(&format!(
            "makespan: {} s\n",
            fmt_f64(self.trace.makespan())
        ));
        if let Some(cp) = crate::analysis::critical_path(&self.trace, self.step) {
            let by_cause = cp.wait_seconds_by_cause();
            if !by_cause.is_empty() {
                s.push_str("waits:    ");
                let parts: Vec<String> = by_cause
                    .iter()
                    .map(|(cause, secs)| format!("{cause}={} s", fmt_f64(*secs)))
                    .collect();
                s.push_str(&parts.join(", "));
                s.push('\n');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{AlertKind, Severity};
    use crate::span::{FlowPhase, Lane};

    fn alert(step: u64) -> AlertEvent {
        AlertEvent {
            step,
            rule: "recovery-storm".into(),
            metric: "bonsai_recovery_actions".into(),
            severity: Severity::Warning,
            kind: AlertKind::Open,
            value: 17.0,
            detail: "test".into(),
        }
    }

    fn store_with_steps(n: u64) -> TraceStore {
        let mut t = TraceStore::new();
        for step in 1..=n {
            let base = step as f64;
            let root = t.span(0, step, Lane::Gpu, "gravity", base, base + 0.5);
            t.child_span(root, "local", base, base + 0.3);
            t.span(1, step, Lane::Comm, "let-comm", base, base + 0.2);
            t.instant(1, step, Lane::Comm, "fault:drop", base + 0.1);
            // One complete flow arrow per step: sent on rank 1, stepped and
            // finished on rank 0 — the causal links an incident must keep.
            t.flow_point(step, 1, step, Lane::Comm, "flow:Let", base, FlowPhase::Start);
            t.flow_point(step, 0, step, Lane::Comm, "flow:Let", base + 0.1, FlowPhase::Step);
            t.flow_point(step, 0, step, Lane::Comm, "flow:Let", base + 0.2, FlowPhase::Finish);
        }
        t
    }

    #[test]
    fn ring_keeps_only_the_window() {
        let t = store_with_steps(10);
        let mut fr = FlightRecorder::new(3);
        for step in 1..=10 {
            fr.record_step(&t, step);
        }
        assert_eq!(fr.steps(), vec![8, 9, 10]);
        let w = fr.window_trace();
        assert_eq!(w.spans().len(), 9); // 3 steps × 3 spans
        assert_eq!(w.instants().len(), 3);
        assert_eq!(w.flow_points().len(), 9); // 3 steps × 3 flow points
        assert_eq!(w.last_step(), Some(10));
        // Parent links survive the per-frame remap + concatenation.
        let children: Vec<_> = w.spans().iter().filter(|s| s.parent.is_some()).collect();
        assert_eq!(children.len(), 3);
        for c in &children {
            let p = &w.spans()[c.parent.unwrap().0];
            assert_eq!(p.name, "gravity");
            assert_eq!(p.step, c.step);
        }
    }

    #[test]
    fn freeze_exports_a_loadable_window() {
        let t = store_with_steps(6);
        let mut fr = FlightRecorder::new(4);
        for step in 1..=6 {
            fr.record_step(&t, step);
        }
        let inc = fr.freeze(0, &alert(6));
        assert_eq!(inc.window, (3, 6));
        assert_eq!(inc.rule, "recovery-storm");
        let json = inc.trace_json();
        // Chrome export of the window parses and contains the phases.
        let v = crate::json::parse(&json).expect("incident trace must be valid JSON");
        assert!(v.get("traceEvents").and_then(|e| e.as_arr()).is_some());
        assert!(json.contains("\"gravity\""));
        assert!(json.contains("fault:drop"));
        let report = inc.report();
        assert!(report.contains("rule:     recovery-storm"));
        assert!(report.contains("steps 3..=6"));
        // Deterministic: freezing twice renders identically.
        let again = fr.freeze(0, &alert(6));
        assert_eq!(inc.trace_json(), again.trace_json());
        assert_eq!(inc.report(), again.report());
    }

    #[test]
    fn frozen_incident_keeps_flow_arrows() {
        // The regression this guards: an incident trace that drops its flow
        // points still loads in Perfetto but loses the causal arrows — the
        // exact thing one opens an incident to follow.
        let t = store_with_steps(6);
        let mut fr = FlightRecorder::new(4);
        for step in 1..=6 {
            fr.record_step(&t, step);
        }
        let inc = fr.freeze(0, &alert(6));
        let json = inc.trace_json();
        for ph in ["\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\""] {
            assert!(json.contains(ph), "frozen trace lost {ph} events");
        }
        // Only window steps 3..=6 survive: 4 steps × 3 points.
        assert_eq!(inc.trace.flow_points().len(), 12);
        assert!(inc.report().contains("12 flow points"));
    }

    #[test]
    fn freeze_on_empty_ring_is_safe() {
        let fr = FlightRecorder::new(2);
        let inc = fr.freeze(1, &alert(5));
        assert_eq!(inc.window, (5, 5));
        assert!(inc.trace.is_empty());
        assert!(inc.report().contains("0 spans"));
    }
}
