//! The span/event model: hierarchical timed spans keyed by
//! rank × step × phase, plus instant events, collected in a [`TraceStore`].
//!
//! Times are *simulated seconds* (the workspace charges measured counts and
//! byte volumes to calibrated device/network models), expressed on a single
//! global clock: the cluster advances a base offset per step so consecutive
//! steps render side by side in Perfetto.

/// Execution lane inside one rank's track.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Device (GPU) work: sort, build, properties, gravity.
    Gpu,
    /// Network activity: LET exchange, retransmissions, fault events.
    Comm,
    /// Host CPU work (LET construction, key classification).
    Cpu,
}

impl Lane {
    /// Stable display name (also the Chrome-trace thread name).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Gpu => "GPU",
            Lane::Comm => "COMM",
            Lane::Cpu => "CPU",
        }
    }

    /// Stable thread id inside the rank's process.
    pub fn tid(self) -> u32 {
        match self {
            Lane::Gpu => 0,
            Lane::Comm => 1,
            Lane::Cpu => 2,
        }
    }
}

/// A typed span/event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Floating-point argument (seconds, fractions, Gflops).
    F64(f64),
    /// Integer argument (counts, bytes).
    U64(u64),
    /// Free-form text argument.
    Str(String),
}

/// Index of a span in its [`TraceStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub usize);

/// One timed interval on a rank's lane.
#[derive(Clone, Debug)]
pub struct Span {
    /// Rank (track) the span belongs to.
    pub rank: u32,
    /// Step (gravity epoch) the span belongs to.
    pub step: u64,
    /// Lane inside the rank's track.
    pub lane: Lane,
    /// Phase name (`"sort"`, `"local"`, `"let-comm"`, …).
    pub name: String,
    /// Start, seconds on the global simulated clock.
    pub start: f64,
    /// End, seconds on the global simulated clock.
    pub end: f64,
    /// Enclosing span, if any (folded-stack hierarchy).
    pub parent: Option<SpanId>,
    /// Typed annotations (occupancy, flops, bytes, …).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A zero-duration event (fault injection, recovery action).
#[derive(Clone, Debug)]
pub struct Instant {
    /// Rank (track) the event belongs to.
    pub rank: u32,
    /// Step the event belongs to.
    pub step: u64,
    /// Lane the event is drawn on.
    pub lane: Lane,
    /// Event name.
    pub name: String,
    /// Timestamp, seconds on the global simulated clock.
    pub at: f64,
    /// Typed annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Which end of a cross-track flow arrow a [`FlowPoint`] marks
/// (Chrome-trace `ph` values `s`, `t`, `f`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPhase {
    /// The producing end (`ph: "s"`).
    Start,
    /// An intermediate hop (`ph: "t"`).
    Step,
    /// The consuming end (`ph: "f"`).
    Finish,
}

/// One end of a flow arrow: a message leaving or landing on a rank's lane.
/// Points sharing an `id` are joined by Perfetto into an arrow from the
/// `Start` point to the `Finish` point, binding to whatever span encloses
/// each point on its track.
#[derive(Clone, Debug)]
pub struct FlowPoint {
    /// Flow id shared by all points of one arrow (the ledger flow id).
    pub id: u64,
    /// Rank (track) this end sits on.
    pub rank: u32,
    /// Step the flow belongs to.
    pub step: u64,
    /// Lane this end is drawn on.
    pub lane: Lane,
    /// Arrow name (e.g. `"flow:Let"`).
    pub name: String,
    /// Timestamp, seconds on the global simulated clock.
    pub at: f64,
    /// Which end of the arrow this point is.
    pub phase: FlowPhase,
}

/// Append-only store of spans, instant events and flow-arrow points.
#[derive(Clone, Debug, Default)]
pub struct TraceStore {
    spans: Vec<Span>,
    instants: Vec<Instant>,
    flows: Vec<FlowPoint>,
}

impl TraceStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a store from pre-assembled spans, instants and flow points
    /// (the flight recorder uses this to materialise an incident window).
    /// Any `parent` ids must index into `spans`.
    pub fn from_parts(spans: Vec<Span>, instants: Vec<Instant>, flows: Vec<FlowPoint>) -> Self {
        debug_assert!(spans
            .iter()
            .all(|s| s.parent.map_or(true, |p| p.0 < spans.len())));
        Self {
            spans,
            instants,
            flows,
        }
    }

    /// Drop every span, instant and flow point with `step < min_step`,
    /// remapping parent ids (a parent outside the kept window becomes
    /// `None`). Long runs use this to prune the trace down to the
    /// flight-recorder window.
    pub fn retain_steps(&mut self, min_step: u64) {
        let mut remap: Vec<Option<usize>> = vec![None; self.spans.len()];
        let mut kept: Vec<Span> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.step >= min_step {
                remap[i] = Some(kept.len());
                kept.push(s.clone());
            }
        }
        for s in &mut kept {
            s.parent = s.parent.and_then(|p| remap[p.0]).map(SpanId);
        }
        self.spans = kept;
        self.instants.retain(|i| i.step >= min_step);
        self.flows.retain(|f| f.step >= min_step);
    }

    /// Record a root span; returns its id for annotation or parenting.
    pub fn span(
        &mut self,
        rank: u32,
        step: u64,
        lane: Lane,
        name: impl Into<String>,
        start: f64,
        end: f64,
    ) -> SpanId {
        debug_assert!(end >= start, "span must not end before it starts");
        self.spans.push(Span {
            rank,
            step,
            lane,
            name: name.into(),
            start,
            end,
            parent: None,
            args: Vec::new(),
        });
        SpanId(self.spans.len() - 1)
    }

    /// Record a child span nested under `parent` (same rank/step/lane).
    pub fn child_span(
        &mut self,
        parent: SpanId,
        name: impl Into<String>,
        start: f64,
        end: f64,
    ) -> SpanId {
        let p = &self.spans[parent.0];
        let (rank, step, lane) = (p.rank, p.step, p.lane);
        let id = self.span(rank, step, lane, name, start, end);
        self.spans[id.0].parent = Some(parent);
        id
    }

    /// Record an instant event.
    pub fn instant(
        &mut self,
        rank: u32,
        step: u64,
        lane: Lane,
        name: impl Into<String>,
        at: f64,
    ) -> &mut Instant {
        self.instants.push(Instant {
            rank,
            step,
            lane,
            name: name.into(),
            at,
            args: Vec::new(),
        });
        self.instants.last_mut().unwrap()
    }

    /// Attach a float argument to a span.
    pub fn arg_f64(&mut self, id: SpanId, key: &'static str, v: f64) {
        self.spans[id.0].args.push((key, ArgValue::F64(v)));
    }

    /// Attach an integer argument to a span.
    pub fn arg_u64(&mut self, id: SpanId, key: &'static str, v: u64) {
        self.spans[id.0].args.push((key, ArgValue::U64(v)));
    }

    /// Attach a string argument to a span.
    pub fn arg_str(&mut self, id: SpanId, key: &'static str, v: impl Into<String>) {
        self.spans[id.0].args.push((key, ArgValue::Str(v.into())));
    }

    /// Record one end of a flow arrow.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_point(
        &mut self,
        id: u64,
        rank: u32,
        step: u64,
        lane: Lane,
        name: impl Into<String>,
        at: f64,
        phase: FlowPhase,
    ) {
        self.flows.push(FlowPoint {
            id,
            rank,
            step,
            lane,
            name: name.into(),
            at,
            phase,
        });
    }

    /// All spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All instant events, in record order.
    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    /// All flow-arrow points, in record order.
    pub fn flow_points(&self) -> &[FlowPoint] {
        &self.flows
    }

    /// Spans of one rank × step, in record order.
    pub fn spans_for(&self, rank: u32, step: u64) -> impl Iterator<Item = &Span> {
        self.spans
            .iter()
            .filter(move |s| s.rank == rank && s.step == step)
    }

    /// The highest step number with any span (`None` when empty).
    pub fn last_step(&self) -> Option<u64> {
        self.spans.iter().map(|s| s.step).max()
    }

    /// Ranks present in the store, ascending.
    pub fn ranks(&self) -> Vec<u32> {
        let mut r: Vec<u32> = self.spans.iter().map(|s| s.rank).collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    /// Latest span end across the whole store (0 when empty).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total spans + instants + flow points recorded.
    pub fn len(&self) -> usize {
        self.spans.len() + self.instants.len() + self.flows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty() && self.flows.is_empty()
    }
}

/// Merge `(start, end)` intervals into a sorted, disjoint union.
pub fn interval_union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of `(start, end)` covered by a disjoint sorted `union`
/// (as produced by [`interval_union`]).
pub fn overlap_with_union(start: f64, end: f64, union: &[(f64, f64)]) -> f64 {
    union
        .iter()
        .map(|&(s, e)| (end.min(e) - start.max(s)).max(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_children() {
        let mut t = TraceStore::new();
        let root = t.span(0, 1, Lane::Gpu, "gravity", 0.0, 2.0);
        let child = t.child_span(root, "local", 0.0, 1.2);
        t.arg_f64(child, "gflops", 1770.0);
        t.arg_u64(root, "pp", 42);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[child.0].parent, Some(root));
        assert_eq!(t.spans()[child.0].lane, Lane::Gpu);
        assert_eq!(t.last_step(), Some(1));
        assert_eq!(t.ranks(), vec![0]);
        assert!((t.makespan() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn instants_recorded() {
        let mut t = TraceStore::new();
        t.instant(3, 2, Lane::Comm, "fault:drop", 0.5)
            .args
            .push(("detail", ArgValue::Str("drop 0->1".into())));
        assert_eq!(t.instants().len(), 1);
        assert_eq!(t.instants()[0].rank, 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retain_steps_drops_old_and_remaps_parents() {
        let mut t = TraceStore::new();
        let old = t.span(0, 1, Lane::Gpu, "old", 0.0, 1.0);
        t.child_span(old, "old-child", 0.0, 0.5);
        let keep = t.span(0, 2, Lane::Gpu, "keep", 1.0, 2.0);
        t.child_span(keep, "keep-child", 1.0, 1.5);
        // Pathological cross-step parent: span in the window, parent not.
        let orphan = t.span(0, 2, Lane::Cpu, "orphan", 1.0, 1.1);
        t.spans[orphan.0].parent = Some(old);
        t.instant(0, 1, Lane::Comm, "old-ev", 0.2);
        t.instant(0, 2, Lane::Comm, "keep-ev", 1.2);
        t.flow_point(7, 0, 1, Lane::Comm, "flow:Let", 0.3, FlowPhase::Start);
        t.flow_point(9, 0, 2, Lane::Comm, "flow:Let", 1.3, FlowPhase::Start);
        t.flow_point(9, 1, 2, Lane::Comm, "flow:Let", 1.4, FlowPhase::Finish);
        t.retain_steps(2);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[0].name, "keep");
        assert_eq!(t.spans()[1].parent, Some(SpanId(0)));
        assert_eq!(t.spans()[2].parent, None, "cross-window parent dropped");
        assert_eq!(t.instants().len(), 1);
        assert_eq!(t.instants()[0].name, "keep-ev");
        assert_eq!(t.flow_points().len(), 2, "out-of-window flow point dropped");
        assert!(t.flow_points().iter().all(|f| f.id == 9));
        // Round-trip through from_parts preserves everything.
        let rebuilt = TraceStore::from_parts(
            t.spans().to_vec(),
            t.instants().to_vec(),
            t.flow_points().to_vec(),
        );
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.last_step(), Some(2));
    }

    #[test]
    fn union_merges_overlaps() {
        let u = interval_union(vec![(2.0, 3.0), (0.0, 1.0), (0.5, 2.5), (5.0, 5.0)]);
        assert_eq!(u, vec![(0.0, 3.0)]);
        let u2 = interval_union(vec![(0.0, 1.0), (2.0, 3.0)]);
        assert_eq!(u2, vec![(0.0, 1.0), (2.0, 3.0)]);
    }

    #[test]
    fn overlap_against_union() {
        let u = interval_union(vec![(0.0, 1.0), (2.0, 3.0)]);
        assert!((overlap_with_union(0.5, 2.5, &u) - 1.0).abs() < 1e-15);
        assert_eq!(overlap_with_union(1.0, 2.0, &u), 0.0);
        assert!((overlap_with_union(-1.0, 4.0, &u) - 2.0).abs() < 1e-15);
    }
}
