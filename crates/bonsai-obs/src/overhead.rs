//! Observability self-metering: the run prices what its own telemetry
//! costs and reports the overhead as a fraction of modelled step time.
//!
//! The SC14 runs gathered Table II per-phase timings live on 18600 GPUs
//! precisely because the instrumentation was cheap enough to leave on;
//! an observability layer that cannot state its own cost cannot make that
//! claim. Everything here runs under the *modelled* clock — op counts
//! (spans recorded, gauges sampled, frames encoded…) are priced by
//! [`ObsCostModel`] rates, never wall-clock, so the overhead fraction is
//! byte-deterministic like every other exported number.
//!
//! [`overhead_rule`] turns the fraction into a health rule: a run whose
//! telemetry costs more than [`OVERHEAD_BUDGET_FRACTION`] of its modelled
//! step time opens an `obs-overhead` alert, and the `obs_stream` bench
//! gates on it — this is exactly the gate the `--block-on-full` sabotage
//! (a bus that stalls the hot path) must trip.

use crate::health::{Condition, Rule, Severity};
use std::collections::BTreeMap;

/// Hard budget: observability may cost at most this fraction of the
/// modelled step time (3%).
pub const OVERHEAD_BUDGET_FRACTION: f64 = 0.03;

/// Gauge name carrying the per-step overhead fraction.
pub const OVERHEAD_GAUGE: &str = "bonsai_obs_overhead_fraction";

/// Modelled cost rates (seconds per operation) for every observability
/// primitive. Rates are fixed constants of the cost model — think of them
/// as the modelled host's instrumentation microbenchmarks, amortized over
/// batched lock-free recording — so charged totals depend only on op
/// counts. They are sized so a fully-instrumented honest step at bench
/// scale stays well under [`OVERHEAD_BUDGET_FRACTION`] while one producer
/// stall exceeds a whole modelled step.
#[derive(Clone, Debug)]
pub struct ObsCostModel {
    /// Recording one span (two timestamps + args).
    pub span_record_s: f64,
    /// Recording one instant event.
    pub instant_record_s: f64,
    /// Recording one flow point.
    pub flow_point_s: f64,
    /// Sampling one gauge into a time series.
    pub gauge_sample_s: f64,
    /// Evaluating one health rule against one sample.
    pub rule_eval_s: f64,
    /// Copying one span into the flight-recorder window.
    pub flight_copy_s: f64,
    /// Encoding one byte of a telemetry frame.
    pub encode_byte_s: f64,
    /// Publishing one frame to one subscriber ring.
    pub publish_s: f64,
    /// One producer stall when a saboteur makes the bus block on a full
    /// ring. Deliberately enormous next to the honest rates: a single
    /// stall costs as much as ~10⁵ span records, so stalls blow the
    /// overhead budget immediately.
    pub stall_s: f64,
}

impl Default for ObsCostModel {
    fn default() -> Self {
        Self {
            span_record_s: 4e-9,
            instant_record_s: 2.5e-9,
            flow_point_s: 3e-9,
            gauge_sample_s: 2e-9,
            rule_eval_s: 1e-9,
            flight_copy_s: 1.5e-9,
            encode_byte_s: 0.08e-9,
            publish_s: 5e-9,
            stall_s: 2e-3,
        }
    }
}

/// One step's metered overhead: per-category modelled seconds, their
/// total, and the fraction of the step's modelled time they represent.
#[derive(Clone, Debug)]
pub struct OverheadSample {
    /// Step the sample describes.
    pub step: u64,
    /// Modelled seconds charged per category this step.
    pub categories: BTreeMap<&'static str, f64>,
    /// Total charged seconds this step.
    pub total_s: f64,
    /// `total_s / step_s` (0 when the step time is not positive).
    pub fraction: f64,
}

/// Accumulates modelled observability charges within a step and reduces
/// them to per-step [`OverheadSample`]s plus run-level totals.
#[derive(Clone, Debug)]
pub struct OverheadMeter {
    cost: ObsCostModel,
    pending: BTreeMap<&'static str, f64>,
    totals: BTreeMap<&'static str, f64>,
    steps: u64,
    sum_fraction: f64,
    max_fraction: f64,
    total_s: f64,
}

impl OverheadMeter {
    /// A meter pricing ops with `cost`.
    pub fn new(cost: ObsCostModel) -> Self {
        Self {
            cost,
            pending: BTreeMap::new(),
            totals: BTreeMap::new(),
            steps: 0,
            sum_fraction: 0.0,
            max_fraction: 0.0,
            total_s: 0.0,
        }
    }

    /// The cost model in force.
    pub fn cost(&self) -> &ObsCostModel {
        &self.cost
    }

    /// Charge `seconds` of modelled time to `category` for the current step.
    pub fn charge(&mut self, category: &'static str, seconds: f64) {
        if seconds > 0.0 {
            *self.pending.entry(category).or_insert(0.0) += seconds;
        }
    }

    /// Charge `ops` operations at `per_op_s` seconds each.
    pub fn charge_ops(&mut self, category: &'static str, ops: u64, per_op_s: f64) {
        self.charge(category, ops as f64 * per_op_s);
    }

    /// Close the current step: reduce pending charges against the step's
    /// modelled duration and fold them into the run totals.
    pub fn end_step(&mut self, step: u64, step_s: f64) -> OverheadSample {
        let categories = std::mem::take(&mut self.pending);
        let total_s: f64 = categories.values().sum();
        for (k, v) in &categories {
            *self.totals.entry(k).or_insert(0.0) += v;
        }
        let fraction = if step_s > 0.0 { total_s / step_s } else { 0.0 };
        self.steps += 1;
        self.sum_fraction += fraction;
        self.max_fraction = self.max_fraction.max(fraction);
        self.total_s += total_s;
        OverheadSample {
            step,
            categories,
            total_s,
            fraction,
        }
    }

    /// Run-level charged seconds per category, deterministically ordered.
    pub fn totals(&self) -> &BTreeMap<&'static str, f64> {
        &self.totals
    }

    /// Total charged seconds across the run.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Steps metered so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Mean per-step overhead fraction (0 before the first step).
    pub fn mean_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.sum_fraction / self.steps as f64
        }
    }

    /// Worst per-step overhead fraction seen.
    pub fn max_fraction(&self) -> f64 {
        self.max_fraction
    }
}

impl Default for OverheadMeter {
    fn default() -> Self {
        Self::new(ObsCostModel::default())
    }
}

/// The health rule enforcing the observability budget: warn when the
/// per-step overhead fraction sits above [`OVERHEAD_BUDGET_FRACTION`]
/// for 3 consecutive steps (3 clean steps to clear).
pub fn overhead_rule() -> Rule {
    Rule::new(
        "obs-overhead",
        OVERHEAD_GAUGE,
        Condition::Above(OVERHEAD_BUDGET_FRACTION),
        Severity::Warning,
        3,
        3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_reduce_to_fraction_of_step_time() {
        let mut m = OverheadMeter::default();
        let expected = 1000.0 * m.cost().span_record_s + 10e-6;
        m.charge_ops("trace", 1000, m.cost().span_record_s);
        m.charge("metrics", 10e-6);
        let s = m.end_step(1, 1.0e-2);
        assert_eq!(s.step, 1);
        assert!((s.total_s - expected).abs() < 1e-12);
        assert!((s.fraction - expected / 1.0e-2).abs() < 1e-12);
        assert_eq!(s.categories.len(), 2);
        // Pending charges were consumed by end_step.
        let s2 = m.end_step(2, 1.0e-2);
        assert_eq!(s2.total_s, 0.0);
        assert_eq!(m.steps(), 2);
    }

    #[test]
    fn run_totals_and_fractions_accumulate() {
        let mut m = OverheadMeter::default();
        m.charge("trace", 1e-4);
        m.end_step(1, 1e-2); // fraction 0.01
        m.charge("trace", 3e-4);
        m.charge("publish", 1e-4);
        m.end_step(2, 1e-2); // fraction 0.04
        assert!((m.mean_fraction() - 0.025).abs() < 1e-12);
        assert!((m.max_fraction() - 0.04).abs() < 1e-12);
        assert!((m.totals()["trace"] - 4e-4).abs() < 1e-12);
        assert!((m.total_s() - 5e-4).abs() < 1e-12);
    }

    #[test]
    fn zero_step_time_yields_zero_fraction() {
        let mut m = OverheadMeter::default();
        m.charge("trace", 1.0);
        let s = m.end_step(1, 0.0);
        assert_eq!(s.fraction, 0.0);
    }

    #[test]
    fn honest_rates_stay_inside_budget_stalls_do_not() {
        let cost = ObsCostModel::default();
        // A modest step: 5 ms modelled, a generous honest op mix.
        let mut m = OverheadMeter::new(cost.clone());
        m.charge_ops("trace", 200, cost.span_record_s);
        m.charge_ops("trace", 100, cost.instant_record_s);
        m.charge_ops("metrics", 400, cost.gauge_sample_s);
        m.charge_ops("encode", 4000, cost.encode_byte_s);
        m.charge_ops("publish", 20, cost.publish_s);
        let honest = m.end_step(1, 5e-3);
        assert!(
            honest.fraction < OVERHEAD_BUDGET_FRACTION,
            "honest op mix must fit the budget, got {}",
            honest.fraction
        );
        // One stall alone blows the same budget.
        m.charge_ops("stall", 1, cost.stall_s);
        let stalled = m.end_step(2, 5e-3);
        assert!(stalled.fraction > OVERHEAD_BUDGET_FRACTION);
    }

    #[test]
    fn overhead_rule_opens_above_budget() {
        let mut mon = crate::health::HealthMonitor::new(vec![overhead_rule()]);
        for step in 1..=3 {
            mon.observe(step, OVERHEAD_GAUGE, 0.10);
        }
        let open: Vec<&str> = mon.open_rules().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(open, vec!["obs-overhead"]);
        for step in 4..=6 {
            mon.observe(step, OVERHEAD_GAUGE, 0.001);
        }
        assert!(mon.open_rules().is_empty());
    }
}
