//! Roofline extraction, cost-model residuals and the deterministic
//! span-stack profile — the attribution layer over the trace.
//!
//! The paper's performance argument names, for every kernel, *which ceiling
//! it sits under*: the tuned force kernel reaches ~45% of the K20X's
//! single-precision peak (compute-bound, Fig. 1), while the sort/build/
//! properties passes are priced as bandwidth-bound streaming (§VI-B,
//! Table II). This module recovers exactly that view from a recorded
//! [`TraceStore`]:
//!
//! * [`roofline`] — every GPU-lane span that carries roofline args
//!   (`flops`, `bytes`, `ceil_gflops`, `bw_gbs`, written by
//!   `bonsai-gpu`'s span annotators) is aggregated into one
//!   [`RooflinePoint`] per kernel × rank, with the binding ceiling named
//!   and the attained fraction computed.
//! * [`TermResidual`] — one row of a cost-model attribution: a measured
//!   per-phase time against the analytic model's prediction, with the
//!   signed residual (measured − modelled) as the drift metric.
//! * [`folded_profile`] — deterministic self/total seconds per
//!   rank × lane × phase, aggregated over steps: the numeric form of a
//!   flame graph, diffable across commits.
//! * [`telescoping_error`] — the invariant that per-kernel spans tile
//!   their phase window exactly (no gaps, no overlap) on every rank × step
//!   GPU lane.
//!
//! Everything here is pure inspection over the trace: no dependency on the
//! GPU or simulator crates, so any subsystem that annotates spans with the
//! same arg names gets roofline treatment for free.

use crate::span::{ArgValue, Lane, Span, TraceStore};
use std::collections::BTreeMap;

/// One kernel × rank point on the roofline, aggregated over steps.
#[derive(Clone, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Kernel (span) name, e.g. `sort`, `local`, `lets`.
    pub kernel: String,
    /// Rank the kernel ran on.
    pub rank: u32,
    /// Spans aggregated into this point.
    pub count: u64,
    /// Total modelled seconds across the aggregated spans.
    pub seconds: f64,
    /// Total flops charged across the aggregated spans.
    pub flops: f64,
    /// Total device-memory bytes moved across the aggregated spans.
    pub bytes: f64,
    /// Modelled occupancy (from the most recent span).
    pub occupancy: f64,
    /// Occupancy-limited compute ceiling, Gflops.
    pub compute_ceiling_gflops: f64,
    /// Device memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

impl RooflinePoint {
    /// Attained Gflops: total flops over total seconds.
    pub fn attained_gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.flops / self.seconds / 1e9
        }
    }

    /// Arithmetic intensity in flops per byte (infinite when no bytes
    /// were charged).
    pub fn intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// The bandwidth roof at this point's intensity, Gflops.
    pub fn bandwidth_ceiling_gflops(&self) -> f64 {
        let i = self.intensity();
        if i.is_finite() {
            i * self.bandwidth_gbs
        } else {
            f64::INFINITY
        }
    }

    /// The binding (lower) ceiling in Gflops.
    pub fn binding_ceiling_gflops(&self) -> f64 {
        self.compute_ceiling_gflops
            .min(self.bandwidth_ceiling_gflops())
    }

    /// Which roof binds: `"compute"` or `"bandwidth"`.
    pub fn binding_ceiling(&self) -> &'static str {
        if self.bandwidth_ceiling_gflops() < self.compute_ceiling_gflops {
            "bandwidth"
        } else {
            "compute"
        }
    }

    /// Attained Gflops as a fraction of the binding ceiling.
    pub fn attained_fraction(&self) -> f64 {
        let c = self.binding_ceiling_gflops();
        if c <= 0.0 || !c.is_finite() {
            0.0
        } else {
            self.attained_gflops() / c
        }
    }
}

fn arg_num(span: &Span, key: &str) -> Option<f64> {
    span.args.iter().find(|(k, _)| *k == key).map(|(_, v)| match v {
        ArgValue::F64(x) => *x,
        ArgValue::U64(x) => *x as f64,
        ArgValue::Str(_) => f64::NAN,
    })
}

/// Extract the roofline points of a trace: every GPU-lane span carrying
/// `flops`, `bytes`, `ceil_gflops` and `bw_gbs` args contributes to the
/// point of its (kernel name, rank) pair; spans without work (zero
/// seconds and zero flops) are dropped. Deterministically ordered by
/// kernel name, then rank.
pub fn roofline(store: &TraceStore) -> Vec<RooflinePoint> {
    let mut points: BTreeMap<(String, u32), RooflinePoint> = BTreeMap::new();
    for s in store.spans() {
        if s.lane != Lane::Gpu {
            continue;
        }
        let (Some(flops), Some(bytes), Some(ceil), Some(bw)) = (
            arg_num(s, "flops"),
            arg_num(s, "bytes"),
            arg_num(s, "ceil_gflops"),
            arg_num(s, "bw_gbs"),
        ) else {
            continue;
        };
        let p = points
            .entry((s.name.clone(), s.rank))
            .or_insert_with(|| RooflinePoint {
                kernel: s.name.clone(),
                rank: s.rank,
                count: 0,
                seconds: 0.0,
                flops: 0.0,
                bytes: 0.0,
                occupancy: 1.0,
                compute_ceiling_gflops: ceil,
                bandwidth_gbs: bw,
            });
        p.count += 1;
        p.seconds += s.end - s.start;
        p.flops += flops;
        p.bytes += bytes;
        p.compute_ceiling_gflops = ceil;
        p.bandwidth_gbs = bw;
        if let Some(occ) = arg_num(s, "occupancy") {
            p.occupancy = occ;
        }
    }
    points
        .into_values()
        .filter(|p| p.seconds > 0.0 || p.flops > 0.0)
        .collect()
}

/// One signed row of a cost-model attribution: measured vs modelled
/// seconds for a named term of the analytic step model.
#[derive(Clone, Debug, PartialEq)]
pub struct TermResidual {
    /// The model term (a Table II phase name).
    pub term: String,
    /// Measured seconds.
    pub measured_s: f64,
    /// The analytic model's prediction, seconds.
    pub modelled_s: f64,
}

impl TermResidual {
    /// Signed residual: measured − modelled. Positive means the run is
    /// slower than the model says it should be.
    pub fn residual_s(&self) -> f64 {
        self.measured_s - self.modelled_s
    }

    /// Residual relative to the modelled value (or to the measured value
    /// when the model predicts zero; 0 when both are zero).
    pub fn relative(&self) -> f64 {
        let denom = if self.modelled_s != 0.0 {
            self.modelled_s
        } else if self.measured_s != 0.0 {
            self.measured_s
        } else {
            return 0.0;
        };
        self.residual_s() / denom
    }
}

/// One row of the span-stack profile: aggregated self/total seconds for a
/// rank × lane × phase over every step in the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// Rank the spans ran on.
    pub rank: u32,
    /// Lane the spans were drawn on.
    pub lane: Lane,
    /// Span (phase/kernel) name.
    pub name: String,
    /// Spans aggregated.
    pub count: u64,
    /// Total seconds (children included).
    pub total_s: f64,
    /// Self seconds (direct children subtracted).
    pub self_s: f64,
}

/// Fold the trace into deterministic per-rank × lane × phase self/total
/// seconds. Self time subtracts direct children only (the trace is at most
/// two levels deep today, but the subtraction is correct at any depth).
/// Ordered by rank, lane, then name.
pub fn folded_profile(store: &TraceStore) -> Vec<ProfileRow> {
    let spans = store.spans();
    let mut child_sum = vec![0.0f64; spans.len()];
    for s in spans {
        if let Some(pid) = s.parent {
            if let Some(slot) = child_sum.get_mut(pid.0) {
                *slot += s.end - s.start;
            }
        }
    }
    let mut rows: BTreeMap<(u32, u32, String), ProfileRow> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let dur = s.end - s.start;
        let row = rows
            .entry((s.rank, s.lane.tid(), s.name.clone()))
            .or_insert_with(|| ProfileRow {
                rank: s.rank,
                lane: s.lane,
                name: s.name.clone(),
                count: 0,
                total_s: 0.0,
                self_s: 0.0,
            });
        row.count += 1;
        row.total_s += dur;
        row.self_s += dur - child_sum[i];
    }
    rows.into_values().collect()
}

/// The telescoping invariant of the GPU lanes: on every rank × step, the
/// kernel spans must tile their window exactly — the sum of their
/// durations equals the extent from the first start to the last end.
/// Returns the worst absolute error over all rank × step groups (0 for an
/// empty trace). A nonzero value means a gap or an overlap: some kernel
/// time is double-counted or unattributed.
pub fn telescoping_error(store: &TraceStore) -> f64 {
    let mut groups: BTreeMap<(u32, u64), (f64, f64, f64)> = BTreeMap::new();
    for s in store.spans() {
        if s.lane != Lane::Gpu {
            continue;
        }
        let g = groups
            .entry((s.rank, s.step))
            .or_insert((f64::INFINITY, f64::NEG_INFINITY, 0.0));
        g.0 = g.0.min(s.start);
        g.1 = g.1.max(s.end);
        g.2 += s.end - s.start;
    }
    groups
        .values()
        .map(|&(lo, hi, sum)| (sum - (hi - lo)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annotated_span(
        t: &mut TraceStore,
        rank: u32,
        step: u64,
        name: &str,
        start: f64,
        end: f64,
        flops: f64,
        bytes: f64,
        ceil: f64,
        bw: f64,
    ) {
        let id = t.span(rank, step, Lane::Gpu, name, start, end);
        t.arg_f64(id, "flops", flops);
        t.arg_f64(id, "bytes", bytes);
        t.arg_f64(id, "ceil_gflops", ceil);
        t.arg_f64(id, "bw_gbs", bw);
        t.arg_f64(id, "occupancy", 0.75);
    }

    #[test]
    fn roofline_aggregates_and_names_the_binding_ceiling() {
        let mut t = TraceStore::new();
        // Compute-bound kernel: high intensity (1e10 flops / 1e7 bytes
        // = 1000 flops/B, bandwidth roof 250_000 Gflops >> ceiling 3000).
        annotated_span(&mut t, 0, 1, "local", 0.0, 5.0, 1.0e10, 1.0e7, 3000.0, 250.0);
        annotated_span(&mut t, 0, 2, "local", 5.0, 10.0, 1.0e10, 1.0e7, 3000.0, 250.0);
        // Bandwidth-bound kernel: 0.0133 flops/B, roof = 3.33 Gflops.
        annotated_span(&mut t, 0, 1, "sort", 0.0, 1.0, 2.0e9, 1.5e11, 3935.0, 250.0);
        // A span without roofline args is ignored.
        t.span(0, 1, Lane::Gpu, "bare", 0.0, 1.0);
        // A COMM span is ignored even with args.
        let id = t.span(0, 1, Lane::Comm, "let-comm", 0.0, 1.0);
        t.arg_f64(id, "flops", 1.0);
        t.arg_f64(id, "bytes", 1.0);
        t.arg_f64(id, "ceil_gflops", 1.0);
        t.arg_f64(id, "bw_gbs", 1.0);

        let pts = roofline(&t);
        assert_eq!(pts.len(), 2);
        let local = pts.iter().find(|p| p.kernel == "local").unwrap();
        assert_eq!(local.count, 2);
        assert_eq!(local.seconds, 10.0);
        assert_eq!(local.binding_ceiling(), "compute");
        assert!((local.attained_gflops() - 2.0).abs() < 1e-12);
        assert!((local.attained_fraction() - 2.0 / 3000.0).abs() < 1e-15);
        let sort = pts.iter().find(|p| p.kernel == "sort").unwrap();
        assert_eq!(sort.binding_ceiling(), "bandwidth");
        let roof = sort.bandwidth_ceiling_gflops();
        assert!(roof < sort.compute_ceiling_gflops);
        assert!(sort.attained_gflops() <= roof);
        assert!((sort.intensity() - 2.0e9 / 1.5e11).abs() < 1e-15);
    }

    #[test]
    fn zero_byte_points_bind_on_compute() {
        let mut t = TraceStore::new();
        annotated_span(&mut t, 3, 1, "k", 0.0, 1.0, 1.0e9, 0.0, 100.0, 250.0);
        let pts = roofline(&t);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].binding_ceiling(), "compute");
        assert_eq!(pts[0].binding_ceiling_gflops(), 100.0);
        assert!((pts[0].attained_fraction() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn residual_signs_and_relative() {
        let r = TermResidual {
            term: "sort".into(),
            measured_s: 0.12,
            modelled_s: 0.10,
        };
        assert!((r.residual_s() - 0.02).abs() < 1e-15);
        assert!((r.relative() - 0.2).abs() < 1e-12);
        let zero_model = TermResidual {
            term: "recovery".into(),
            measured_s: 0.5,
            modelled_s: 0.0,
        };
        assert_eq!(zero_model.relative(), 1.0);
        let both_zero = TermResidual {
            term: "recovery".into(),
            measured_s: 0.0,
            modelled_s: 0.0,
        };
        assert_eq!(both_zero.relative(), 0.0);
        let fast = TermResidual {
            term: "build".into(),
            measured_s: 0.08,
            modelled_s: 0.10,
        };
        assert!(fast.residual_s() < 0.0, "faster than modelled is negative");
    }

    #[test]
    fn folded_profile_subtracts_children_and_orders_deterministically() {
        let mut t = TraceStore::new();
        let parent = t.span(1, 1, Lane::Cpu, "step", 0.0, 10.0);
        t.child_span(parent, "inner", 2.0, 5.0);
        t.span(0, 1, Lane::Gpu, "sort", 0.0, 1.0);
        t.span(0, 2, Lane::Gpu, "sort", 1.0, 3.0);
        let rows = folded_profile(&t);
        assert_eq!(rows.len(), 3);
        // Ordered by rank first.
        assert_eq!(rows[0].rank, 0);
        let sort = &rows[0];
        assert_eq!(sort.count, 2);
        assert_eq!(sort.total_s, 3.0);
        assert_eq!(sort.self_s, 3.0);
        let step = rows.iter().find(|r| r.name == "step").unwrap();
        assert_eq!(step.total_s, 10.0);
        assert_eq!(step.self_s, 7.0);
        let inner = rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.self_s, 3.0);
    }

    #[test]
    fn telescoping_error_detects_gaps_and_overlaps() {
        let mut t = TraceStore::new();
        t.span(0, 1, Lane::Gpu, "a", 0.0, 1.0);
        t.span(0, 1, Lane::Gpu, "b", 1.0, 3.0);
        assert_eq!(telescoping_error(&t), 0.0);
        // A gap on another rank×step group.
        t.span(1, 1, Lane::Gpu, "a", 0.0, 1.0);
        t.span(1, 1, Lane::Gpu, "b", 1.5, 2.0);
        assert!((telescoping_error(&t) - 0.5).abs() < 1e-15);
        // CPU spans do not participate.
        t.span(2, 1, Lane::Cpu, "x", 0.0, 1.0);
        t.span(2, 1, Lane::Cpu, "y", 5.0, 6.0);
        assert!((telescoping_error(&t) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn empty_trace_is_trivially_telescoped() {
        let t = TraceStore::new();
        assert_eq!(telescoping_error(&t), 0.0);
        assert!(roofline(&t).is_empty());
        assert!(folded_profile(&t).is_empty());
    }
}
