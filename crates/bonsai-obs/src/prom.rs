//! Prometheus text-exposition snapshot of a [`MetricsRegistry`].
//!
//! Standard exposition format: `# TYPE` headers, `name{labels} value`
//! samples, histograms as cumulative `_bucket{le="…"}` series plus `_sum`
//! and `_count`. Keys render in deterministic (BTreeMap) order, so
//! identical registries produce byte-identical snapshots.

use crate::json::fmt_f64;
use crate::metrics::MetricsRegistry;

/// Render the registry in Prometheus text-exposition format.
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (k, v) in reg.counters() {
        if k.name != last_family {
            out.push_str(&format!("# TYPE {} counter\n", k.name));
            last_family = k.name.clone();
        }
        out.push_str(&format!("{} {v}\n", k.render()));
    }
    last_family.clear();
    for (k, v) in reg.gauges() {
        if k.name != last_family {
            out.push_str(&format!("# TYPE {} gauge\n", k.name));
            last_family = k.name.clone();
        }
        out.push_str(&format!("{} {}\n", k.render(), fmt_f64(v)));
    }
    last_family.clear();
    for (k, h) in reg.histograms() {
        if k.name != last_family {
            out.push_str(&format!("# TYPE {} histogram\n", k.name));
            last_family = k.name.clone();
        }
        for (le, cum) in h.cumulative_buckets() {
            let mut labels = k.labels.clone();
            labels.push(("le".to_string(), fmt_f64(le)));
            let inner: Vec<String> = labels
                .iter()
                .map(|(lk, lv)| format!("{lk}=\"{lv}\""))
                .collect();
            out.push_str(&format!(
                "{}_bucket{{{}}} {cum}\n",
                k.name,
                inner.join(",")
            ));
        }
        for (q, v) in h.export_quantiles() {
            let mut labels = k.labels.clone();
            labels.push(("quantile".to_string(), fmt_f64(q)));
            let inner: Vec<String> = labels
                .iter()
                .map(|(lk, lv)| format!("{lk}=\"{lv}\""))
                .collect();
            out.push_str(&format!(
                "{}{{{}}} {}\n",
                k.name,
                inner.join(","),
                fmt_f64(v)
            ));
        }
        let suffix = |tail: &str| {
            if k.labels.is_empty() {
                format!("{}_{tail}", k.name)
            } else {
                let inner: Vec<String> = k
                    .labels
                    .iter()
                    .map(|(lk, lv)| format!("{lk}=\"{lv}\""))
                    .collect();
                format!("{}_{tail}{{{}}}", k.name, inner.join(","))
            }
        };
        out.push_str(&format!("{} {}\n", suffix("sum"), fmt_f64(h.sum())));
        out.push_str(&format!("{} {}\n", suffix("count"), h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_all_types() {
        let mut r = MetricsRegistry::new();
        r.counter_add("bonsai_bytes_total", &[("kind", "let")], 1234);
        r.gauge_set("bonsai_phase_seconds", &[("phase", "sort")], 0.1);
        r.histogram_observe("bonsai_walk_pp", &[("rank", "0")], 1716.0);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE bonsai_bytes_total counter"));
        assert!(text.contains("bonsai_bytes_total{kind=\"let\"} 1234"));
        assert!(text.contains("# TYPE bonsai_phase_seconds gauge"));
        assert!(text.contains("bonsai_phase_seconds{phase=\"sort\"} 0.1"));
        assert!(text.contains("# TYPE bonsai_walk_pp histogram"));
        assert!(text.contains("bonsai_walk_pp_bucket{rank=\"0\",le="));
        assert!(text.contains("bonsai_walk_pp{rank=\"0\",quantile=\"0.5\"} 1716"));
        assert!(text.contains("bonsai_walk_pp{rank=\"0\",quantile=\"0.9\"} 1716"));
        assert!(text.contains("bonsai_walk_pp{rank=\"0\",quantile=\"0.99\"} 1716"));
        assert!(text.contains("bonsai_walk_pp_sum{rank=\"0\"} 1716"));
        assert!(text.contains("bonsai_walk_pp_count{rank=\"0\"} 1"));
    }

    #[test]
    fn quantile_lines_are_ordered_and_bracketed() {
        let mut r = MetricsRegistry::new();
        for i in 1..=200 {
            r.histogram_observe("lat", &[], i as f64);
        }
        let text = prometheus_text(&r);
        let q = |tag: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(&format!("lat{{quantile=\"{tag}\"}}")))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing quantile {tag} in:\n{text}"))
        };
        let (p50, p90, p99) = (q("0.5"), q("0.9"), q("0.99"));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= 200.0 + 1e-9);
    }

    #[test]
    fn deterministic_snapshot() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.counter_add("c", &[("b", "2")], 1);
            r.counter_add("c", &[("a", "1")], 2);
            r.gauge_set("g", &[], 3.5);
            r.histogram_observe("h", &[], 8.0);
            r.histogram_observe("h", &[], 9.0);
            prometheus_text(&r)
        };
        assert_eq!(build(), build());
    }
}
