//! Satellite regression: a synthetic metric stream that dips, recovers and
//! then drifts must produce *exactly* the expected alert open/close
//! sequence, and the rendered incident log must be byte-deterministic.
//! Also exercises the flight-recorder freeze path end-to-end against the
//! rule engine (the integration the cluster performs each step).

use bonsai_obs::{
    default_rules, AlertKind, Condition, FlightRecorder, HealthMonitor, Lane, Rule, Severity,
    TraceStore,
};

/// The synthetic Gflops stream: healthy, a dip below the floor, recovery,
/// then a slow sag (relative drift from the baseline).
fn gflops_stream() -> Vec<(u64, f64)> {
    let mut v = Vec::new();
    // steps 1..=10: healthy around 1500
    for s in 1..=10u64 {
        v.push((s, 1500.0));
    }
    // steps 11..=16: collapse to near zero (floor dip)
    for s in 11..=16u64 {
        v.push((s, 0.2));
    }
    // steps 17..=30: recovered
    for s in 17..=30u64 {
        v.push((s, 1480.0));
    }
    // steps 31..=50: sagging to 60% loss — drifts past the 40% band
    for s in 31..=50u64 {
        let t = (s - 30) as f64 / 20.0;
        v.push((s, 1480.0 - 900.0 * t));
    }
    v
}

fn floor_and_sag_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "gflops-floor",
            "bonsai_gpu_gflops",
            Condition::Below(1.0),
            Severity::Critical,
            3,
            3,
        ),
        Rule::new(
            "gflops-sag",
            "bonsai_gpu_gflops",
            Condition::DriftAbove(0.4),
            Severity::Warning,
            5,
            5,
        ),
    ]
}

#[test]
fn dip_recover_drift_produces_exact_sequence() {
    let mut h = HealthMonitor::new(floor_and_sag_rules());
    for (step, v) in gflops_stream() {
        h.observe(step, "bonsai_gpu_gflops", v);
    }
    let seq: Vec<(u64, &str, AlertKind)> = h
        .events()
        .iter()
        .map(|e| (e.step, e.rule.as_str(), e.kind))
        .collect();
    // Floor: breaches 11..16, opens on the 3rd consecutive breach (13),
    // closes on the 3rd clean step after recovery (19).
    // Sag: |v − 1500| > 0.4·1500 ⟺ v < 900 — true for the dip (11..16) and
    // again once the ramp sinks below 900 at step 43. The dip opens it at
    // 15 (5th breach), recovery closes it at 21 (5th clean), and the drift
    // reopens it at 47 (5th consecutive sagging step).
    assert_eq!(
        seq,
        vec![
            (13, "gflops-floor", AlertKind::Open),
            (15, "gflops-sag", AlertKind::Open),
            (19, "gflops-floor", AlertKind::Close),
            (21, "gflops-sag", AlertKind::Close),
            (47, "gflops-sag", AlertKind::Open),
        ],
        "unexpected alert sequence: {seq:?}"
    );
    assert_eq!(h.worst_opened(), Some(Severity::Critical));
    assert_eq!(h.opened_count(Severity::Critical), 1);
    assert_eq!(h.opened_count(Severity::Warning), 2);
    assert_eq!(h.open_rules().len(), 1, "the sag is still open at the end");
}

#[test]
fn incident_log_is_byte_deterministic() {
    let render = || {
        let mut h = HealthMonitor::new(floor_and_sag_rules());
        for (step, v) in gflops_stream() {
            h.observe(step, "bonsai_gpu_gflops", v);
        }
        h.render_log()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b);
    assert_eq!(a.lines().count(), 5);
    assert!(a.contains("gflops-floor"));
    assert!(a.contains("[critical]"));
    // Stable line shape: every line carries step, kind, rule, value.
    for line in a.lines() {
        assert!(line.starts_with("step "), "bad log line: {line}");
        assert!(line.contains("bonsai_gpu_gflops"), "bad log line: {line}");
    }
}

#[test]
fn alert_firing_freezes_a_flight_window() {
    // Drive the default rule set with a recovery storm while a flight
    // recorder shadows a synthetic trace — the coupling the cluster runs.
    let mut h = HealthMonitor::new(default_rules());
    let mut fr = FlightRecorder::new(4);
    let mut trace = TraceStore::new();
    let mut incidents = Vec::new();
    for step in 1..=12u64 {
        let base = step as f64;
        trace.span(0, step, Lane::Gpu, "gravity", base, base + 0.8);
        let storm = (6..=9).contains(&step);
        if storm {
            trace.instant(0, step, Lane::Comm, "recovery:retransmit", base + 0.1);
        }
        fr.record_step(&trace, step);
        let actions = if storm { 24.0 } else { 0.0 };
        for ev in h.observe(step, "bonsai_recovery_actions", actions) {
            if ev.kind == AlertKind::Open {
                // Freeze twice at the trigger to check determinism.
                incidents.push(fr.freeze(incidents.len() / 2, &ev));
                incidents.push(fr.freeze(incidents.len() / 2, &ev));
            }
        }
    }
    // for_steps = 2 ⇒ the storm (6..=9) opens at step 7; clear_steps = 2 ⇒
    // closes at step 11.
    let kinds: Vec<_> = h.events().iter().map(|e| (e.step, e.kind)).collect();
    assert_eq!(kinds, vec![(7, AlertKind::Open), (11, AlertKind::Close)]);
    assert_eq!(incidents.len(), 2);
    let inc = &incidents[0];
    assert_eq!(inc.rule, "recovery-storm");
    assert_eq!(inc.step, 7);
    assert_eq!(inc.window, (4, 7), "4-step ring ending at the trigger step");
    // The frozen window is Perfetto-loadable and contains the storm.
    let json = inc.trace_json();
    let v = bonsai_obs::json::parse(&json).expect("valid JSON");
    assert!(v.get("traceEvents").and_then(|e| e.as_arr()).is_some());
    assert!(json.contains("recovery:retransmit"));
    // The two freezes taken at the trigger are byte-identical.
    assert_eq!(inc.report(), incidents[1].report());
    assert_eq!(inc.trace_json(), incidents[1].trace_json());
}
