//! Exporter contract tests: Chrome trace JSON round-trips through the
//! minimal parser, timestamps are monotonic per track, histogram
//! percentiles behave at the edges, and identical inputs export
//! byte-identically.

use bonsai_obs::{chrome, folded, json, prom, Lane, LogHistogram, MetricsRegistry, TraceStore};

/// A trace shaped like one cluster step: 3 ranks × (GPU phases + comm).
fn step_like_trace(seed: u64) -> TraceStore {
    let mut t = TraceStore::new();
    for rank in 0..3u32 {
        let mut at = 0.0;
        let jitter = (seed as f64 + rank as f64) * 1e-3;
        for phase in ["sort", "domain", "build", "props", "local", "lets"] {
            let dur = 0.1 + jitter;
            let s = t.span(rank, 1, Lane::Gpu, phase, at, at + dur);
            t.arg_f64(s, "occupancy", 0.9);
            at += dur;
        }
        let c = t.span(rank, 1, Lane::Comm, "let-comm", 0.4, 0.9 + jitter);
        t.arg_u64(c, "bytes", 12_000 + rank as u64);
    }
    t.instant(1, 1, Lane::Comm, "fault:drop", 0.45);
    t
}

#[test]
fn chrome_round_trips_through_parser() {
    let doc = chrome::chrome_trace_json(&step_like_trace(7));
    let v = json::parse(&doc).expect("exporter must emit valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        match ph {
            // Complete events must carry ts + dur; B/E pairs are the only
            // alternative and this exporter never emits them unmatched.
            "X" => {
                assert!(e.get("ts").and_then(|x| x.as_f64()).is_some());
                assert!(e.get("dur").and_then(|x| x.as_f64()).unwrap() >= 0.0);
            }
            "i" => {
                assert!(e.get("ts").is_some());
                assert_eq!(e.get("s").and_then(|s| s.as_str()), Some("t"));
            }
            "M" => {}
            "B" | "E" => panic!("unpaired duration events in export"),
            other => panic!("unexpected event phase {other}"),
        }
    }
}

#[test]
fn chrome_timestamps_monotonic_per_track() {
    let doc = chrome::chrome_trace_json(&step_like_trace(3));
    let v = json::parse(&doc).unwrap();
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let mut last: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let pid = e.get("pid").unwrap().as_f64().unwrap() as u64;
        let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        if let Some(prev) = last.insert((pid, tid), ts) {
            assert!(ts >= prev, "ts regressed on track ({pid},{tid}): {prev} -> {ts}");
        }
    }
    assert!(!last.is_empty());
}

#[test]
fn exports_byte_identical_for_identical_inputs() {
    let a = step_like_trace(42);
    let b = step_like_trace(42);
    assert_eq!(
        chrome::chrome_trace_json(&a),
        chrome::chrome_trace_json(&b)
    );
    assert_eq!(folded::folded_stacks(&a), folded::folded_stacks(&b));

    let mk_reg = || {
        let mut r = MetricsRegistry::new();
        r.counter_add("bonsai_bytes_total", &[("kind", "let")], 99);
        r.gauge_set("bonsai_phase_seconds", &[("phase", "local")], 1.45);
        for x in [3.0, 5.0, 1716.0] {
            r.histogram_observe("bonsai_walk_pp", &[], x);
        }
        r
    };
    assert_eq!(
        prom::prometheus_text(&mk_reg()),
        prom::prometheus_text(&mk_reg())
    );
}

#[test]
fn differing_inputs_differ() {
    let a = chrome::chrome_trace_json(&step_like_trace(1));
    let b = chrome::chrome_trace_json(&step_like_trace(2));
    assert_ne!(a, b, "different workloads must not collide");
}

#[test]
fn histogram_percentile_edge_cases() {
    // Empty histogram: no percentiles, no min/max.
    let empty = LogHistogram::new();
    assert_eq!(empty.percentile(0.5), None);
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.mean(), 0.0);

    // Single sample: every percentile is that sample.
    let mut single = LogHistogram::new();
    single.observe(1716.0);
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        assert_eq!(single.percentile(q), Some(1716.0), "q={q}");
    }

    // Percentiles are bounded by observed range and monotone in q.
    let mut h = LogHistogram::new();
    for i in 0..1000 {
        h.observe(1.0 + (i % 97) as f64 * 11.0);
    }
    let mut prev = f64::NEG_INFINITY;
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let p = h.percentile(q).unwrap();
        assert!(p >= h.min().unwrap() && p <= h.max().unwrap());
        assert!(p >= prev, "percentile not monotone at q={q}");
        prev = p;
    }

    // Out-of-range q clamps instead of panicking.
    assert!(h.percentile(-0.5).is_some());
    assert!(h.percentile(1.5).is_some());
}

#[test]
fn folded_stacks_parse_as_stack_value_lines() {
    let text = folded::folded_stacks(&step_like_trace(5));
    assert!(!text.is_empty());
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack SPACE value");
        assert!(stack.starts_with("rank "), "{stack}");
        assert!(stack.contains(';'));
        value.parse::<u64>().expect("integer microseconds");
    }
}
