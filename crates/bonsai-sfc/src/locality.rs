//! Curve-locality metrics for the Morton-vs-Hilbert ablation.
//!
//! The paper chooses the Peano–Hilbert curve because contiguous key ranges
//! have smaller surfaces, which directly reduces boundary-tree and LET
//! communication volume (§III-B). These metrics quantify that claim:
//!
//! * [`mean_step`] — mean lattice (L1) distance between consecutive keys
//!   (exactly 1.0 for Hilbert; > 1 for Morton);
//! * [`range_surface_cells`] — for an equal split of a point set into `p`
//!   key ranges, the number of lattice-surface cells of each piece, i.e. the
//!   communication proxy used in `ablation_sfc`.

use crate::keymap::{Curve, KeyMap};
use crate::range::{find_owner, KeyRange};
use bonsai_util::Vec3;

/// Mean L1 lattice step between consecutive keys of `curve`, sampled over
/// `samples` consecutive pairs starting at `start` on a `bits`-per-axis
/// lattice.
pub fn mean_step(curve: Curve, bits: u32, start: u64, samples: u64) -> f64 {
    let decode = |k: u64| -> [u32; 3] {
        match curve {
            Curve::Morton => {
                // reduced-resolution Morton = full-resolution on small coords
                let c = crate::morton::decode(k);
                [c[0], c[1], c[2]]
            }
            Curve::Hilbert => crate::hilbert::decode_bits(k, bits),
        }
    };
    let end = (start + samples).min((1u64 << (3 * bits)) - 1);
    let mut total = 0u64;
    let mut prev = decode(start);
    let mut n = 0u64;
    for k in (start + 1)..=end {
        let cur = decode(k);
        total += (0..3)
            .map(|i| (cur[i] as i64 - prev[i] as i64).unsigned_abs())
            .sum::<u64>();
        prev = cur;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total as f64 / n as f64
    }
}

/// Assign `points` to `p` equal key ranges under `map`'s curve and count, for
/// each range, how many occupied lattice cells have at least one face
/// neighbour owned by a different range. Returns per-range surface counts.
///
/// This is the communication proxy: boundary trees and LETs scale with the
/// number of surface cells of a domain.
pub fn range_surface_cells(map: &KeyMap, points: &[Vec3], p: usize) -> Vec<usize> {
    assert!(p > 0);
    let keys: Vec<u64> = points.iter().map(|&q| map.key_of(q)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    // Equal-count cuts (weighted by particles, like the sampling method).
    let cuts: Vec<u64> = (1..p).map(|i| sorted[i * sorted.len() / p]).collect();
    let ranges: Vec<KeyRange> = crate::range::ranges_from_cuts(&cuts);

    // Occupied cells per owner at a coarse level; a cell is assigned to the
    // owner holding the majority of its particles.
    let coarse_bits = 4u32; // 16^3 lattice, dense enough for adjacency to mean something
    let shift = crate::DIM_BITS - coarse_bits;
    let mut cell_counts: std::collections::HashMap<[u32; 3], Vec<u32>> = std::collections::HashMap::new();
    for (&k, &pt) in keys.iter().zip(points) {
        let owner = find_owner(&ranges, k);
        let c = map.coords_of(pt);
        let cc = [c[0] >> shift, c[1] >> shift, c[2] >> shift];
        let counts = cell_counts.entry(cc).or_insert_with(|| vec![0; p]);
        counts[owner] += 1;
    }
    let cell_owner: std::collections::HashMap<[u32; 3], usize> = cell_counts
        .into_iter()
        .map(|(c, counts)| {
            let owner = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i)
                .unwrap();
            (c, owner)
        })
        .collect();
    let mut surface = vec![0usize; p];
    for (&c, &owner) in &cell_owner {
        let mut is_surface = false;
        'outer: for axis in 0..3 {
            for d in [-1i64, 1] {
                let v = c[axis] as i64 + d;
                if v < 0 || v >= (1i64 << coarse_bits) {
                    continue;
                }
                let mut n = c;
                n[axis] = v as u32;
                if let Some(&other) = cell_owner.get(&n) {
                    if other != owner {
                        is_surface = true;
                        break 'outer;
                    }
                }
            }
        }
        if is_surface {
            surface[owner] += 1;
        }
    }
    surface
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_util::rng::Xoshiro256;
    use bonsai_util::Aabb;

    #[test]
    fn hilbert_mean_step_is_one() {
        let s = mean_step(Curve::Hilbert, 5, 0, 5000);
        assert!((s - 1.0).abs() < 1e-12, "hilbert step {s}");
    }

    #[test]
    fn morton_mean_step_exceeds_one() {
        let s = mean_step(Curve::Morton, 5, 0, 5000);
        assert!(s > 1.2, "morton step {s} should be clearly worse than Hilbert");
    }

    #[test]
    fn hilbert_surface_smaller_than_morton() {
        // Uniform points, 5 ranges (deliberately not a power of 8: for p=8^k
        // on uniform density the Morton cuts coincide with octant boundaries
        // and are optimal, so the curves tie). With p=5 the Morton pieces
        // straddle octants and fragment, while Hilbert pieces stay connected
        // — the paper's motivation for PH decomposition (§III-B).
        let mut rng = Xoshiro256::seed_from(99);
        let pts: Vec<Vec3> = (0..40_000)
            .map(|_| Vec3::new(rng.uniform(), rng.uniform(), rng.uniform()))
            .collect();
        let bounds = Aabb::from_points(&pts);
        let mh = KeyMap::new(&bounds, Curve::Hilbert);
        let mm = KeyMap::new(&bounds, Curve::Morton);
        let sh: usize = range_surface_cells(&mh, &pts, 5).iter().sum();
        let sm: usize = range_surface_cells(&mm, &pts, 5).iter().sum();
        assert!(sh < sm, "hilbert surface {sh} should be < morton {sm}");
    }
}
