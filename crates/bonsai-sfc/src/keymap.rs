//! Mapping physical coordinates to SFC keys and back.
//!
//! The paper (§III-B1): each GPU computes a local bounding box, the CPUs
//! reduce these to a *global* bounding box, and its geometry maps particle
//! coordinates to global PH keys. [`KeyMap`] captures exactly that geometry:
//! a root cube plus the chosen curve.

use crate::{hilbert, morton, DIM_BITS, DIM_CELLS, MAX_LEVEL};
use bonsai_util::{Aabb, Vec3};

/// Which space-filling curve orders the lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Curve {
    /// Morton / Z-order: cheap, poorer locality.
    Morton,
    /// Peano–Hilbert: unit-step locality, the production choice.
    Hilbert,
}

/// Quantizer from a cubic root volume to 63-bit keys.
#[derive(Clone, Debug)]
pub struct KeyMap {
    root: Aabb,
    cell: f64,
    inv_cell: f64,
    curve: Curve,
}

impl KeyMap {
    /// Build from the global bounding box of all particles. The box is
    /// expanded to its bounding cube so octants map to key prefixes.
    pub fn new(global_bounds: &Aabb, curve: Curve) -> Self {
        assert!(!global_bounds.is_empty(), "empty global bounds");
        let root = global_bounds.bounding_cube();
        let side = root.size().x;
        let cell = side / DIM_CELLS as f64;
        Self {
            root,
            cell,
            inv_cell: DIM_CELLS as f64 / side,
            curve,
        }
    }

    /// The cubic root volume.
    pub fn root(&self) -> &Aabb {
        &self.root
    }

    /// The curve in use.
    pub fn curve(&self) -> Curve {
        self.curve
    }

    /// Side length of one lattice cell.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Quantize a position to lattice coordinates, clamped to the lattice.
    #[inline]
    pub fn coords_of(&self, p: Vec3) -> [u32; 3] {
        let q = (p - self.root.min) * self.inv_cell;
        let clamp = |v: f64| -> u32 {
            if v <= 0.0 {
                0
            } else if v >= (DIM_CELLS - 1) as f64 {
                DIM_CELLS - 1
            } else {
                v as u32
            }
        };
        [clamp(q.x), clamp(q.y), clamp(q.z)]
    }

    /// Key of a position under the configured curve.
    #[inline]
    pub fn key_of(&self, p: Vec3) -> u64 {
        let c = self.coords_of(p);
        match self.curve {
            Curve::Morton => morton::encode(c),
            Curve::Hilbert => hilbert::encode(c),
        }
    }

    /// Keys for a slice of positions.
    pub fn keys_of(&self, ps: &[Vec3]) -> Vec<u64> {
        ps.iter().map(|&p| self.key_of(p)).collect()
    }

    /// Centre of the lattice cell with the given coordinates.
    #[inline]
    pub fn cell_center(&self, c: [u32; 3]) -> Vec3 {
        self.root.min
            + Vec3::new(
                (c[0] as f64 + 0.5) * self.cell,
                (c[1] as f64 + 0.5) * self.cell,
                (c[2] as f64 + 0.5) * self.cell,
            )
    }

    /// Decode a key back to its lattice cell centre.
    pub fn point_of_key(&self, key: u64) -> Vec3 {
        let c = match self.curve {
            Curve::Morton => morton::decode(key),
            Curve::Hilbert => hilbert::decode(key),
        };
        self.cell_center(c)
    }

    /// Geometric AABB of the level-`level` octree cell that contains `key`.
    ///
    /// Level 0 is the root cube; each level halves the side. Works for both
    /// curves because a 3·level-bit key prefix always stays inside a single
    /// geometric octant at that level.
    pub fn cell_aabb(&self, key: u64, level: u32) -> Aabb {
        assert!(level <= MAX_LEVEL);
        let c = match self.curve {
            Curve::Morton => morton::decode(key),
            Curve::Hilbert => hilbert::decode(key),
        };
        let shift = DIM_BITS - level;
        let mask = if shift == 32 { 0 } else { !((1u32 << shift) - 1) };
        let lo = [c[0] & mask, c[1] & mask, c[2] & mask];
        let cells = 1u64 << shift;
        // Both corners are computed from integer lattice coordinates through
        // the same monotone map, so cells at finer levels nest *exactly*
        // inside their parents despite floating-point rounding.
        let corner = |v: [u64; 3]| -> Vec3 {
            self.root.min
                + Vec3::new(
                    v[0] as f64 * self.cell,
                    v[1] as f64 * self.cell,
                    v[2] as f64 * self.cell,
                )
        };
        let min = corner([lo[0] as u64, lo[1] as u64, lo[2] as u64]);
        let max = corner([lo[0] as u64 + cells, lo[1] as u64 + cells, lo[2] as u64 + cells]);
        Aabb::new(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_map(curve: Curve) -> KeyMap {
        KeyMap::new(&Aabb::new(Vec3::zero(), Vec3::splat(1.0)), curve)
    }

    #[test]
    fn quantization_round_trip_is_within_one_cell() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            let km = unit_map(curve);
            let pts = [
                Vec3::new(0.1, 0.2, 0.3),
                Vec3::new(0.999, 0.001, 0.5),
                Vec3::splat(0.5),
            ];
            for &p in &pts {
                let k = km.key_of(p);
                let q = km.point_of_key(k);
                assert!((p - q).abs().max_component() <= km.cell_size(), "curve {curve:?}: {p} -> {q}");
            }
        }
    }

    #[test]
    fn clamping_keeps_out_of_range_points_on_lattice() {
        let km = unit_map(Curve::Hilbert);
        let k = km.key_of(Vec3::splat(10.0)); // far outside
        assert!(k < crate::KEY_END);
        let k = km.key_of(Vec3::splat(-10.0));
        assert!(k < crate::KEY_END);
    }

    #[test]
    fn keys_preserve_coincidence() {
        let km = unit_map(Curve::Hilbert);
        let p = Vec3::new(0.25, 0.75, 0.5);
        assert_eq!(km.key_of(p), km.key_of(p));
    }

    #[test]
    fn cell_aabb_nests() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            let km = unit_map(curve);
            let p = Vec3::new(0.3, 0.6, 0.9);
            let key = km.key_of(p);
            let mut prev = km.cell_aabb(key, 0);
            assert!(prev.contains(p));
            for level in 1..=10 {
                let cur = km.cell_aabb(key, level);
                assert!(prev.contains_box(&cur), "level {level} not nested ({curve:?})");
                assert!(cur.contains(p), "level {level} lost the point ({curve:?})");
                assert!((cur.size().x - prev.size().x / 2.0).abs() < 1e-12);
                prev = cur;
            }
        }
    }

    #[test]
    fn root_cell_is_root_cube() {
        let km = unit_map(Curve::Hilbert);
        let b = km.cell_aabb(12345, 0);
        assert_eq!(b.min, km.root().min);
        assert!((b.size().x - km.root().size().x).abs() < 1e-12);
    }

    #[test]
    fn nearby_points_share_key_prefix_under_hilbert() {
        let km = unit_map(Curve::Hilbert);
        // Two points in the same level-8 cell must share the 24-bit prefix.
        let p = Vec3::new(0.123, 0.456, 0.789);
        let eps = km.cell_size() * 0.25;
        let q = p + Vec3::splat(eps);
        let (kp, kq) = (km.key_of(p), km.key_of(q));
        // They are at most one lattice cell apart, so prefixes at a coarse
        // level usually agree; just assert both decode near each other.
        let dp = km.point_of_key(kp).distance(km.point_of_key(kq));
        assert!(dp <= 2.0 * km.cell_size() * 3f64.sqrt());
    }
}
