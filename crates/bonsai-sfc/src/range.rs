//! Half-open key ranges as domain descriptors.
//!
//! After the parallel sample sort (§III-B1) the global Peano–Hilbert curve is
//! cut into `p` pieces; the beginning and ending PH keys of each piece *are*
//! the domain geometry of the corresponding process. A [`KeyRange`] is such a
//! piece; [`KeyRange::covering_cells`] recovers the minimal set of octree
//! cells whose union is exactly the range — these are the paper's boundary
//! cells ("gray squares" of Fig. 2) used for boundary trees and LETs.

use crate::{KEY_BITS, KEY_END, MAX_LEVEL};

/// A half-open range `[start, end)` of SFC keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyRange {
    /// First key in the range.
    pub start: u64,
    /// One past the last key.
    pub end: u64,
}

impl KeyRange {
    /// Construct; panics if inverted or out of key space.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(end <= KEY_END, "range end {end} beyond key space");
        Self { start, end }
    }

    /// The full key space.
    pub fn everything() -> Self {
        Self { start: 0, end: KEY_END }
    }

    /// Number of keys in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `key` lies inside.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        key >= self.start && key < self.end
    }

    /// `true` if the ranges overlap.
    pub fn overlaps(&self, o: &KeyRange) -> bool {
        self.start < o.end && o.start < self.end
    }

    /// Cut the range into `n` near-equal contiguous pieces (sizes differ by
    /// at most 1 key).
    pub fn split_even(&self, n: usize) -> Vec<KeyRange> {
        assert!(n > 0);
        let len = self.len() as u128;
        (0..n as u128)
            .map(|i| {
                let s = self.start + (len * i / n as u128) as u64;
                let e = self.start + (len * (i + 1) / n as u128) as u64;
                KeyRange::new(s, e)
            })
            .collect()
    }

    /// The minimal set of aligned octree cells `(prefix_key, level)` that
    /// exactly tiles the range.
    ///
    /// A cell at `level` covers `8^(MAX_LEVEL - level)` consecutive keys
    /// starting at a multiple of that span. The greedy walk from `start`
    /// always takes the largest aligned cell that fits; the result is the
    /// canonical cell decomposition of an SFC interval (O(log N) cells per
    /// endpoint).
    pub fn covering_cells(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut cursor = self.start;
        while cursor < self.end {
            // Largest power-of-8 block aligned at `cursor`…
            let align_bits = if cursor == 0 {
                KEY_BITS
            } else {
                (cursor.trailing_zeros() / 3 * 3).min(KEY_BITS)
            };
            // …that still fits in the remainder.
            let remaining = self.end - cursor;
            let mut bits = align_bits;
            while bits > 0 && (1u64 << bits) > remaining {
                bits -= 3;
            }
            let level = MAX_LEVEL - bits / 3;
            out.push((cursor, level));
            cursor += 1u64 << bits;
        }
        out
    }
}

/// Partition the whole key space among `p` ranks by *cutting a weighted key
/// sequence*: `cuts` are the `p - 1` interior boundary keys, ascending.
pub fn ranges_from_cuts(cuts: &[u64]) -> Vec<KeyRange> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0u64;
    for &c in cuts {
        assert!(c >= prev, "cuts must be ascending");
        out.push(KeyRange::new(prev, c));
        prev = c;
    }
    out.push(KeyRange::new(prev, KEY_END));
    out
}

/// Find which range of a sorted disjoint partition contains `key`.
pub fn find_owner(ranges: &[KeyRange], key: u64) -> usize {
    debug_assert!(!ranges.is_empty());
    match ranges.binary_search_by(|r| {
        if key < r.start {
            std::cmp::Ordering::Greater
        } else if key >= r.end {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }) {
        Ok(i) => i,
        Err(_) => panic!("key {key} not covered by partition"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_is_exact_partition() {
        let r = KeyRange::everything();
        let parts = r.split_even(7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, KEY_END);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let total: u128 = parts.iter().map(|p| p.len() as u128).sum();
        assert_eq!(total, KEY_END as u128);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn covering_cells_tiles_exactly() {
        let cases = [
            KeyRange::new(0, KEY_END),
            KeyRange::new(0, 8),
            KeyRange::new(3, 20),
            KeyRange::new(7, 8),
            KeyRange::new(123_456_789, 987_654_321),
            KeyRange::new(KEY_END - 5, KEY_END),
        ];
        for r in cases {
            let cells = r.covering_cells();
            // Cells are contiguous, aligned, and tile the range exactly.
            let mut cursor = r.start;
            for &(key, level) in &cells {
                assert_eq!(key, cursor, "gap in covering of {r:?}");
                let span = 1u64 << (3 * (MAX_LEVEL - level));
                assert_eq!(key % span, 0, "cell not aligned");
                cursor += span;
            }
            assert_eq!(cursor, r.end, "covering of {r:?} wrong length");
        }
    }

    #[test]
    fn covering_of_full_space_is_one_cell() {
        let cells = KeyRange::everything().covering_cells();
        assert_eq!(cells, vec![(0, 0)]);
    }

    #[test]
    fn covering_is_logarithmically_small() {
        // An arbitrary range decomposes into O(levels) cells, not O(len).
        let r = KeyRange::new(1, KEY_END - 1);
        let cells = r.covering_cells();
        assert!(cells.len() <= (2 * MAX_LEVEL as usize) * 7, "covering too large: {}", cells.len());
    }

    #[test]
    fn ranges_from_cuts_and_owner() {
        let ranges = ranges_from_cuts(&[100, 1000, 50_000]);
        assert_eq!(ranges.len(), 4);
        assert_eq!(find_owner(&ranges, 0), 0);
        assert_eq!(find_owner(&ranges, 99), 0);
        assert_eq!(find_owner(&ranges, 100), 1);
        assert_eq!(find_owner(&ranges, 49_999), 2);
        assert_eq!(find_owner(&ranges, KEY_END - 1), 3);
    }

    #[test]
    fn contains_and_overlaps() {
        let a = KeyRange::new(10, 20);
        let b = KeyRange::new(20, 30);
        let c = KeyRange::new(15, 25);
        assert!(a.contains(10) && !a.contains(20));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c) && b.overlaps(&c));
        assert!(KeyRange::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        let _ = KeyRange::new(5, 4);
    }
}
