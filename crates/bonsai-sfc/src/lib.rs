//! # bonsai-sfc
//!
//! Space-filling-curve machinery for the parallel tree-code.
//!
//! The paper's domain decomposition (§III-B1) maps particle coordinates to
//! 63-bit Peano–Hilbert keys, sorts the global key sequence, and cuts it into
//! contiguous pieces, which guarantees every sub-domain is a union of branches
//! of a hypothetical global octree. This crate provides:
//!
//! * [`morton`] — Morton (Z-order) encode/decode, the simpler baseline curve
//!   used for tree construction and in the SFC ablation study;
//! * [`hilbert`] — 3D Hilbert encode/decode (Skilling's transpose algorithm),
//!   the production curve whose superior locality shrinks domain surfaces and
//!   therefore communication volume;
//! * [`keymap`] — quantization of physical coordinates in a root cube to
//!   integer lattice coordinates and keys, and cell-geometry recovery;
//! * [`range`] — half-open key ranges as domain descriptors, plus the minimal
//!   octree-cell covering of a range (the "gray squares" of the paper's
//!   Fig. 2);
//! * [`locality`] — curve-locality metrics for the Morton-vs-Hilbert ablation.
//!
//! ```
//! use bonsai_sfc::{hilbert, KeyRange};
//!
//! // Hilbert keys are bijective and consecutive keys are lattice neighbours.
//! let c = [123_456u32, 42, 1_000_000];
//! assert_eq!(hilbert::decode(hilbert::encode(c)), c);
//!
//! // A domain (key range) decomposes into a handful of aligned octree cells.
//! let domain = KeyRange::new(1_000, 2_000_000);
//! let cells = domain.covering_cells();
//! let covered: u64 = cells.iter()
//!     .map(|&(_, level)| 1u64 << (3 * (bonsai_sfc::MAX_LEVEL - level)))
//!     .sum();
//! assert_eq!(covered, domain.len());
//! ```

#![deny(missing_docs)]

pub mod hilbert;
pub mod keymap;
pub mod locality;
pub mod morton;
pub mod range;

pub use keymap::{Curve, KeyMap};
pub use range::KeyRange;

/// Bits of resolution per spatial dimension.
pub const DIM_BITS: u32 = 21;

/// Total key bits (`3 * DIM_BITS`); keys occupy the low 63 bits of a `u64`.
pub const KEY_BITS: u32 = 3 * DIM_BITS;

/// Number of lattice cells per dimension (2²¹).
pub const DIM_CELLS: u32 = 1 << DIM_BITS;

/// One past the largest valid key (8²¹ = 2⁶³).
pub const KEY_END: u64 = 1u64 << KEY_BITS;

/// Maximum octree depth representable by a key (one level per 3 bits).
pub const MAX_LEVEL: u32 = DIM_BITS;
