//! 3D Hilbert curve encoding (Skilling's transpose algorithm).
//!
//! The Peano–Hilbert curve visits every cell of the 2²¹³ lattice exactly once
//! and — unlike Morton order — moves by exactly one lattice step between
//! consecutive keys. That unit-step property is why the paper (§III-B) uses it
//! for domain decomposition: contiguous key ranges have compact (if fractal)
//! boundaries, minimizing the boundary-tree and LET data that must travel over
//! the interconnect.
//!
//! Implementation: John Skilling, *Programming the Hilbert curve*, AIP Conf.
//! Proc. 707 (2004). Coordinates are converted to/from the "transpose" format
//! (bit-interleaved across the three axes) in place.

use crate::DIM_BITS;

/// Convert lattice coordinates (in place) to Hilbert transpose form.
///
/// After the call, interleaving the bits of `x` MSB-first (axis 0 most
/// significant) yields the scalar Hilbert index.
pub fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3usize;
    let m = 1u32 << (bits - 1);
    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of axis 0
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Inverse of [`axes_to_transpose`].
pub fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3usize;
    let m = 1u32 << (bits - 1);
    // Gray decode by H ^ (H/2)
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q = 2u32;
    while q != m << 1 {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Interleave transpose-format coordinates into a scalar key (axis 0 most
/// significant within each 3-bit group).
#[inline]
pub fn transpose_to_key(x: [u32; 3], bits: u32) -> u64 {
    let mut key = 0u64;
    for b in (0..bits).rev() {
        for xi in x.iter() {
            key = (key << 1) | ((xi >> b) & 1) as u64;
        }
    }
    key
}

/// Inverse of [`transpose_to_key`].
#[inline]
pub fn key_to_transpose(key: u64, bits: u32) -> [u32; 3] {
    let mut x = [0u32; 3];
    for b in (0..bits).rev() {
        for (i, xi) in x.iter_mut().enumerate() {
            let shift = 3 * b + (2 - i as u32);
            *xi = (*xi << 1) | ((key >> shift) & 1) as u32;
        }
    }
    x
}

/// Encode lattice coordinates to a 63-bit Hilbert key.
#[inline]
pub fn encode(c: [u32; 3]) -> u64 {
    let mut x = c;
    axes_to_transpose(&mut x, DIM_BITS);
    transpose_to_key(x, DIM_BITS)
}

/// Decode a 63-bit Hilbert key back to lattice coordinates.
#[inline]
pub fn decode(key: u64) -> [u32; 3] {
    let mut x = key_to_transpose(key, DIM_BITS);
    transpose_to_axes(&mut x, DIM_BITS);
    x
}

/// Encode at reduced resolution (`bits` per axis); used by the decomposition
/// figure and by tests that enumerate an entire small lattice.
#[inline]
pub fn encode_bits(c: [u32; 3], bits: u32) -> u64 {
    let mut x = c;
    axes_to_transpose(&mut x, bits);
    transpose_to_key(x, bits)
}

/// Decode at reduced resolution (`bits` per axis).
#[inline]
pub fn decode_bits(key: u64, bits: u32) -> [u32; 3] {
    let mut x = key_to_transpose(key, bits);
    transpose_to_axes(&mut x, bits);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_full_resolution() {
        let cases = [
            [0u32, 0, 0],
            [1, 0, 0],
            [0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF],
            [123_456, 654_321, 111_111],
            [0x10_0000, 0, 0x0F_FFFF],
        ];
        for c in cases {
            assert_eq!(decode(encode(c)), c, "round trip failed for {c:?}");
        }
    }

    #[test]
    fn bijective_on_small_lattice() {
        // 3 bits per axis: all 512 cells must map to distinct keys in [0, 512).
        let bits = 3;
        let mut seen = vec![false; 512];
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    let k = encode_bits([x, y, z], bits) as usize;
                    assert!(k < 512);
                    assert!(!seen[k], "key {k} hit twice");
                    seen[k] = true;
                    assert_eq!(decode_bits(k as u64, bits), [x, y, z]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_keys_are_lattice_neighbours() {
        // The defining property of the Hilbert curve: successive keys differ
        // by exactly one step along exactly one axis.
        let bits = 4; // 4096 cells
        let total = 1u64 << (3 * bits);
        let mut prev = decode_bits(0, bits);
        for k in 1..total {
            let cur = decode_bits(k, bits);
            let d: u32 = (0..3)
                .map(|i| (cur[i] as i64 - prev[i] as i64).unsigned_abs() as u32)
                .sum();
            assert_eq!(d, 1, "keys {} -> {} jump {:?} -> {:?}", k - 1, k, prev, cur);
            prev = cur;
        }
    }

    #[test]
    fn starts_at_origin() {
        assert_eq!(decode_bits(0, 5), [0, 0, 0]);
        assert_eq!(decode(0), [0, 0, 0]);
    }

    #[test]
    fn full_res_consecutive_keys_adjacent_spot_check() {
        // Spot-check the unit-step property at full 21-bit resolution around
        // a few arbitrary keys.
        for &start in &[1u64 << 40, 0xABCDEF_u64, (1u64 << 62) + 12345] {
            let a = decode(start);
            let b = decode(start + 1);
            let d: u32 = (0..3)
                .map(|i| (a[i] as i64 - b[i] as i64).unsigned_abs() as u32)
                .sum();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let x = [0b1011u32, 0b0110, 0b1100];
        let k = transpose_to_key(x, 4);
        assert_eq!(key_to_transpose(k, 4), x);
    }
}
