//! Morton (Z-order) key encoding for 21-bit lattice coordinates.
//!
//! Bit layout: key bit `3k+2..3k` holds bit `k` of (z, y, x) — i.e. x is the
//! least significant axis, matching the octant convention of
//! `bonsai_util::aabb::Aabb::octant` (bit 0 → x-high).

use crate::{DIM_BITS, DIM_CELLS};

/// Spread the low 21 bits of `v` so bit `k` moves to bit `3k`.
#[inline]
pub fn spread(v: u32) -> u64 {
    debug_assert!(v < DIM_CELLS);
    let mut x = v as u64 & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread`]: gather bits `3k` back to bit `k`.
#[inline]
pub fn compact(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x as u32
}

/// Encode lattice coordinates to a 63-bit Morton key.
#[inline]
pub fn encode(c: [u32; 3]) -> u64 {
    spread(c[0]) | (spread(c[1]) << 1) | (spread(c[2]) << 2)
}

/// Decode a Morton key back to lattice coordinates.
#[inline]
pub fn decode(key: u64) -> [u32; 3] {
    [compact(key), compact(key >> 1), compact(key >> 2)]
}

/// The octant digit (0–7) of `key` at tree `level` (level 1 = root children).
#[inline]
pub fn octant_at_level(key: u64, level: u32) -> u8 {
    debug_assert!((1..=DIM_BITS).contains(&level));
    ((key >> (3 * (DIM_BITS - level))) & 0x7) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KEY_END;

    #[test]
    fn spread_compact_round_trip() {
        for v in [0u32, 1, 2, 0x15_5555, 0x1F_FFFF, 0x10_0001, 12345] {
            assert_eq!(compact(spread(v)), v);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cases = [
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [0, 0, 1],
            [0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF],
            [123_456, 654_321, 111_111],
        ];
        for c in cases {
            assert_eq!(decode(encode(c)), c);
        }
    }

    #[test]
    fn axis_significance() {
        // x is the least significant axis.
        assert_eq!(encode([1, 0, 0]), 0b001);
        assert_eq!(encode([0, 1, 0]), 0b010);
        assert_eq!(encode([0, 0, 1]), 0b100);
        assert_eq!(encode([1, 1, 1]), 0b111);
    }

    #[test]
    fn max_key_in_range() {
        let k = encode([0x1F_FFFF; 3]);
        assert_eq!(k, KEY_END - 1);
    }

    #[test]
    fn monotone_in_each_axis_at_origin() {
        // Along a single axis from 0, Morton keys are strictly increasing.
        let mut prev = 0u64;
        for x in 1..100u32 {
            let k = encode([x, 0, 0]);
            assert!(k > prev);
            prev = k;
        }
    }

    #[test]
    fn octant_digits() {
        let key = encode([0x1F_FFFF, 0, 0]); // all x bits set
        for level in 1..=DIM_BITS {
            assert_eq!(octant_at_level(key, level), 1);
        }
        let key = encode([0, 0x1F_FFFF, 0x1F_FFFF]);
        for level in 1..=DIM_BITS {
            assert_eq!(octant_at_level(key, level), 6);
        }
    }
}
