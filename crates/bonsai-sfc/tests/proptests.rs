//! Property-based tests for the space-filling-curve layer.

use bonsai_sfc::range::{find_owner, ranges_from_cuts};
use bonsai_sfc::{hilbert, morton, Curve, KeyMap, KeyRange, DIM_BITS, KEY_END};
use bonsai_util::{Aabb, Vec3};
use proptest::prelude::*;

fn arb_coords() -> impl Strategy<Value = [u32; 3]> {
    [0u32..(1 << DIM_BITS), 0u32..(1 << DIM_BITS), 0u32..(1 << DIM_BITS)]
}

proptest! {
    #[test]
    fn morton_hilbert_round_trips(c in arb_coords()) {
        prop_assert_eq!(morton::decode(morton::encode(c)), c);
        prop_assert_eq!(hilbert::decode(hilbert::encode(c)), c);
    }

    #[test]
    fn keys_stay_in_63_bits(c in arb_coords()) {
        prop_assert!(morton::encode(c) < KEY_END);
        prop_assert!(hilbert::encode(c) < KEY_END);
    }

    #[test]
    fn hilbert_consecutive_keys_are_neighbours(k in 0u64..(KEY_END - 1)) {
        let a = hilbert::decode(k);
        let b = hilbert::decode(k + 1);
        let l1: u64 = (0..3).map(|i| (a[i] as i64 - b[i] as i64).unsigned_abs()).sum();
        prop_assert_eq!(l1, 1, "keys {} and {} decode to non-adjacent cells", k, k + 1);
    }

    #[test]
    fn morton_prefix_encodes_common_octant(c in arb_coords(), level in 1u32..=DIM_BITS) {
        // Two coords equal in their top `level` bits per axis share the
        // Morton key prefix of 3·level bits.
        let shift = DIM_BITS - level;
        let d = [c[0] | 1 << shift.min(20), c[1], c[2]];
        let same_cell = (0..3).all(|i| c[i] >> shift == d[i] >> shift);
        if same_cell {
            let kc = morton::encode(c) >> (3 * shift);
            let kd = morton::encode(d) >> (3 * shift);
            prop_assert_eq!(kc, kd);
        }
    }

    #[test]
    fn keymap_key_is_curve_of_quantized_coords(x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0) {
        let bounds = Aabb::new(Vec3::zero(), Vec3::splat(1.0));
        for curve in [Curve::Morton, Curve::Hilbert] {
            let km = KeyMap::new(&bounds, curve);
            let p = Vec3::new(x, y, z);
            let c = km.coords_of(p);
            let expect = match curve {
                Curve::Morton => morton::encode(c),
                Curve::Hilbert => hilbert::encode(c),
            };
            prop_assert_eq!(km.key_of(p), expect);
        }
    }

    #[test]
    fn cell_aabbs_nest_along_any_key_path(k in 0u64..KEY_END, lvl in 1u32..=12) {
        let bounds = Aabb::new(Vec3::zero(), Vec3::splat(1.0));
        let km = KeyMap::new(&bounds, Curve::Hilbert);
        let parent = km.cell_aabb(k, lvl - 1);
        let child = km.cell_aabb(k, lvl);
        prop_assert!(parent.contains_box(&child));
        prop_assert!((parent.size().x - 2.0 * child.size().x).abs() < 1e-12 * parent.size().x.max(1e-30));
    }

    #[test]
    fn covering_cells_are_minimal_under_merging(start in 0u64..KEY_END, len in 1u64..(1u64 << 45)) {
        // No two consecutive covering cells of the same level that are
        // siblings could be merged — i.e. the greedy cover is canonical.
        let end = start.saturating_add(len).min(KEY_END);
        let r = KeyRange::new(start.min(end), end);
        let cells = r.covering_cells();
        for w in cells.windows(2) {
            let (k0, l0) = w[0];
            let (k1, l1) = w[1];
            if l0 == l1 && l0 > 0 {
                let parent_span = 1u64 << (3 * (DIM_BITS - l0 + 1));
                // If both in the same parent and aligned as the first two
                // children covering the whole parent, the cover would be
                // non-minimal — the greedy algorithm must never emit that
                // unless the parent is not fully inside the range.
                if k0 % parent_span == 0 && k1 == k0 + parent_span / 8 {
                    // the remaining 6 siblings must NOT all be in the range
                    let parent_end = k0 + parent_span;
                    prop_assert!(
                        parent_end > r.end,
                        "mergeable siblings found at {} level {}", k0, l0
                    );
                }
            }
        }
    }

    #[test]
    fn owner_lookup_agrees_with_scan(cuts in proptest::collection::vec(0u64..KEY_END, 0..10), key in 0u64..KEY_END) {
        let mut cuts = cuts;
        cuts.sort_unstable();
        let ranges = ranges_from_cuts(&cuts);
        let fast = find_owner(&ranges, key);
        let slow = ranges.iter().position(|r| r.contains(key)).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn split_even_partitions_exactly(n in 1usize..64, start in 0u64..(KEY_END / 2), len in 1u64..(KEY_END / 2)) {
        let r = KeyRange::new(start, start + len);
        let parts = r.split_even(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts[0].start, r.start);
        prop_assert_eq!(parts.last().unwrap().end, r.end);
        let total: u128 = parts.iter().map(|p| p.len() as u128).sum();
        prop_assert_eq!(total, r.len() as u128);
    }
}
