//! # bonsai-core
//!
//! The public single-process simulation API of the reproduction: a complete
//! Barnes–Hut N-body engine with the paper's algorithmic choices baked in —
//! Peano–Hilbert sorted octree rebuilt every step, NLEAF = 16, monopole +
//! quadrupole multipoles, opening angle θ (production value 0.4), Plummer
//! softening, and the 2nd-order leap-frog integrator of §III-B2.
//!
//! ```
//! use bonsai_core::{Simulation, SimulationConfig};
//! use bonsai_ic::plummer_sphere;
//!
//! let ic = plummer_sphere(1_000, 42);
//! let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.01, 0.01));
//! let e0 = sim.energy_report().total();
//! for _ in 0..10 {
//!     sim.step();
//! }
//! let e1 = sim.energy_report().total();
//! assert!(((e1 - e0) / e0).abs() < 1e-3);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod hybrid;
pub mod sim;
pub mod snapshot;

pub use config::SimulationConfig;
pub use hybrid::{HybridConfig, HybridSimulation};
pub use sim::{Simulation, StepStats};
