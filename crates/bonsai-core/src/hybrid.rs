//! Hybrid direct + tree integration for massive black holes (§VII).
//!
//! "The gravitational interactions around the black holes require the
//! accuracy of a direct N-body code which … would be running on the CPU
//! while the tree-code would be running on the GPU."
//!
//! This module implements that decomposition: particles above a mass
//! threshold are *black holes*; they and every star within `direct_radius`
//! of any of them form the **direct set**, whose forces are recomputed by
//! exact summation over all particles each step (replacing the θ-limited
//! tree forces). Everything else keeps its tree forces. The scheme is the
//! bridge-style split used by AMUSE [56, 57], which the paper cites as the
//! vehicle for this extension.

use crate::config::SimulationConfig;
use bonsai_tree::build::Tree;
use bonsai_tree::kernels::p_p;
use bonsai_tree::walk::{self};
use bonsai_tree::{InteractionCounts, Particles};
use bonsai_util::Vec3;
use rayon::prelude::*;

/// Configuration of the hybrid scheme on top of [`SimulationConfig`].
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Base tree-code configuration.
    pub base: SimulationConfig,
    /// Particles at least this massive are treated as black holes.
    pub bh_mass_threshold: f64,
    /// Stars within this distance of any black hole join the direct set.
    pub direct_radius: f64,
    /// Softening used *inside* the direct set (typically ≪ the tree ε; 0 for
    /// a true collisional core).
    pub direct_eps: f64,
}

/// Per-step diagnostics of the hybrid integrator.
#[derive(Clone, Copy, Debug)]
pub struct HybridStepStats {
    /// Size of the direct set this step.
    pub direct_set: usize,
    /// Black holes found.
    pub black_holes: usize,
    /// Tree interactions.
    pub tree_counts: InteractionCounts,
    /// Direct (exact) interactions evaluated on the CPU side.
    pub direct_pp: u64,
}

/// A simulation with an embedded direct-summation region around black holes.
pub struct HybridSimulation {
    particles: Particles,
    cfg: HybridConfig,
    acc: Vec<Vec3>,
    pot: Vec<f64>,
    time: f64,
    step: u64,
    last: HybridStepStats,
}

impl HybridSimulation {
    /// Create and evaluate initial forces.
    pub fn new(particles: Particles, cfg: HybridConfig) -> Self {
        particles.validate().expect("invalid initial conditions");
        let mut sim = Self {
            particles,
            cfg,
            acc: Vec::new(),
            pot: Vec::new(),
            time: 0.0,
            step: 0,
            last: HybridStepStats {
                direct_set: 0,
                black_holes: 0,
                tree_counts: InteractionCounts::zero(),
                direct_pp: 0,
            },
        };
        sim.refresh_forces();
        sim
    }

    /// Indices (in current storage order) of black holes and the direct set.
    fn classify(&self) -> (Vec<usize>, Vec<usize>) {
        let bhs: Vec<usize> = (0..self.particles.len())
            .filter(|&i| self.particles.mass[i] >= self.cfg.bh_mass_threshold)
            .collect();
        if bhs.is_empty() {
            return (bhs, Vec::new());
        }
        let r2 = self.cfg.direct_radius * self.cfg.direct_radius;
        let direct: Vec<usize> = (0..self.particles.len())
            .filter(|&i| {
                bhs.iter()
                    .any(|&b| self.particles.pos[i].distance2(self.particles.pos[b]) <= r2)
            })
            .collect();
        (bhs, direct)
    }

    fn refresh_forces(&mut self) {
        // GPU side: full tree forces for everyone.
        let particles = std::mem::take(&mut self.particles);
        let tree = Tree::build(particles, self.cfg.base.tree_params());
        let (forces, stats) = walk::self_gravity(&tree, &self.cfg.base.walk_params());
        self.acc = forces.acc;
        self.pot = forces.pot;
        self.particles = tree.particles;

        // CPU side: exact forces for the direct set, replacing tree values.
        let (bhs, direct) = self.classify();
        let g = self.cfg.base.g;
        let eps2 = self.cfg.direct_eps * self.cfg.direct_eps;
        let pos = &self.particles.pos;
        let mass = &self.particles.mass;
        let exact: Vec<(usize, Vec3, f64)> = direct
            .par_iter()
            .map(|&i| {
                let t = pos[i];
                let mut a = Vec3::zero();
                let mut p = 0.0;
                for j in 0..pos.len() {
                    if j == i {
                        continue;
                    }
                    let (dp, da) = p_p(t, pos[j], mass[j], eps2);
                    p += dp;
                    a += da;
                }
                (i, a * g, p * g)
            })
            .collect();
        for (i, a, p) in exact {
            self.acc[i] = a;
            self.pot[i] = p;
        }
        self.last = HybridStepStats {
            direct_set: direct.len(),
            black_holes: bhs.len(),
            tree_counts: stats.counts,
            direct_pp: direct.len() as u64 * (self.particles.len() as u64 - 1),
        };
    }

    /// Advance one kick–drift–kick step.
    pub fn step(&mut self) -> HybridStepStats {
        let dt = self.cfg.base.dt;
        let half = 0.5 * dt;
        for i in 0..self.particles.len() {
            self.particles.vel[i] += self.acc[i] * half;
            let v = self.particles.vel[i];
            self.particles.pos[i] += v * dt;
        }
        self.refresh_forces();
        for i in 0..self.particles.len() {
            self.particles.vel[i] += self.acc[i] * half;
        }
        self.time += dt;
        self.step += 1;
        self.last
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Current particles (SFC order).
    pub fn particles(&self) -> &Particles {
        &self.particles
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Diagnostics of the last force evaluation.
    pub fn last_stats(&self) -> HybridStepStats {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    /// A tight equal-mass BH binary embedded in a light stellar background.
    fn binary_in_cluster(n_stars: usize) -> Particles {
        let mut p = plummer_sphere(n_stars, 31);
        // scale star masses down so the binary dominates locally
        for m in &mut p.mass {
            *m *= 0.01;
        }
        let m_bh = 0.2_f64;
        let sep = 0.02_f64;
        // circular mutual orbit: v² = G(m1+m2)/(4·(sep/2))… for equal masses
        // each orbits at r = sep/2 with v = sqrt(G·m_other·… ) = sqrt(m/(2·sep))
        let v = (m_bh / (2.0 * sep)).sqrt();
        p.push(Vec3::new(sep / 2.0, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m_bh, 900_001);
        p.push(Vec3::new(-sep / 2.0, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m_bh, 900_002);
        p
    }

    fn cfg(eps_tree: f64) -> HybridConfig {
        HybridConfig {
            base: SimulationConfig::nbody_units(0.5, eps_tree, 2e-4),
            bh_mass_threshold: 0.1,
            direct_radius: 0.1,
            direct_eps: 0.0,
        }
    }

    fn binary_separation(p: &Particles) -> f64 {
        let a = p.id.iter().position(|&i| i == 900_001).unwrap();
        let b = p.id.iter().position(|&i| i == 900_002).unwrap();
        p.pos[a].distance(p.pos[b])
    }

    #[test]
    fn classification_finds_bhs_and_neighbours() {
        let p = binary_in_cluster(500);
        let sim = HybridSimulation::new(p, cfg(0.02));
        let s = sim.last_stats();
        assert_eq!(s.black_holes, 2);
        assert!(s.direct_set >= 2, "direct set must include the binary");
        assert!(s.direct_set < 502, "direct set must not be everything");
        assert!(s.direct_pp > 0);
        assert!(s.tree_counts.flops() > 0);
    }

    #[test]
    fn hybrid_preserves_tight_binary_better_than_pure_tree() {
        // With a large tree softening, a pure tree code corrupts the tight
        // binary; the hybrid's zero-softened direct core keeps its
        // separation near the initial value over several orbital periods.
        let eps_tree = 0.05; // deliberately larger than the binary separation
        let n_steps = 400;

        let mut hybrid = HybridSimulation::new(binary_in_cluster(300), cfg(eps_tree));
        hybrid.run(n_steps);
        let sep_hybrid = binary_separation(hybrid.particles());

        let mut pure = crate::Simulation::new(
            binary_in_cluster(300),
            SimulationConfig::nbody_units(0.5, eps_tree, 2e-4),
        );
        pure.run(n_steps);
        let sep_pure = binary_separation(pure.particles());

        let err_hybrid = (sep_hybrid - 0.02_f64).abs() / 0.02;
        let err_pure = (sep_pure - 0.02_f64).abs() / 0.02;
        assert!(
            err_hybrid < 0.2,
            "hybrid binary separation drifted: {sep_hybrid} ({err_hybrid:.2})"
        );
        assert!(
            err_hybrid < err_pure,
            "hybrid ({err_hybrid:.3}) must beat pure tree ({err_pure:.3})"
        );
    }

    #[test]
    fn no_black_holes_degenerates_to_tree() {
        let p = plummer_sphere(300, 5);
        let mut sim = HybridSimulation::new(
            p,
            HybridConfig {
                base: SimulationConfig::nbody_units(0.4, 0.02, 0.01),
                bh_mass_threshold: 1e9, // nothing qualifies
                direct_radius: 0.1,
                direct_eps: 0.0,
            },
        );
        let s = sim.step();
        assert_eq!(s.black_holes, 0);
        assert_eq!(s.direct_set, 0);
        assert_eq!(s.direct_pp, 0);
    }

    #[test]
    fn energy_roughly_conserved_with_direct_core() {
        let mut sim = HybridSimulation::new(binary_in_cluster(200), cfg(0.02));
        // crude energy via direct sum at matching softening structure is not
        // well-defined across the eps boundary; just assert stability of the
        // binary + boundedness of the cluster.
        sim.run(200);
        let p = sim.particles();
        assert!(p.pos.iter().all(|q| q.norm() < 50.0), "cluster must stay bound");
        let sep = binary_separation(p);
        assert!(sep < 0.1, "binary must remain tight, sep = {sep}");
    }
}
