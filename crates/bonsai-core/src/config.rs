//! Simulation configuration.

use bonsai_sfc::Curve;
use bonsai_tree::build::TreeParams;
use bonsai_tree::walk::WalkParams;
use serde::{Deserialize, Serialize};

/// All knobs of a single-process simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Opening angle θ (paper production value: 0.4).
    pub theta: f64,
    /// Plummer softening length (paper: 1 pc = 0.001 kpc at 51G particles).
    pub eps: f64,
    /// Time step (paper: 75,000 yr; here in the chosen unit system).
    pub dt: f64,
    /// Gravitational constant (1 for N-body units, `units::G` for galactic).
    pub g: f64,
    /// Leaf capacity (paper: 16).
    pub nleaf: usize,
    /// Walk group size.
    pub group_size: usize,
    /// Space-filling curve for the sort.
    pub use_hilbert: bool,
}

impl SimulationConfig {
    /// N-body units (G = 1) with the given θ, softening and dt.
    pub fn nbody_units(theta: f64, eps: f64, dt: f64) -> Self {
        Self {
            theta,
            eps,
            dt,
            g: 1.0,
            nleaf: bonsai_tree::NLEAF,
            group_size: 2 * bonsai_tree::NLEAF,
            use_hilbert: true,
        }
    }

    /// Galactic units (kpc, km/s, M☉) with the paper's θ = 0.4.
    pub fn galactic(eps_kpc: f64, dt_internal: f64) -> Self {
        Self {
            theta: 0.4,
            eps: eps_kpc,
            dt: dt_internal,
            g: bonsai_util::units::G,
            nleaf: bonsai_tree::NLEAF,
            group_size: 2 * bonsai_tree::NLEAF,
            use_hilbert: true,
        }
    }

    /// Tree-construction parameters implied by this config.
    pub fn tree_params(&self) -> TreeParams {
        TreeParams {
            nleaf: self.nleaf,
            curve: if self.use_hilbert {
                Curve::Hilbert
            } else {
                Curve::Morton
            },
            group_size: self.group_size,
        }
    }

    /// Walk parameters implied by this config.
    pub fn walk_params(&self) -> WalkParams {
        WalkParams {
            theta: self.theta,
            eps: self.eps,
            g: self.g,
            use_quadrupole: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_units() {
        let n = SimulationConfig::nbody_units(0.5, 0.01, 0.001);
        assert_eq!(n.g, 1.0);
        let g = SimulationConfig::galactic(0.05, 1e-3);
        assert_eq!(g.theta, 0.4);
        assert!((g.g - 4.300917270e-6).abs() < 1e-15);
    }

    #[test]
    fn params_propagate() {
        let mut c = SimulationConfig::nbody_units(0.5, 0.01, 0.001);
        c.use_hilbert = false;
        assert_eq!(c.tree_params().curve, Curve::Morton);
        assert_eq!(c.walk_params().theta, 0.5);
        assert_eq!(c.tree_params().nleaf, 16);
    }

    #[test]
    fn serde_round_trip() {
        let c = SimulationConfig::galactic(0.05, 1e-3);
        let s = serde_json_like(&c);
        assert!(s.contains("theta"));
    }

    // Tiny smoke check that Serialize derives work (format-agnostic).
    fn serde_json_like(c: &SimulationConfig) -> String {
        format!("theta={} eps={} dt={}", c.theta, c.eps, c.dt)
    }
}
