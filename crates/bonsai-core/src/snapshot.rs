//! Binary snapshot I/O.
//!
//! The production runs write intermediate snapshots "for the dual purpose of
//! restarting and detailed analysis" (§VI-C). The format here is a minimal
//! little-endian binary layout: magic, time, count, per-particle
//! `pos(3×f64) vel(3×f64) mass(f64) id(u64)` records, and a trailing
//! CRC-64 over everything before it. Readers validate the length against
//! the declared count and the checksum against the content, so truncated or
//! bit-flipped files are rejected with a descriptive [`io::Error`] instead
//! of silently yielding garbage particles. Writes go through a temp file +
//! atomic rename, so a torn write never leaves a half-written snapshot
//! under the final name.

use bonsai_tree::Particles;
use bonsai_util::{crc64, Vec3};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"BONSAI02";
/// magic(8) + time(8) + count(8).
const HEADER_LEN: usize = 24;
/// pos + vel + mass + id.
const RECORD_LEN: usize = 64;
/// Trailing CRC-64.
const TRAILER_LEN: usize = 8;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serialize `particles` at simulation `time` into the snapshot format.
pub fn snapshot_to_bytes(particles: &Particles, time: f64) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN + particles.len() * RECORD_LEN + TRAILER_LEN);
    v.extend_from_slice(MAGIC);
    v.extend_from_slice(&time.to_le_bytes());
    v.extend_from_slice(&(particles.len() as u64).to_le_bytes());
    for i in 0..particles.len() {
        for q in [particles.pos[i], particles.vel[i]] {
            v.extend_from_slice(&q.x.to_le_bytes());
            v.extend_from_slice(&q.y.to_le_bytes());
            v.extend_from_slice(&q.z.to_le_bytes());
        }
        v.extend_from_slice(&particles.mass[i].to_le_bytes());
        v.extend_from_slice(&particles.id[i].to_le_bytes());
    }
    let crc = crc64(&v);
    v.extend_from_slice(&crc.to_le_bytes());
    v
}

/// Parse and strictly validate a snapshot; returns `(particles, time)`.
///
/// Rejects wrong magic, lengths inconsistent with the declared particle
/// count (truncation or trailing junk), and checksum mismatches, each with
/// an error message naming the problem.
pub fn snapshot_from_bytes(data: &[u8]) -> io::Result<(Particles, f64)> {
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(bad(format!(
            "snapshot truncated: {} bytes, need at least {}",
            data.len(),
            HEADER_LEN + TRAILER_LEN
        )));
    }
    if &data[..8] != MAGIC {
        return Err(bad("bad snapshot magic (expected BONSAI02)".to_string()));
    }
    let time = f64::from_le_bytes(data[8..16].try_into().unwrap());
    let n = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
    let need = n
        .checked_mul(RECORD_LEN)
        .and_then(|x| x.checked_add(HEADER_LEN + TRAILER_LEN))
        .ok_or_else(|| bad(format!("snapshot particle count {n} overflows")))?;
    if data.len() != need {
        return Err(bad(format!(
            "snapshot truncated or oversized: {} bytes, expected {need} for {n} particles",
            data.len()
        )));
    }
    let body = &data[..data.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(data[data.len() - TRAILER_LEN..].try_into().unwrap());
    let computed = crc64(body);
    if stored != computed {
        return Err(bad(format!(
            "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x} — \
             the file is corrupted"
        )));
    }
    let mut p = Particles::with_capacity(n);
    let mut off = HEADER_LEN;
    let f64_at = |off: &mut usize| {
        let v = f64::from_le_bytes(data[*off..*off + 8].try_into().unwrap());
        *off += 8;
        v
    };
    for _ in 0..n {
        let pos = Vec3::new(f64_at(&mut off), f64_at(&mut off), f64_at(&mut off));
        let vel = Vec3::new(f64_at(&mut off), f64_at(&mut off), f64_at(&mut off));
        let mass = f64_at(&mut off);
        let id = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
        off += 8;
        p.push(pos, vel, mass, id);
    }
    Ok((p, time))
}

/// Write a snapshot of `particles` at simulation `time`, atomically: the
/// bytes land in a sibling temp file which is then renamed over `path`.
pub fn write_snapshot<P: AsRef<Path>>(path: P, particles: &Particles, time: f64) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    std::fs::write(&tmp, snapshot_to_bytes(particles, time))?;
    std::fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Read a snapshot; returns `(particles, time)`.
pub fn read_snapshot<P: AsRef<Path>>(path: P) -> io::Result<(Particles, f64)> {
    snapshot_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("bonsai_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let p = plummer_sphere(321, 7);
        write_snapshot(&path, &p, 1.25).unwrap();
        let (q, t) = read_snapshot(&path).unwrap();
        assert_eq!(t, 1.25);
        assert_eq!(q.len(), 321);
        assert_eq!(q.pos, p.pos);
        assert_eq!(q.vel, p.vel);
        assert_eq!(q.mass, p.mass);
        assert_eq!(q.id, p.id);
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("bonsai_snap_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxxyyyyyyyy").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_snapshot_rejected_with_length_error() {
        let p = plummer_sphere(50, 1);
        let full = snapshot_to_bytes(&p, 0.5);
        for cut in [0, 10, HEADER_LEN, full.len() / 2, full.len() - 1] {
            let err = snapshot_from_bytes(&full[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("truncated"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn every_bit_flip_in_body_detected() {
        let p = plummer_sphere(8, 2);
        let full = snapshot_to_bytes(&p, 0.25);
        // Flip one bit in a spread of positions across the payload; the
        // checksum (or magic/length check) must catch each one.
        for byte in (8..full.len()).step_by(37) {
            let mut bad = full.clone();
            bad[byte] ^= 1 << (byte % 8);
            assert!(
                snapshot_from_bytes(&bad).is_err(),
                "flip at byte {byte} not detected"
            );
        }
    }

    #[test]
    fn checksum_error_is_descriptive() {
        let p = plummer_sphere(8, 3);
        let mut full = snapshot_to_bytes(&p, 0.25);
        let mid = full.len() / 2;
        full[mid] ^= 0x40;
        let err = snapshot_from_bytes(&full).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn restart_continues_identically() {
        // Write mid-run, reload, and verify the continued trajectory matches.
        use crate::{Simulation, SimulationConfig};
        let cfg = SimulationConfig::nbody_units(0.4, 0.02, 0.01);
        let ic = plummer_sphere(200, 11);
        let mut a = Simulation::new(ic, cfg);
        a.run(5);
        let dir = std::env::temp_dir().join("bonsai_snap_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("restart.bin");
        write_snapshot(&path, a.particles(), a.time()).unwrap();
        a.run(5);

        let (p, _t) = read_snapshot(&path).unwrap();
        let mut b = Simulation::new(p, cfg);
        b.run(5);

        // Same ids, same positions (deterministic rebuild from identical state).
        let pa = a.particles();
        let pb = b.particles();
        assert_eq!(pa.id, pb.id);
        for i in 0..pa.len() {
            assert!((pa.pos[i] - pb.pos[i]).norm() < 1e-12);
        }
    }
}
