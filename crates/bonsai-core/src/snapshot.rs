//! Binary snapshot I/O.
//!
//! The production runs write intermediate snapshots "for the dual purpose of
//! restarting and detailed analysis" (§VI-C). The format here is a minimal
//! little-endian binary layout: magic, version, count, then per-particle
//! `pos(3×f64) vel(3×f64) mass(f64) id(u64)`.

use bonsai_tree::Particles;
use bonsai_util::Vec3;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"BONSAI01";

/// Write a snapshot of `particles` at simulation `time`.
pub fn write_snapshot<P: AsRef<Path>>(path: P, particles: &Particles, time: f64) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&time.to_le_bytes())?;
    w.write_all(&(particles.len() as u64).to_le_bytes())?;
    for i in 0..particles.len() {
        for v in [particles.pos[i], particles.vel[i]] {
            w.write_all(&v.x.to_le_bytes())?;
            w.write_all(&v.y.to_le_bytes())?;
            w.write_all(&v.z.to_le_bytes())?;
        }
        w.write_all(&particles.mass[i].to_le_bytes())?;
        w.write_all(&particles.id[i].to_le_bytes())?;
    }
    w.flush()
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a snapshot; returns `(particles, time)`.
pub fn read_snapshot<P: AsRef<Path>>(path: P) -> io::Result<(Particles, f64)> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot magic"));
    }
    let time = read_f64(&mut r)?;
    let n = read_u64(&mut r)? as usize;
    let mut p = Particles::with_capacity(n);
    for _ in 0..n {
        let pos = Vec3::new(read_f64(&mut r)?, read_f64(&mut r)?, read_f64(&mut r)?);
        let vel = Vec3::new(read_f64(&mut r)?, read_f64(&mut r)?, read_f64(&mut r)?);
        let mass = read_f64(&mut r)?;
        let id = read_u64(&mut r)?;
        p.push(pos, vel, mass, id);
    }
    Ok((p, time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("bonsai_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let p = plummer_sphere(321, 7);
        write_snapshot(&path, &p, 1.25).unwrap();
        let (q, t) = read_snapshot(&path).unwrap();
        assert_eq!(t, 1.25);
        assert_eq!(q.len(), 321);
        assert_eq!(q.pos, p.pos);
        assert_eq!(q.vel, p.vel);
        assert_eq!(q.mass, p.mass);
        assert_eq!(q.id, p.id);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("bonsai_snap_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxx").unwrap();
        assert!(read_snapshot(&path).is_err());
    }

    #[test]
    fn restart_continues_identically() {
        // Write mid-run, reload, and verify the continued trajectory matches.
        use crate::{Simulation, SimulationConfig};
        let cfg = SimulationConfig::nbody_units(0.4, 0.02, 0.01);
        let ic = plummer_sphere(200, 11);
        let mut a = Simulation::new(ic, cfg);
        a.run(5);
        let dir = std::env::temp_dir().join("bonsai_snap_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("restart.bin");
        write_snapshot(&path, a.particles(), a.time()).unwrap();
        a.run(5);

        let (p, _t) = read_snapshot(&path).unwrap();
        let mut b = Simulation::new(p, cfg);
        b.run(5);

        // Same ids, same positions (deterministic rebuild from identical state).
        let pa = a.particles();
        let pb = b.particles();
        assert_eq!(pa.id, pb.id);
        for i in 0..pa.len() {
            assert!((pa.pos[i] - pb.pos[i]).norm() < 1e-12);
        }
    }
}
